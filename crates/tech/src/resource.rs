//! Resource classes and bit-width-parameterized resource types.

use hls_ir::{CmpKind, OpKind, Operation};
use std::fmt;

/// The functional class of a datapath resource.
///
/// A class groups operation kinds that can share the same functional unit:
/// e.g. `a - b` can run on an adder/subtractor, all comparison flavours run
/// on a comparator of the appropriate width.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ResourceClass {
    /// Adder (also used for subtraction and negation).
    Adder,
    /// Multiplier.
    Multiplier,
    /// Divider / remainder unit (multi-cycle capable).
    Divider,
    /// Barrel shifter.
    Shifter,
    /// Bitwise logic unit (and/or/xor/not).
    Logic,
    /// Magnitude comparator (`<`, `<=`, `>`, `>=`).
    Comparator,
    /// Equality comparator (`==`, `!=`) — much cheaper than magnitude.
    EqualityComparator,
    /// N-input multiplexer (sharing muxes and predicate-conversion muxes).
    Mux {
        /// Number of data inputs.
        inputs: u8,
    },
    /// Storage register.
    Register,
    /// Port interface (I/O); does not occupy datapath logic but must be
    /// tracked for binding and for protocol constraints.
    IoPort,
    /// A pre-designed IP block identified by name.
    IpBlock(String),
}

impl ResourceClass {
    /// Short mnemonic used in reports (`mul`, `add`, `gt`, `neq`, `mux2`...).
    pub fn mnemonic(&self) -> String {
        match self {
            ResourceClass::Adder => "add".into(),
            ResourceClass::Multiplier => "mul".into(),
            ResourceClass::Divider => "div".into(),
            ResourceClass::Shifter => "shift".into(),
            ResourceClass::Logic => "logic".into(),
            ResourceClass::Comparator => "gt".into(),
            ResourceClass::EqualityComparator => "neq".into(),
            ResourceClass::Mux { inputs } => format!("mux{inputs}"),
            ResourceClass::Register => "ff".into(),
            ResourceClass::IoPort => "io".into(),
            ResourceClass::IpBlock(name) => format!("ip_{name}"),
        }
    }
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// A resource type: a [`ResourceClass`] plus operand and result widths.
///
/// The paper defines compatibility of operations with resource types through
/// exactly this combination (Section IV.A), and explicitly avoids merging
/// resources of very different widths to protect power.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceType {
    /// Functional class.
    pub class: ResourceClass,
    /// Operand widths, widest first.
    pub in_widths: Vec<u16>,
    /// Result width.
    pub out_width: u16,
}

impl ResourceType {
    /// Creates a resource type for a two-operand resource.
    pub fn binary(class: ResourceClass, in_a: u16, in_b: u16, out: u16) -> Self {
        let mut in_widths = vec![in_a, in_b];
        in_widths.sort_unstable_by(|a, b| b.cmp(a));
        ResourceType {
            class,
            in_widths,
            out_width: out,
        }
    }

    /// Creates a resource type for a single-operand resource.
    pub fn unary(class: ResourceClass, input: u16, out: u16) -> Self {
        ResourceType {
            class,
            in_widths: vec![input],
            out_width: out,
        }
    }

    /// Creates a register resource of the given width.
    pub fn register(width: u16) -> Self {
        ResourceType {
            class: ResourceClass::Register,
            in_widths: vec![width],
            out_width: width,
        }
    }

    /// Creates an n-input mux resource of the given data width.
    pub fn mux(inputs: u8, width: u16) -> Self {
        ResourceType {
            class: ResourceClass::Mux { inputs },
            in_widths: vec![width; inputs as usize],
            out_width: width,
        }
    }

    /// Widest operand width (drives delay and area of most classes).
    pub fn max_width(&self) -> u16 {
        self.in_widths
            .iter()
            .copied()
            .chain(std::iter::once(self.out_width))
            .max()
            .unwrap_or(1)
    }

    /// The resource class an operation kind requires, or `None` for "free"
    /// operations (constants, slices, pass-throughs) that are pure wiring.
    pub fn class_for_kind(kind: &OpKind) -> Option<ResourceClass> {
        Some(match kind {
            OpKind::Add | OpKind::Sub | OpKind::Neg => ResourceClass::Adder,
            OpKind::Mul => ResourceClass::Multiplier,
            OpKind::Div | OpKind::Rem => ResourceClass::Divider,
            OpKind::Shl | OpKind::Shr => ResourceClass::Shifter,
            OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Not => ResourceClass::Logic,
            OpKind::Cmp(CmpKind::Eq) | OpKind::Cmp(CmpKind::Ne) => {
                ResourceClass::EqualityComparator
            }
            OpKind::Cmp(_) => ResourceClass::Comparator,
            OpKind::Mux => ResourceClass::Mux { inputs: 2 },
            OpKind::Read(_) | OpKind::Write(_) => ResourceClass::IoPort,
            OpKind::Call { name, .. } => ResourceClass::IpBlock(name.clone()),
            OpKind::Const(_) | OpKind::Pass | OpKind::Slice { .. } | OpKind::Resize => return None,
        })
    }

    /// The resource type an operation requires, or `None` for free operations.
    ///
    /// Operand widths are taken from the operation's input signals; the mux
    /// select input (1 bit) is excluded from the width signature so that a
    /// 2-input 32-bit mux is a `mux2` of width 32, matching Table 1.
    pub fn for_op(op: &Operation) -> Option<ResourceType> {
        let class = Self::class_for_kind(&op.kind)?;
        let mut in_widths: Vec<u16> = match op.kind {
            OpKind::Mux => op.inputs.iter().skip(1).map(|s| s.width).collect(),
            _ => op.inputs.iter().map(|s| s.width).collect(),
        };
        if in_widths.is_empty() {
            in_widths.push(op.width);
        }
        in_widths.sort_unstable_by(|a, b| b.cmp(a));
        Some(ResourceType {
            class,
            in_widths,
            out_width: op.width,
        })
    }

    /// Whether an operation can execute on this resource type: the classes
    /// must match and every operand (and the result) must fit.
    pub fn can_implement(&self, op: &Operation) -> bool {
        let Some(required) = Self::for_op(op) else {
            return false;
        };
        if required.class != self.class {
            return false;
        }
        if required.out_width > self.out_width {
            return false;
        }
        // Pair required operand widths (widest first) against available ones.
        if required.in_widths.len() > self.in_widths.len() {
            return false;
        }
        required
            .in_widths
            .iter()
            .zip(self.in_widths.iter())
            .all(|(need, have)| need <= have)
    }

    /// Whether two resource types may be merged into a single shared
    /// resource. The paper avoids merging "resources of very different bit
    /// widths, to avoid bad impact e.g. on power consumption"; the default
    /// policy allows merging when the wider type is at most `2×` the
    /// narrower one.
    pub fn can_merge(&self, other: &ResourceType) -> bool {
        if self.class != other.class {
            return false;
        }
        let a = self.max_width().max(1) as u32;
        let b = other.max_width().max(1) as u32;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        hi <= lo * 2
    }

    /// The merged (width-wise maximal) resource type covering both inputs.
    ///
    /// # Panics
    /// Panics if the classes differ; check [`ResourceType::can_merge`] first.
    pub fn merge(&self, other: &ResourceType) -> ResourceType {
        assert_eq!(
            self.class, other.class,
            "cannot merge different resource classes"
        );
        let len = self.in_widths.len().max(other.in_widths.len());
        let mut in_widths = Vec::with_capacity(len);
        for i in 0..len {
            let a = self.in_widths.get(i).copied().unwrap_or(0);
            let b = other.in_widths.get(i).copied().unwrap_or(0);
            in_widths.push(a.max(b));
        }
        ResourceType {
            class: self.class.clone(),
            in_widths,
            out_width: self.out_width.max(other.out_width),
        }
    }

    /// Human-readable name such as `mul_32x32`, `add_32x16`, `ff_32`.
    pub fn name(&self) -> String {
        if self.in_widths.is_empty() {
            format!("{}_{}", self.class.mnemonic(), self.out_width)
        } else {
            let widths: Vec<String> = self.in_widths.iter().map(|w| w.to_string()).collect();
            format!("{}_{}", self.class.mnemonic(), widths.join("x"))
        }
    }
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::Signal;

    fn op(kind: OpKind, width: u16, in_widths: &[u16]) -> Operation {
        let inputs = in_widths.iter().map(|&w| Signal::constant(0, w)).collect();
        Operation::new(kind, width, inputs)
    }

    #[test]
    fn class_mapping() {
        assert_eq!(
            ResourceType::class_for_kind(&OpKind::Add),
            Some(ResourceClass::Adder)
        );
        assert_eq!(
            ResourceType::class_for_kind(&OpKind::Sub),
            Some(ResourceClass::Adder)
        );
        assert_eq!(
            ResourceType::class_for_kind(&OpKind::Mul),
            Some(ResourceClass::Multiplier)
        );
        assert_eq!(
            ResourceType::class_for_kind(&OpKind::Cmp(CmpKind::Gt)),
            Some(ResourceClass::Comparator)
        );
        assert_eq!(
            ResourceType::class_for_kind(&OpKind::Cmp(CmpKind::Ne)),
            Some(ResourceClass::EqualityComparator)
        );
        assert_eq!(ResourceType::class_for_kind(&OpKind::Const(4)), None);
        assert_eq!(ResourceType::class_for_kind(&OpKind::Pass), None);
    }

    #[test]
    fn paper_example_adder_merging() {
        // A1[7:0] + B1[4:0] and A2[5:0] + B2[6:0] can share an 8x6 adder.
        let a1 = ResourceType::for_op(&op(OpKind::Add, 8, &[8, 5])).unwrap();
        let a2 = ResourceType::for_op(&op(OpKind::Add, 8, &[6, 7])).unwrap();
        assert!(a1.can_merge(&a2));
        let merged = a1.merge(&a2);
        assert_eq!(merged.in_widths, vec![8, 6]);
        assert!(merged.can_implement(&op(OpKind::Add, 8, &[8, 5])));
        assert!(merged.can_implement(&op(OpKind::Add, 8, &[6, 7])));
        assert_eq!(merged.name(), "add_8x6");
    }

    #[test]
    fn very_different_widths_do_not_merge() {
        let small = ResourceType::binary(ResourceClass::Multiplier, 8, 8, 8);
        let big = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        assert!(!small.can_merge(&big));
        let mid = ResourceType::binary(ResourceClass::Multiplier, 16, 16, 16);
        assert!(mid.can_merge(&big));
    }

    #[test]
    fn different_classes_never_merge() {
        let add = ResourceType::binary(ResourceClass::Adder, 32, 32, 32);
        let mul = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        assert!(!add.can_merge(&mul));
    }

    #[test]
    fn can_implement_respects_widths() {
        let add_32 = ResourceType::binary(ResourceClass::Adder, 32, 32, 33);
        assert!(add_32.can_implement(&op(OpKind::Add, 33, &[32, 32])));
        assert!(add_32.can_implement(&op(OpKind::Add, 16, &[16, 8])));
        assert!(!add_32.can_implement(&op(OpKind::Add, 40, &[40, 40])));
        assert!(!add_32.can_implement(&op(OpKind::Mul, 32, &[32, 32])));
    }

    #[test]
    fn mux_width_signature_excludes_select() {
        let mut m = op(OpKind::Mux, 32, &[1, 32, 32]);
        m.inputs[0] = Signal::constant(0, 1);
        let rt = ResourceType::for_op(&m).unwrap();
        assert_eq!(rt.class, ResourceClass::Mux { inputs: 2 });
        assert_eq!(rt.in_widths, vec![32, 32]);
        assert_eq!(rt.name(), "mux2_32x32");
    }

    #[test]
    fn free_ops_have_no_resource() {
        assert!(ResourceType::for_op(&op(OpKind::Const(3), 8, &[])).is_none());
        assert!(ResourceType::for_op(&op(OpKind::Slice { hi: 15, lo: 0 }, 16, &[32])).is_none());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32).name(),
            "mul_32x32"
        );
        assert_eq!(ResourceType::register(32).name(), "ff_32");
        assert_eq!(ResourceType::mux(3, 32).name(), "mux3_32x32x32");
    }

    #[test]
    fn io_ops_map_to_io_class() {
        let read = op(OpKind::Read(hls_ir::PortId::from_raw(0)), 32, &[]);
        let rt = ResourceType::for_op(&read).unwrap();
        assert_eq!(rt.class, ResourceClass::IoPort);
    }

    #[test]
    fn ip_block_class_carries_name() {
        let call = Operation::new(
            OpKind::Call {
                name: "sqrt".into(),
                latency: 3,
            },
            32,
            vec![],
        );
        let rt = ResourceType::for_op(&call).unwrap();
        assert_eq!(rt.class, ResourceClass::IpBlock("sqrt".into()));
        assert!(rt.name().contains("sqrt"));
    }
}
