//! # hls-tech — resource types and technology characterization
//!
//! The scheduler of the paper binds every operation to a *resource*: a
//! functional unit characterized by an operation class and operand/result bit
//! widths, with delay, area and power figures taken from a technology
//! library. This crate provides:
//!
//! * [`ResourceClass`] / [`ResourceType`] — the "operation type + operand and
//!   result widths" abstraction of Section IV.A (e.g. an 8×6-bit adder that
//!   can implement both `A1[7:0]+B1[4:0]` and `A2[5:0]+B2[6:0]`);
//! * [`Characterization`] — delay / area / leakage / switching-energy figures
//!   for one resource type;
//! * [`TechLibrary`] — an analytical 90 nm-like library calibrated so that the
//!   32-bit resources reproduce **Table 1** of the paper
//!   (mul 930 ps, add 350 ps, gt 220 ps, neq 60 ps, ff 40/70 ps,
//!   mux2 110 ps, mux3 115 ps);
//! * [`ClockConstraint`] — the target clock period;
//! * [`ResourceSet`] — a multiset of allocated resource instances that the
//!   scheduler binds operations onto.
//!
//! ## Example
//!
//! ```
//! use hls_tech::{ClockConstraint, TechLibrary, ResourceClass, ResourceType};
//!
//! let lib = TechLibrary::artisan_90nm_typical();
//! let mul32 = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
//! assert_eq!(lib.delay_ps(&mul32).round() as i64, 930);
//! let clk = ClockConstraint::from_period_ps(1600.0);
//! assert!(lib.delay_ps(&mul32) < clk.period_ps());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterization;
pub mod clock;
pub mod intern;
pub mod library;
pub mod resource;
pub mod resource_set;

pub use characterization::Characterization;
pub use clock::ClockConstraint;
pub use intern::{Interner, ResourceClassId, ResourceTypeId};
pub use library::{ImplVariant, TechLibrary};
pub use resource::{ResourceClass, ResourceType};
pub use resource_set::{ResourceInstance, ResourceInstanceId, ResourceSet};
