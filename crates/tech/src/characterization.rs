//! Delay / area / power figures for one resource type.

use serde::{Deserialize, Serialize};

/// The characterization of a resource type in a technology library.
///
/// Values carry the same units the paper uses: delays in picoseconds, area in
/// library area units (the paper's Table 3 reports areas like 16094 for the
/// whole sequential design), leakage in microwatts and switching energy in
/// femtojoules per activation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Worst-case combinational propagation delay, in picoseconds.
    pub delay_ps: f64,
    /// Cell area, in library area units.
    pub area: f64,
    /// Static (leakage) power, in microwatts.
    pub leakage_uw: f64,
    /// Dynamic switching energy per activation, in femtojoules.
    pub energy_fj: f64,
}

impl Characterization {
    /// A zero-cost characterization (used for free / wiring-only resources).
    pub fn zero() -> Self {
        Characterization {
            delay_ps: 0.0,
            area: 0.0,
            leakage_uw: 0.0,
            energy_fj: 0.0,
        }
    }

    /// Returns a copy scaled by per-field factors. Used by the analytical
    /// library to derive width-scaled figures from 32-bit reference cells.
    pub fn scaled(&self, delay: f64, area: f64, power: f64) -> Self {
        Characterization {
            delay_ps: self.delay_ps * delay,
            area: self.area * area,
            leakage_uw: self.leakage_uw * power,
            energy_fj: self.energy_fj * power,
        }
    }

    /// Component-wise sum (e.g. for aggregating a datapath).
    pub fn add(&self, other: &Characterization) -> Self {
        Characterization {
            delay_ps: self.delay_ps + other.delay_ps,
            area: self.area + other.area,
            leakage_uw: self.leakage_uw + other.leakage_uw,
            energy_fj: self.energy_fj + other.energy_fj,
        }
    }
}

impl Default for Characterization {
    fn default() -> Self {
        Characterization::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_all_zero() {
        let z = Characterization::zero();
        assert_eq!(z.delay_ps, 0.0);
        assert_eq!(z.area, 0.0);
        assert_eq!(z.leakage_uw, 0.0);
        assert_eq!(z.energy_fj, 0.0);
    }

    #[test]
    fn scaling_is_per_field() {
        let c = Characterization {
            delay_ps: 100.0,
            area: 50.0,
            leakage_uw: 2.0,
            energy_fj: 10.0,
        };
        let s = c.scaled(2.0, 3.0, 0.5);
        assert_eq!(s.delay_ps, 200.0);
        assert_eq!(s.area, 150.0);
        assert_eq!(s.leakage_uw, 1.0);
        assert_eq!(s.energy_fj, 5.0);
    }

    #[test]
    fn addition_aggregates() {
        let a = Characterization {
            delay_ps: 1.0,
            area: 2.0,
            leakage_uw: 3.0,
            energy_fj: 4.0,
        };
        let b = Characterization {
            delay_ps: 10.0,
            area: 20.0,
            leakage_uw: 30.0,
            energy_fj: 40.0,
        };
        let s = a.add(&b);
        assert_eq!(s.delay_ps, 11.0);
        assert_eq!(s.area, 22.0);
        assert_eq!(s.leakage_uw, 33.0);
        assert_eq!(s.energy_fj, 44.0);
    }
}
