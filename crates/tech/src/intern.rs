//! Interned resource-class and resource-type identifiers.
//!
//! The scheduler and the modulo baseline used to key their hot tables
//! (`ops_per_type`, the modulo reservation table, per-class instance counts)
//! by `String` mnemonics, paying a hash + allocation per lookup. An
//! [`Interner`] maps each distinct [`ResourceClass`] / [`ResourceType`] to a
//! small dense id exactly once; every later lookup is a `Vec` index. Ids are
//! assigned in first-interned order, so any iteration over them is
//! deterministic.

use crate::resource::{ResourceClass, ResourceType};
use std::collections::HashMap;

/// Dense identifier of an interned [`ResourceClass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceClassId(pub u32);

impl ResourceClassId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense identifier of an interned [`ResourceType`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceTypeId(pub u32);

impl ResourceTypeId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns resource classes and types into dense ids.
///
/// One interner is built per scheduling (or modulo-scheduling) run; ids are
/// only meaningful relative to the interner that produced them.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    classes: Vec<ResourceClass>,
    class_ids: HashMap<ResourceClass, ResourceClassId>,
    types: Vec<ResourceType>,
    type_ids: HashMap<ResourceType, ResourceTypeId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a class, returning its dense id (stable across repeat calls).
    pub fn class_id(&mut self, class: &ResourceClass) -> ResourceClassId {
        if let Some(&id) = self.class_ids.get(class) {
            return id;
        }
        let id = ResourceClassId(self.classes.len() as u32);
        self.classes.push(class.clone());
        self.class_ids.insert(class.clone(), id);
        id
    }

    /// Interns a type, returning its dense id (stable across repeat calls).
    pub fn type_id(&mut self, ty: &ResourceType) -> ResourceTypeId {
        if let Some(&id) = self.type_ids.get(ty) {
            return id;
        }
        let id = ResourceTypeId(self.types.len() as u32);
        self.types.push(ty.clone());
        self.type_ids.insert(ty.clone(), id);
        id
    }

    /// The class behind an id.
    ///
    /// # Panics
    /// Panics if the id was produced by a different interner.
    pub fn class(&self, id: ResourceClassId) -> &ResourceClass {
        &self.classes[id.index()]
    }

    /// The type behind an id.
    ///
    /// # Panics
    /// Panics if the id was produced by a different interner.
    pub fn ty(&self, id: ResourceTypeId) -> &ResourceType {
        &self.types[id.index()]
    }

    /// Number of distinct classes interned so far.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of distinct types interned so far.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// The id of an already-interned class, without interning.
    pub fn lookup_class(&self, class: &ResourceClass) -> Option<ResourceClassId> {
        self.class_ids.get(class).copied()
    }

    /// The id of an already-interned type, without interning.
    pub fn lookup_type(&self, ty: &ResourceType) -> Option<ResourceTypeId> {
        self.type_ids.get(ty).copied()
    }

    /// Iterates the interned classes in id order.
    pub fn iter_classes(&self) -> impl Iterator<Item = (ResourceClassId, &ResourceClass)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ResourceClassId(i as u32), c))
    }

    /// Iterates the interned types in id order.
    pub fn iter_types(&self) -> impl Iterator<Item = (ResourceTypeId, &ResourceType)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (ResourceTypeId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ids_are_stable_and_dense() {
        let mut i = Interner::new();
        let mul = i.class_id(&ResourceClass::Multiplier);
        let add = i.class_id(&ResourceClass::Adder);
        assert_eq!(mul, ResourceClassId(0));
        assert_eq!(add, ResourceClassId(1));
        assert_eq!(i.class_id(&ResourceClass::Multiplier), mul);
        assert_eq!(i.num_classes(), 2);
        assert_eq!(i.class(mul), &ResourceClass::Multiplier);
    }

    #[test]
    fn type_ids_distinguish_widths() {
        let mut i = Interner::new();
        let a = i.type_id(&ResourceType::binary(ResourceClass::Adder, 32, 32, 33));
        let b = i.type_id(&ResourceType::binary(ResourceClass::Adder, 16, 16, 17));
        assert_ne!(a, b);
        assert_eq!(i.num_types(), 2);
        assert_eq!(i.ty(a).out_width, 33);
    }

    #[test]
    fn ip_blocks_intern_by_name() {
        let mut i = Interner::new();
        let sqrt = i.class_id(&ResourceClass::IpBlock("sqrt".into()));
        let fft = i.class_id(&ResourceClass::IpBlock("fft".into()));
        assert_ne!(sqrt, fft);
    }
}
