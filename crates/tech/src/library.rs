//! The analytical technology library.
//!
//! The paper characterizes resources with a commercial 90 nm standard-cell
//! library (`artisan_90nm_typical`); its Table 1 lists the fastest
//! implementations used by the running example. This module provides an
//! analytical stand-in: per-class reference cells at 32 bits calibrated to
//! Table 1, scaled over bit width with monotone, physically plausible curves
//! (logarithmic for carry/compare structures, linear/quadratic for array
//! multipliers), and with *fast* vs *small* implementation variants so the
//! downstream area estimator can trade slack for area exactly the way the
//! paper's Figure 10 discussion describes.

use crate::characterization::Characterization;
use crate::resource::{ResourceClass, ResourceType};
use serde::{Deserialize, Serialize};

/// Implementation variant of a resource.
///
/// `Fast` is the timing-optimal implementation (what Table 1 reports);
/// `Small` trades roughly 60 % more delay for roughly 40 % less area, which
/// is how relaxing the clock lets logic synthesis shrink the design.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImplVariant {
    /// Fastest implementation (delay-optimal).
    Fast,
    /// Area-optimized implementation (smaller, slower).
    Small,
}

/// An analytical technology library.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TechLibrary {
    name: String,
    /// Global derating factor on all delays (1.0 = typical corner).
    speed_derate: f64,
    /// Flip-flop clock-to-output delay, ps.
    ff_clk_to_q_ps: f64,
    /// Flip-flop setup time, ps.
    ff_setup_ps: f64,
    /// Clock-to-output delay of an enable (muxed-feedback) register, ps.
    ff_enable_clk_to_q_ps: f64,
    /// Area of one register bit.
    ff_area_per_bit: f64,
}

impl TechLibrary {
    /// The library used throughout the paper's examples, calibrated so the
    /// 32-bit fast cells match Table 1 exactly.
    pub fn artisan_90nm_typical() -> Self {
        TechLibrary {
            name: "artisan_90nm_typical".to_string(),
            speed_derate: 1.0,
            ff_clk_to_q_ps: 40.0,
            ff_setup_ps: 40.0,
            ff_enable_clk_to_q_ps: 70.0,
            ff_area_per_bit: 18.0,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of the library with all combinational delays multiplied
    /// by `factor` (e.g. 1.25 for a slow corner).
    pub fn derated(&self, factor: f64) -> Self {
        let mut lib = self.clone();
        lib.speed_derate = factor;
        lib.name = format!("{}_derated_{factor:.2}", self.name);
        lib
    }

    /// Flip-flop clock-to-Q delay (the "launch" delay of the paper's timing
    /// equation in Section IV.B).
    pub fn register_clk_to_q_ps(&self) -> f64 {
        self.ff_clk_to_q_ps * self.speed_derate
    }

    /// Flip-flop setup time (the "capture" cost of the timing equation).
    pub fn register_setup_ps(&self) -> f64 {
        self.ff_setup_ps * self.speed_derate
    }

    /// Clock-to-Q delay of an enable register (Table 1 reports the register
    /// pair as "40/70": plain and enable-feedback variants).
    pub fn register_enable_clk_to_q_ps(&self) -> f64 {
        self.ff_enable_clk_to_q_ps * self.speed_derate
    }

    /// Area of a register of the given width.
    pub fn register_area(&self, width: u16) -> f64 {
        self.ff_area_per_bit * f64::from(width)
    }

    /// Delay of an `inputs`-way multiplexer of the given data width.
    pub fn mux_delay_ps(&self, inputs: u8, width: u16) -> f64 {
        self.characterize(&ResourceType::mux(inputs, width))
            .delay_ps
    }

    /// Area of an `inputs`-way multiplexer of the given data width.
    pub fn mux_area(&self, inputs: u8, width: u16) -> f64 {
        self.characterize(&ResourceType::mux(inputs, width)).area
    }

    /// Characterization of the *fast* implementation of a resource type.
    pub fn characterize(&self, rt: &ResourceType) -> Characterization {
        self.characterize_variant(rt, ImplVariant::Fast)
    }

    /// Characterization of a specific implementation variant.
    pub fn characterize_variant(
        &self,
        rt: &ResourceType,
        variant: ImplVariant,
    ) -> Characterization {
        let base = self.reference(rt);
        let c = match variant {
            ImplVariant::Fast => base,
            ImplVariant::Small => base.scaled(1.6, 0.62, 0.8),
        };
        Characterization {
            delay_ps: c.delay_ps * self.speed_derate,
            ..c
        }
    }

    /// Worst-case combinational delay of the fast implementation, ps.
    pub fn delay_ps(&self, rt: &ResourceType) -> f64 {
        self.characterize(rt).delay_ps
    }

    /// Area of the fast implementation, in library units.
    pub fn area(&self, rt: &ResourceType) -> f64 {
        self.characterize(rt).area
    }

    /// Switching energy per activation of the fast implementation, fJ.
    pub fn energy_fj(&self, rt: &ResourceType) -> f64 {
        self.characterize(rt).energy_fj
    }

    /// The analytical reference characterization (typical corner, fast cell).
    fn reference(&self, rt: &ResourceType) -> Characterization {
        let w = f64::from(rt.max_width().max(1));
        // Width-scaling helpers. `log_scale(w)` is 1.0 at w = 32 and grows
        // slowly (carry/compare trees); `lin_scale(w)` is linear in width.
        let log_scale = |w: f64| (w.log2() + 1.0) / 6.0;
        let lin_scale = |w: f64| w / 32.0;

        match &rt.class {
            ResourceClass::Adder => Characterization {
                delay_ps: 350.0 * log_scale(w),
                area: 400.0 * lin_scale(w),
                leakage_uw: 0.8 * lin_scale(w),
                energy_fj: 480.0 * lin_scale(w),
            },
            ResourceClass::Multiplier => {
                // Array multiplier: delay roughly linear in operand width,
                // area roughly quadratic in (wa, wb).
                let wa = f64::from(*rt.in_widths.first().unwrap_or(&rt.out_width).max(&1));
                let wb = f64::from(*rt.in_widths.get(1).unwrap_or(&rt.out_width).max(&1));
                Characterization {
                    delay_ps: 930.0 * (0.30 + 0.70 * lin_scale(wa.max(wb))),
                    area: 7200.0 * (wa * wb) / (32.0 * 32.0),
                    leakage_uw: 14.0 * (wa * wb) / (32.0 * 32.0),
                    energy_fj: 8600.0 * (wa * wb) / (32.0 * 32.0),
                }
            }
            ResourceClass::Divider => Characterization {
                delay_ps: 2600.0 * lin_scale(w),
                area: 11000.0 * lin_scale(w) * lin_scale(w),
                leakage_uw: 22.0 * lin_scale(w),
                energy_fj: 12500.0 * lin_scale(w),
            },
            ResourceClass::Shifter => Characterization {
                delay_ps: 260.0 * log_scale(w),
                area: 520.0 * lin_scale(w),
                leakage_uw: 1.0 * lin_scale(w),
                energy_fj: 420.0 * lin_scale(w),
            },
            ResourceClass::Logic => Characterization {
                delay_ps: 90.0,
                area: 64.0 * lin_scale(w),
                leakage_uw: 0.15 * lin_scale(w),
                energy_fj: 60.0 * lin_scale(w),
            },
            ResourceClass::Comparator => Characterization {
                delay_ps: 220.0 * log_scale(w),
                area: 210.0 * lin_scale(w),
                leakage_uw: 0.4 * lin_scale(w),
                energy_fj: 180.0 * lin_scale(w),
            },
            ResourceClass::EqualityComparator => Characterization {
                delay_ps: 60.0 * log_scale(w),
                area: 110.0 * lin_scale(w),
                leakage_uw: 0.2 * lin_scale(w),
                energy_fj: 90.0 * lin_scale(w),
            },
            ResourceClass::Mux { inputs } => {
                let n = f64::from((*inputs).max(2));
                // Table 1: mux2 = 110 ps, mux3 = 115 ps. A tree of 2-input
                // muxes adds ~5 ps per level beyond the first.
                let levels = n.log2().ceil().max(1.0);
                Characterization {
                    delay_ps: 105.0 + 5.0 * levels,
                    area: 6.0 * f64::from(rt.out_width.max(1)) * (n - 1.0),
                    leakage_uw: 0.02 * f64::from(rt.out_width.max(1)) * (n - 1.0),
                    energy_fj: 9.0 * f64::from(rt.out_width.max(1)) * (n - 1.0),
                }
            }
            ResourceClass::Register => Characterization {
                delay_ps: self.ff_clk_to_q_ps + self.ff_setup_ps,
                area: self.ff_area_per_bit * f64::from(rt.out_width.max(1)),
                leakage_uw: 0.05 * f64::from(rt.out_width.max(1)),
                energy_fj: 20.0 * f64::from(rt.out_width.max(1)),
            },
            ResourceClass::IoPort => Characterization::zero(),
            ResourceClass::IpBlock(_) => Characterization {
                delay_ps: 900.0,
                area: 5000.0,
                leakage_uw: 10.0,
                energy_fj: 5000.0,
            },
        }
    }

    /// Formats the paper's **Table 1** (initial set of resources with delays)
    /// for the running example: the fastest 32-bit implementations of
    /// multiplier, adder, comparators, register and sharing multiplexers.
    pub fn table1_rows(&self) -> Vec<(String, f64)> {
        vec![
            (
                "mul".into(),
                self.delay_ps(&ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32)),
            ),
            (
                "add".into(),
                self.delay_ps(&ResourceType::binary(ResourceClass::Adder, 32, 32, 32)),
            ),
            (
                "gt".into(),
                self.delay_ps(&ResourceType::binary(ResourceClass::Comparator, 32, 32, 1)),
            ),
            (
                "neq".into(),
                self.delay_ps(&ResourceType::binary(
                    ResourceClass::EqualityComparator,
                    32,
                    32,
                    1,
                )),
            ),
            ("ff".into(), self.register_clk_to_q_ps()),
            ("ff_en".into(), self.register_enable_clk_to_q_ps()),
            ("mux2".into(), self.mux_delay_ps(2, 32)),
            ("mux3".into(), self.mux_delay_ps(3, 32)),
        ]
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        TechLibrary::artisan_90nm_typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> TechLibrary {
        TechLibrary::artisan_90nm_typical()
    }

    #[test]
    fn table1_calibration_is_exact_at_32_bits() {
        let lib = lib();
        let rows = lib.table1_rows();
        let get = |name: &str| rows.iter().find(|(n, _)| n == name).unwrap().1;
        assert!((get("mul") - 930.0).abs() < 1.0, "mul = {}", get("mul"));
        assert!((get("add") - 350.0).abs() < 1.0, "add = {}", get("add"));
        assert!((get("gt") - 220.0).abs() < 1.0, "gt = {}", get("gt"));
        assert!((get("neq") - 60.0).abs() < 1.0, "neq = {}", get("neq"));
        assert!((get("ff") - 40.0).abs() < 1e-9);
        assert!((get("ff_en") - 70.0).abs() < 1e-9);
        assert!((get("mux2") - 110.0).abs() < 1e-9);
        assert!((get("mux3") - 115.0).abs() < 1e-9);
    }

    #[test]
    fn paper_figure8a_path_delay() {
        // del = ff_launch + mux2 + mul + mux2 + ff_setup = 40+110+930+110+40 = 1230
        let lib = lib();
        let mul = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        let del = lib.register_clk_to_q_ps()
            + lib.mux_delay_ps(2, 32)
            + lib.delay_ps(&mul)
            + lib.mux_delay_ps(2, 32)
            + lib.register_setup_ps();
        assert!((del - 1230.0).abs() < 1.0, "got {del}");
    }

    #[test]
    fn delay_is_monotone_in_width() {
        let lib = lib();
        for class in [
            ResourceClass::Adder,
            ResourceClass::Multiplier,
            ResourceClass::Comparator,
        ] {
            let mut prev = 0.0;
            for w in [4u16, 8, 16, 32, 64] {
                let d = lib.delay_ps(&ResourceType::binary(class.clone(), w, w, w));
                assert!(d >= prev, "{class:?} delay not monotone at width {w}");
                prev = d;
            }
        }
    }

    #[test]
    fn area_is_monotone_in_width() {
        let lib = lib();
        for class in [
            ResourceClass::Adder,
            ResourceClass::Multiplier,
            ResourceClass::EqualityComparator,
        ] {
            let mut prev = 0.0;
            for w in [4u16, 8, 16, 32, 64] {
                let a = lib.area(&ResourceType::binary(class.clone(), w, w, w));
                assert!(a >= prev, "{class:?} area not monotone at width {w}");
                prev = a;
            }
        }
    }

    #[test]
    fn small_variant_trades_delay_for_area() {
        let lib = lib();
        let add = ResourceType::binary(ResourceClass::Adder, 32, 32, 32);
        let fast = lib.characterize_variant(&add, ImplVariant::Fast);
        let small = lib.characterize_variant(&add, ImplVariant::Small);
        assert!(small.delay_ps > fast.delay_ps);
        assert!(small.area < fast.area);
        assert!(small.energy_fj < fast.energy_fj);
    }

    #[test]
    fn derating_scales_delay_only() {
        let lib = lib();
        let slow = lib.derated(1.25);
        let add = ResourceType::binary(ResourceClass::Adder, 32, 32, 32);
        assert!((slow.delay_ps(&add) - 1.25 * lib.delay_ps(&add)).abs() < 1e-9);
        assert!((slow.area(&add) - lib.area(&add)).abs() < 1e-9);
        assert!((slow.register_clk_to_q_ps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn mux_delay_grows_with_inputs() {
        let lib = lib();
        assert!(lib.mux_delay_ps(2, 32) < lib.mux_delay_ps(3, 32));
        assert!(lib.mux_delay_ps(3, 32) <= lib.mux_delay_ps(4, 32));
        assert!(lib.mux_delay_ps(4, 32) < lib.mux_delay_ps(8, 32));
        assert!(lib.mux_area(2, 32) < lib.mux_area(4, 32));
    }

    #[test]
    fn io_ports_are_free() {
        let lib = lib();
        let io = ResourceType {
            class: ResourceClass::IoPort,
            in_widths: vec![32],
            out_width: 32,
        };
        assert_eq!(lib.delay_ps(&io), 0.0);
        assert_eq!(lib.area(&io), 0.0);
    }

    #[test]
    fn register_area_scales_with_width() {
        let lib = lib();
        assert!((lib.register_area(32) - 576.0).abs() < 1e-9);
        assert!((lib.register_area(8) - 144.0).abs() < 1e-9);
    }

    #[test]
    fn narrow_multiplier_is_faster_and_smaller() {
        let lib = lib();
        let m16 = ResourceType::binary(ResourceClass::Multiplier, 16, 16, 16);
        let m32 = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        assert!(lib.delay_ps(&m16) < lib.delay_ps(&m32));
        assert!(
            lib.area(&m16) < lib.area(&m32) / 3.0,
            "area should scale ~quadratically"
        );
    }

    #[test]
    fn default_is_artisan() {
        assert_eq!(TechLibrary::default().name(), "artisan_90nm_typical");
    }
}
