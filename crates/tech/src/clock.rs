//! Clock period constraint.

use serde::{Deserialize, Serialize};

/// The target clock of a synthesis run.
///
/// The paper's examples use `Tclk = 1600 ps` with the `artisan_90nm_typical`
/// library; the experimental section explores clocks up to 2 GHz (500 ps).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClockConstraint {
    period_ps: f64,
    /// Clock uncertainty (jitter/skew margin) subtracted from the usable
    /// period, in picoseconds.
    uncertainty_ps: f64,
}

impl ClockConstraint {
    /// Creates a constraint from a period in picoseconds.
    ///
    /// # Panics
    /// Panics if the period is not strictly positive.
    pub fn from_period_ps(period_ps: f64) -> Self {
        assert!(period_ps > 0.0, "clock period must be positive");
        ClockConstraint {
            period_ps,
            uncertainty_ps: 0.0,
        }
    }

    /// Creates a constraint from a frequency in MHz.
    ///
    /// # Panics
    /// Panics if the frequency is not strictly positive.
    pub fn from_frequency_mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "clock frequency must be positive");
        Self::from_period_ps(1.0e6 / mhz)
    }

    /// Adds a clock uncertainty margin.
    pub fn with_uncertainty_ps(mut self, uncertainty_ps: f64) -> Self {
        self.uncertainty_ps = uncertainty_ps.max(0.0);
        self
    }

    /// The raw clock period in picoseconds.
    pub fn period_ps(&self) -> f64 {
        self.period_ps
    }

    /// The usable period (period minus uncertainty) that combinational paths
    /// must fit in.
    pub fn usable_period_ps(&self) -> f64 {
        (self.period_ps - self.uncertainty_ps).max(0.0)
    }

    /// Clock frequency in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        1.0e6 / self.period_ps
    }

    /// Slack of a path with the given delay: positive means the path fits.
    pub fn slack_ps(&self, path_delay_ps: f64) -> f64 {
        self.usable_period_ps() - path_delay_ps
    }

    /// Whether a path of the given delay meets the constraint.
    pub fn meets(&self, path_delay_ps: f64) -> bool {
        self.slack_ps(path_delay_ps) >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_frequency_roundtrip() {
        let clk = ClockConstraint::from_frequency_mhz(625.0);
        assert!((clk.period_ps() - 1600.0).abs() < 1e-9);
        assert!((clk.frequency_mhz() - 625.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example_slack() {
        // Figure 8(a): path of 1230 ps under a 1600 ps clock → +370 slack.
        let clk = ClockConstraint::from_period_ps(1600.0);
        assert!((clk.slack_ps(1230.0) - 370.0).abs() < 1e-9);
        assert!(clk.meets(1230.0));
        // Figure 8(c): 1800 ps path → -200 ps slack, rejected.
        assert!((clk.slack_ps(1800.0) + 200.0).abs() < 1e-9);
        assert!(!clk.meets(1800.0));
    }

    #[test]
    fn uncertainty_reduces_usable_period() {
        let clk = ClockConstraint::from_period_ps(1000.0).with_uncertainty_ps(100.0);
        assert_eq!(clk.usable_period_ps(), 900.0);
        assert!(clk.meets(900.0));
        assert!(!clk.meets(901.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = ClockConstraint::from_period_ps(0.0);
    }

    #[test]
    fn two_ghz_clock() {
        let clk = ClockConstraint::from_frequency_mhz(2000.0);
        assert!((clk.period_ps() - 500.0).abs() < 1e-9);
    }
}
