//! Allocated resource instances: the multiset of functional units the
//! scheduler binds operations onto.

use crate::library::TechLibrary;
use crate::resource::{ResourceClass, ResourceType};
use hls_ir::Operation;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one allocated resource instance within a [`ResourceSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceInstanceId(pub u32);

impl ResourceInstanceId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceInstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One allocated functional unit.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceInstance {
    /// Identifier within the owning set.
    pub id: ResourceInstanceId,
    /// The type of the unit.
    pub ty: ResourceType,
    /// Instance name (e.g. `mul1`, `mul2` as in the paper's Example 2).
    pub name: String,
}

/// A multiset of allocated resource instances.
///
/// The scheduler starts from the lower-bound set computed per Section IV.A
/// and the relaxation engine may add instances when scheduling fails for lack
/// of resources.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResourceSet {
    instances: Vec<ResourceInstance>,
}

impl ResourceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an instance of the given type, auto-naming it `<type>#<k>`.
    pub fn add(&mut self, ty: ResourceType) -> ResourceInstanceId {
        let id = ResourceInstanceId(self.instances.len() as u32);
        let ordinal = self.count_of_class(&ty.class) + 1;
        let name = format!("{}{}", ty.class.mnemonic(), ordinal);
        self.instances.push(ResourceInstance { id, ty, name });
        id
    }

    /// Adds `count` instances of the given type.
    pub fn add_many(&mut self, ty: ResourceType, count: usize) -> Vec<ResourceInstanceId> {
        (0..count).map(|_| self.add(ty.clone())).collect()
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Access an instance.
    ///
    /// # Panics
    /// Panics if the id does not belong to this set.
    pub fn instance(&self, id: ResourceInstanceId) -> &ResourceInstance {
        &self.instances[id.index()]
    }

    /// Iterator over all instances.
    pub fn iter(&self) -> impl Iterator<Item = &ResourceInstance> {
        self.instances.iter()
    }

    /// Instances whose type can implement the given operation, in allocation
    /// order (the scheduler tries them in this order).
    pub fn compatible_with(&self, op: &Operation) -> Vec<ResourceInstanceId> {
        self.instances
            .iter()
            .filter(|inst| inst.ty.can_implement(op))
            .map(|inst| inst.id)
            .collect()
    }

    /// Number of instances of a given class.
    pub fn count_of_class(&self, class: &ResourceClass) -> usize {
        self.instances
            .iter()
            .filter(|i| &i.ty.class == class)
            .count()
    }

    /// Number of instances of a given exact type.
    pub fn count_of_type(&self, ty: &ResourceType) -> usize {
        self.instances.iter().filter(|i| &i.ty == ty).count()
    }

    /// Histogram of instance counts per type, in deterministic order.
    pub fn histogram(&self) -> BTreeMap<ResourceType, usize> {
        let mut map = BTreeMap::new();
        for inst in &self.instances {
            *map.entry(inst.ty.clone()).or_insert(0) += 1;
        }
        map
    }

    /// Instance counts per interned class, indexed by
    /// [`ResourceClassId`](crate::ResourceClassId); classes are interned into
    /// `interner` on demand, so repeated calls against one interner produce
    /// comparable vectors.
    pub fn class_counts(&self, interner: &mut crate::Interner) -> Vec<usize> {
        let mut counts = vec![0usize; interner.num_classes()];
        for inst in &self.instances {
            let id = interner.class_id(&inst.ty.class);
            if id.index() >= counts.len() {
                counts.resize(id.index() + 1, 0);
            }
            counts[id.index()] += 1;
        }
        counts
    }

    /// Total functional-unit area of the set (excluding sharing muxes and
    /// registers, which the netlist estimator adds separately).
    pub fn functional_area(&self, lib: &TechLibrary) -> f64 {
        self.instances.iter().map(|i| lib.area(&i.ty)).sum()
    }

    /// A one-line summary such as `1×mul_32x32, 1×add_32x32, 1×gt_32x32`.
    pub fn summary(&self) -> String {
        self.histogram()
            .iter()
            .map(|(ty, n)| format!("{n}×{ty}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for ResourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{OpKind, Signal};

    fn mul32() -> ResourceType {
        ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32)
    }
    fn add32() -> ResourceType {
        ResourceType::binary(ResourceClass::Adder, 32, 32, 33)
    }

    #[test]
    fn add_and_count() {
        let mut set = ResourceSet::new();
        set.add(mul32());
        set.add(mul32());
        set.add(add32());
        assert_eq!(set.len(), 3);
        assert_eq!(set.count_of_class(&ResourceClass::Multiplier), 2);
        assert_eq!(set.count_of_type(&mul32()), 2);
        assert_eq!(set.count_of_type(&add32()), 1);
    }

    #[test]
    fn instance_names_follow_paper_convention() {
        let mut set = ResourceSet::new();
        let a = set.add(mul32());
        let b = set.add(mul32());
        assert_eq!(set.instance(a).name, "mul1");
        assert_eq!(set.instance(b).name, "mul2");
    }

    #[test]
    fn compatibility_query() {
        let mut set = ResourceSet::new();
        let m = set.add(mul32());
        set.add(add32());
        let op = Operation::new(
            OpKind::Mul,
            32,
            vec![Signal::constant(0, 16), Signal::constant(0, 32)],
        );
        let compat = set.compatible_with(&op);
        assert_eq!(compat, vec![m]);
        let too_wide = Operation::new(
            OpKind::Mul,
            64,
            vec![Signal::constant(0, 64), Signal::constant(0, 64)],
        );
        assert!(set.compatible_with(&too_wide).is_empty());
    }

    #[test]
    fn functional_area_sums_instances() {
        let lib = TechLibrary::artisan_90nm_typical();
        let mut set = ResourceSet::new();
        set.add(mul32());
        let one = set.functional_area(&lib);
        set.add(mul32());
        let two = set.functional_area(&lib);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn class_counts_index_by_interned_id() {
        let mut set = ResourceSet::new();
        set.add_many(mul32(), 2);
        set.add(add32());
        let mut interner = crate::Interner::new();
        let counts = set.class_counts(&mut interner);
        let mul = interner.lookup_class(&ResourceClass::Multiplier).unwrap();
        let add = interner.lookup_class(&ResourceClass::Adder).unwrap();
        assert_eq!(counts[mul.index()], 2);
        assert_eq!(counts[add.index()], 1);
    }

    #[test]
    fn summary_and_histogram() {
        let mut set = ResourceSet::new();
        set.add_many(mul32(), 2);
        set.add(add32());
        let hist = set.histogram();
        assert_eq!(hist[&mul32()], 2);
        assert_eq!(hist[&add32()], 1);
        let s = set.summary();
        assert!(s.contains("2×mul_32x32"));
        assert!(s.contains("1×add_32x32"));
    }
}
