//! Error type shared by the simulation engines.

use hls_ir::eval::EvalError;
use hls_ir::{IrError, OpId, PortId};
use std::error::Error;
use std::fmt;

/// How to reproduce a failed differential run: the exact
/// [`Stimulus::random`](crate::stimulus::Stimulus::random) arguments the
/// harness used. Attached by the `random_check*` wrappers so a CI failure
/// is replayable from its rendering alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayInfo {
    /// Seed the stimulus was generated from.
    pub seed: u64,
    /// Number of input vectors (iterations) generated.
    pub vectors: usize,
}

impl fmt::Display for ReplayInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay with Stimulus::random(dfg, {}, {:#x})",
            self.vectors, self.seed
        )
    }
}

/// Errors raised by the interpreter, the cycle-accurate simulator or the
/// differential checker.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The loop body failed IR validation.
    InvalidBody(IrError),
    /// An operation could not be evaluated.
    Eval {
        /// The failing operation.
        op: OpId,
        /// The underlying evaluation error.
        source: EvalError,
    },
    /// The design calls a pre-designed IP block; simulating it would require
    /// a model of the block, which this reproduction does not ship.
    UnsupportedCall {
        /// The call operation.
        op: OpId,
        /// The IP block name.
        name: String,
    },
    /// The schedule has no placement for an operation another one depends on.
    Unscheduled {
        /// The unplaced operation.
        op: OpId,
    },
    /// An operation fired before one of its inputs was computed — the
    /// schedule violates a data (or write-predicate) dependence.
    Causality {
        /// The consuming operation.
        op: OpId,
        /// The producing operation whose value was not yet available.
        input: OpId,
        /// Iteration being executed.
        iteration: u32,
        /// Clock cycle at which the consumer fired.
        cycle: u64,
    },
    /// The interpreter and the cycle-accurate simulator disagree.
    Mismatch {
        /// Port on which the writes diverge.
        port: PortId,
        /// Port name, for readable reports.
        port_name: String,
        /// Index of the diverging write in the port's write sequence.
        index: usize,
        /// Iteration the diverging write belongs to.
        iteration: u32,
        /// Value the reference interpreter produced.
        expected: i64,
        /// Value the cycle-accurate simulation produced.
        actual: i64,
        /// Clock cycle of the diverging write in the timed engine, when the
        /// trace recorded one.
        cycle: Option<u64>,
        /// How to regenerate the failing stimulus, when the run came from a
        /// `random_check*` harness.
        replay: Option<ReplayInfo>,
    },
    /// The bound simulation could not steer a shared functional unit: the
    /// operation's turn on the unit cannot be resolved (an operand or
    /// steering condition is itself waiting on the unit, i.e. a
    /// combinational cycle through the shared operator).
    Steering {
        /// The operation waiting for the unit.
        op: OpId,
        /// Clock cycle of the deadlock.
        cycle: u64,
    },
    /// The structural netlist could not be simulated: a combinational
    /// cycle, or a cell that failed to evaluate.
    Netlist {
        /// Index of the offending cell in the netlist.
        cell: u32,
        /// What went wrong.
        reason: String,
    },
    /// The two engines produced a different number of writes on a port.
    WriteCountMismatch {
        /// Port on which the counts diverge.
        port: PortId,
        /// Port name, for readable reports.
        port_name: String,
        /// Number of writes the reference interpreter produced.
        expected: usize,
        /// Number of writes the cycle-accurate simulation produced.
        actual: usize,
        /// How to regenerate the failing stimulus, when the run came from a
        /// `random_check*` harness.
        replay: Option<ReplayInfo>,
    },
}

impl SimError {
    /// Attaches replay information to the divergence variants (other
    /// variants are returned unchanged) — used by the `random_check*`
    /// wrappers, which know the seed the stimulus came from.
    #[must_use]
    pub fn with_replay(mut self, info: ReplayInfo) -> Self {
        match &mut self {
            SimError::Mismatch { replay, .. } | SimError::WriteCountMismatch { replay, .. } => {
                *replay = Some(info);
            }
            _ => {}
        }
        self
    }

    /// Replay information, when the error carries it.
    pub fn replay(&self) -> Option<ReplayInfo> {
        match self {
            SimError::Mismatch { replay, .. } | SimError::WriteCountMismatch { replay, .. } => {
                *replay
            }
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidBody(e) => write!(f, "invalid body: {e}"),
            SimError::Eval { op, source } => write!(f, "evaluating {op}: {source}"),
            SimError::UnsupportedCall { op, name } => {
                write!(f, "{op} calls IP block `{name}`, which has no simulation model")
            }
            SimError::Unscheduled { op } => write!(f, "{op} has no schedule placement"),
            SimError::Causality {
                op,
                input,
                iteration,
                cycle,
            } => write!(
                f,
                "{op} fired at cycle {cycle} (iteration {iteration}) before its input {input} was computed"
            ),
            SimError::Mismatch {
                port_name,
                index,
                iteration,
                expected,
                actual,
                cycle,
                replay,
                ..
            } => {
                write!(
                    f,
                    "write #{index} to `{port_name}` (iteration {iteration}): interpreter says {expected}, schedule simulation says {actual}"
                )?;
                if let Some(cycle) = cycle {
                    write!(f, " at cycle {cycle}")?;
                }
                if let Some(replay) = replay {
                    write!(f, "; {replay}")?;
                }
                Ok(())
            }
            SimError::Steering { op, cycle } => write!(
                f,
                "cannot steer the shared functional unit of {op} at cycle {cycle} (combinational wait cycle)"
            ),
            SimError::Netlist { cell, reason } => {
                write!(f, "netlist cell %{cell}: {reason}")
            }
            SimError::WriteCountMismatch {
                port_name,
                expected,
                actual,
                replay,
                ..
            } => {
                write!(
                    f,
                    "port `{port_name}`: interpreter produced {expected} writes, schedule simulation {actual}"
                )?;
                if let Some(replay) = replay {
                    write!(f, "; {replay}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidBody(e) => Some(e),
            SimError::Eval { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<IrError> for SimError {
    fn from(e: IrError) -> Self {
        SimError::InvalidBody(e)
    }
}
