//! Cycle-accurate execution of a structural netlist ([`NirModule`]).
//!
//! Where [`ScheduleSim`](crate::ScheduleSim) executes the *schedule* and
//! [`BoundSim`](crate::BoundSim) the *binding*, [`NirSim`] executes the
//! lowered hardware itself: the combinational cells settle in topological
//! order every cycle, registers capture on enables, and the controller
//! (FSM counter, stage-valid fill, first-iteration one-hot) advances
//! exactly as the printed Verilog's always-blocks do. Running the same
//! stimulus through this engine and the reference interpreter is what
//! proves a lowering — and every rewrite pass applied after it — correct
//! by execution.

use crate::cycle::{CycleRecord, CycleTrace, TimedWrite};
use crate::error::SimError;
use crate::stimulus::Stimulus;
use hls_ir::eval::{eval_op, BitVal};
use hls_ir::PortId;
use hls_nir::{CellId, CellKind, NirModule};
use std::collections::VecDeque;

/// Cycle-accurate simulator over a structural netlist.
#[derive(Debug)]
pub struct NirSim<'a> {
    m: &'a NirModule,
    /// Combinational evaluation order (registers and sources first).
    order: Vec<CellId>,
}

impl<'a> NirSim<'a> {
    /// Prepares a simulator; fails on combinational cycles.
    ///
    /// # Errors
    /// [`SimError::Netlist`] when the combinational cells cannot be
    /// topologically ordered.
    pub fn new(m: &'a NirModule) -> Result<Self, SimError> {
        let n = m.num_cells();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, cell) in m.iter_cells() {
            if cell.kind.is_seq() {
                continue; // registers sample at the edge, not combinationally
            }
            indeg[id.index()] = cell.inputs.len();
            for &input in &cell.inputs {
                adj[input.index()].push(id.index() as u32);
            }
        }
        let mut queue: VecDeque<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(CellId::from_raw(i));
            for &next in &adj[i as usize] {
                indeg[next as usize] -= 1;
                if indeg[next as usize] == 0 {
                    queue.push_back(next);
                }
            }
        }
        if order.len() != n {
            let cell = (0..n as u32).find(|&i| indeg[i as usize] > 0).unwrap_or(0);
            return Err(SimError::Netlist {
                cell,
                reason: "combinational cycle".into(),
            });
        }
        Ok(NirSim { m, order })
    }

    /// Runs one iteration per stimulus row and collects the write trace.
    ///
    /// # Errors
    /// [`SimError::Netlist`] when a cell fails to evaluate.
    pub fn run(&self, stimulus: &Stimulus) -> Result<CycleTrace, SimError> {
        let m = self.m;
        let n_iters = stimulus.iterations();
        let cpi = u64::from(m.fold_states.max(1));
        let latency = u64::from(m.num_states.max(1));
        let stages = m.stages.max(1) as usize;
        let total = if n_iters == 0 {
            0
        } else {
            (n_iters as u64 - 1) * cpi + latency
        };

        let n = m.num_cells();
        let mut vals = vec![BitVal::zero(1); n];
        let mut regs: Vec<BitVal> = m
            .cells
            .iter()
            .map(|c| match c.kind {
                CellKind::Reg { init } => BitVal::new(init, c.width),
                _ => BitVal::zero(1),
            })
            .collect();
        let mut fsm: u32 = 0;
        let mut stage_valid = vec![false; stages];
        stage_valid[0] = true;
        let mut first_iter = vec![false; stages];
        first_iter[0] = true;

        let mut trace = CycleTrace {
            cycles_per_iteration: cpi as u32,
            cycles: Vec::with_capacity(total as usize),
            writes: Vec::new(),
        };

        for t in 0..total {
            // combinational settle
            for &id in &self.order {
                let cell = m.cell(id);
                let i = |q: usize| vals[cell.inputs[q].index()];
                let v = match &cell.kind {
                    CellKind::Const(v) => BitVal::new(*v, cell.width),
                    CellKind::Input { port, state } => {
                        let k = if t < u64::from(*state) {
                            0
                        } else {
                            (((t - u64::from(*state)) / cpi) as usize)
                                .min(n_iters.saturating_sub(1))
                        };
                        BitVal::new(stimulus.value(k, PortId::from_raw(*port)), cell.width)
                    }
                    CellKind::FsmState => BitVal::from_bits(u64::from(fsm), 8),
                    CellKind::StageValid { stage } => {
                        BitVal::from_bits(u64::from(stage_valid[*stage as usize]), 1)
                    }
                    CellKind::FirstIter { stage } => {
                        BitVal::from_bits(u64::from(first_iter[*stage as usize]), 1)
                    }
                    CellKind::Reg { .. } => regs[id.index()],
                    CellKind::Output { .. } => i(0).resize(cell.width),
                    CellKind::Bin(b) => {
                        eval_op(&b.op_kind(), cell.width, &[i(0), i(1)]).map_err(|e| {
                            SimError::Netlist {
                                cell: id.index() as u32,
                                reason: e.to_string(),
                            }
                        })?
                    }
                    CellKind::Un(u) => eval_op(&u.op_kind(), cell.width, &[i(0)]).map_err(|e| {
                        SimError::Netlist {
                            cell: id.index() as u32,
                            reason: e.to_string(),
                        }
                    })?,
                    CellKind::Mux { .. } => {
                        let chosen = if i(0).is_true() { i(1) } else { i(2) };
                        chosen.resize(cell.width)
                    }
                    CellKind::Slice { hi, lo } => eval_op(
                        &hls_ir::OpKind::Slice { hi: *hi, lo: *lo },
                        cell.width,
                        &[i(0)],
                    )
                    .map_err(|e| SimError::Netlist {
                        cell: id.index() as u32,
                        reason: e.to_string(),
                    })?,
                    CellKind::Resize => i(0).resize(cell.width),
                };
                vals[id.index()] = v;
            }

            // observable writes, in cell-id order within the cycle
            for (id, cell) in m.iter_cells() {
                let CellKind::Output { port, state } = cell.kind else {
                    continue;
                };
                let en = vals[cell.inputs[1].index()].is_true();
                let s = u64::from(state);
                // Every enabled write is recorded, not just writes landing
                // in the cell's scheduled slot: the emitted Verilog gates
                // the port register on the enable alone, so a mis-gated
                // enable must surface here as extra writes rather than be
                // masked by the schedule's timing. (For a correct lowering
                // the enable only fires in the scheduled slot, so the two
                // gatings coincide.)
                if en && t >= s {
                    let k = (t - s) / cpi;
                    if (k as usize) < n_iters {
                        trace.writes.push(TimedWrite {
                            cycle: t,
                            iteration: k as u32,
                            port: PortId::from_raw(port),
                            value: vals[id.index()].as_i64(),
                        });
                    }
                }
            }

            // register captures (simultaneous, like one posedge)
            for (id, cell) in m.iter_cells() {
                if !cell.kind.is_seq() {
                    continue;
                }
                if vals[cell.inputs[1].index()].is_true() {
                    regs[id.index()] = vals[cell.inputs[0].index()].resize(cell.width);
                }
            }

            trace.cycles.push(CycleRecord {
                cycle: t,
                fsm_state: fsm,
                active: Vec::new(),
                fired: Vec::new(),
            });

            // controller advance
            if u64::from(fsm) + 1 >= cpi {
                fsm = 0;
                for g in (1..stages).rev() {
                    stage_valid[g] = stage_valid[g - 1];
                    first_iter[g] = first_iter[g - 1];
                }
                stage_valid[0] = true; // pipeline fill
                first_iter[0] = false; // iteration 0 moves down the pipe
            } else {
                fsm += 1;
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential;
    use crate::interp::Interpreter;
    use hls_bind::{bind, lower, RtlStyle};
    use hls_frontend::designs;
    use hls_ir::{LinearBody, PortDirection};
    use hls_opt::linearize::prepare_innermost_loop;
    use hls_sched::{Scheduler, SchedulerConfig};
    use hls_tech::{ClockConstraint, TechLibrary};

    fn example1() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    fn schedule(body: &LinearBody, config: SchedulerConfig) -> hls_netlist::ScheduleDesc {
        let lib = TechLibrary::artisan_90nm_typical();
        Scheduler::new(body, &lib, config)
            .run()
            .expect("schedulable")
            .desc
    }

    fn clk() -> ClockConstraint {
        ClockConstraint::from_period_ps(1600.0)
    }

    #[test]
    fn netlist_simulation_matches_the_interpreter_across_microarchitectures() {
        let body = example1();
        for config in [
            SchedulerConfig::sequential(clk(), 1, 3),
            SchedulerConfig::pipelined(clk(), 2, 6),
            SchedulerConfig::pipelined(clk(), 1, 6),
        ] {
            let desc = schedule(&body, config);
            let bound = bind(&body, &desc).expect("bindable");
            for style in [RtlStyle::SharedFu, RtlStyle::PerOp] {
                let m = lower(&body, &desc, &bound, style).expect("lowerable");
                hls_nir::validate(&m).expect("valid netlist");
                let report = differential::random_check_nir(&body, &m, 100, 42).expect("bit-exact");
                assert_eq!(report.iterations, 100);
                assert!(report.writes_checked >= 100);
            }
        }
    }

    #[test]
    fn rewritten_netlists_stay_bit_exact() {
        let body = example1();
        let desc = schedule(&body, SchedulerConfig::sequential(clk(), 1, 3));
        let bound = bind(&body, &desc).expect("bindable");
        let mut m = lower(&body, &desc, &bound, RtlStyle::SharedFu).expect("lowerable");
        let report = hls_nir::optimize(&mut m);
        hls_nir::validate(&m).expect("still valid");
        assert!(report.mux_depth_after <= report.mux_depth_before);
        differential::random_check_nir(&body, &m, 100, 7).expect("bit-exact after rewrites");
    }

    #[test]
    fn pipelined_netlist_sustains_the_initiation_interval() {
        let body = example1();
        let desc = schedule(&body, SchedulerConfig::pipelined(clk(), 2, 6));
        let bound = bind(&body, &desc).expect("bindable");
        let m = lower(&body, &desc, &bound, RtlStyle::SharedFu).expect("lowerable");
        let stim = Stimulus::random(&body.dfg, 40, 5);
        let trace = NirSim::new(&m).unwrap().run(&stim).unwrap();
        let pixel = body
            .dfg
            .iter_ports()
            .find(|(_, p)| p.direction == PortDirection::Output)
            .map(|(id, _)| id)
            .unwrap();
        assert!(
            trace.write_intervals(pixel).iter().all(|&d| d == 2),
            "intervals: {:?}",
            trace.write_intervals(pixel)
        );
        let reference = Interpreter::new(&body).unwrap().run(&stim).unwrap();
        assert_eq!(reference.port_writes(pixel), trace.port_writes(pixel));
    }

    #[test]
    fn a_combinational_cycle_is_rejected() {
        use hls_nir::{BinKind, Cell, NirModule};
        let mut m = NirModule::new("cyc");
        let c = m.push(CellKind::Const(1), 8, vec![]);
        let a = m.add_cell(Cell {
            kind: CellKind::Bin(BinKind::Add),
            width: 8,
            inputs: vec![CellId::from_raw(1), c],
            name: None,
        });
        assert_eq!(a.index(), 1);
        let err = NirSim::new(&m).unwrap_err();
        assert!(matches!(err, SimError::Netlist { .. }), "{err}");
    }
}
