//! The reference interpreter: direct, untimed execution of a loop body.
//!
//! Each iteration evaluates every operation once, in topological order, over
//! a per-iteration value store keyed by operation id (the data-flow-graph
//! walking idiom). Loop-carried inputs (`distance > 0`) read the value the
//! producer computed that many iterations earlier; reads that reach before
//! the first iteration yield zero, and the elaborator's *first-iteration
//! anchors* (see [`hls_ir::Operation::is_first_iter_anchor`]) evaluate to 1
//! exactly on iteration 0, which is how the `loopMux` pattern selects the
//! pre-loop value.
//!
//! Predicates gate only externally observable actions (port writes): pure
//! operations are evaluated unconditionally and the multiplexers introduced
//! by predicate conversion select the governing value — the same convention
//! the RTL emitter and the cycle-accurate simulator use, so all three
//! engines are bit-exact against each other.

use crate::error::SimError;
use crate::stimulus::Stimulus;
use hls_ir::eval::{eval_op, BitVal};
use hls_ir::{Cdfg, LinearBody, OpId, OpKind, PortId, Signal};
use std::collections::BTreeMap;

/// One predicate-passing port write, in program order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteEvent {
    /// Iteration the write executed in.
    pub iteration: u32,
    /// Written port.
    pub port: PortId,
    /// Written value (canonical signed reading at the port width).
    pub value: i64,
}

/// The observable behaviour of an interpreted run.
#[derive(Clone, Debug, Default)]
pub struct InterpTrace {
    /// Number of iterations executed.
    pub iterations: u32,
    /// All predicate-passing writes, ordered by iteration, then source
    /// state, then operation id.
    pub writes: Vec<WriteEvent>,
}

impl InterpTrace {
    /// The `(iteration, value)` write sequence of one port.
    pub fn port_writes(&self, port: PortId) -> Vec<(u32, i64)> {
        self.writes
            .iter()
            .filter(|w| w.port == port)
            .map(|w| (w.iteration, w.value))
            .collect()
    }
}

/// Reference interpreter over a [`LinearBody`].
pub struct Interpreter<'a> {
    body: &'a LinearBody,
    order: Vec<OpId>,
    /// Write operations in (source state, id) order — the program order of
    /// observable effects within one iteration.
    write_order: Vec<OpId>,
    /// Every operation referenced by some predicate.
    cond_ops: Vec<OpId>,
}

impl<'a> Interpreter<'a> {
    /// Prepares an interpreter, validating the body and computing the
    /// evaluation order.
    ///
    /// # Errors
    /// [`SimError::InvalidBody`] if the body (or its intra-iteration
    /// dependence graph) is malformed.
    pub fn new(body: &'a LinearBody) -> Result<Self, SimError> {
        body.validate()?;
        let order = body.dfg.topo_order()?;
        let mut write_order: Vec<OpId> = body
            .dfg
            .iter_ops()
            .filter(|(_, op)| matches!(op.kind, OpKind::Write(_)))
            .map(|(id, _)| id)
            .collect();
        write_order.sort_by_key(|&id| (body.source_state.get(&id).copied().unwrap_or(0), id));
        let mut cond_ops: Vec<OpId> = body
            .dfg
            .iter_ops()
            .flat_map(|(_, op)| op.predicate.condition_ops())
            .collect();
        cond_ops.sort();
        cond_ops.dedup();
        Ok(Interpreter {
            body,
            order,
            write_order,
            cond_ops,
        })
    }

    /// Runs one iteration per stimulus row and collects the write trace.
    ///
    /// # Errors
    /// [`SimError::UnsupportedCall`] for IP calls, [`SimError::Eval`] if an
    /// operation cannot be evaluated.
    pub fn run(&self, stimulus: &Stimulus) -> Result<InterpTrace, SimError> {
        let n_ops = self.body.dfg.num_ops();
        let mut history: Vec<Vec<BitVal>> = Vec::with_capacity(stimulus.iterations());
        let mut trace = InterpTrace {
            iterations: stimulus.iterations() as u32,
            writes: Vec::new(),
        };
        for k in 0..stimulus.iterations() {
            let mut vals = vec![BitVal::zero(1); n_ops];
            for &id in &self.order {
                let op = self.body.dfg.op(id);
                let value = match &op.kind {
                    OpKind::Read(p) => BitVal::new(stimulus.value(k, *p), op.width),
                    OpKind::Write(_) => resolve(&op.inputs[0], &vals, &history, k).resize(op.width),
                    OpKind::Call { name, .. } => {
                        return Err(SimError::UnsupportedCall {
                            op: id,
                            name: name.clone(),
                        })
                    }
                    OpKind::Pass if op.inputs.is_empty() => {
                        if op.is_first_iter_anchor() {
                            BitVal::from_bits(u64::from(k == 0), 1)
                        } else {
                            // neutralized dead/CSE ops and live-ins carry no
                            // in-loop value
                            BitVal::zero(op.width)
                        }
                    }
                    kind => {
                        let inputs: Vec<BitVal> = op
                            .inputs
                            .iter()
                            .map(|sig| resolve(sig, &vals, &history, k))
                            .collect();
                        eval_op(kind, op.width, &inputs)
                            .map_err(|source| SimError::Eval { op: id, source })?
                    }
                };
                vals[id.index()] = value;
            }
            // observable effects, in program order, gated by their predicate
            let assignment: BTreeMap<OpId, bool> = self
                .cond_ops
                .iter()
                .map(|&c| (c, vals[c.index()].is_true()))
                .collect();
            for &w in &self.write_order {
                let op = self.body.dfg.op(w);
                if op.predicate.eval(&assignment) {
                    if let OpKind::Write(p) = op.kind {
                        trace.writes.push(WriteEvent {
                            iteration: k as u32,
                            port: p,
                            value: vals[w.index()].as_i64(),
                        });
                    }
                }
            }
            history.push(vals);
        }
        Ok(trace)
    }
}

/// Resolves a signal for iteration `k`: constants are immediates, distance-0
/// references read the current iteration, loop-carried references read the
/// history (zero before the first production). The producer value is resized
/// to the consuming signal's width (sign-extend / truncate).
fn resolve(sig: &Signal, vals: &[BitVal], history: &[Vec<BitVal>], k: usize) -> BitVal {
    match sig.source {
        hls_ir::dfg::SignalSource::Const(v) => BitVal::new(v, sig.width),
        hls_ir::dfg::SignalSource::Op(p) => {
            let d = sig.distance as usize;
            let raw = if d == 0 {
                vals[p.index()]
            } else if k >= d {
                history[k - d][p.index()]
            } else {
                BitVal::zero(sig.width)
            };
            raw.resize(sig.width)
        }
    }
}

/// Executes a **loop-free** CDFG once: every operation is evaluated in
/// topological order with the given input-port values, and the
/// predicate-passing writes are returned in operation order.
///
/// # Errors
/// [`SimError::InvalidBody`] if the CDFG contains loops or loop-carried
/// signals (use [`Interpreter`] on a linearized body instead), plus the same
/// evaluation errors as [`Interpreter::run`].
pub fn interpret_cdfg(
    cdfg: &Cdfg,
    inputs: &BTreeMap<PortId, i64>,
) -> Result<Vec<(PortId, i64)>, SimError> {
    if !cdfg.loops.is_empty()
        || cdfg
            .dfg
            .iter_ops()
            .any(|(_, op)| op.inputs.iter().any(|s| s.distance > 0))
    {
        return Err(SimError::InvalidBody(
            hls_ir::IrError::InconsistentConstraint {
                detail: "interpret_cdfg handles loop-free designs only".to_string(),
            },
        ));
    }
    let body = LinearBody::from_dfg(cdfg.name.clone(), cdfg.dfg.clone());
    let interp = Interpreter::new(&body)?;
    let stim = Stimulus::from_rows(vec![inputs.clone()]);
    let trace = interp.run(&stim)?;
    Ok(trace.writes.iter().map(|w| (w.port, w.value)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{Dfg, PortDirection};

    /// `y = (x * 3) + acc` with `acc += x` carried across iterations.
    fn accumulator_body() -> (LinearBody, PortId, PortId) {
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 16);
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let r = dfg.add_op(OpKind::Read(x), 16, vec![]);
        let acc = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op_w(r, 16), Signal::constant(0, 32)],
        );
        dfg.op_mut(acc).inputs[1] = Signal::carried(acc, 32, 1);
        let m = dfg.add_op(
            OpKind::Mul,
            32,
            vec![Signal::op_w(r, 16), Signal::constant(3, 8)],
        );
        let s = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op_w(m, 32), Signal::op_w(acc, 32)],
        );
        dfg.add_op(OpKind::Write(y), 32, vec![Signal::op_w(s, 32)]);
        (LinearBody::from_dfg("acc", dfg), x, y)
    }

    #[test]
    fn accumulator_matches_hand_computation() {
        let (body, x, y) = accumulator_body();
        let mut stim = Stimulus::constant(&body.dfg, 4, 0);
        for (k, v) in [5i64, -2, 7, 0].into_iter().enumerate() {
            stim.row_mut(k).unwrap().insert(x, v);
        }
        let trace = Interpreter::new(&body).unwrap().run(&stim).unwrap();
        // acc after each iteration: 5, 3, 10, 10 → y = 3x + acc
        assert_eq!(
            trace.port_writes(y),
            vec![(0, 20), (1, -3), (2, 31), (3, 10)]
        );
    }

    #[test]
    fn first_iter_anchor_selects_the_init_value() {
        // loopMux pattern: mux(first_iter, 42, v@-1) with v = mux + 1
        let mut dfg = Dfg::new();
        let y = dfg.add_port("y", PortDirection::Output, 16);
        let anchor = dfg.add_named_op("l_first_iter", OpKind::Pass, 1, vec![]);
        let mux = dfg.add_op(
            OpKind::Mux,
            16,
            vec![
                Signal::op_w(anchor, 1),
                Signal::constant(42, 16),
                Signal::constant(0, 16), // patched below
            ],
        );
        let inc = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(mux, 16), Signal::constant(1, 8)],
        );
        dfg.op_mut(mux).inputs[2] = Signal::carried(inc, 16, 1);
        dfg.add_op(OpKind::Write(y), 16, vec![Signal::op_w(inc, 16)]);
        let body = LinearBody::from_dfg("counter", dfg);
        let stim = Stimulus::constant(&body.dfg, 3, 0);
        let trace = Interpreter::new(&body).unwrap().run(&stim).unwrap();
        assert_eq!(trace.port_writes(y), vec![(0, 43), (1, 44), (2, 45)]);
    }

    #[test]
    fn predicated_writes_are_gated() {
        // write y only when x > 0
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 8);
        let y = dfg.add_port("y", PortDirection::Output, 8);
        let r = dfg.add_op(OpKind::Read(x), 8, vec![]);
        let c = dfg.add_op(
            OpKind::Cmp(hls_ir::CmpKind::Gt),
            1,
            vec![Signal::op_w(r, 8), Signal::constant(0, 8)],
        );
        let w = dfg.add_op(OpKind::Write(y), 8, vec![Signal::op_w(r, 8)]);
        dfg.op_mut(w).predicate = hls_ir::Predicate::Cond(c);
        let body = LinearBody::from_dfg("gated", dfg);
        let mut stim = Stimulus::constant(&body.dfg, 3, 0);
        stim.row_mut(0).unwrap().insert(x, 5);
        stim.row_mut(1).unwrap().insert(x, -5);
        stim.row_mut(2).unwrap().insert(x, 1);
        let trace = Interpreter::new(&body).unwrap().run(&stim).unwrap();
        assert_eq!(trace.port_writes(y), vec![(0, 5), (2, 1)]);
    }

    #[test]
    fn calls_are_rejected() {
        let mut dfg = Dfg::new();
        dfg.add_op(
            OpKind::Call {
                name: "ip".into(),
                latency: 2,
            },
            8,
            vec![],
        );
        let body = LinearBody::from_dfg("call", dfg);
        let stim = Stimulus::constant(&body.dfg, 1, 0);
        let err = Interpreter::new(&body).unwrap().run(&stim).unwrap_err();
        assert!(matches!(err, SimError::UnsupportedCall { .. }));
    }

    #[test]
    fn loop_free_cdfg_single_shot() {
        let mut cdfg = Cdfg::new("combinational");
        let a = cdfg.dfg.add_port("a", PortDirection::Input, 8);
        let y = cdfg.dfg.add_port("y", PortDirection::Output, 8);
        let r = cdfg.dfg.add_op(OpKind::Read(a), 8, vec![]);
        let n = cdfg.dfg.add_op(OpKind::Neg, 8, vec![Signal::op_w(r, 8)]);
        cdfg.dfg
            .add_op(OpKind::Write(y), 8, vec![Signal::op_w(n, 8)]);
        let mut inputs = BTreeMap::new();
        inputs.insert(a, 7);
        assert_eq!(interpret_cdfg(&cdfg, &inputs).unwrap(), vec![(y, -7)]);
    }
}
