//! Cycle-accurate simulation of a scheduled (and possibly pipelined) design.
//!
//! [`ScheduleSim`] steps a [`ScheduleDesc`] clock cycle by clock cycle:
//! iteration `k` is initiated every `cycles_per_iteration()` cycles (the
//! initiation interval for pipelined schedules, the full latency otherwise),
//! and an operation scheduled in control step `s` fires for iteration `k` at
//! cycle `k * cpi + s` — which for pipelined designs overlaps iterations
//! exactly the way the folded FSM with its `stage_valid` shift register does
//! in the emitted RTL.
//!
//! Storage is modelled per *(iteration, operation)*, i.e. with as many
//! register copies as the schedule needs values to survive stage overlap —
//! the allocation [`Datapath::from_schedule`] accounts for. Every input read
//! is checked against the producer's fire time, so a schedule that violates
//! a data dependence or inter-iteration causality fails the run with a
//! [`SimError::Causality`] instead of silently computing garbage.
//!
//! [`Datapath::from_schedule`]: hls_netlist::schedule::Datapath::from_schedule

use crate::error::SimError;
use crate::stimulus::Stimulus;
use hls_ir::eval::{eval_op, BitVal};
use hls_ir::{LinearBody, OpId, OpKind, PortId, Signal};
use hls_netlist::ScheduleDesc;
use std::collections::{BTreeMap, HashMap};

/// One predicate-passing port write with its timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedWrite {
    /// Clock cycle of the write.
    pub cycle: u64,
    /// Iteration the write belongs to.
    pub iteration: u32,
    /// Written port.
    pub port: PortId,
    /// Written value (canonical signed reading at the port width).
    pub value: i64,
}

/// What happened in one clock cycle.
#[derive(Clone, Debug, Default)]
pub struct CycleRecord {
    /// The cycle number.
    pub cycle: u64,
    /// Folded FSM state (the `state` register of the emitted RTL).
    pub fsm_state: u32,
    /// Iterations in flight as `(iteration, pipeline stage)` pairs.
    pub active: Vec<(u32, u32)>,
    /// Operations that fired, as `(iteration, op)` pairs.
    pub fired: Vec<(u32, OpId)>,
}

/// Full per-cycle trace of a simulated run.
#[derive(Clone, Debug, Default)]
pub struct CycleTrace {
    /// Cycles per initiated iteration (II if pipelined, latency otherwise).
    pub cycles_per_iteration: u32,
    /// Per-cycle records, in time order.
    pub cycles: Vec<CycleRecord>,
    /// All predicate-passing writes, in time order.
    pub writes: Vec<TimedWrite>,
}

impl CycleTrace {
    /// The `(iteration, value)` write sequence of one port.
    pub fn port_writes(&self, port: PortId) -> Vec<(u32, i64)> {
        self.writes
            .iter()
            .filter(|w| w.port == port)
            .map(|w| (w.iteration, w.value))
            .collect()
    }

    /// The cycles at which `port` was written.
    pub fn write_cycles(&self, port: PortId) -> Vec<u64> {
        self.writes
            .iter()
            .filter(|w| w.port == port)
            .map(|w| w.cycle)
            .collect()
    }

    /// Steady-state intervals between consecutive writes of `port` —
    /// for a correctly folded pipeline every entry equals the initiation
    /// interval, i.e. the throughput is `1 / II`.
    pub fn write_intervals(&self, port: PortId) -> Vec<u64> {
        self.write_cycles(port)
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect()
    }

    /// Renders the first `max_cycles` cycles as a small table (FSM state,
    /// active iteration/stage pairs, fired operations).
    pub fn render(&self, body: &LinearBody, max_cycles: usize) -> String {
        let mut out = String::from("cycle | state | active (it.stage) | fired\n");
        for rec in self.cycles.iter().take(max_cycles) {
            let active = rec
                .active
                .iter()
                .map(|(k, s)| format!("it{k}.s{s}"))
                .collect::<Vec<_>>()
                .join(" ");
            let fired = rec
                .fired
                .iter()
                .filter(|(_, op)| !body.dfg.op(*op).kind.is_free())
                .map(|(k, op)| format!("{}@it{k}", body.dfg.op(*op).display_name()))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{:>5} | s{:<4} | {:<17} | {}\n",
                rec.cycle,
                rec.fsm_state + 1,
                active,
                fired
            ));
        }
        out
    }
}

/// Cycle-accurate simulator over a body and its schedule.
pub struct ScheduleSim<'a> {
    body: &'a LinearBody,
    desc: &'a ScheduleDesc,
    /// Ops per control step, in topological order (so same-state chaining
    /// evaluates producers first, like the combinational wires in the RTL).
    ops_by_state: Vec<Vec<OpId>>,
}

impl<'a> ScheduleSim<'a> {
    /// Prepares a simulator for `body` under `desc`.
    ///
    /// # Errors
    /// [`SimError::InvalidBody`] if the body fails validation.
    pub fn new(body: &'a LinearBody, desc: &'a ScheduleDesc) -> Result<Self, SimError> {
        body.validate()?;
        let order = body.dfg.topo_order()?;
        let pos: HashMap<OpId, usize> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        let mut ops_by_state: Vec<Vec<OpId>> = vec![Vec::new(); desc.num_states.max(1) as usize];
        for (id, s) in &desc.ops {
            if let Some(slot) = ops_by_state.get_mut(s.state as usize) {
                slot.push(*id);
            }
        }
        for slot in &mut ops_by_state {
            slot.sort_by_key(|id| pos.get(id).copied().unwrap_or(usize::MAX));
        }
        Ok(ScheduleSim {
            body,
            desc,
            ops_by_state,
        })
    }

    /// Runs one iteration per stimulus row and collects the cycle trace.
    ///
    /// # Errors
    /// [`SimError::Causality`] if an operation fires before an input (or a
    /// write's predicate condition) has been computed, plus the evaluation
    /// errors of the interpreter.
    pub fn run(&self, stimulus: &Stimulus) -> Result<CycleTrace, SimError> {
        let n_iters = stimulus.iterations();
        let n_ops = self.body.dfg.num_ops();
        let cpi = u64::from(self.desc.cycles_per_iteration());
        let latency = u64::from(self.desc.num_states.max(1));
        let fold = self.desc.fold_states();
        let total_cycles = if n_iters == 0 {
            0
        } else {
            (n_iters as u64 - 1) * cpi + latency
        };

        let mut values: Vec<Vec<Option<BitVal>>> = vec![vec![None; n_ops]; n_iters];
        let mut trace = CycleTrace {
            cycles_per_iteration: cpi as u32,
            cycles: Vec::with_capacity(total_cycles as usize),
            writes: Vec::new(),
        };

        for t in 0..total_cycles {
            let mut rec = CycleRecord {
                cycle: t,
                fsm_state: (t % u64::from(fold)) as u32,
                active: Vec::new(),
                fired: Vec::new(),
            };
            // iterations in flight at cycle t
            let first = t.saturating_sub(latency - 1).div_ceil(cpi);
            for k in first..=(t / cpi) {
                if k as usize >= n_iters {
                    break;
                }
                let local = (t - k * cpi) as u32;
                if local >= self.desc.num_states.max(1) {
                    continue;
                }
                rec.active.push((k as u32, local / fold));
                for &id in &self.ops_by_state[local as usize] {
                    self.fire(id, k as usize, t, stimulus, &mut values, &mut trace)?;
                    rec.fired.push((k as u32, id));
                }
            }
            trace.cycles.push(rec);
        }
        Ok(trace)
    }

    /// Fires `op` for iteration `k` at cycle `t`.
    fn fire(
        &self,
        id: OpId,
        k: usize,
        t: u64,
        stimulus: &Stimulus,
        values: &mut [Vec<Option<BitVal>>],
        trace: &mut CycleTrace,
    ) -> Result<(), SimError> {
        let op = self.body.dfg.op(id);
        let value = match &op.kind {
            OpKind::Read(p) => BitVal::new(stimulus.value(k, *p), op.width),
            OpKind::Call { name, .. } => {
                return Err(SimError::UnsupportedCall {
                    op: id,
                    name: name.clone(),
                })
            }
            OpKind::Pass if op.inputs.is_empty() => {
                if op.is_first_iter_anchor() {
                    BitVal::from_bits(u64::from(k == 0), 1)
                } else {
                    BitVal::zero(op.width)
                }
            }
            OpKind::Write(p) => {
                let v = self
                    .resolve(&op.inputs[0], id, k, t, values)?
                    .resize(op.width);
                // the predicate gates the observable write; its conditions
                // must have been computed by now
                let mut taken = true;
                if !op.predicate.is_true() {
                    let mut assignment: BTreeMap<OpId, bool> = BTreeMap::new();
                    for c in op.predicate.condition_ops() {
                        let cv = values[k][c.index()].ok_or(SimError::Causality {
                            op: id,
                            input: c,
                            iteration: k as u32,
                            cycle: t,
                        })?;
                        assignment.insert(c, cv.is_true());
                    }
                    taken = op.predicate.eval(&assignment);
                }
                if taken {
                    trace.writes.push(TimedWrite {
                        cycle: t,
                        iteration: k as u32,
                        port: *p,
                        value: v.as_i64(),
                    });
                }
                v
            }
            kind => {
                let mut inputs = Vec::with_capacity(op.inputs.len());
                for sig in &op.inputs {
                    inputs.push(self.resolve(sig, id, k, t, values)?);
                }
                eval_op(kind, op.width, &inputs)
                    .map_err(|source| SimError::Eval { op: id, source })?
            }
        };
        values[k][id.index()] = Some(value);
        Ok(())
    }

    /// Resolves an input signal for the consumer `of` executing iteration
    /// `k` at cycle `t`, checking that the producing operation has already
    /// fired.
    fn resolve(
        &self,
        sig: &Signal,
        of: OpId,
        k: usize,
        t: u64,
        values: &[Vec<Option<BitVal>>],
    ) -> Result<BitVal, SimError> {
        match sig.source {
            hls_ir::dfg::SignalSource::Const(v) => Ok(BitVal::new(v, sig.width)),
            hls_ir::dfg::SignalSource::Op(p) => {
                let d = sig.distance as usize;
                if d > k {
                    // reaches before the first iteration: reads zero, the
                    // same convention as the reference interpreter
                    return Ok(BitVal::zero(sig.width));
                }
                let kk = k - d;
                let raw = values[kk][p.index()].ok_or({
                    if self.desc.ops.contains_key(&p) {
                        SimError::Causality {
                            op: of,
                            input: p,
                            iteration: k as u32,
                            cycle: t,
                        }
                    } else {
                        SimError::Unscheduled { op: p }
                    }
                })?;
                // A loop-carried value travels through a register, which only
                // updates at the end of the producer's cycle: the producing
                // iteration must have fired *strictly before* this cycle.
                // (Lower iterations fire first within a cycle, so the value
                // store alone would hide this violation.)
                if d > 0 && self.desc.fire_cycle(p, kk as u64) == Some(t) {
                    return Err(SimError::Causality {
                        op: of,
                        input: p,
                        iteration: k as u32,
                        cycle: t,
                    });
                }
                Ok(raw.resize(sig.width))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;
    use hls_sched::{Scheduler, SchedulerConfig};
    use hls_tech::{ClockConstraint, TechLibrary};

    fn schedule(body: &LinearBody, config: SchedulerConfig) -> hls_netlist::ScheduleDesc {
        let lib = TechLibrary::artisan_90nm_typical();
        Scheduler::new(body, &lib, config)
            .run()
            .expect("schedulable")
            .desc
    }

    fn example1_body() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    fn clk() -> ClockConstraint {
        ClockConstraint::from_period_ps(1600.0)
    }

    #[test]
    fn sequential_example1_matches_the_interpreter() {
        let body = example1_body();
        let desc = schedule(&body, SchedulerConfig::sequential(clk(), 1, 3));
        let stim = Stimulus::random(&body.dfg, 50, 11);
        let reference = Interpreter::new(&body).unwrap().run(&stim).unwrap();
        let cycle = ScheduleSim::new(&body, &desc).unwrap().run(&stim).unwrap();
        for (id, port) in body.dfg.iter_ports() {
            if port.direction == hls_ir::PortDirection::Output {
                assert_eq!(reference.port_writes(id), cycle.port_writes(id));
            }
        }
        // a 3-state sequential schedule writes once per 3 cycles
        let pixel = body
            .dfg
            .iter_ports()
            .find(|(_, p)| p.direction == hls_ir::PortDirection::Output)
            .map(|(id, _)| id)
            .unwrap();
        assert!(cycle.write_intervals(pixel).iter().all(|&d| d == 3));
    }

    #[test]
    fn pipelined_example1_sustains_the_initiation_interval() {
        let body = example1_body();
        let desc = schedule(&body, SchedulerConfig::pipelined(clk(), 2, 6));
        assert_eq!(desc.ii, Some(2));
        let stim = Stimulus::random(&body.dfg, 40, 5);
        let cycle = ScheduleSim::new(&body, &desc).unwrap().run(&stim).unwrap();
        let pixel = body
            .dfg
            .iter_ports()
            .find(|(_, p)| p.direction == hls_ir::PortDirection::Output)
            .map(|(id, _)| id)
            .unwrap();
        // steady-state throughput is exactly 1/II: one write every 2 cycles
        assert!(
            cycle.write_intervals(pixel).iter().all(|&d| d == 2),
            "intervals: {:?}",
            cycle.write_intervals(pixel)
        );
        let reference = Interpreter::new(&body).unwrap().run(&stim).unwrap();
        assert_eq!(reference.port_writes(pixel), cycle.port_writes(pixel));
    }

    #[test]
    fn trace_reports_pipeline_fill_and_fsm_states() {
        let body = example1_body();
        let desc = schedule(&body, SchedulerConfig::pipelined(clk(), 2, 6));
        let stim = Stimulus::random(&body.dfg, 8, 1);
        let trace = ScheduleSim::new(&body, &desc).unwrap().run(&stim).unwrap();
        // cycle 0: only iteration 0 in flight; once filled, two iterations
        // overlap (LI=3 over II=2 → 2 stages)
        assert_eq!(trace.cycles[0].active, vec![(0, 0)]);
        assert!(trace.cycles.iter().any(|r| r.active.len() == 2));
        // FSM folds to II states
        assert!(trace.cycles.iter().all(|r| r.fsm_state < 2));
        let rendered = trace.render(&body, 6);
        assert!(rendered.contains("cycle"), "{rendered}");
        assert!(rendered.contains("it0"), "{rendered}");
    }

    #[test]
    fn same_cycle_carried_read_is_a_causality_violation() {
        // II=1, LI=2: producer in state 1, a loop-carried (distance-1)
        // consumer in state 0. At cycle t the producing iteration t-1 fires
        // in the same cycle as the consuming iteration t — in hardware the
        // carried value sits in a register that only updates at the end of
        // the cycle, so this schedule must be rejected, not silently
        // resolved combinationally.
        use hls_ir::{Dfg, PortDirection, Signal};
        use hls_netlist::{ScheduleDesc, ScheduledOp};
        use std::collections::BTreeMap;
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 8);
        let y = dfg.add_port("y", PortDirection::Output, 8);
        let r = dfg.add_op(hls_ir::OpKind::Read(x), 8, vec![]);
        let a = dfg.add_op(
            hls_ir::OpKind::Add,
            8,
            vec![Signal::op_w(r, 8), Signal::constant(0, 8)],
        );
        let b = dfg.add_op(
            hls_ir::OpKind::Add,
            8,
            vec![Signal::op_w(a, 8), Signal::constant(1, 8)],
        );
        dfg.op_mut(a).inputs[1] = Signal::carried(b, 8, 1);
        let w = dfg.add_op(hls_ir::OpKind::Write(y), 8, vec![Signal::op_w(b, 8)]);
        let body = LinearBody::from_dfg("carried", dfg);
        let mut ops = BTreeMap::new();
        for (id, state) in [(r, 0), (a, 0), (b, 1), (w, 1)] {
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state,
                    resource: None,
                },
            );
        }
        let desc = ScheduleDesc {
            num_states: 2,
            ii: Some(1),
            ops,
            resources: hls_tech::ResourceSet::new(),
        };
        let stim = Stimulus::random(&body.dfg, 4, 2);
        let err = ScheduleSim::new(&body, &desc).unwrap().run(&stim);
        assert!(
            matches!(err, Err(SimError::Causality { .. })),
            "expected causality violation, got {err:?}"
        );
    }

    #[test]
    fn broken_schedule_is_caught_as_causality_violation() {
        let body = example1_body();
        let mut desc = schedule(&body, SchedulerConfig::sequential(clk(), 1, 3));
        // sabotage: move the port write before the multiplication feeding it
        let write = body
            .dfg
            .iter_ops()
            .find(|(_, op)| matches!(op.kind, OpKind::Write(_)))
            .map(|(id, _)| id)
            .unwrap();
        desc.ops.get_mut(&write).unwrap().state = 0;
        let stim = Stimulus::random(&body.dfg, 4, 9);
        // the write now samples its operand before the producer has fired
        let err = ScheduleSim::new(&body, &desc).unwrap().run(&stim);
        assert!(
            matches!(err, Err(SimError::Causality { .. })),
            "expected causality violation, got {err:?}"
        );
    }
}
