//! Differential verification: the reference interpreter and the
//! cycle-accurate schedule simulator must agree bit-for-bit.
//!
//! The observable behaviour of a design is its sequence of predicate-passing
//! port writes. [`check`] runs the same stimulus through both engines and
//! compares, per output port, the full `(iteration, value)` write sequence.
//! Any disagreement — a wrong value, a missing or spurious write — is a bug
//! in the scheduler, the binder, the pipeliner or the semantics themselves,
//! reported with enough context to reproduce.

use crate::cycle::ScheduleSim;
use crate::error::SimError;
use crate::interp::Interpreter;
use crate::stimulus::Stimulus;
use hls_ir::{LinearBody, PortDirection};
use hls_netlist::ScheduleDesc;
use hls_nir::NirModule;

/// Summary of a passing differential run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Iterations (input vectors) executed.
    pub iterations: u32,
    /// Output ports compared.
    pub ports: usize,
    /// Total writes compared bit-exactly.
    pub writes_checked: usize,
}

/// Runs `stimulus` through the interpreter and the cycle-accurate simulator
/// of `desc` and asserts bit-exact agreement of every output port's write
/// sequence.
///
/// # Errors
/// [`SimError::Mismatch`] / [`SimError::WriteCountMismatch`] on divergence,
/// plus any execution error of the two engines.
pub fn check(
    body: &LinearBody,
    desc: &ScheduleDesc,
    stimulus: &Stimulus,
) -> Result<DifferentialReport, SimError> {
    let timed = ScheduleSim::new(body, desc)?.run(stimulus)?;
    compare(body, stimulus, &timed)
}

/// Runs `stimulus` through the interpreter and the **bound** cycle-accurate
/// simulator — shared functional units computing one steered value per
/// cycle — and asserts bit-exact agreement of every output port's write
/// sequence. Passing this check proves the binding's operand muxes and
/// steering correct by execution: a mis-steered unit would leak a wrong
/// value into an observable write.
///
/// # Errors
/// Same contract as [`check`], plus [`SimError::Steering`] when a shared
/// unit cannot settle combinationally.
pub fn check_bound(
    body: &LinearBody,
    desc: &ScheduleDesc,
    bound: &hls_bind::BoundDesign,
    stimulus: &Stimulus,
) -> Result<DifferentialReport, SimError> {
    let timed = crate::bound::BoundSim::new(body, desc, bound)?.run(stimulus)?;
    compare(body, stimulus, &timed)
}

/// Runs `stimulus` through the interpreter and the **netlist** simulator —
/// the lowered cell-level hardware, controller and register chains included —
/// and asserts bit-exact agreement of every output port's write sequence.
/// This is the deepest check in the flow: it executes the same object the
/// Verilog printer serializes, so passing it proves the lowering (and any
/// rewrite passes applied to the netlist) correct by execution.
///
/// # Errors
/// Same contract as [`check`], plus [`SimError::Netlist`] when the netlist
/// itself cannot be simulated.
pub fn check_nir(
    body: &LinearBody,
    netlist: &NirModule,
    stimulus: &Stimulus,
) -> Result<DifferentialReport, SimError> {
    let timed = crate::nir::NirSim::new(netlist)?.run(stimulus)?;
    compare(body, stimulus, &timed)
}

/// Compares a timed engine's write trace against the reference interpreter.
fn compare(
    body: &LinearBody,
    stimulus: &Stimulus,
    timed: &crate::cycle::CycleTrace,
) -> Result<DifferentialReport, SimError> {
    let reference = Interpreter::new(body)?.run(stimulus)?;
    let mut report = DifferentialReport {
        iterations: stimulus.iterations() as u32,
        ports: 0,
        writes_checked: 0,
    };
    for (port, decl) in body.dfg.iter_ports() {
        if decl.direction != PortDirection::Output {
            continue;
        }
        report.ports += 1;
        let expected = reference.port_writes(port);
        let actual = timed.port_writes(port);
        if expected.len() != actual.len() {
            return Err(SimError::WriteCountMismatch {
                port,
                port_name: decl.name.clone(),
                expected: expected.len(),
                actual: actual.len(),
                replay: None,
            });
        }
        for (i, (e, a)) in expected.iter().zip(actual.iter()).enumerate() {
            if e != a {
                // The first diverging write's clock cycle in the timed
                // engine pins the failure on the waveform.
                let cycle = timed.write_cycles(port).get(i).copied();
                return Err(SimError::Mismatch {
                    port,
                    port_name: decl.name.clone(),
                    index: i,
                    iteration: e.0,
                    expected: e.1,
                    actual: a.1,
                    cycle,
                    replay: None,
                });
            }
            report.writes_checked += 1;
        }
    }
    Ok(report)
}

/// Convenience wrapper: [`check`] with `vectors` random input vectors.
/// Divergence errors carry the [`ReplayInfo`](crate::error::ReplayInfo)
/// needed to regenerate the failing stimulus.
///
/// # Errors
/// See [`check`].
pub fn random_check(
    body: &LinearBody,
    desc: &ScheduleDesc,
    vectors: usize,
    seed: u64,
) -> Result<DifferentialReport, SimError> {
    let stimulus = Stimulus::random(&body.dfg, vectors, seed);
    check(body, desc, &stimulus).map_err(|e| e.with_replay(replay(seed, vectors)))
}

/// Convenience wrapper: [`check_bound`] with `vectors` random input vectors.
/// Divergence errors carry the [`ReplayInfo`](crate::error::ReplayInfo)
/// needed to regenerate the failing stimulus.
///
/// # Errors
/// See [`check_bound`].
pub fn random_check_bound(
    body: &LinearBody,
    desc: &ScheduleDesc,
    bound: &hls_bind::BoundDesign,
    vectors: usize,
    seed: u64,
) -> Result<DifferentialReport, SimError> {
    let stimulus = Stimulus::random(&body.dfg, vectors, seed);
    check_bound(body, desc, bound, &stimulus).map_err(|e| e.with_replay(replay(seed, vectors)))
}

/// Convenience wrapper: [`check_nir`] with `vectors` random input vectors.
/// Divergence errors carry the [`ReplayInfo`](crate::error::ReplayInfo)
/// needed to regenerate the failing stimulus.
///
/// # Errors
/// See [`check_nir`].
pub fn random_check_nir(
    body: &LinearBody,
    netlist: &NirModule,
    vectors: usize,
    seed: u64,
) -> Result<DifferentialReport, SimError> {
    let stimulus = Stimulus::random(&body.dfg, vectors, seed);
    check_nir(body, netlist, &stimulus).map_err(|e| e.with_replay(replay(seed, vectors)))
}

fn replay(seed: u64, vectors: usize) -> crate::error::ReplayInfo {
    crate::error::ReplayInfo { seed, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;
    use hls_sched::{Scheduler, SchedulerConfig};
    use hls_tech::{ClockConstraint, TechLibrary};

    fn example1() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    fn desc(body: &LinearBody, config: SchedulerConfig) -> ScheduleDesc {
        let lib = TechLibrary::artisan_90nm_typical();
        Scheduler::new(body, &lib, config)
            .run()
            .expect("schedulable")
            .desc
    }

    #[test]
    fn example1_differential_passes_for_all_microarchitectures() {
        let body = example1();
        let clk = ClockConstraint::from_period_ps(1600.0);
        for config in [
            SchedulerConfig::sequential(clk, 1, 3),
            SchedulerConfig::pipelined(clk, 2, 6),
            SchedulerConfig::pipelined(clk, 1, 6),
        ] {
            let d = desc(&body, config);
            let report = random_check(&body, &d, 100, 42).expect("bit-exact");
            assert_eq!(report.iterations, 100);
            assert!(report.writes_checked >= 100);
        }
    }

    #[test]
    fn a_corrupted_binding_is_detected() {
        let body = example1();
        let clk = ClockConstraint::from_period_ps(1600.0);
        let mut d = desc(&body, SchedulerConfig::sequential(clk, 1, 3));
        // sabotage: delay the write by one state so it lands in a state the
        // FSM only reaches in the next iteration slot — the write sequence
        // shifts and the differential must notice
        let write = body
            .dfg
            .iter_ops()
            .find(|(_, op)| matches!(op.kind, hls_ir::OpKind::Write(_)))
            .map(|(id, _)| id)
            .unwrap();
        d.ops.get_mut(&write).unwrap().state = 0;
        let err = random_check(&body, &d, 10, 1).unwrap_err();
        assert!(
            matches!(err, SimError::Causality { .. } | SimError::Mismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn divergences_are_replayable() {
        // Corrupt the lowered netlist (flip the low bit of a coefficient
        // constant) and check the random harness pins the failure: the
        // exact stimulus arguments plus the first diverging cycle.
        let body = example1();
        let clk = ClockConstraint::from_period_ps(1600.0);
        let d = desc(&body, SchedulerConfig::sequential(clk, 1, 3));
        let bound = hls_bind::bind(&body, &d).expect("binds");
        let mut m =
            hls_bind::lower(&body, &d, &bound, hls_bind::RtlStyle::SharedFu).expect("lowers");
        let coeff = (0..m.num_cells() as u32)
            .map(hls_nir::CellId::from_raw)
            .find(|&c| {
                m.cell(c).width >= 8 && matches!(m.cell(c).kind, hls_nir::CellKind::Const(_))
            })
            .expect("example1 has coefficient constants");
        if let hls_nir::CellKind::Const(v) = &mut m.cells[coeff.index()].kind {
            *v ^= 1;
        }
        let err = random_check_nir(&body, &m, 10, 0xC0FFEE).unwrap_err();
        let replay = err.replay().expect("divergence carries replay info");
        assert_eq!(replay.seed, 0xC0FFEE);
        assert_eq!(replay.vectors, 10);
        if let SimError::Mismatch { cycle, .. } = &err {
            assert!(cycle.is_some(), "diverging cycle recorded");
        }
        let rendered = err.to_string();
        assert!(rendered.contains("0xc0ffee"), "{rendered}");
        // the replay arguments reproduce the same failure deterministically
        let again = random_check_nir(&body, &m, 10, 0xC0FFEE).unwrap_err();
        assert_eq!(err, again);
    }
}
