//! Input stimulus: one vector of input-port values per loop iteration.

use hls_ir::{BitVal, Dfg, PortDirection, PortId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A sequence of input vectors, one per loop iteration.
///
/// Each vector assigns a value to every input port; the value is held stable
/// for the whole iteration (for a pipelined design: for the `II` cycles of
/// the iteration's slot), which is how a streaming testbench drives the
/// design. Values are stored in the canonical signed reading of the port
/// width; missing entries read as 0.
#[derive(Clone, Debug, Default)]
pub struct Stimulus {
    rows: Vec<BTreeMap<PortId, i64>>,
}

impl Stimulus {
    /// Builds a stimulus from explicit per-iteration rows.
    pub fn from_rows(rows: Vec<BTreeMap<PortId, i64>>) -> Self {
        Stimulus { rows }
    }

    /// A stimulus driving every input port of `dfg` with uniformly random
    /// values for `iterations` iterations. Deterministic in `seed`; roughly
    /// one in six draws is an edge case (0, ±1, width minimum or maximum) so
    /// wrap-around and sign corners are exercised.
    pub fn random(dfg: &Dfg, iterations: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ (iterations as u64).rotate_left(17));
        let inputs: Vec<(PortId, u16)> = dfg
            .iter_ports()
            .filter(|(_, p)| p.direction == PortDirection::Input)
            .map(|(id, p)| (id, p.width))
            .collect();
        let mut rows = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let mut row = BTreeMap::new();
            for &(id, width) in &inputs {
                let v = if rng.gen_bool(1.0 / 6.0) {
                    let w = width.clamp(1, 64);
                    let min = BitVal::from_bits(1u64 << (w - 1).min(63), w).as_i64();
                    let max = BitVal::from_bits((1u64 << (w - 1).min(63)) - 1, w).as_i64();
                    *[0, 1, -1, min, max]
                        .get(rng.gen_range(0usize..5))
                        .unwrap_or(&0)
                } else {
                    BitVal::from_bits(rng.gen::<u64>(), width).as_i64()
                };
                row.insert(id, BitVal::new(v, width).as_i64());
            }
            rows.push(row);
        }
        Stimulus { rows }
    }

    /// A stimulus holding every input port at a constant value.
    pub fn constant(dfg: &Dfg, iterations: usize, value: i64) -> Self {
        let rows = (0..iterations)
            .map(|_| {
                dfg.iter_ports()
                    .filter(|(_, p)| p.direction == PortDirection::Input)
                    .map(|(id, p)| (id, BitVal::new(value, p.width).as_i64()))
                    .collect()
            })
            .collect();
        Stimulus { rows }
    }

    /// Number of iterations the stimulus drives.
    pub fn iterations(&self) -> usize {
        self.rows.len()
    }

    /// Value of `port` in iteration `iteration` (0 when not driven).
    pub fn value(&self, iteration: usize, port: PortId) -> i64 {
        self.rows
            .get(iteration)
            .and_then(|r| r.get(&port).copied())
            .unwrap_or(0)
    }

    /// Mutable access to a row, for hand-crafted stimuli in tests.
    pub fn row_mut(&mut self, iteration: usize) -> Option<&mut BTreeMap<PortId, i64>> {
        self.rows.get_mut(iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::OpKind;

    fn dfg_with_ports() -> (Dfg, PortId, PortId) {
        let mut dfg = Dfg::new();
        let a = dfg.add_port("a", PortDirection::Input, 8);
        let y = dfg.add_port("y", PortDirection::Output, 8);
        dfg.add_op(OpKind::Read(a), 8, vec![]);
        (dfg, a, y)
    }

    #[test]
    fn random_is_deterministic_and_covers_inputs_only() {
        let (dfg, a, y) = dfg_with_ports();
        let s1 = Stimulus::random(&dfg, 32, 7);
        let s2 = Stimulus::random(&dfg, 32, 7);
        assert_eq!(s1.iterations(), 32);
        for k in 0..32 {
            assert_eq!(s1.value(k, a), s2.value(k, a));
            assert_eq!(s1.value(k, y), 0, "outputs are never driven");
        }
        let s3 = Stimulus::random(&dfg, 32, 8);
        assert!(
            (0..32).any(|k| s1.value(k, a) != s3.value(k, a)),
            "different seeds should differ"
        );
    }

    #[test]
    fn values_fit_the_port_width() {
        let (dfg, a, _) = dfg_with_ports();
        let s = Stimulus::random(&dfg, 256, 3);
        for k in 0..256 {
            let v = s.value(k, a);
            assert!((-128..=127).contains(&v), "8-bit canonical value, got {v}");
        }
    }

    #[test]
    fn constant_and_missing_default() {
        let (dfg, a, _) = dfg_with_ports();
        let s = Stimulus::constant(&dfg, 4, -3);
        assert_eq!(s.value(0, a), -3);
        assert_eq!(s.value(99, a), 0, "past the end reads 0");
    }
}
