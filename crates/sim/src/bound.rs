//! Cycle-accurate simulation of a **bound** design: shared functional units
//! compute one value per clock cycle.
//!
//! [`BoundSim`] replays the same schedule as
//! [`ScheduleSim`](crate::cycle::ScheduleSim), but where the per-op
//! simulator gives every operation its own operator, this engine models the
//! datapath the binder (`hls-bind`) describes and the RTL emitter prints:
//! each functional unit evaluates **once** per cycle, over the operands of
//! the operation its input muxes steer onto it, and *every* operation bound
//! to the unit in that cycle captures that single output. An operation that
//! loses the steering (its predicate is false) captures the winner's value —
//! exactly like the hardware — and differential verification then proves
//! that downstream predicate muxes discard it, i.e. that the sharing is
//! functionally correct *by execution*.
//!
//! Steering follows the contract shared with `hls_bind::BoundFu` and the
//! RTL's operand-mux priority chains: candidates of a contended slot are
//! tried in ascending op-id order, the first one whose predicate holds owns
//! the unit, and when none holds the slot's **last** candidate's operands
//! leak through — the RTL gives that candidate a state-only (predicate-free)
//! arm, so both engines capture the same value even then; harmless either
//! way, because only false-predicate operations observe it.
//!
//! Within one cycle, combinational chains may couple operations of
//! *different* in-flight iterations through a shared unit; the engine
//! executes each cycle as a worklist until every firing settles, and reports
//! a [`SimError::Steering`] deadlock if a combinational wait cycle through a
//! shared operator remains — a structure the scheduler's
//! combinational-cycle avoidance is meant to exclude.

use crate::cycle::{CycleRecord, CycleTrace, TimedWrite};
use crate::error::SimError;
use crate::stimulus::Stimulus;
use hls_bind::BoundDesign;
use hls_ir::eval::{eval_op, BitVal};
use hls_ir::{LinearBody, OpId, OpKind, Signal};
use hls_netlist::ScheduleDesc;
use std::collections::{BTreeMap, HashMap};

/// Result of one settle attempt: the value is ready, or the firing must
/// wait for another firing of the same cycle.
enum Attempt<T> {
    Ready(T),
    Wait,
}

use Attempt::{Ready, Wait};

/// Cycle-accurate simulator of a bound design.
pub struct BoundSim<'a> {
    body: &'a LinearBody,
    desc: &'a ScheduleDesc,
    bound: &'a BoundDesign,
    /// Ops per control step, in topological order.
    ops_by_state: Vec<Vec<OpId>>,
}

impl<'a> BoundSim<'a> {
    /// Prepares a simulator for `body` under schedule `desc` and binding
    /// `bound` (produced by `hls_bind::bind` from the same schedule).
    ///
    /// # Errors
    /// [`SimError::InvalidBody`] if the body fails validation.
    pub fn new(
        body: &'a LinearBody,
        desc: &'a ScheduleDesc,
        bound: &'a BoundDesign,
    ) -> Result<Self, SimError> {
        body.validate()?;
        let order = body.dfg.topo_order()?;
        let pos: HashMap<OpId, usize> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        let mut ops_by_state: Vec<Vec<OpId>> = vec![Vec::new(); desc.num_states.max(1) as usize];
        for (id, s) in &desc.ops {
            if let Some(slot) = ops_by_state.get_mut(s.state as usize) {
                slot.push(*id);
            }
        }
        for slot in &mut ops_by_state {
            slot.sort_by_key(|id| pos.get(id).copied().unwrap_or(usize::MAX));
        }
        Ok(BoundSim {
            body,
            desc,
            bound,
            ops_by_state,
        })
    }

    /// Runs one iteration per stimulus row and collects the cycle trace.
    ///
    /// # Errors
    /// [`SimError::Causality`] on dependence violations,
    /// [`SimError::Steering`] on a combinational wait cycle through a shared
    /// unit, plus the evaluation errors of the interpreter.
    pub fn run(&self, stimulus: &Stimulus) -> Result<CycleTrace, SimError> {
        let n_iters = stimulus.iterations();
        let n_ops = self.body.dfg.num_ops();
        let cpi = u64::from(self.desc.cycles_per_iteration());
        let latency = u64::from(self.desc.num_states.max(1));
        let fold = self.desc.fold_states();
        let total_cycles = if n_iters == 0 {
            0
        } else {
            (n_iters as u64 - 1) * cpi + latency
        };

        let mut values: Vec<Vec<Option<BitVal>>> = vec![vec![None; n_ops]; n_iters];
        let mut trace = CycleTrace {
            cycles_per_iteration: cpi as u32,
            cycles: Vec::with_capacity(total_cycles as usize),
            writes: Vec::new(),
        };
        let mut fu_out: Vec<Option<BitVal>> = vec![None; self.bound.fus.len()];

        for t in 0..total_cycles {
            let mut rec = CycleRecord {
                cycle: t,
                fsm_state: (t % u64::from(fold)) as u32,
                active: Vec::new(),
                fired: Vec::new(),
            };
            // firings of this cycle, iteration-major then topological
            let mut firings: Vec<(usize, OpId)> = Vec::new();
            let first = t.saturating_sub(latency - 1).div_ceil(cpi);
            for k in first..=(t / cpi) {
                if k as usize >= n_iters {
                    break;
                }
                let local = (t - k * cpi) as u32;
                if local >= self.desc.num_states.max(1) {
                    continue;
                }
                rec.active.push((k as u32, local / fold));
                for &id in &self.ops_by_state[local as usize] {
                    firings.push((k as usize, id));
                    rec.fired.push((k as u32, id));
                }
            }

            // settle the cycle: shared units force cross-iteration ordering,
            // so sweep until every firing has a value
            fu_out.fill(None);
            let mut done = vec![false; firings.len()];
            let mut remaining = firings.len();
            while remaining > 0 {
                let mut progress = false;
                for idx in 0..firings.len() {
                    if done[idx] {
                        continue;
                    }
                    let (k, id) = firings[idx];
                    match self.try_fire(id, k, t, stimulus, &firings, &mut values, &mut fu_out)? {
                        Ready(value) => {
                            if let Some(w) = value {
                                self.record_write(id, k, t, &values, &mut trace, w)?;
                            }
                            done[idx] = true;
                            remaining -= 1;
                            progress = true;
                        }
                        Wait => {}
                    }
                }
                if !progress {
                    let idx = done.iter().position(|d| !d).expect("remaining > 0");
                    return Err(SimError::Steering {
                        op: firings[idx].1,
                        cycle: t,
                    });
                }
            }
            trace.cycles.push(rec);
        }
        Ok(trace)
    }

    /// Attempts to fire one operation; `Ready(Some(v))` additionally asks
    /// the caller to record a port write of `v`.
    #[allow(clippy::too_many_arguments)]
    fn try_fire(
        &self,
        id: OpId,
        k: usize,
        t: u64,
        stimulus: &Stimulus,
        firings: &[(usize, OpId)],
        values: &mut [Vec<Option<BitVal>>],
        fu_out: &mut [Option<BitVal>],
    ) -> Result<Attempt<Option<BitVal>>, SimError> {
        let op = self.body.dfg.op(id);

        // shared-unit path: the unit computes once per cycle
        if let Some(f) = self.bound.fu_of[id] {
            if fu_out[f.index()].is_none() {
                match self.steer_unit(f.index(), t, firings, values)? {
                    Ready(v) => fu_out[f.index()] = Some(v),
                    Wait => return Ok(Wait),
                }
            }
            let v = fu_out[f.index()]
                .expect("unit settled above")
                .resize(op.width);
            values[k][id.index()] = Some(v);
            return Ok(Ready(None));
        }

        // unbound operations: free ops, I/O, writes
        let value = match &op.kind {
            OpKind::Read(p) => BitVal::new(stimulus.value(k, *p), op.width),
            OpKind::Call { name, .. } => {
                return Err(SimError::UnsupportedCall {
                    op: id,
                    name: name.clone(),
                })
            }
            OpKind::Pass if op.inputs.is_empty() => {
                if op.is_first_iter_anchor() {
                    BitVal::from_bits(u64::from(k == 0), 1)
                } else {
                    BitVal::zero(op.width)
                }
            }
            OpKind::Write(_) => {
                let v = match self.try_resolve(&op.inputs[0], id, k, t, values)? {
                    Ready(v) => v.resize(op.width),
                    Wait => return Ok(Wait),
                };
                if !op.predicate.is_true() && matches!(self.try_predicate(id, k, t, values)?, Wait)
                {
                    return Ok(Wait);
                }
                values[k][id.index()] = Some(v);
                return Ok(Ready(Some(v)));
            }
            kind => {
                let mut inputs = Vec::with_capacity(op.inputs.len());
                for sig in &op.inputs {
                    match self.try_resolve(sig, id, k, t, values)? {
                        Ready(v) => inputs.push(v),
                        Wait => return Ok(Wait),
                    }
                }
                eval_op(kind, op.width, &inputs)
                    .map_err(|source| SimError::Eval { op: id, source })?
            }
        };
        values[k][id.index()] = Some(value);
        Ok(Ready(None))
    }

    /// Resolves which operation owns unit `f` this cycle and computes the
    /// unit's output from the owner's operands.
    fn steer_unit(
        &self,
        f: usize,
        t: u64,
        firings: &[(usize, OpId)],
        values: &[Vec<Option<BitVal>>],
    ) -> Result<Attempt<BitVal>, SimError> {
        let fu = &self.bound.fus[f];
        // candidates: firings steered onto the unit this cycle, in the
        // shared steering-priority order (ascending op id — all candidates
        // of one cycle occupy the same folded slot)
        let mut cands: Vec<(usize, OpId)> = firings
            .iter()
            .copied()
            .filter(|&(_, id)| self.bound.fu_of[id] == Some(fu.instance))
            .collect();
        cands.sort_by_key(|&(_, id)| id);
        let Some(&last) = cands.last() else {
            // no candidate fires: the unit is idle, nothing observes it
            return Ok(Ready(BitVal::zero(1)));
        };
        let mut owner = None;
        if cands.len() == 1 {
            owner = Some(last);
        } else {
            for &(ck, cid) in &cands {
                if self.body.dfg.op(cid).predicate.is_true() {
                    owner = Some((ck, cid));
                    break;
                }
                match self.try_predicate(cid, ck, t, values)? {
                    Ready(true) => {
                        owner = Some((ck, cid));
                        break;
                    }
                    Ready(false) => {}
                    Wait => return Ok(Wait),
                }
            }
        }
        // no predicate holds: the slot's state-only fallback arm leaks the
        // last candidate's operands — observed only by false-predicate
        // captures
        let (ok, oid) = owner.unwrap_or(last);
        let op = self.body.dfg.op(oid);
        if let OpKind::Call { name, .. } = &op.kind {
            return Err(SimError::UnsupportedCall {
                op: oid,
                name: name.clone(),
            });
        }
        let mut inputs = Vec::with_capacity(op.inputs.len());
        for sig in &op.inputs {
            match self.try_resolve(sig, oid, ok, t, values)? {
                Ready(v) => inputs.push(v),
                Wait => return Ok(Wait),
            }
        }
        let v = eval_op(&op.kind, op.width, &inputs)
            .map_err(|source| SimError::Eval { op: oid, source })?;
        Ok(Ready(v))
    }

    /// Resolves an input signal, waiting when the producer fires later in
    /// the same cycle.
    fn try_resolve(
        &self,
        sig: &Signal,
        of: OpId,
        k: usize,
        t: u64,
        values: &[Vec<Option<BitVal>>],
    ) -> Result<Attempt<BitVal>, SimError> {
        match sig.source {
            hls_ir::dfg::SignalSource::Const(v) => Ok(Ready(BitVal::new(v, sig.width))),
            hls_ir::dfg::SignalSource::Op(p) => {
                let d = sig.distance as usize;
                if d > k {
                    return Ok(Ready(BitVal::zero(sig.width)));
                }
                let kk = k - d;
                if let Some(raw) = values[kk][p.index()] {
                    // a carried value travels through a register that only
                    // updates at the end of the producer's cycle
                    if d > 0 && self.desc.fire_cycle(p, kk as u64) == Some(t) {
                        return Err(SimError::Causality {
                            op: of,
                            input: p,
                            iteration: k as u32,
                            cycle: t,
                        });
                    }
                    return Ok(Ready(raw.resize(sig.width)));
                }
                if !self.desc.ops.contains_key(&p) {
                    return Err(SimError::Unscheduled { op: p });
                }
                if d == 0 && self.desc.fire_cycle(p, kk as u64) == Some(t) {
                    return Ok(Wait);
                }
                Err(SimError::Causality {
                    op: of,
                    input: p,
                    iteration: k as u32,
                    cycle: t,
                })
            }
        }
    }

    /// Evaluates an operation's predicate for iteration `k`, waiting on
    /// same-cycle condition values.
    fn try_predicate(
        &self,
        id: OpId,
        k: usize,
        t: u64,
        values: &[Vec<Option<BitVal>>],
    ) -> Result<Attempt<bool>, SimError> {
        let op = self.body.dfg.op(id);
        let mut assignment: BTreeMap<OpId, bool> = BTreeMap::new();
        for c in op.predicate.condition_ops() {
            match values[k][c.index()] {
                Some(v) => {
                    assignment.insert(c, v.is_true());
                }
                None => {
                    if self.desc.fire_cycle(c, k as u64) == Some(t) {
                        return Ok(Wait);
                    }
                    return Err(SimError::Causality {
                        op: id,
                        input: c,
                        iteration: k as u32,
                        cycle: t,
                    });
                }
            }
        }
        Ok(Ready(op.predicate.eval(&assignment)))
    }

    /// Records a predicate-passing write.
    #[allow(clippy::too_many_arguments)]
    fn record_write(
        &self,
        id: OpId,
        k: usize,
        t: u64,
        values: &[Vec<Option<BitVal>>],
        trace: &mut CycleTrace,
        v: BitVal,
    ) -> Result<(), SimError> {
        let op = self.body.dfg.op(id);
        let OpKind::Write(p) = op.kind else {
            return Ok(());
        };
        let taken = if op.predicate.is_true() {
            true
        } else {
            match self.try_predicate(id, k, t, values)? {
                Ready(b) => b,
                Wait => {
                    return Err(SimError::Causality {
                        op: id,
                        input: id,
                        iteration: k as u32,
                        cycle: t,
                    })
                }
            }
        };
        if taken {
            trace.writes.push(TimedWrite {
                cycle: t,
                iteration: k as u32,
                port: p,
                value: v.as_i64(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::{check_bound, random_check_bound};
    use crate::stimulus::Stimulus;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;
    use hls_sched::{Scheduler, SchedulerConfig};
    use hls_tech::{ClockConstraint, TechLibrary};

    fn example1() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    fn desc(body: &LinearBody, config: SchedulerConfig) -> ScheduleDesc {
        let lib = TechLibrary::artisan_90nm_typical();
        Scheduler::new(body, &lib, config)
            .run()
            .expect("schedulable")
            .desc
    }

    #[test]
    fn example1_bound_netlist_is_bit_exact_for_all_microarchitectures() {
        let body = example1();
        let clk = ClockConstraint::from_period_ps(1600.0);
        for config in [
            SchedulerConfig::sequential(clk, 1, 3),
            SchedulerConfig::pipelined(clk, 2, 6),
            SchedulerConfig::pipelined(clk, 1, 6),
        ] {
            let d = desc(&body, config);
            let bound = hls_bind::bind(&body, &d).expect("bindable");
            let report = random_check_bound(&body, &d, &bound, 100, 77).expect("bit-exact");
            assert_eq!(report.iterations, 100);
            assert!(report.writes_checked >= 100);
        }
    }

    #[test]
    fn shared_unit_evaluates_once_per_cycle() {
        // sequential example 1 shares one multiplier across three steps;
        // if steering were broken (every op computing its own value), this
        // would still pass — so additionally check the trace is sane and
        // agreement holds at a weird vector count
        let body = example1();
        let clk = ClockConstraint::from_period_ps(1600.0);
        let d = desc(&body, SchedulerConfig::sequential(clk, 1, 3));
        let bound = hls_bind::bind(&body, &d).expect("bindable");
        assert!(bound.stats.shared_fu_count >= 1);
        let stim = Stimulus::random(&body.dfg, 13, 5);
        let trace = BoundSim::new(&body, &d, &bound)
            .unwrap()
            .run(&stim)
            .unwrap();
        assert_eq!(trace.cycles.len(), 13 * 3);
        check_bound(&body, &d, &bound, &stim).expect("bit-exact");
    }

    #[test]
    fn predicate_contended_slot_steers_to_the_true_branch() {
        // Two mutually exclusive multiplications share one multiplier in the
        // *same* control step; the operand mux select includes the
        // predicate. The loser captures the winner's value — the downstream
        // predicate-conversion mux must discard it, which the differential
        // against the (unshared) interpreter proves on both branch
        // polarities.
        use hls_ir::{Dfg, PortDirection, Predicate, Signal};
        use hls_netlist::ScheduledOp;
        use hls_tech::{ResourceClass, ResourceSet, ResourceType};
        use std::collections::BTreeMap;

        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 16);
        let y = dfg.add_port("y", PortDirection::Output, 16);
        let r = dfg.add_op(OpKind::Read(x), 16, vec![]);
        let c = dfg.add_op(
            OpKind::Cmp(hls_ir::CmpKind::Gt),
            1,
            vec![Signal::op_w(r, 16), Signal::constant(0, 16)],
        );
        let m1 = dfg.add_op(
            OpKind::Mul,
            16,
            vec![Signal::op_w(r, 16), Signal::constant(3, 16)],
        );
        let m2 = dfg.add_op(
            OpKind::Mul,
            16,
            vec![Signal::op_w(r, 16), Signal::constant(5, 16)],
        );
        dfg.op_mut(m1).predicate = Predicate::Cond(c);
        dfg.op_mut(m2).predicate = Predicate::NotCond(c);
        let sel = dfg.add_op(
            OpKind::Mux,
            16,
            vec![
                Signal::op_w(c, 1),
                Signal::op_w(m1, 16),
                Signal::op_w(m2, 16),
            ],
        );
        let w = dfg.add_op(OpKind::Write(y), 16, vec![Signal::op_w(sel, 16)]);
        let body = LinearBody::from_dfg("contended", dfg);

        let mut resources = ResourceSet::new();
        let mul = resources.add(ResourceType::binary(ResourceClass::Multiplier, 16, 16, 16));
        let mux = resources.add(ResourceType::mux(2, 16));
        let mut ops = BTreeMap::new();
        for (id, state, res) in [
            (r, 0, None),
            (c, 0, None),
            (m1, 1, Some(mul)),
            (m2, 1, Some(mul)),
            (sel, 2, Some(mux)),
            (w, 2, None),
        ] {
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state,
                    resource: res,
                },
            );
        }
        let d = ScheduleDesc {
            num_states: 3,
            ii: None,
            ops,
            resources,
        };
        let bound = hls_bind::bind(&body, &d).expect("steerable sharing binds");
        let fu = bound.fu_of(m1).expect("m1 bound");
        assert_eq!(fu.candidates(1).count(), 2, "contended slot");
        // a stimulus covering both polarities of x > 0
        let mut stim = Stimulus::random(&body.dfg, 16, 9);
        stim.row_mut(0).unwrap().insert(x, 7);
        stim.row_mut(1).unwrap().insert(x, -7);
        let report = check_bound(&body, &d, &bound, &stim).expect("bit-exact");
        assert!(report.writes_checked >= 16);
    }

    #[test]
    fn a_mis_bound_operation_is_detected_by_execution() {
        // steer a multiplication onto the *comparator*: the captured value
        // becomes the comparator's output and the write sequence diverges
        let body = example1();
        let clk = ClockConstraint::from_period_ps(1600.0);
        let d = desc(&body, SchedulerConfig::sequential(clk, 1, 3));
        let mut bound = hls_bind::bind(&body, &d).expect("bindable");
        let mul = body
            .dfg
            .iter_ops()
            .find(|(_, op)| matches!(op.kind, OpKind::Mul))
            .map(|(id, _)| id)
            .unwrap();
        let wrong = bound
            .fus
            .iter()
            .find(|f| !f.ops.is_empty() && Some(f.instance) != bound.fu_of[mul])
            .map(|f| f.instance)
            .expect("another used unit exists");
        bound.fu_of[mul] = Some(wrong);
        let err = random_check_bound(&body, &d, &bound, 10, 3).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Mismatch { .. } | SimError::WriteCountMismatch { .. }
            ),
            "{err}"
        );
    }
}
