//! # hls-sim — executable semantics and differential verification
//!
//! Everything else in the workspace checks designs *structurally* (latencies,
//! resource counts, emitted text); this crate checks them by **executing**
//! them, with two independent engines that must agree bit-for-bit:
//!
//! * [`Interpreter`] — the reference semantics: each iteration evaluates the
//!   predicated data flow graph of a [`LinearBody`](hls_ir::LinearBody)
//!   directly, in topological order, over a value store keyed by operation id. Untimed, schedule-free,
//!   and therefore trustworthy as a specification. Width/signedness rules
//!   come from [`hls_ir::eval`], which also pins down div-by-zero,
//!   shift-overflow, slice and resize corner cases.
//! * [`ScheduleSim`] — the implementation semantics: steps a scheduled
//!   design cycle by cycle (FSM state, firing per control step, pipelined
//!   iteration overlap at the initiation interval), produces per-cycle
//!   traces, and fails loudly when the schedule violates a dependence.
//!
//! [`differential::check`] runs the same input vectors through both and
//! compares every output port's write sequence, turning every scheduler,
//! binder or pipeliner change into a differentially-verified change. The
//! `hls` facade exposes this as `Synthesizer::verify(n)`, and `hls-explore`
//! can validate every Pareto point it emits.
//!
//! ```
//! use hls_frontend::designs;
//! use hls_opt::linearize::prepare_innermost_loop;
//! use hls_sched::{Scheduler, SchedulerConfig};
//! use hls_sim::{differential, Stimulus};
//! use hls_tech::{ClockConstraint, TechLibrary};
//!
//! let mut cdfg = designs::paper_example1_cdfg()?;
//! let body = prepare_innermost_loop(&mut cdfg)?;
//! let lib = TechLibrary::artisan_90nm_typical();
//! let config = SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), 2, 6);
//! let schedule = Scheduler::new(&body, &lib, config).run()?;
//! let report = differential::random_check(&body, &schedule.desc, 100, 7)?;
//! assert!(report.writes_checked >= 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod cycle;
pub mod differential;
pub mod error;
pub mod interp;
pub mod nir;
pub mod stimulus;

pub use bound::BoundSim;
pub use cycle::{CycleRecord, CycleTrace, ScheduleSim, TimedWrite};
pub use differential::{
    check, check_bound, check_nir, random_check, random_check_bound, random_check_nir,
    DifferentialReport,
};
pub use error::{ReplayInfo, SimError};
pub use interp::{interpret_cdfg, InterpTrace, Interpreter, WriteEvent};
pub use nir::NirSim;
pub use stimulus::Stimulus;

// re-exported so callers can speak the value type without naming hls-ir
pub use hls_ir::eval::BitVal;
