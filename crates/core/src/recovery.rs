//! Graceful degradation: the recovery policy and the escalation ladder the
//! [`Synthesizer`](crate::Synthesizer) walks when a run fails recoverably.
//!
//! By default recovery is [disabled](RecoveryPolicy::disabled): the flow
//! fails fast on the first error, exactly as it always has. Opting in via
//! [`Synthesizer::recover`](crate::Synthesizer::recover) arms a bounded
//! retry loop that reacts to two — and only two — failure families:
//!
//! * **Scheduling failures** (`Overconstrained` / `BudgetExhausted` /
//!   `InfeasibleIi`): the latency bound is relaxed once by
//!   [`RecoveryPolicy::latency_headroom`] extra states; a slack-driven
//!   over-constraint (an operation that cannot meet the clock at any
//!   latency) then stretches the *scheduling* clock by exactly the reported
//!   worst negative slack ([`RecoveryPolicy::allow_clock_stretch`]) while
//!   timing signoff keeps the requested clock, so the resulting setup
//!   violations stay visible in the report; and a pipelined request backs
//!   off its initiation interval — one cycle per attempt, or straight to
//!   the recurrence-imposed minimum when the scheduler names it
//!   ([`RecoveryPolicy::allow_ii_fallback`]).
//! * **Timing-only lint denies** (`setup-violation` /
//!   `rewrite-round-limit` findings, nothing else at deny level): the
//!   timing-driven rewrite loop is re-run once with
//!   [`RecoveryPolicy::extra_timed_rounds`] extra rounds, and if the clock
//!   still cannot be met the run is *accepted degraded*
//!   ([`RecoveryPolicy::allow_degraded`]): it returns `Ok` with the deny
//!   findings kept in the report and
//!   [`SynthesisResult::degraded`](crate::SynthesisResult::degraded) set.
//!
//! Everything else — structural lint denies, validation, binding, lowering,
//! folding or differential-verification failures — is never recovered from:
//! those indicate broken hardware, and hiding them behind a retry would be
//! the opposite of robustness. Every step taken is recorded as a
//! [`RecoveryStep`] in
//! [`SynthesisResult::recovery`](crate::SynthesisResult::recovery), and a
//! ladder that runs out of rungs fails with
//! [`SynthesisError::RecoveryExhausted`](crate::SynthesisError::RecoveryExhausted)
//! carrying the full trace.

use std::fmt;

/// Bounds and switches of the escalation ladder. Construct via
/// [`disabled`](RecoveryPolicy::disabled) (the default) or
/// [`standard`](RecoveryPolicy::standard) and adjust fields as needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Total recovery steps allowed before the run fails with
    /// `RecoveryExhausted`. 0 disables recovery entirely.
    pub max_retries: u32,
    /// Extra rounds granted to the timing-driven rewrite loop when a
    /// timing-only deny triggers [`RecoveryAction::ExtraTimedRounds`]
    /// (on top of the default `hls_lint::MAX_ROUNDS` budget). 0 skips
    /// this rung.
    pub extra_timed_rounds: usize,
    /// Extra schedule states granted when a scheduling failure triggers
    /// [`RecoveryAction::RelaxLatency`] (applied once). 0 skips this rung.
    pub latency_headroom: u32,
    /// Whether a pipelined run may back off its initiation interval by one
    /// cycle per attempt when the latency relaxation was not enough.
    pub allow_ii_fallback: bool,
    /// Whether a slack-driven over-constraint (an operation that cannot
    /// meet the clock at any latency) may stretch the *scheduling* clock by
    /// the reported worst negative slack
    /// ([`RecoveryAction::StretchClock`]). Timing signoff — the timed
    /// rewrite loop and the lint/STA gate — keeps the originally requested
    /// clock, so the stretch trades a hard failure for a result with
    /// honest, visible setup violations (which still need
    /// [`allow_degraded`](RecoveryPolicy::allow_degraded) to be accepted).
    pub allow_clock_stretch: bool,
    /// Whether a run whose only deny-level findings are timing-level may be
    /// returned `Ok` with [`SynthesisResult::degraded`]
    /// (crate::SynthesisResult::degraded) set instead of failing.
    pub allow_degraded: bool,
}

impl RecoveryPolicy {
    /// No recovery: fail fast on the first error (the default).
    pub fn disabled() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            extra_timed_rounds: 0,
            latency_headroom: 0,
            allow_ii_fallback: false,
            allow_clock_stretch: false,
            allow_degraded: false,
        }
    }

    /// The full ladder: up to 4 recovery steps, one extra `MAX_ROUNDS`-sized
    /// rewrite budget, 8 states of latency headroom, II fallback, clock
    /// stretching and degraded acceptance all armed.
    pub fn standard() -> Self {
        RecoveryPolicy {
            max_retries: 4,
            extra_timed_rounds: hls_lint::MAX_ROUNDS,
            latency_headroom: 8,
            allow_ii_fallback: true,
            allow_clock_stretch: true,
            allow_degraded: true,
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::disabled()
    }
}

/// One rung of the escalation ladder.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoveryAction {
    /// Re-run the timing-driven rewrite loop with a larger round budget.
    ExtraTimedRounds {
        /// The new total round budget.
        rounds: usize,
    },
    /// Raise the scheduler's latency bound.
    RelaxLatency {
        /// The bound that failed.
        from: u32,
        /// The relaxed bound.
        to: u32,
    },
    /// Back off a pipelined run's initiation interval.
    RelaxIi {
        /// The II that failed.
        from: u32,
        /// The relaxed II.
        to: u32,
    },
    /// Stretch the clock the *scheduler* works against by the worst
    /// reported negative slack, so the design becomes schedulable. Timing
    /// signoff (timed rewrites, lint/STA) keeps the originally requested
    /// clock: the stretch produces a real netlist with honestly reported
    /// setup violations instead of no netlist at all.
    StretchClock {
        /// The scheduling clock that failed, picoseconds.
        from_ps: f64,
        /// The stretched scheduling clock, picoseconds.
        to_ps: f64,
    },
    /// Stop fighting: return the result with its timing-level deny findings
    /// kept in the report and `degraded` set.
    AcceptDegraded,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::ExtraTimedRounds { rounds } => {
                write!(f, "re-run timed rewrites with a {rounds}-round budget")
            }
            RecoveryAction::RelaxLatency { from, to } => {
                write!(f, "relax latency bound {from} -> {to}")
            }
            RecoveryAction::RelaxIi { from, to } => {
                write!(f, "relax initiation interval {from} -> {to}")
            }
            RecoveryAction::StretchClock { from_ps, to_ps } => {
                write!(
                    f,
                    "stretch scheduling clock {from_ps:.0} ps -> {to_ps:.0} ps \
                     (signoff keeps the requested clock)"
                )
            }
            RecoveryAction::AcceptDegraded => f.write_str("accept degraded result"),
        }
    }
}

/// One recorded step of the recovery trace: which attempt failed, how, and
/// what the ladder did about it.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryStep {
    /// 1-based attempt number that failed.
    pub attempt: u32,
    /// Rendering of the error that triggered the step.
    pub trigger: String,
    /// The action taken before the next attempt.
    pub action: RecoveryAction,
}

impl fmt::Display for RecoveryStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attempt {}: {} => {}",
            self.attempt, self.trigger, self.action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_policy_is_fail_fast() {
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::disabled());
        assert_eq!(RecoveryPolicy::disabled().max_retries, 0);
        let standard = RecoveryPolicy::standard();
        assert!(standard.max_retries > 0);
        assert!(standard.allow_degraded);
    }

    #[test]
    fn steps_render_attempt_trigger_and_action() {
        let step = RecoveryStep {
            attempt: 2,
            trigger: "scheduler: over-constrained".into(),
            action: RecoveryAction::RelaxIi { from: 2, to: 3 },
        };
        let text = step.to_string();
        assert!(text.contains("attempt 2"), "{text}");
        assert!(text.contains("over-constrained"), "{text}");
        assert!(text.contains("2 -> 3"), "{text}");
    }
}
