//! # hls — realistic performance-constrained pipelining in high-level synthesis
//!
//! Facade crate of the `rpp-hls` workspace, a from-scratch Rust reproduction
//! of *Kondratyev, Lavagno, Meyer, Watanabe, "Realistic
//! Performance-constrained Pipelining in High-level Synthesis", DATE 2011*.
//!
//! The [`Synthesizer`] type drives the full flow of the paper's Figure 2:
//! behavioural input → elaboration → optimization (including predicate
//! conversion) → simultaneous scheduling and binding (sequential or
//! pipelined) → folding → area/power estimation → RTL.
//!
//! ```
//! use hls::{Synthesizer, designs};
//!
//! // The paper's Figure 1 example, pipelined with II = 2 at a 1600 ps clock.
//! let result = Synthesizer::new(designs::paper_example1())
//!     .clock_ps(1600.0)
//!     .latency_bounds(1, 6)
//!     .pipeline(2)
//!     .run()?;
//! assert_eq!(result.schedule.cycles_per_iteration(), 2);
//! assert!(result.area > 0.0);
//! # Ok::<(), hls::SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hls_bind as bind;
pub use hls_explore as explore;
pub use hls_fault as fault;
pub use hls_frontend as frontend;
pub use hls_frontend::designs;
pub use hls_ir as ir;
pub use hls_lint as lint;
pub use hls_netlist as netlist;
pub use hls_nir as nir;
pub use hls_opt as opt;
pub use hls_pipeline as pipeline;
pub use hls_sched as sched;
pub use hls_sim as sim;
pub use hls_tech as tech;

mod recovery;

pub use recovery::{RecoveryAction, RecoveryPolicy, RecoveryStep};

use hls_bind::RtlStyle;
use hls_frontend::{elaborate, Behavior};
use hls_ir::LinearBody;
use hls_lint::{Diagnostic, Lint, LintConfig, LintContext, LintReport, Severity};
use hls_netlist::{emit_verilog, Datapath};
use hls_nir::{NirModule, RewriteReport};
use hls_opt::linearize::{linearize_loop, prepare_innermost_loop};
use hls_pipeline::{fold_schedule, FoldedPipeline};
use hls_sched::{Schedule, Scheduler, SchedulerConfig};
use hls_tech::{ClockConstraint, TechLibrary};
use std::error::Error;
use std::fmt;

/// Error type of the end-to-end synthesis flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum SynthesisError {
    /// The behavioural front-end failed.
    Frontend(hls_frontend::FrontendError),
    /// The optimizer or linearization failed.
    Optimizer(hls_opt::OptError),
    /// Scheduling failed (over-constrained specification).
    Scheduling(hls_sched::SchedError),
    /// Pipeline folding failed.
    Folding(hls_pipeline::FoldError),
    /// Binding failed: the schedule cannot be realized as steered shared
    /// hardware.
    Binding(hls_bind::BindError),
    /// Lowering the bound design to the structural netlist failed.
    Lowering(hls_bind::LowerError),
    /// The lowered (or rewritten) netlist failed structural validation.
    Netlist(hls_nir::NirError),
    /// Differential verification failed: the cycle-accurate simulation of
    /// the schedule (per-op, bound or netlist-level) disagrees with the
    /// reference interpreter.
    Verification(hls_sim::SimError),
    /// The netlist analyzer found deny-level diagnostics (structural lints
    /// or setup violations, depending on the configured severities). The
    /// full report — including the timing summary — is carried along.
    Lint(Box<LintReport>),
    /// The recovery ladder ([`Synthesizer::recover`]) ran out of rungs: the
    /// trace records every action that was tried, and `last` is the error
    /// the final attempt failed with (also reachable through
    /// [`Error::source`]).
    RecoveryExhausted {
        /// Synthesis attempts made (1 + recovery steps taken).
        attempts: u32,
        /// Every rung of the ladder that was walked, in order.
        trace: Vec<RecoveryStep>,
        /// The error of the final attempt.
        last: Box<SynthesisError>,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Frontend(e) => write!(f, "front-end: {e}"),
            SynthesisError::Optimizer(e) => write!(f, "optimizer: {e}"),
            SynthesisError::Scheduling(e) => write!(f, "scheduler: {e}"),
            SynthesisError::Folding(e) => write!(f, "pipeline folding: {e}"),
            SynthesisError::Binding(e) => write!(f, "binder: {e}"),
            SynthesisError::Lowering(e) => write!(f, "netlist lowering: {e}"),
            SynthesisError::Netlist(e) => write!(f, "netlist validation: {e}"),
            SynthesisError::Verification(e) => write!(f, "differential verification: {e}"),
            SynthesisError::Lint(report) => {
                let first = report
                    .diagnostics
                    .iter()
                    .find(|d| d.severity == hls_lint::Severity::Deny)
                    .map(|d| format!("{}: {}", d.lint, d.message))
                    .unwrap_or_default();
                write!(
                    f,
                    "netlist analysis: {} deny-level finding(s); first: {first}",
                    report.deny_count()
                )
            }
            SynthesisError::RecoveryExhausted {
                attempts,
                trace,
                last,
            } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} attempt(s): {last}; trace:"
                )?;
                for step in trace {
                    write!(f, " [{step}]")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Frontend(e) => Some(e),
            SynthesisError::Optimizer(e) => Some(e),
            SynthesisError::Scheduling(e) => Some(e),
            SynthesisError::Folding(e) => Some(e),
            SynthesisError::Binding(e) => Some(e),
            SynthesisError::Lowering(e) => Some(e),
            SynthesisError::Netlist(e) => Some(e),
            SynthesisError::Verification(e) => Some(e),
            // the report is data, not an error type
            SynthesisError::Lint(_) => None,
            SynthesisError::RecoveryExhausted { last, .. } => Some(last.as_ref()),
        }
    }
}

impl From<hls_frontend::FrontendError> for SynthesisError {
    fn from(e: hls_frontend::FrontendError) -> Self {
        SynthesisError::Frontend(e)
    }
}
impl From<hls_opt::OptError> for SynthesisError {
    fn from(e: hls_opt::OptError) -> Self {
        SynthesisError::Optimizer(e)
    }
}
impl From<hls_sched::SchedError> for SynthesisError {
    fn from(e: hls_sched::SchedError) -> Self {
        SynthesisError::Scheduling(e)
    }
}
impl From<hls_pipeline::FoldError> for SynthesisError {
    fn from(e: hls_pipeline::FoldError) -> Self {
        SynthesisError::Folding(e)
    }
}
impl From<hls_sim::SimError> for SynthesisError {
    fn from(e: hls_sim::SimError) -> Self {
        SynthesisError::Verification(e)
    }
}
impl From<hls_bind::BindError> for SynthesisError {
    fn from(e: hls_bind::BindError) -> Self {
        SynthesisError::Binding(e)
    }
}
impl From<hls_bind::LowerError> for SynthesisError {
    fn from(e: hls_bind::LowerError) -> Self {
        SynthesisError::Lowering(e)
    }
}
impl From<hls_nir::NirError> for SynthesisError {
    fn from(e: hls_nir::NirError) -> Self {
        SynthesisError::Netlist(e)
    }
}

/// The result of one synthesis run.
#[derive(Debug)]
pub struct SynthesisResult {
    /// The linearized loop body that was scheduled.
    pub body: LinearBody,
    /// The schedule (states, bindings, resources, relaxation history).
    pub schedule: Schedule,
    /// The folded pipeline, when a pipelining request was given.
    pub pipeline: Option<FoldedPipeline>,
    /// The bound design: shared functional units, registers and input muxes
    /// over interned resource ids. The RTL below is emitted from exactly
    /// this sharing structure.
    pub binding: hls_bind::BoundDesign,
    /// The structural netlist the RTL is printed from: the bound design
    /// lowered to cells (muxes, registers, arithmetic, controller bits),
    /// validated and rewritten. This is the hardware object — `rtl` is just
    /// its serialization.
    pub netlist: NirModule,
    /// What the netlist rewrite pipeline did (normalization, steering-chain
    /// rebalancing, dead-cell sweep, mux-depth before/after).
    pub netlist_rewrites: RewriteReport,
    /// What the timing-driven rewrite loop did: operator-chain rebalancing,
    /// shift strength reduction and register retiming over the failing
    /// cones, with the timing summaries before and after. `rounds == 0`
    /// (and `before == after`) when the rewritten netlist already met the
    /// clock — the netlist is then untouched by this stage.
    pub timed_rewrites: hls_lint::TimedRewriteReport,
    /// Estimated total area in library units.
    pub area: f64,
    /// Estimated total power in microwatts.
    pub power_uw: f64,
    /// Generated RTL text.
    pub rtl: String,
    /// The netlist analyzer's report: structural lints plus the static
    /// timing summary (worst slack, critical path) of the emitted netlist.
    /// Runs that return `Ok` never carry deny-level findings.
    pub lint: LintReport,
    /// Differential-verification summary, when [`Synthesizer::verify`] was
    /// requested: the schedule was executed cycle-accurately against the
    /// reference interpreter on random input vectors and agreed bit-exactly.
    pub verification: Option<hls_sim::DifferentialReport>,
    /// Every rung of the recovery ladder that was walked to reach this
    /// result ([`Synthesizer::recover`]). Empty when the first attempt
    /// succeeded — the overwhelmingly common case.
    pub recovery: Vec<RecoveryStep>,
    /// The run was accepted degraded — the result does not meet the
    /// constraints as requested: either its lint report still carries
    /// deny-level *timing* findings, kept visible instead of failing the
    /// run ([`RecoveryAction::AcceptDegraded`]), or the schedule only
    /// exists because the scheduling clock was stretched past the requested
    /// one ([`RecoveryAction::StretchClock`]), with the miss reported by
    /// the signoff STA. Never set without a matching entry in `recovery`.
    pub degraded: bool,
}

impl SynthesisResult {
    /// Paper-style state × resource table (like Table 2).
    pub fn schedule_table(&self) -> String {
        self.schedule.table(&self.body)
    }

    /// Counted binding statistics (FU, register and mux-input counts) — the
    /// real area proxies of the implementation, as opposed to the estimated
    /// `area`.
    pub fn binding_stats(&self) -> hls_bind::BindStats {
        self.binding.stats
    }

    /// Cell-level statistics of the emitted netlist (per-kind cell counts,
    /// register bits, maximum mux depth) — counted from the object the RTL
    /// is printed from, replacing any need to grep the Verilog text.
    pub fn netlist_stats(&self) -> hls_nir::NetlistStats {
        self.netlist.stats()
    }
}

/// End-to-end synthesis driver.
#[derive(Clone, Debug)]
pub struct Synthesizer {
    behavior: Behavior,
    clock_ps: f64,
    min_latency: u32,
    max_latency: u32,
    ii: Option<u32>,
    allow_scc_move: bool,
    library: TechLibrary,
    loop_label: Option<String>,
    verify_vectors: Option<usize>,
    lint_config: LintConfig,
    recovery: RecoveryPolicy,
}

impl Synthesizer {
    /// Starts a synthesis run for a behaviour.
    pub fn new(behavior: Behavior) -> Self {
        Synthesizer {
            behavior,
            clock_ps: 1600.0,
            min_latency: 1,
            max_latency: 32,
            ii: None,
            allow_scc_move: true,
            library: TechLibrary::artisan_90nm_typical(),
            loop_label: None,
            verify_vectors: None,
            lint_config: LintConfig::default(),
            recovery: RecoveryPolicy::disabled(),
        }
    }

    /// Starts a synthesis run from an already-linearized loop body.
    pub fn from_body(body: LinearBody) -> BodySynthesizer {
        BodySynthesizer {
            body,
            inner: Synthesizer::new(Behavior {
                name: String::new(),
                ports: vec![],
                vars: vec![],
                body: vec![],
            }),
        }
    }

    /// Sets the clock period in picoseconds (default 1600 ps, the paper's
    /// example clock).
    pub fn clock_ps(mut self, period_ps: f64) -> Self {
        self.clock_ps = period_ps;
        self
    }

    /// Sets the latency bounds (states) the scheduler may use.
    pub fn latency_bounds(mut self, min: u32, max: u32) -> Self {
        self.min_latency = min;
        self.max_latency = max;
        self
    }

    /// Requests pipelining with the given initiation interval.
    pub fn pipeline(mut self, ii: u32) -> Self {
        self.ii = Some(ii);
        self
    }

    /// Disables the timing-driven SCC move action (Table 4 ablation).
    pub fn without_scc_move(mut self) -> Self {
        self.allow_scc_move = false;
        self
    }

    /// Uses a custom technology library.
    pub fn library(mut self, library: TechLibrary) -> Self {
        self.library = library;
        self
    }

    /// Selects which loop to synthesize by its label (defaults to the
    /// innermost loop).
    pub fn for_loop(mut self, label: impl Into<String>) -> Self {
        self.loop_label = Some(label.into());
        self
    }

    /// Differentially verifies the produced schedule: the cycle-accurate
    /// simulation (`hls-sim`) is run against the reference interpreter on
    /// `vectors` random input vectors and must agree bit-exactly, or the run
    /// fails with [`SynthesisError::Verification`].
    pub fn verify(mut self, vectors: usize) -> Self {
        self.verify_vectors = Some(vectors);
        self
    }

    /// Overrides the netlist analyzer's configuration (per-lint severities
    /// and bounds). The analyzer always runs; deny-level findings fail the
    /// run with [`SynthesisError::Lint`].
    pub fn lint_config(mut self, config: LintConfig) -> Self {
        self.lint_config = config;
        self
    }

    /// Arms the recovery ladder: instead of failing fast, recoverable
    /// errors (scheduling over-constraint, timing-only lint denies) trigger
    /// the policy's escalation actions — extra timed-rewrite rounds,
    /// latency/II relaxation, degraded acceptance — each recorded in
    /// [`SynthesisResult::recovery`]. See [`RecoveryPolicy`].
    pub fn recover(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    fn config_for(&self, knobs: &Knobs) -> SchedulerConfig {
        let clock = ClockConstraint::from_period_ps(knobs.sched_clock_ps);
        let mut config = match knobs.ii {
            Some(ii) => SchedulerConfig::pipelined(clock, ii, knobs.max_latency),
            None => SchedulerConfig::sequential(clock, self.min_latency, knobs.max_latency),
        };
        config.allow_scc_move = self.allow_scc_move;
        config
    }

    /// Runs the full flow.
    ///
    /// # Errors
    /// Returns a [`SynthesisError`] wrapping the first stage that failed.
    pub fn run(self) -> Result<SynthesisResult, SynthesisError> {
        let mut cdfg = elaborate(&self.behavior)?;
        let body = match &self.loop_label {
            None => prepare_innermost_loop(&mut cdfg)?,
            Some(label) => {
                hls_opt::manager::PassManager::standard().run(&mut cdfg)?;
                let id = cdfg
                    .loops
                    .iter()
                    .find(|l| l.name.as_deref() == Some(label))
                    .map(|l| l.id)
                    .ok_or_else(|| {
                        SynthesisError::Optimizer(hls_opt::OptError::UnknownLoop {
                            loop_id: label.clone(),
                        })
                    })?;
                linearize_loop(&cdfg, id)?
            }
        };
        self.run_on_body(body)
    }

    fn run_on_body(self, body: LinearBody) -> Result<SynthesisResult, SynthesisError> {
        let mut knobs = Knobs {
            max_latency: self.max_latency,
            ii: self.ii,
            timed_rounds: hls_lint::MAX_ROUNDS,
            sched_clock_ps: self.clock_ps,
            accept_degraded: false,
            latency_relaxed: false,
        };
        let mut trace: Vec<RecoveryStep> = Vec::new();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let last = match self.attempt(&body, &knobs) {
                Ok(mut result) => {
                    result.recovery = trace;
                    return Ok(result);
                }
                Err(e) => e,
            };
            let action = if (trace.len() as u32) < self.recovery.max_retries {
                next_action(&last, &self.recovery, &knobs)
            } else {
                None
            };
            match action {
                Some(action) => {
                    knobs.apply(&action);
                    trace.push(RecoveryStep {
                        attempt,
                        trigger: last.to_string(),
                        action,
                    });
                }
                None if trace.is_empty() => return Err(last),
                None => {
                    return Err(SynthesisError::RecoveryExhausted {
                        attempts: attempt,
                        trace,
                        last: Box::new(last),
                    })
                }
            }
        }
    }

    /// One full pass of the flow under the current recovery knobs. Recovery
    /// is driven entirely from the outside: this function fails fast.
    fn attempt(&self, body: &LinearBody, knobs: &Knobs) -> Result<SynthesisResult, SynthesisError> {
        let body = body.clone();
        let config = self.config_for(knobs);
        // The scheduler works against the (possibly stretched) recovery
        // clock; everything downstream — timed rewrites, lint/STA, the
        // estimators — signs off against the clock the user asked for, so a
        // stretched run reports its real setup violations instead of
        // quietly re-targeting.
        let clock = ClockConstraint::from_period_ps(self.clock_ps);
        let schedule = Scheduler::new(&body, &self.library, config).run()?;
        let pipeline = match knobs.ii {
            Some(_) => Some(fold_schedule(&body, &schedule)?),
            None => None,
        };
        let binding = hls_bind::bind(&body, &schedule.desc)?;
        let mut netlist = hls_bind::lower(&body, &schedule.desc, &binding, RtlStyle::SharedFu)?;
        hls_nir::validate(&netlist)?;
        let verification = match self.verify_vectors {
            Some(vectors) => {
                let report =
                    hls_sim::differential::random_check(&body, &schedule.desc, vectors, 0x5EED)?;
                // the bound netlist — shared units with steered operand
                // muxes — must agree with the reference too
                hls_sim::differential::random_check_bound(
                    &body,
                    &schedule.desc,
                    &binding,
                    vectors,
                    0x5EED,
                )?;
                // and so must the lowered cell-level netlist, pre-rewrite
                hls_sim::differential::random_check_nir(&body, &netlist, vectors, 0x5EED)?;
                Some(report)
            }
            None => None,
        };
        let netlist_rewrites = hls_nir::optimize(&mut netlist);
        hls_nir::validate(&netlist)?;
        if let Some(vectors) = self.verify_vectors {
            // the rewrites must not change observable behaviour
            hls_sim::differential::random_check_nir(&body, &netlist, vectors, 0x5EED)?;
        }
        // Timing-driven re-optimization: if the rewritten netlist still has
        // negative-slack endpoints, rebalance/retime the failing cones and
        // re-verify. A netlist that already meets the clock is returned
        // byte-identical (`timed_rewrites.rounds == 0`). The round budget
        // defaults to `hls_lint::MAX_ROUNDS`; the recovery ladder may raise
        // it ([`RecoveryAction::ExtraTimedRounds`]).
        let timed_rewrites =
            hls_lint::optimize_timed_with(&mut netlist, &self.library, clock, knobs.timed_rounds);
        if timed_rewrites.changed() {
            hls_nir::validate(&netlist)?;
            if let Some(vectors) = self.verify_vectors {
                hls_sim::differential::random_check_nir(&body, &netlist, vectors, 0x5EED)?;
            }
        }
        // Static analysis of the final netlist: structural lints plus the
        // cell-level timing walk, in the binding/schedule context. Deny-level
        // findings fail the run.
        let lint_ctx = LintContext::new(&self.library, clock)
            .with_binding(&binding)
            .with_schedule(&schedule.desc);
        let mut lint = hls_lint::analyze(&netlist, &lint_ctx, &self.lint_config);
        if timed_rewrites.hit_round_limit {
            // Surface the backstop as a finding: the timed-rewrite search
            // was cut off by its round budget, not by convergence, so the
            // reported timing may be improvable with a larger budget.
            lint.push_sorted(Diagnostic {
                lint: Lint::RewriteRoundLimit,
                severity: self.lint_config.severity(Lint::RewriteRoundLimit),
                cell: None,
                name: None,
                message: format!(
                    "timing-driven rewrite stopped at its {}-round budget with \
                     worst slack {:.0} ps still negative",
                    knobs.timed_rounds, timed_rewrites.after.wns_ps
                ),
            });
        }
        if lint.has_deny() && !(knobs.accept_degraded && timing_only_denies(&lint)) {
            return Err(SynthesisError::Lint(Box::new(lint)));
        }
        // Degraded means "this result does not meet the constraints as
        // requested": timing denies were kept by AcceptDegraded, or the
        // schedule only exists because the scheduling clock was stretched
        // past the requested one (in which case the signoff STA above
        // reports the miss, at whatever severity is configured).
        let degraded = lint.has_deny() || knobs.sched_clock_ps > self.clock_ps;
        let slack_fraction = (schedule.min_slack_ps / clock.period_ps()).clamp(0.0, 0.9);
        let dp =
            Datapath::from_schedule(&body, &schedule.desc, &self.library, clock, slack_fraction);
        let rtl = emit_verilog(&netlist);
        Ok(SynthesisResult {
            body,
            schedule,
            pipeline,
            binding,
            netlist,
            netlist_rewrites,
            timed_rewrites,
            area: dp.total_area(),
            power_uw: dp.total_power_uw(),
            rtl,
            lint,
            verification,
            recovery: Vec::new(),
            degraded,
        })
    }
}

/// The mutable synthesis parameters the recovery ladder is allowed to turn.
#[derive(Clone, Copy, Debug)]
struct Knobs {
    max_latency: u32,
    ii: Option<u32>,
    timed_rounds: usize,
    /// The clock the *scheduler* works against; starts at the requested
    /// clock and only moves via [`RecoveryAction::StretchClock`]. Signoff
    /// always keeps the requested clock.
    sched_clock_ps: f64,
    accept_degraded: bool,
    /// [`RecoveryAction::RelaxLatency`] is a one-shot rung.
    latency_relaxed: bool,
}

impl Knobs {
    fn apply(&mut self, action: &RecoveryAction) {
        match *action {
            RecoveryAction::ExtraTimedRounds { rounds } => self.timed_rounds = rounds,
            RecoveryAction::RelaxLatency { to, .. } => {
                self.max_latency = to;
                self.latency_relaxed = true;
            }
            RecoveryAction::RelaxIi { to, .. } => self.ii = Some(to),
            RecoveryAction::StretchClock { to_ps, .. } => self.sched_clock_ps = to_ps,
            RecoveryAction::AcceptDegraded => self.accept_degraded = true,
        }
    }
}

/// Picks the next rung of the escalation ladder for a failure, or `None`
/// when the failure is unrecoverable (structural denies, verification
/// mismatches, broken lowering — anything that indicates wrong hardware
/// rather than a constraint that was too tight).
fn next_action(
    err: &SynthesisError,
    policy: &RecoveryPolicy,
    knobs: &Knobs,
) -> Option<RecoveryAction> {
    match err {
        SynthesisError::Scheduling(e) => {
            let worst_slack_ps = match e {
                hls_sched::SchedError::Overconstrained { worst_slack_ps, .. } => *worst_slack_ps,
                hls_sched::SchedError::BudgetExhausted { .. } => 0.0,
                // the scheduler names the feasible II — jump straight to it
                hls_sched::SchedError::InfeasibleIi { requested, minimum } => {
                    return (policy.allow_ii_fallback && minimum > requested).then_some(
                        RecoveryAction::RelaxIi {
                            from: *requested,
                            to: *minimum,
                        },
                    );
                }
                _ => return None,
            };
            if policy.latency_headroom > 0 && !knobs.latency_relaxed {
                Some(RecoveryAction::RelaxLatency {
                    from: knobs.max_latency,
                    to: knobs.max_latency + policy.latency_headroom,
                })
            } else if worst_slack_ps < 0.0 && policy.allow_clock_stretch {
                // slack-driven: an operation misses the clock at any
                // latency, so relax exactly what is infeasible — the
                // scheduling clock — by the reported shortfall (plus 1 ps
                // against float edge cases)
                Some(RecoveryAction::StretchClock {
                    from_ps: knobs.sched_clock_ps,
                    to_ps: knobs.sched_clock_ps - worst_slack_ps + 1.0,
                })
            } else if policy.allow_ii_fallback {
                knobs.ii.map(|ii| RecoveryAction::RelaxIi {
                    from: ii,
                    to: ii + 1,
                })
            } else {
                None
            }
        }
        SynthesisError::Lint(report) if timing_only_denies(report) => {
            if policy.extra_timed_rounds > 0 && knobs.timed_rounds == hls_lint::MAX_ROUNDS {
                Some(RecoveryAction::ExtraTimedRounds {
                    rounds: hls_lint::MAX_ROUNDS + policy.extra_timed_rounds,
                })
            } else if policy.allow_degraded && !knobs.accept_degraded {
                Some(RecoveryAction::AcceptDegraded)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Whether every deny-level finding of the report is timing-level — the
/// only family of denies [`RecoveryAction::AcceptDegraded`] may demote.
/// Structural denies (malformed netlists, name collisions) describe broken
/// hardware and are never degradable.
fn timing_only_denies(report: &LintReport) -> bool {
    report.has_deny()
        && report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .all(|d| matches!(d.lint, Lint::SetupViolation | Lint::RewriteRoundLimit))
}

/// Synthesis driver over an already-linearized loop body (used by the
/// exploration experiments, which generate bodies directly).
#[derive(Clone, Debug)]
pub struct BodySynthesizer {
    body: LinearBody,
    inner: Synthesizer,
}

impl BodySynthesizer {
    /// Sets the clock period in picoseconds.
    pub fn clock_ps(mut self, period_ps: f64) -> Self {
        self.inner = self.inner.clock_ps(period_ps);
        self
    }

    /// Sets the latency bounds.
    pub fn latency_bounds(mut self, min: u32, max: u32) -> Self {
        self.inner = self.inner.latency_bounds(min, max);
        self
    }

    /// Requests pipelining with the given initiation interval.
    pub fn pipeline(mut self, ii: u32) -> Self {
        self.inner = self.inner.pipeline(ii);
        self
    }

    /// Differentially verifies the produced schedule (see
    /// [`Synthesizer::verify`]).
    pub fn verify(mut self, vectors: usize) -> Self {
        self.inner = self.inner.verify(vectors);
        self
    }

    /// Overrides the netlist analyzer's configuration (see
    /// [`Synthesizer::lint_config`]).
    pub fn lint_config(mut self, config: LintConfig) -> Self {
        self.inner = self.inner.lint_config(config);
        self
    }

    /// Arms the recovery ladder (see [`Synthesizer::recover`]).
    pub fn recover(mut self, policy: RecoveryPolicy) -> Self {
        self.inner = self.inner.recover(policy);
        self
    }

    /// Runs the flow on the body.
    ///
    /// # Errors
    /// Returns a [`SynthesisError`] wrapping the first stage that failed.
    pub fn run(self) -> Result<SynthesisResult, SynthesisError> {
        let BodySynthesizer { body, inner } = self;
        inner.run_on_body(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_synthesis_of_the_paper_example() {
        let result = Synthesizer::new(designs::paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 3)
            .run()
            .expect("synthesizable");
        assert_eq!(result.schedule.latency, 3);
        assert!(result.pipeline.is_none());
        assert!(result.area > 0.0);
        assert!(result.power_uw > 0.0);
        assert!(result.rtl.contains("module"));
        assert!(result.schedule_table().contains("mul"));
    }

    #[test]
    fn pipelined_synthesis_folds_the_loop() {
        let result = Synthesizer::new(designs::paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 6)
            .pipeline(2)
            .run()
            .expect("synthesizable");
        let folded = result.pipeline.as_ref().expect("folded pipeline");
        assert_eq!(folded.ii, 2);
        assert_eq!(folded.stages, 2);
        assert!(result.rtl.contains("stage_valid"));
    }

    #[test]
    fn body_synthesizer_runs_on_generated_designs() {
        let body = explore::idct8_design();
        let result = Synthesizer::from_body(body)
            .clock_ps(2000.0)
            .latency_bounds(1, 16)
            .run()
            .expect("synthesizable");
        assert!(result.schedule.latency <= 16);
    }

    #[test]
    fn verified_synthesis_reports_bit_exact_agreement() {
        let result = Synthesizer::new(designs::paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 6)
            .pipeline(2)
            .verify(100)
            .run()
            .expect("synthesizable and verifiable");
        let report = result.verification.expect("verification ran");
        assert_eq!(report.iterations, 100);
        assert!(report.writes_checked > 0);
        // verification is opt-in
        let unverified = Synthesizer::new(designs::paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 3)
            .run()
            .expect("synthesizable");
        assert!(unverified.verification.is_none());
    }

    #[test]
    fn synthesis_reports_binding_statistics() {
        let result = Synthesizer::new(designs::paper_example1())
            .clock_ps(1600.0)
            .latency_bounds(1, 3)
            .verify(50)
            .run()
            .expect("synthesizable and bindable");
        let stats = result.binding_stats();
        assert!(stats.fu_count >= 3, "{stats:?}");
        assert!(
            stats.fu_count <= result.schedule.desc.resources.len(),
            "binding never invents hardware: {stats:?}"
        );
        assert!(
            stats.shared_fu_count >= 1,
            "one multiplier runs three multiplications: {stats:?}"
        );
        assert!(stats.register_count > 0, "{stats:?}");
        assert!(stats.mux_inputs >= 3, "{stats:?}");
        // the emitted netlist reflects exactly this sharing: one physical
        // multiplier cell, steered
        let nstats = result.netlist_stats();
        assert_eq!(nstats.count_bin(hls_nir::BinKind::Mul), 1, "{nstats:?}");
        assert!(nstats.muxes() >= 2, "{nstats:?}");
        assert!(nstats.regs > 0, "{nstats:?}");
        assert!(result.binding.summary().contains("FUs"));
    }

    #[test]
    fn overconstrained_specification_reports_scheduling_error() {
        let err = Synthesizer::new(designs::paper_example1())
            .clock_ps(600.0) // even a single multiplication cannot fit
            .latency_bounds(1, 2)
            .run()
            .unwrap_err();
        assert!(matches!(err, SynthesisError::Scheduling(_)), "{err}");
    }
}
