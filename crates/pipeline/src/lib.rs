//! # hls-pipeline — loop folding, stage control and a modulo-scheduling baseline
//!
//! Section V of the paper: once a loop iteration has been scheduled in `LI`
//! states by the ordinary pass scheduler (with the two pipelining extensions
//! — edge equivalence and SCC stage windows — handled inside `hls-sched`),
//! the schedule is **folded** onto `II` states. Equivalent edges collapse
//! onto a single edge whose operation set is the union of the folded edges;
//! every operation is predicated by the *stage-valid* signal of its pipeline
//! stage, which also realizes the prologue (pipeline fill), the epilogue
//! (drain) and stalls.
//!
//! This crate provides:
//!
//! * [`fold::FoldedPipeline`] — the folded schedule with stage bookkeeping and
//!   a cycle-accurate overlap table like the paper's Figure 5;
//! * [`fold::fold_schedule`] — the folding transformation itself, with
//!   verification of inter-iteration causality and resource exclusivity;
//! * [`modulo`] — a classical iterative-modulo-scheduling baseline
//!   (Rau, MICRO'94) used to compare the paper's unified approach against a
//!   "schedule-then-move" formulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fold;
pub mod modulo;

pub use fold::{fold_schedule, FoldError, FoldedPipeline};
pub use modulo::{modulo_schedule, ModuloResult};
