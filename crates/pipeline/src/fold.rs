//! Folding a scheduled loop iteration into a pipeline with `LI / II` stages.

use hls_ir::{LinearBody, OpId};
use hls_sched::Schedule;
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// Errors detected while folding or verifying a pipelined schedule.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FoldError {
    /// The schedule is not pipelined (no initiation interval).
    NotPipelined,
    /// Two operations that are not mutually exclusive share a resource on
    /// equivalent edges.
    SharedOnEquivalentEdges {
        /// First operation.
        a: OpId,
        /// Second operation.
        b: OpId,
    },
    /// An inter-iteration (loop-carried) dependence is violated by the
    /// overlap: the consumer would read the value before the producer of the
    /// earlier iteration has computed it.
    CausalityViolation {
        /// Producing operation (earlier iteration).
        from: OpId,
        /// Consuming operation.
        to: OpId,
        /// Dependence distance in iterations.
        distance: u32,
    },
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::NotPipelined => write!(f, "schedule has no initiation interval"),
            FoldError::SharedOnEquivalentEdges { a, b } => {
                write!(
                    f,
                    "operations {a} and {b} share a resource on equivalent edges"
                )
            }
            FoldError::CausalityViolation { from, to, distance } => write!(
                f,
                "loop-carried dependence {from} → {to} (distance {distance}) violated by folding"
            ),
        }
    }
}

impl Error for FoldError {}

/// A folded pipelined loop: `II` physical states, each executing the union of
/// the operations of its equivalent original states, predicated by stage.
#[derive(Clone, Debug)]
pub struct FoldedPipeline {
    /// Initiation interval.
    pub ii: u32,
    /// Latency interval (original number of states).
    pub li: u32,
    /// Number of pipeline stages (`ceil(LI / II)`).
    pub stages: u32,
    /// For every folded state (0..II): the operations executing there,
    /// with the pipeline stage they belong to.
    pub folded_states: Vec<Vec<(OpId, u32)>>,
    /// Pipeline stage of each operation.
    pub stage_of: BTreeMap<OpId, u32>,
    /// Prologue length in cycles (time to fill the pipeline).
    pub prologue_cycles: u32,
    /// Epilogue length in cycles (time to drain the pipeline).
    pub epilogue_cycles: u32,
}

impl FoldedPipeline {
    /// Steady-state throughput: iterations per cycle.
    pub fn throughput(&self) -> f64 {
        1.0 / f64::from(self.ii.max(1))
    }

    /// Total cycles to execute `iterations` iterations, including prologue
    /// and epilogue: `LI + (iterations - 1) * II`.
    pub fn total_cycles(&self, iterations: u64) -> u64 {
        if iterations == 0 {
            return 0;
        }
        u64::from(self.li) + (iterations - 1) * u64::from(self.ii)
    }

    /// The iterations in flight at the given clock cycle (iterations are
    /// initiated every `II` cycles, back to back), as `(iteration, stage)`
    /// pairs — the live version of the paper's Figure 5 overlap picture.
    /// Cycle-accurate simulation replays exactly this occupancy.
    pub fn active_iterations(&self, cycle: u64) -> Vec<(u64, u32)> {
        let ii = u64::from(self.ii.max(1));
        let li = u64::from(self.li.max(1));
        let mut active = Vec::new();
        let first = cycle.saturating_sub(li - 1).div_ceil(ii);
        for k in first..=(cycle / ii) {
            let local = cycle - k * ii;
            if local < li {
                active.push((k, (local / ii) as u32));
            }
        }
        active
    }

    /// Renders the iteration-overlap picture of the paper's Figure 5: which
    /// stage of which iteration is active in each cycle of the steady state.
    pub fn overlap_table(&self) -> String {
        let mut out = String::from("cycle | active (iteration.stage)\n");
        for cycle in 0..self.ii.max(1) {
            let mut cells = Vec::new();
            for stage in 0..self.stages {
                cells.push(format!("it-{stage}.stage{stage}@s{}", cycle + 1));
            }
            out.push_str(&format!("  {}   | {}\n", cycle + 1, cells.join("  ")));
        }
        out
    }
}

/// Folds a pipelined schedule produced by [`hls_sched::Scheduler`] and
/// verifies the two conditions the paper states for correctness: no resource
/// sharing across equivalent edges, and preservation of inter-iteration
/// causality (every SCC inside one stage window of `II` states).
///
/// # Errors
/// Returns a [`FoldError`] describing the first violated condition.
pub fn fold_schedule(body: &LinearBody, schedule: &Schedule) -> Result<FoldedPipeline, FoldError> {
    let Some(ii) = schedule.desc.ii else {
        return Err(FoldError::NotPipelined);
    };
    let ii = ii.max(1);
    let li = schedule.latency.max(1);
    let stages = li.div_ceil(ii);

    // resource exclusivity across equivalent edges
    let mut by_folded_resource: HashMap<(u32, u32), Vec<OpId>> = HashMap::new();
    for (id, s) in &schedule.desc.ops {
        if let Some(r) = s.resource {
            by_folded_resource
                .entry((r.0, s.state % ii))
                .or_default()
                .push(*id);
        }
    }
    for ops in by_folded_resource.values() {
        for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                let pa = &body.dfg.op(ops[i]).predicate;
                let pb = &body.dfg.op(ops[j]).predicate;
                // sharing across equivalent edges is only sound within one
                // control step: predicates of different stages guard
                // different iterations, so mutual exclusion alone does not
                // make the sharing realizable (mirrors the scheduler's busy
                // check and the binder's slot validation)
                let sa = schedule.desc.ops[&ops[i]].state;
                let sb = schedule.desc.ops[&ops[j]].state;
                if sa != sb || !pa.mutually_exclusive(pb) {
                    return Err(FoldError::SharedOnEquivalentEdges {
                        a: ops[i],
                        b: ops[j],
                    });
                }
            }
        }
    }

    // causality: for a loop-carried dependence from → to with distance d, the
    // consumer executes d*II cycles after the producer's iteration started;
    // it must not start before the producer finished:
    //   state(to) + d*II >= state(from)
    for dep in body.dfg.data_deps() {
        if dep.distance == 0 {
            continue;
        }
        let (Some(sf), Some(st)) = (
            schedule.desc.ops.get(&dep.from).map(|s| s.state),
            schedule.desc.ops.get(&dep.to).map(|s| s.state),
        ) else {
            continue;
        };
        if st + dep.distance * ii < sf {
            return Err(FoldError::CausalityViolation {
                from: dep.from,
                to: dep.to,
                distance: dep.distance,
            });
        }
    }

    let mut folded_states: Vec<Vec<(OpId, u32)>> = vec![Vec::new(); ii as usize];
    let mut stage_of = BTreeMap::new();
    for (id, s) in &schedule.desc.ops {
        let stage = s.state / ii;
        folded_states[(s.state % ii) as usize].push((*id, stage));
        stage_of.insert(*id, stage);
    }
    for v in &mut folded_states {
        v.sort();
    }

    Ok(FoldedPipeline {
        ii,
        li,
        stages,
        folded_states,
        stage_of,
        prologue_cycles: (stages - 1) * ii,
        epilogue_cycles: (stages - 1) * ii,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;
    use hls_sched::{Scheduler, SchedulerConfig};
    use hls_tech::{ClockConstraint, TechLibrary};

    fn pipelined_example(ii: u32) -> (LinearBody, Schedule) {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        let lib = TechLibrary::artisan_90nm_typical();
        let schedule = Scheduler::new(
            &body,
            &lib,
            SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), ii, 8),
        )
        .run()
        .expect("schedulable");
        (body, schedule)
    }

    #[test]
    fn example2_folds_into_two_stages() {
        // Figure 5 of the paper: LI=3, II=2 → 2 stages.
        let (body, schedule) = pipelined_example(2);
        let folded = fold_schedule(&body, &schedule).expect("foldable");
        assert_eq!(folded.ii, 2);
        assert_eq!(folded.li, 3);
        assert_eq!(folded.stages, 2);
        assert_eq!(folded.folded_states.len(), 2);
        // every op belongs to exactly one folded state
        let total: usize = folded.folded_states.iter().map(Vec::len).sum();
        assert_eq!(total, schedule.desc.ops.len());
        assert!((folded.throughput() - 0.5).abs() < 1e-9);
        assert!(folded.overlap_table().contains("cycle"));
    }

    #[test]
    fn example3_ii1_single_folded_state() {
        let (body, schedule) = pipelined_example(1);
        let folded = fold_schedule(&body, &schedule).expect("foldable");
        assert_eq!(folded.ii, 1);
        assert_eq!(folded.folded_states.len(), 1);
        assert!((folded.throughput() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_cycles_accounts_for_prologue() {
        let (body, schedule) = pipelined_example(2);
        let folded = fold_schedule(&body, &schedule).expect("foldable");
        // LI + (n-1)*II
        assert_eq!(folded.total_cycles(1), u64::from(folded.li));
        assert_eq!(folded.total_cycles(100), u64::from(folded.li) + 99 * 2);
        assert_eq!(folded.total_cycles(0), 0);
    }

    #[test]
    fn sequential_schedule_cannot_be_folded() {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        let lib = TechLibrary::artisan_90nm_typical();
        let schedule = Scheduler::new(
            &body,
            &lib,
            SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 3),
        )
        .run()
        .expect("schedulable");
        assert_eq!(
            fold_schedule(&body, &schedule).unwrap_err(),
            FoldError::NotPipelined
        );
    }

    #[test]
    fn active_iterations_tracks_fill_and_steady_state() {
        let (body, schedule) = pipelined_example(2);
        let folded = fold_schedule(&body, &schedule).expect("foldable");
        // LI=3, II=2: cycle 0 only iteration 0; cycle 2 overlaps it0 (stage 1)
        // with it1 (stage 0); steady state always has 2 iterations in flight
        assert_eq!(folded.active_iterations(0), vec![(0, 0)]);
        assert_eq!(folded.active_iterations(2), vec![(0, 1), (1, 0)]);
        // with LI=3 over II=2 the second stage carries a bubble every other
        // cycle: even cycles overlap two iterations, odd cycles one
        for cycle in 10..20u64 {
            let expected = if cycle % 2 == 0 { 2 } else { 1 };
            assert_eq!(
                folded.active_iterations(cycle).len(),
                expected,
                "cycle {cycle}"
            );
        }
        let _ = body;
    }

    #[test]
    fn stage_of_is_consistent_with_states() {
        let (body, schedule) = pipelined_example(2);
        let folded = fold_schedule(&body, &schedule).expect("foldable");
        for (op, s) in &schedule.desc.ops {
            assert_eq!(folded.stage_of[op], s.state / 2);
        }
        let _ = body;
    }
}
