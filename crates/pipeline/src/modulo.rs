//! A classical iterative-modulo-scheduling baseline (Rau, MICRO'94).
//!
//! The paper positions its approach against modulo scheduling, whose
//! "formulation is significantly more involved than that of traditional
//! scheduling and requires a specialized engine". This module provides a
//! compact height-priority IMS with a modulo reservation table and bounded
//! backtracking so the two approaches can be compared on the same loop bodies
//! (see the `ablation_separate_binding` bench and EXPERIMENTS.md).
//!
//! The baseline is intentionally *resource-count* driven (like the classical
//! formulation) and only checks chaining delays per operation, not full
//! register-to-register paths with sharing multiplexers — which is precisely
//! the methodological gap the paper's unified scheduler/binder closes.

use hls_ir::analysis::{alap_levels, asap_levels};
use hls_ir::{LinearBody, OpId};
use hls_tech::{ResourceClass, ResourceType, TechLibrary};
use std::collections::HashMap;

/// Result of the modulo-scheduling baseline.
#[derive(Clone, Debug)]
pub struct ModuloResult {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Schedule time (cycle) of every operation within one iteration.
    pub time_of: HashMap<OpId, u32>,
    /// Number of iterations of the placement loop that were needed.
    pub attempts: u32,
    /// Per resource class, the number of instances implied by the modulo
    /// reservation table occupancy.
    pub resource_counts: HashMap<String, usize>,
}

impl ModuloResult {
    /// Latency (makespan) of one iteration.
    pub fn latency(&self) -> u32 {
        self.time_of
            .values()
            .copied()
            .max()
            .map(|t| t + 1)
            .unwrap_or(0)
    }
}

/// Runs iterative modulo scheduling on a loop body, starting from `min_ii`
/// and increasing the II until a feasible schedule is found (or `max_ii` is
/// exceeded).
///
/// Returns `None` if no II up to `max_ii` produced a feasible placement.
pub fn modulo_schedule(
    body: &LinearBody,
    lib: &TechLibrary,
    clock_period_ps: f64,
    min_ii: u32,
    max_ii: u32,
    resource_limit: impl Fn(&ResourceClass) -> usize,
) -> Option<ModuloResult> {
    let asap = asap_levels(&body.dfg);
    let depth = asap.values().copied().max().unwrap_or(0);
    let alap = alap_levels(&body.dfg, depth);

    'ii_loop: for ii in min_ii.max(1)..=max_ii.max(1) {
        // modulo reservation table: class → slot → used count
        let mut mrt: HashMap<(String, u32), usize> = HashMap::new();
        let mut time_of: HashMap<OpId, u32> = HashMap::new();
        let mut attempts = 0u32;

        // height-based priority: deeper ALAP first (critical ops first)
        let mut order: Vec<OpId> = body.dfg.op_ids().collect();
        order.sort_by_key(|id| (alap[id], *id));

        for &op_id in &order {
            let op = body.dfg.op(op_id);
            attempts += 1;
            let class = ResourceType::for_op(op)
                .filter(|t| !matches!(t.class, ResourceClass::IoPort))
                .map(|t| t.class);

            // earliest start honouring already-placed intra-iteration preds
            // (with a simple one-op-per-cycle chaining check against the
            // clock period)
            let mut earliest = 0u32;
            for (p, dist) in body.dfg.preds_with_carried(op_id) {
                if dist > 0 {
                    continue;
                }
                if let Some(&tp) = time_of.get(&p) {
                    let pred_delay = ResourceType::for_op(body.dfg.op(p))
                        .map(|t| lib.delay_ps(&t))
                        .unwrap_or(0.0);
                    let own_delay = class
                        .as_ref()
                        .map(|c| {
                            lib.delay_ps(&ResourceType::binary(
                                c.clone(),
                                op.max_width(),
                                op.max_width(),
                                op.width,
                            ))
                        })
                        .unwrap_or(0.0);
                    // chain only if both fit in one cycle, else next cycle
                    let same_cycle_ok = pred_delay + own_delay + 190.0 < clock_period_ps;
                    earliest = earliest.max(if same_cycle_ok { tp } else { tp + 1 });
                }
            }

            // find a slot from `earliest` within a budget of II consecutive
            // candidate cycles (classical IMS search window)
            let mut placed = false;
            for t in earliest..earliest + ii.max(1) * 4 {
                if let Some(c) = &class {
                    let key = (c.mnemonic(), t % ii);
                    let used = mrt.get(&key).copied().unwrap_or(0);
                    if used >= resource_limit(c) {
                        continue;
                    }
                    mrt.insert(key, used + 1);
                }
                time_of.insert(op_id, t);
                placed = true;
                break;
            }
            if !placed {
                continue 'ii_loop;
            }
        }

        // verify loop-carried dependences: t(to) + d*II >= t(from) (+1 cycle)
        for dep in body.dfg.data_deps() {
            if dep.distance == 0 {
                continue;
            }
            let (Some(&tf), Some(&tt)) = (time_of.get(&dep.from), time_of.get(&dep.to)) else {
                continue;
            };
            if tt + dep.distance * ii < tf {
                continue 'ii_loop;
            }
        }

        let mut resource_counts: HashMap<String, usize> = HashMap::new();
        for ((class, _), used) in &mrt {
            let entry = resource_counts.entry(class.clone()).or_insert(0);
            *entry = (*entry).max(*used);
        }
        return Some(ModuloResult {
            ii,
            time_of,
            attempts,
            resource_counts,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;

    fn example1() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    #[test]
    fn modulo_baseline_schedules_example1() {
        let body = example1();
        let lib = TechLibrary::artisan_90nm_typical();
        let result = modulo_schedule(&body, &lib, 1600.0, 2, 8, |_| 2).expect("feasible");
        assert!(result.ii >= 2);
        assert_eq!(result.time_of.len(), body.dfg.num_ops());
        assert!(result.latency() >= 2);
        // dependences respected (intra-iteration, non-chained ordering)
        for dep in body.dfg.data_deps() {
            if dep.distance == 0 {
                assert!(result.time_of[&dep.from] <= result.time_of[&dep.to]);
            }
        }
    }

    #[test]
    fn tighter_resource_limit_never_lowers_ii() {
        let body = example1();
        let lib = TechLibrary::artisan_90nm_typical();
        let generous = modulo_schedule(&body, &lib, 1600.0, 1, 12, |_| 4).expect("feasible");
        let scarce = modulo_schedule(&body, &lib, 1600.0, 1, 12, |c| {
            if matches!(c, ResourceClass::Multiplier) {
                1
            } else {
                4
            }
        })
        .expect("feasible");
        assert!(scarce.ii >= generous.ii);
    }

    #[test]
    fn infeasible_window_returns_none() {
        let body = example1();
        let lib = TechLibrary::artisan_90nm_typical();
        // zero resources for multipliers → impossible
        assert!(modulo_schedule(&body, &lib, 1600.0, 1, 3, |_| 0).is_none());
    }
}
