//! A classical iterative-modulo-scheduling baseline (Rau, MICRO'94).
//!
//! The paper positions its approach against modulo scheduling, whose
//! "formulation is significantly more involved than that of traditional
//! scheduling and requires a specialized engine". This module provides a
//! compact height-priority IMS with a modulo reservation table and bounded
//! backtracking so the two approaches can be compared on the same loop bodies
//! (see the `ablation_separate_binding` bench and EXPERIMENTS.md).
//!
//! The baseline is intentionally *resource-count* driven (like the classical
//! formulation) and only checks chaining delays per operation, not full
//! register-to-register paths with sharing multiplexers — which is precisely
//! the methodological gap the paper's unified scheduler/binder closes.

use hls_ir::analysis::{alap_levels, asap_levels};
use hls_ir::{DenseOpMap, LinearBody, OpId};
use hls_tech::{Interner, ResourceClass, ResourceClassId, ResourceType, TechLibrary};
use std::collections::HashMap;

/// Result of the modulo-scheduling baseline.
#[derive(Clone, Debug)]
pub struct ModuloResult {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Schedule time (cycle) of every operation within one iteration.
    pub time_of: HashMap<OpId, u32>,
    /// Number of iterations of the placement loop that were needed.
    pub attempts: u32,
    /// The interner giving meaning to the class ids of `resource_counts`.
    pub interner: Interner,
    /// Instances implied by the modulo reservation table occupancy, indexed
    /// by [`ResourceClassId`] (zero for classes the design never occupied).
    pub resource_counts: Vec<usize>,
}

impl ModuloResult {
    /// Latency (makespan) of one iteration.
    pub fn latency(&self) -> u32 {
        self.time_of
            .values()
            .copied()
            .max()
            .map(|t| t + 1)
            .unwrap_or(0)
    }

    /// Implied instance count of a resource class.
    pub fn count_of(&self, class: &ResourceClass) -> usize {
        self.interner
            .lookup_class(class)
            .map(|id| self.resource_counts[id.index()])
            .unwrap_or(0)
    }

    /// The non-zero per-class counts, in deterministic (interning) order.
    pub fn counts(&self) -> impl Iterator<Item = (ResourceClassId, &ResourceClass, usize)> {
        self.interner
            .iter_classes()
            .map(|(id, c)| (id, c, self.resource_counts[id.index()]))
            .filter(|&(_, _, n)| n > 0)
    }
}

/// Runs iterative modulo scheduling on a loop body, starting from `min_ii`
/// and increasing the II until a feasible schedule is found (or `max_ii` is
/// exceeded).
///
/// Returns `None` if no II up to `max_ii` produced a feasible placement.
pub fn modulo_schedule(
    body: &LinearBody,
    lib: &TechLibrary,
    clock_period_ps: f64,
    min_ii: u32,
    max_ii: u32,
    resource_limit: impl Fn(&ResourceClass) -> usize,
) -> Option<ModuloResult> {
    let asap = asap_levels(&body.dfg);
    let depth = asap.values().copied().max().unwrap_or(0);
    let alap = alap_levels(&body.dfg, depth);
    let n = body.dfg.num_ops();

    // Per-op precomputation: interned class, per-op delay, resource limit per
    // class, dense predecessor lists. Everything the placement loop touches
    // is a flat array lookup from here on.
    let mut interner = Interner::new();
    let mut class_of: DenseOpMap<Option<ResourceClassId>> = DenseOpMap::new(n);
    let mut delay_of: DenseOpMap<f64> = DenseOpMap::filled(n, 0.0);
    let mut own_delay_of: DenseOpMap<f64> = DenseOpMap::filled(n, 0.0);
    for (id, op) in body.dfg.iter_ops() {
        let ty = ResourceType::for_op(op);
        if let Some(t) = &ty {
            delay_of[id] = lib.delay_ps(t);
        }
        let class = ty
            .filter(|t| !matches!(t.class, ResourceClass::IoPort))
            .map(|t| t.class);
        if let Some(c) = &class {
            own_delay_of[id] = lib.delay_ps(&ResourceType::binary(
                c.clone(),
                op.max_width(),
                op.max_width(),
                op.width,
            ));
            class_of[id] = Some(interner.class_id(c));
        }
    }
    let num_classes = interner.num_classes();
    let limit_of: Vec<usize> = (0..num_classes)
        .map(|c| resource_limit(interner.class(ResourceClassId(c as u32))))
        .collect();
    let preds: DenseOpMap<Vec<(OpId, u32)>> =
        DenseOpMap::from_fn(n, |id| body.dfg.preds_with_carried(id));
    let carried_deps: Vec<(OpId, OpId, u32)> = body
        .dfg
        .data_deps()
        .into_iter()
        .filter(|d| d.distance > 0)
        .map(|d| (d.from, d.to, d.distance))
        .collect();

    // height-based priority: deeper ALAP first (critical ops first)
    let mut order: Vec<OpId> = body.dfg.op_ids().collect();
    order.sort_by_key(|id| (alap[id], *id));

    'ii_loop: for ii in min_ii.max(1)..=max_ii.max(1) {
        // modulo reservation table: one flat row per class,
        // indexed `class_id * ii + slot`
        let mut mrt: Vec<usize> = vec![0; num_classes * ii as usize];
        let mut time_of: DenseOpMap<Option<u32>> = DenseOpMap::new(n);
        let mut attempts = 0u32;

        for &op_id in &order {
            attempts += 1;
            let class = class_of[op_id];

            // earliest start honouring already-placed intra-iteration preds
            // (with a simple one-op-per-cycle chaining check against the
            // clock period)
            let mut earliest = 0u32;
            for &(p, dist) in &preds[op_id] {
                if dist > 0 {
                    continue;
                }
                if let Some(tp) = time_of[p] {
                    let pred_delay = delay_of[p];
                    let own_delay = own_delay_of[op_id];
                    // chain only if both fit in one cycle, else next cycle
                    let same_cycle_ok = pred_delay + own_delay + 190.0 < clock_period_ps;
                    earliest = earliest.max(if same_cycle_ok { tp } else { tp + 1 });
                }
            }

            // find a slot from `earliest` within a budget of II consecutive
            // candidate cycles (classical IMS search window)
            let mut placed = false;
            for t in earliest..earliest + ii.max(1) * 4 {
                if let Some(c) = class {
                    let key = c.index() * ii as usize + (t % ii) as usize;
                    if mrt[key] >= limit_of[c.index()] {
                        continue;
                    }
                    mrt[key] += 1;
                }
                time_of[op_id] = Some(t);
                placed = true;
                break;
            }
            if !placed {
                continue 'ii_loop;
            }
        }

        // verify loop-carried dependences: t(to) + d*II >= t(from) (+1 cycle)
        for &(from, to, distance) in &carried_deps {
            let (Some(tf), Some(tt)) = (time_of[from], time_of[to]) else {
                continue;
            };
            if tt + distance * ii < tf {
                continue 'ii_loop;
            }
        }

        let resource_counts: Vec<usize> = (0..num_classes)
            .map(|c| {
                (0..ii as usize)
                    .map(|slot| mrt[c * ii as usize + slot])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        return Some(ModuloResult {
            ii,
            time_of: time_of
                .iter()
                .filter_map(|(id, t)| t.map(|t| (id, t)))
                .collect(),
            attempts,
            interner,
            resource_counts,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;

    fn example1() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    #[test]
    fn modulo_baseline_schedules_example1() {
        let body = example1();
        let lib = TechLibrary::artisan_90nm_typical();
        let result = modulo_schedule(&body, &lib, 1600.0, 2, 8, |_| 2).expect("feasible");
        assert!(result.ii >= 2);
        assert_eq!(result.time_of.len(), body.dfg.num_ops());
        assert!(result.latency() >= 2);
        // dependences respected (intra-iteration, non-chained ordering)
        for dep in body.dfg.data_deps() {
            if dep.distance == 0 {
                assert!(result.time_of[&dep.from] <= result.time_of[&dep.to]);
            }
        }
    }

    #[test]
    fn tighter_resource_limit_never_lowers_ii() {
        let body = example1();
        let lib = TechLibrary::artisan_90nm_typical();
        let generous = modulo_schedule(&body, &lib, 1600.0, 1, 12, |_| 4).expect("feasible");
        let scarce = modulo_schedule(&body, &lib, 1600.0, 1, 12, |c| {
            if matches!(c, ResourceClass::Multiplier) {
                1
            } else {
                4
            }
        })
        .expect("feasible");
        assert!(scarce.ii >= generous.ii);
    }

    #[test]
    fn resource_counts_are_keyed_by_interned_class_ids() {
        let body = example1();
        let lib = TechLibrary::artisan_90nm_typical();
        let result = modulo_schedule(&body, &lib, 1600.0, 2, 8, |_| 2).expect("feasible");
        assert!(result.count_of(&ResourceClass::Multiplier) >= 1);
        assert_eq!(result.count_of(&ResourceClass::IpBlock("nope".into())), 0);
        // every reported id resolves through the owning interner
        for (id, class, n) in result.counts() {
            assert_eq!(result.interner.lookup_class(class), Some(id));
            assert!(n > 0);
            assert_eq!(result.resource_counts[id.index()], n);
        }
    }

    #[test]
    fn infeasible_window_returns_none() {
        let body = example1();
        let lib = TechLibrary::artisan_90nm_typical();
        // zero resources for multipliers → impossible
        assert!(modulo_schedule(&body, &lib, 1600.0, 1, 3, |_| 0).is_none());
    }
}
