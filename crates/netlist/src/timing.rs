//! Register-to-register path timing and combinational-cycle detection.
//!
//! The delay model follows the paper's Figure 8 walk-through exactly:
//!
//! ```text
//! del = FF_launch + del_mux(in) + del_FU + ... + del_mux(reg) + FF_setup
//! ```
//!
//! Values arriving from registers (previous control steps, loop-carried
//! values, live-ins) contribute the flip-flop clock-to-Q launch delay;
//! chained operations contribute their own input-mux + functional-unit
//! delays; the path ends with the destination register's sharing multiplexer
//! and setup time.

use hls_ir::OpId;
use hls_nir::{BinKind, CellKind, UnKind};
use hls_tech::{ClockConstraint, ResourceClass, ResourceType, TechLibrary};
use std::collections::HashMap;

/// Cached path-delay calculator.
#[derive(Debug)]
pub struct ChainTiming<'a> {
    lib: &'a TechLibrary,
    clock: ClockConstraint,
    delay_cache: HashMap<ResourceType, f64>,
}

impl<'a> ChainTiming<'a> {
    /// Creates a timing calculator for the given library and clock.
    pub fn new(lib: &'a TechLibrary, clock: ClockConstraint) -> Self {
        ChainTiming {
            lib,
            clock,
            delay_cache: HashMap::new(),
        }
    }

    /// The clock constraint in force.
    pub fn clock(&self) -> ClockConstraint {
        self.clock
    }

    /// Flip-flop launch (clock-to-Q) delay: the arrival time of any value
    /// that comes out of a register at the start of the cycle.
    pub fn register_arrival_ps(&self) -> f64 {
        self.lib.register_clk_to_q_ps()
    }

    /// Combinational delay of a resource type, memoized.
    pub fn resource_delay_ps(&mut self, ty: &ResourceType) -> f64 {
        if let Some(&d) = self.delay_cache.get(ty) {
            return d;
        }
        let d = self.lib.delay_ps(ty);
        self.delay_cache.insert(ty.clone(), d);
        d
    }

    /// Delay of the sharing multiplexer at a functional unit input when the
    /// unit serves `ops_per_instance` operations (1 → no mux).
    pub fn input_mux_delay_ps(&self, ops_per_instance: usize, width: u16) -> f64 {
        if ops_per_instance <= 1 {
            0.0
        } else {
            self.lib
                .mux_delay_ps(ops_per_instance.min(u8::MAX as usize) as u8, width)
        }
    }

    /// Delay charged for the destination register's input multiplexer. The
    /// paper charges one 2-input mux on every register-bound path (registers
    /// are shared by default), which is what reproduces the 1230/1580/1800 ps
    /// figures of Example 1.
    pub fn register_mux_delay_ps(&self, width: u16) -> f64 {
        self.lib.mux_delay_ps(2, width)
    }

    /// Completes a path: arrival time of the last chained operation plus the
    /// register mux and setup. Returns the total register-to-register delay.
    pub fn path_to_register_ps(&self, arrival_ps: f64, width: u16) -> f64 {
        self.path_to_register_shared_ps(arrival_ps, width, true)
    }

    /// Like [`ChainTiming::path_to_register_ps`], but the destination
    /// register's sharing mux is only charged when register sharing is
    /// possible. With `II = 1` every control step is equivalent to every
    /// other, so neither resources nor registers can be shared and the mux
    /// disappears (this is what lets the paper's Example 3 close timing).
    pub fn path_to_register_shared_ps(&self, arrival_ps: f64, width: u16, shared: bool) -> f64 {
        let mux = if shared {
            self.register_mux_delay_ps(width)
        } else {
            0.0
        };
        arrival_ps + mux + self.lib.register_setup_ps()
    }

    /// Slack of a completed path with explicit register-sharing handling.
    pub fn slack_shared_ps(&self, arrival_ps: f64, width: u16, shared: bool) -> f64 {
        self.clock
            .slack_ps(self.path_to_register_shared_ps(arrival_ps, width, shared))
    }

    /// Slack of a completed register-to-register path.
    pub fn slack_ps(&self, arrival_ps: f64, width: u16) -> f64 {
        self.clock
            .slack_ps(self.path_to_register_ps(arrival_ps, width))
    }

    /// Whether a completed path meets the clock.
    pub fn meets_clock(&self, arrival_ps: f64, width: u16) -> bool {
        self.slack_ps(arrival_ps, width) >= 0.0
    }

    /// Flip-flop setup time: the capture cost charged at every
    /// register-input (or output-port) timing endpoint.
    pub fn setup_ps(&self) -> f64 {
        self.lib.register_setup_ps()
    }

    /// Fixed per-cycle register cost: launch (clock-to-Q) plus capture
    /// (setup). No rewrite can create a path cheaper than this, so a clock
    /// period below it is unachievable — timing-driven rewriting uses this
    /// as its feasibility floor.
    pub fn register_overhead_ps(&self) -> f64 {
        self.register_arrival_ps() + self.setup_ps()
    }

    /// Delay of an `n`-leaf steering-mux tree of the given data width — the
    /// paper's per-fan-in sharing-mux cost (mux2 = 110 ps, mux3 = 115 ps,
    /// ~5 ps per further tree level). Fan-ins below 2 cost nothing; fan-ins
    /// beyond 255 saturate at the 255-input figure.
    pub fn mux_tree_delay_ps(&self, fanin: usize, width: u16) -> f64 {
        if fanin <= 1 {
            0.0
        } else {
            self.lib
                .mux_delay_ps(fanin.min(u8::MAX as usize) as u8, width)
        }
    }

    /// Combinational delay of one netlist cell, costed through the same
    /// library figures the scheduler's chaining model uses. `in_widths` are
    /// the operand widths (as found on the cell's operand cells), `out` the
    /// cell's own width. Sources and registers have no *combinational*
    /// delay — their launch cost is [`ChainTiming::register_arrival_ps`] —
    /// and wiring-only cells (slice/resize) are free. Multiplexers are
    /// costed at fan-in 2 here; chain/tree fan-in is the analyzer's job
    /// (see [`ChainTiming::mux_tree_delay_ps`]).
    pub fn cell_delay_ps(&mut self, kind: &CellKind, in_widths: &[u16], out: u16) -> f64 {
        let a = in_widths.first().copied().unwrap_or(out).max(1);
        let b = in_widths.get(1).copied().unwrap_or(a).max(1);
        let out = out.max(1);
        let ty = match kind {
            CellKind::Bin(op) => {
                let class = match op {
                    BinKind::Add | BinKind::Sub => ResourceClass::Adder,
                    BinKind::Mul => ResourceClass::Multiplier,
                    BinKind::Div | BinKind::Rem => ResourceClass::Divider,
                    BinKind::And | BinKind::Or | BinKind::Xor => ResourceClass::Logic,
                    BinKind::Shl | BinKind::Shr => ResourceClass::Shifter,
                    BinKind::Cmp(hls_ir::CmpKind::Eq | hls_ir::CmpKind::Ne) => {
                        ResourceClass::EqualityComparator
                    }
                    BinKind::Cmp(_) => ResourceClass::Comparator,
                };
                ResourceType::binary(class, a, b, out)
            }
            CellKind::Un(op) => {
                let class = match op {
                    UnKind::Not => ResourceClass::Logic,
                    UnKind::Neg => ResourceClass::Adder,
                };
                ResourceType::unary(class, a, out)
            }
            CellKind::Mux { .. } => return self.mux_tree_delay_ps(2, out),
            // Wiring, sources and clocked cells: no combinational delay.
            CellKind::Slice { .. }
            | CellKind::Resize
            | CellKind::Const(_)
            | CellKind::Input { .. }
            | CellKind::Output { .. }
            | CellKind::Reg { .. }
            | CellKind::FsmState
            | CellKind::StageValid { .. }
            | CellKind::FirstIter { .. } => return 0.0,
        };
        self.resource_delay_ps(&ty)
    }

    /// Arrival time at the output of an operation chained after its inputs:
    /// `max(input arrivals) + input mux + FU delay`.
    pub fn op_arrival_ps(
        &mut self,
        input_arrivals: &[f64],
        ops_per_instance: usize,
        ty: &ResourceType,
    ) -> f64 {
        let base = input_arrivals.iter().copied().fold(0.0f64, f64::max);
        let width = ty.max_width();
        base + self.input_mux_delay_ps(ops_per_instance, width) + self.resource_delay_ps(ty)
    }
}

/// Incremental combinational-cycle detection over resource instances.
///
/// Nodes are resource instances (or any small integer key); a directed edge
/// `a → b` means "in some control step, a value flows combinationally from a
/// unit bound on `a` into a unit bound on `b` (chaining)". A cycle means two
/// shared units feed each other combinationally through their sharing muxes —
/// the false combinational cycle of the paper's Figure 6, which the scheduler
/// must avoid by rejecting the candidate binding.
#[derive(Clone, Debug, Default)]
pub struct CombGraph {
    edges: HashMap<u32, Vec<u32>>,
}

impl CombGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a combinational edge.
    pub fn add_edge(&mut self, from: u32, to: u32) {
        let entry = self.edges.entry(from).or_default();
        if !entry.contains(&to) {
            entry.push(to);
        }
    }

    /// Whether a path `from → ... → to` already exists.
    pub fn has_path(&self, from: u32, to: u32) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = std::collections::HashSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(succs) = self.edges.get(&n) {
                for &s in succs {
                    if s == to {
                        return true;
                    }
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Whether adding the edge `from → to` would create a directed cycle.
    pub fn would_create_cycle(&self, from: u32, to: u32) -> bool {
        from == to || self.has_path(to, from)
    }

    /// Number of edges currently recorded.
    pub fn num_edges(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }
}

/// A per-operation arrival-time table, convenient for the scheduler's
/// incremental chaining analysis within one control step.
#[derive(Clone, Debug, Default)]
pub struct ArrivalTable {
    arrivals: HashMap<OpId, f64>,
}

impl ArrivalTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the arrival time of an operation's result.
    pub fn set(&mut self, op: OpId, arrival_ps: f64) {
        self.arrivals.insert(op, arrival_ps);
    }

    /// Arrival of an operation's result, if known.
    pub fn get(&self, op: OpId) -> Option<f64> {
        self.arrivals.get(&op).copied()
    }

    /// Removes every recorded arrival (e.g. when a scheduling pass restarts).
    pub fn clear(&mut self) {
        self.arrivals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_tech::ResourceClass;

    fn setup() -> (TechLibrary, ClockConstraint) {
        (
            TechLibrary::artisan_90nm_typical(),
            ClockConstraint::from_period_ps(1600.0),
        )
    }

    #[test]
    fn register_overhead_is_the_launch_plus_capture_floor() {
        let (lib, clock) = setup();
        let t = ChainTiming::new(&lib, clock);
        assert!((t.register_overhead_ps() - 80.0).abs() < 1e-9, "40 + 40");
        assert_eq!(
            t.register_overhead_ps(),
            t.register_arrival_ps() + t.setup_ps()
        );
    }

    #[test]
    fn figure8a_mul_binding_is_1230ps() {
        let (lib, clock) = setup();
        let mut t = ChainTiming::new(&lib, clock);
        let mul = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        // mul shared by 3 candidate operations → 2-way-or-more input mux;
        // the paper charges a mux2 (110 ps) here.
        let arrival = t.op_arrival_ps(&[t.register_arrival_ps()], 2, &mul);
        let total = t.path_to_register_ps(arrival, 32);
        assert!((total - 1230.0).abs() < 1.0, "got {total}");
        assert!(t.meets_clock(arrival, 32));
    }

    #[test]
    fn figure8b_chained_add_is_1580ps() {
        let (lib, clock) = setup();
        let mut t = ChainTiming::new(&lib, clock);
        let mul = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        let add = ResourceType::binary(ResourceClass::Adder, 32, 32, 32);
        let mul_arrival = t.op_arrival_ps(&[t.register_arrival_ps()], 2, &mul);
        // single addition in the DFG → no input mux on the adder
        let add_arrival = t.op_arrival_ps(&[mul_arrival, t.register_arrival_ps()], 1, &add);
        let total = t.path_to_register_ps(add_arrival, 32);
        assert!((total - 1580.0).abs() < 1.0, "got {total}");
        assert!(t.meets_clock(add_arrival, 32));
    }

    #[test]
    fn figure8c_gt_after_add_misses_clock_by_200ps() {
        let (lib, clock) = setup();
        let mut t = ChainTiming::new(&lib, clock);
        let mul = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        let add = ResourceType::binary(ResourceClass::Adder, 32, 32, 32);
        let gt = ResourceType::binary(ResourceClass::Comparator, 32, 32, 1);
        let mul_arrival = t.op_arrival_ps(&[t.register_arrival_ps()], 2, &mul);
        let add_arrival = t.op_arrival_ps(&[mul_arrival, t.register_arrival_ps()], 1, &add);
        let gt_arrival = t.op_arrival_ps(&[add_arrival, t.register_arrival_ps()], 1, &gt);
        let slack = t.slack_ps(gt_arrival, 32);
        assert!((slack + 200.0).abs() < 1.0, "slack {slack}");
        assert!(!t.meets_clock(gt_arrival, 32));
    }

    #[test]
    fn two_chained_multiplications_never_fit_1600ps() {
        let (lib, clock) = setup();
        let mut t = ChainTiming::new(&lib, clock);
        let mul = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        let first = t.op_arrival_ps(&[t.register_arrival_ps()], 1, &mul);
        let second = t.op_arrival_ps(&[first], 1, &mul);
        assert!(
            !t.meets_clock(second, 32),
            "the paper notes 2 muls cannot fit in one cycle"
        );
    }

    #[test]
    fn delay_queries_are_cached() {
        let (lib, clock) = setup();
        let mut t = ChainTiming::new(&lib, clock);
        let mul = ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32);
        let a = t.resource_delay_ps(&mul);
        let b = t.resource_delay_ps(&mul);
        assert_eq!(a, b);
    }

    #[test]
    fn cell_delays_match_the_table1_resources() {
        let (lib, clock) = setup();
        let mut t = ChainTiming::new(&lib, clock);
        let mul = t.cell_delay_ps(&CellKind::Bin(BinKind::Mul), &[32, 32], 32);
        assert!((mul - 930.0).abs() < 1.0, "got {mul}");
        let add = t.cell_delay_ps(&CellKind::Bin(BinKind::Add), &[32, 32], 32);
        assert!((add - 350.0).abs() < 1.0, "got {add}");
        let gt = t.cell_delay_ps(
            &CellKind::Bin(BinKind::Cmp(hls_ir::CmpKind::Gt)),
            &[32, 32],
            1,
        );
        assert!((gt - 220.0).abs() < 1.0, "got {gt}");
        let neq = t.cell_delay_ps(
            &CellKind::Bin(BinKind::Cmp(hls_ir::CmpKind::Ne)),
            &[32, 32],
            1,
        );
        assert!((neq - 60.0).abs() < 1.0, "got {neq}");
        // wiring is free, sources and registers carry no combinational delay
        assert_eq!(t.cell_delay_ps(&CellKind::Resize, &[8], 16), 0.0);
        assert_eq!(
            t.cell_delay_ps(&CellKind::Slice { hi: 3, lo: 0 }, &[8], 4),
            0.0
        );
        assert_eq!(t.cell_delay_ps(&CellKind::Reg { init: 0 }, &[8, 1], 8), 0.0);
        assert_eq!(t.cell_delay_ps(&CellKind::Const(7), &[], 8), 0.0);
        // a unary negation runs on adder hardware
        let neg = t.cell_delay_ps(&CellKind::Un(UnKind::Neg), &[32], 32);
        assert!((neg - 350.0).abs() < 1.0, "got {neg}");
    }

    #[test]
    fn mux_tree_delay_follows_fanin() {
        let (lib, clock) = setup();
        let t = ChainTiming::new(&lib, clock);
        assert_eq!(t.mux_tree_delay_ps(0, 32), 0.0);
        assert_eq!(t.mux_tree_delay_ps(1, 32), 0.0);
        let m2 = t.mux_tree_delay_ps(2, 32);
        assert!((m2 - 110.0).abs() < 1.0, "got {m2}");
        let m3 = t.mux_tree_delay_ps(3, 32);
        assert!((m3 - 115.0).abs() < 1.0, "got {m3}");
        let m8 = t.mux_tree_delay_ps(8, 32);
        assert!(m8 > m3 && m8 < 2.0 * m2, "a tree, not a chain: {m8}");
        // the per-cell mux cost is the 2-way figure
        let mut t = ChainTiming::new(&lib, clock);
        assert_eq!(
            t.cell_delay_ps(&CellKind::Mux { onehot: false }, &[1, 32, 32], 32),
            m2
        );
        // saturates instead of overflowing beyond u8 fan-in
        assert!(t.mux_tree_delay_ps(4096, 32) >= t.mux_tree_delay_ps(255, 32));
    }

    #[test]
    fn comb_graph_detects_figure6_cycle() {
        // adder A feeds adder B in s1, adder B feeds adder A in s2 → cycle
        let mut g = CombGraph::new();
        g.add_edge(0, 1); // A -> B (state s1 chaining)
        assert!(!g.would_create_cycle(0, 1));
        assert!(g.would_create_cycle(1, 0));
        g.add_edge(1, 2);
        assert!(g.would_create_cycle(2, 0));
        assert!(g.would_create_cycle(3, 3), "self edge is a cycle");
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn arrival_table_roundtrip() {
        let mut t = ArrivalTable::new();
        let op = OpId::from_raw(4);
        assert_eq!(t.get(op), None);
        t.set(op, 123.0);
        assert_eq!(t.get(op), Some(123.0));
        t.clear();
        assert_eq!(t.get(op), None);
    }
}
