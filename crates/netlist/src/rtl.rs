//! Verilog printer over the structural netlist.
//!
//! The printer is a thin, deterministic walk of a validated
//! [`hls_nir::NirModule`]: every cell prints as at most one declaration plus
//! one statement, in arena order, and carries its lowering-assigned display
//! name into the text. All behaviour-level decisions (operand steering,
//! register chains, predicates, resource sharing) were made by the lowering
//! and the rewrite passes — nothing here invents structure.
//!
//! Width semantics lean on the fact that every declared net is `signed`:
//! Verilog's implicit sign-extension on widening and truncation on assignment
//! match the netlist's `Resize` semantics exactly, so a `resize` cell is just
//! `assign dst = src;`. `Div`/`Rem` are guarded so division by zero produces
//! the evaluator's defined results (`a / 0 = 0`, `a % 0 = a`).

use hls_ir::BitVal;
use hls_nir::{sanitize, BinKind, CellId, CellKind, NirModule, UnKind};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders a constant at `width` bits: non-negative values as sized signed
/// decimals, negative ones as `$signed` bit patterns.
fn literal(value: i64, width: u16) -> String {
    let b = BitVal::new(value, width.max(1));
    let w = b.width();
    if b.as_i64() >= 0 {
        format!("{w}'sd{}", b.as_i64())
    } else {
        format!("$signed({w}'d{})", b.as_u64())
    }
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// True for cells that print as a declared net with their own statement;
/// everything else is referenced inline.
fn is_declared(kind: &CellKind) -> bool {
    matches!(
        kind,
        CellKind::Bin(_)
            | CellKind::Un(_)
            | CellKind::Mux { .. }
            | CellKind::Slice { .. }
            | CellKind::Resize
            | CellKind::Reg { .. }
    )
}

struct Printer<'a> {
    m: &'a NirModule,
    /// Identifier per declared cell; `None` for inline cells.
    names: Vec<Option<String>>,
}

impl<'a> Printer<'a> {
    fn new(m: &'a NirModule) -> Self {
        // Ports and fixed controller nets claim their identifiers first;
        // colliding cell names fall back to `n<id>`.
        let mut used: HashSet<String> = ["clk", "rst", "state", "stage_valid", "first_iter"]
            .into_iter()
            .map(String::from)
            .collect();
        for p in &m.ports {
            used.insert(sanitize(&p.name));
        }
        let mut names = Vec::with_capacity(m.num_cells());
        for (id, cell) in m.iter_cells() {
            if !is_declared(&cell.kind) {
                names.push(None);
                continue;
            }
            let candidate = cell
                .name
                .as_deref()
                .map(sanitize)
                .filter(|n| !used.contains(n))
                .unwrap_or_else(|| format!("n{}", id.index()));
            used.insert(candidate.clone());
            names.push(Some(candidate));
        }
        Printer { m, names }
    }

    /// The expression that reads the value of `id`: the declared identifier,
    /// or an inline rendering for constants, port reads and controller bits.
    fn reference(&self, id: CellId) -> String {
        if let Some(name) = &self.names[id.index()] {
            return name.clone();
        }
        let cell = self.m.cell(id);
        match &cell.kind {
            CellKind::Const(v) => literal(*v, cell.width),
            CellKind::Input { port, .. } => sanitize(&self.m.ports[*port as usize].name),
            CellKind::FsmState => "state".to_string(),
            CellKind::StageValid { stage } => format!("stage_valid[{stage}]"),
            CellKind::FirstIter { stage } => format!("first_iter[{stage}]"),
            CellKind::Output { .. } => {
                // Outputs are sinks; nothing references them.
                unreachable!("output cells have no value")
            }
            _ => unreachable!("declared kinds are named"),
        }
    }

    fn statement(&self, id: CellId) -> Option<String> {
        let cell = self.m.cell(id);
        let name = self.names[id.index()].as_deref()?;
        if cell.kind.is_seq() {
            return None; // registers print in the clocked block
        }
        let r = |i: usize| self.reference(cell.inputs[i]);
        let expr = match &cell.kind {
            CellKind::Bin(b) => {
                let (a, c) = (r(0), r(1));
                match b {
                    BinKind::Add => format!("{a} + {c}"),
                    BinKind::Sub => format!("{a} - {c}"),
                    BinKind::Mul => format!("{a} * {c}"),
                    // Hardware-friendly total division, matching the
                    // evaluator.
                    BinKind::Div => {
                        let zero = literal(0, self.m.cell(cell.inputs[1]).width);
                        format!("({c} == {zero}) ? {} : {a} / {c}", literal(0, cell.width))
                    }
                    BinKind::Rem => {
                        let zero = literal(0, self.m.cell(cell.inputs[1]).width);
                        format!("({c} == {zero}) ? {a} : {a} % {c}")
                    }
                    BinKind::And => format!("{a} & {c}"),
                    BinKind::Or => format!("{a} | {c}"),
                    BinKind::Xor => format!("{a} ^ {c}"),
                    BinKind::Shl => format!("{a} << {c}"),
                    BinKind::Shr => format!("{a} >>> {c}"),
                    BinKind::Cmp(k) => {
                        let sym = match k {
                            hls_ir::CmpKind::Eq => "==",
                            hls_ir::CmpKind::Ne => "!=",
                            hls_ir::CmpKind::Lt => "<",
                            hls_ir::CmpKind::Le => "<=",
                            hls_ir::CmpKind::Gt => ">",
                            hls_ir::CmpKind::Ge => ">=",
                        };
                        format!("{a} {sym} {c}")
                    }
                }
            }
            CellKind::Un(UnKind::Not) => format!("~{}", r(0)),
            CellKind::Un(UnKind::Neg) => format!("-{}", r(0)),
            CellKind::Mux { .. } => format!("{} ? {} : {}", r(0), r(1), r(2)),
            CellKind::Slice { hi, lo } => {
                let src = r(0);
                let iw = self.m.cell(cell.inputs[0]).width;
                if is_identifier(&src) && *hi < iw {
                    format!("{src}[{hi}:{lo}]")
                } else if *lo == 0 {
                    // Assignment truncates to the slice width.
                    src
                } else {
                    format!("{src} >>> {lo}")
                }
            }
            // Sign-extension / truncation is implicit in the assignment.
            CellKind::Resize => r(0),
            _ => return None,
        };
        Some(format!("  assign {name} = {expr};"))
    }
}

fn width_range(width: u16) -> String {
    format!("[{}:0]", width.saturating_sub(1))
}

/// Prints a validated netlist as synthesizable Verilog. The output is fully
/// deterministic: cells print in arena order under their lowering-assigned
/// names.
pub fn emit_verilog(m: &NirModule) -> String {
    let p = Printer::new(m);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {}: emitted by rpp-hls from the structural netlist",
        m.name
    );
    let _ = writeln!(
        out,
        "// {} cells, {} folded state(s), {} pipeline stage(s)",
        m.num_cells(),
        m.fold_states,
        m.stages
    );
    let _ = writeln!(out, "module {} (", sanitize(&m.name));
    let _ = writeln!(out, "  input wire clk,");
    let _ = write!(out, "  input wire rst");
    for port in &m.ports {
        let dir = match port.direction {
            hls_ir::PortDirection::Input => "input wire signed",
            hls_ir::PortDirection::Output => "output reg signed",
        };
        let _ = write!(
            out,
            ",\n  {dir} {} {}",
            width_range(port.width),
            sanitize(&port.name)
        );
    }
    let _ = writeln!(out, "\n);");

    // --- controller -------------------------------------------------------
    let has_fsm = m.cells.iter().any(|c| matches!(c.kind, CellKind::FsmState));
    let has_sv = m
        .cells
        .iter()
        .any(|c| matches!(c.kind, CellKind::StageValid { .. }));
    let has_fi = m
        .cells
        .iter()
        .any(|c| matches!(c.kind, CellKind::FirstIter { .. }));
    if has_fsm || has_sv || has_fi {
        let fold = m.fold_states.max(1);
        let stages = m.stages.max(1);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  // controller: {fold} folded state(s), {stages} stage(s)"
        );
        let _ = writeln!(out, "  reg [7:0] state;");
        if has_sv {
            let _ = writeln!(out, "  reg {} stage_valid;", width_range(stages as u16));
        }
        if has_fi {
            let _ = writeln!(out, "  reg {} first_iter;", width_range(stages as u16));
        }
        let _ = writeln!(out, "  always @(posedge clk) begin");
        let _ = writeln!(out, "    if (rst) begin");
        let _ = writeln!(out, "      state <= 8'd0;");
        if has_sv {
            // Stage 0 has valid work from the very first cycle.
            let _ = writeln!(out, "      stage_valid <= {stages}'d1;");
        }
        if has_fi {
            let _ = writeln!(out, "      first_iter <= {stages}'d1;");
        }
        let _ = writeln!(out, "    end else begin");
        let _ = writeln!(
            out,
            "      state <= (state == 8'd{}) ? 8'd0 : state + 8'd1;",
            fold - 1
        );
        if has_sv {
            let fill = if stages > 1 {
                format!("{{stage_valid[{}:0], 1'b1}}", stages - 2)
            } else {
                "1'b1".to_string()
            };
            let _ = writeln!(
                out,
                "      if (state == 8'd{}) stage_valid <= {fill}; // pipeline fill",
                fold - 1
            );
        }
        if has_fi {
            let _ = writeln!(
                out,
                "      if (state == 8'd{}) first_iter <= first_iter << 1; // track iteration 0",
                fold - 1
            );
        }
        let _ = writeln!(out, "    end");
        let _ = writeln!(out, "  end");
    }

    // --- combinational cells ---------------------------------------------
    let comb: Vec<CellId> = m
        .iter_cells()
        .filter(|(_, c)| is_declared(&c.kind) && !c.kind.is_seq())
        .map(|(id, _)| id)
        .collect();
    if !comb.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  // combinational cells");
        for &id in &comb {
            let _ = writeln!(
                out,
                "  wire signed {} {};",
                width_range(m.cell(id).width),
                p.names[id.index()].as_deref().unwrap()
            );
        }
        for &id in &comb {
            if let Some(stmt) = p.statement(id) {
                let _ = writeln!(out, "{stmt}");
            }
        }
    }

    // --- registers and output captures -----------------------------------
    let regs: Vec<CellId> = m
        .iter_cells()
        .filter(|(_, c)| c.kind.is_seq())
        .map(|(id, _)| id)
        .collect();
    let outputs: Vec<CellId> = m
        .iter_cells()
        .filter(|(_, c)| matches!(c.kind, CellKind::Output { .. }))
        .map(|(id, _)| id)
        .collect();
    if !regs.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  // datapath registers");
        for &id in &regs {
            let _ = writeln!(
                out,
                "  reg signed {} {};",
                width_range(m.cell(id).width),
                p.names[id.index()].as_deref().unwrap()
            );
        }
    }
    if !regs.is_empty() || !outputs.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  always @(posedge clk) begin");
        let _ = writeln!(out, "    if (rst) begin");
        for &id in &regs {
            let cell = m.cell(id);
            let CellKind::Reg { init } = cell.kind else {
                unreachable!()
            };
            let _ = writeln!(
                out,
                "      {} <= {};",
                p.names[id.index()].as_deref().unwrap(),
                literal(init, cell.width)
            );
        }
        for &id in &outputs {
            let cell = m.cell(id);
            let CellKind::Output { port, .. } = cell.kind else {
                unreachable!()
            };
            let _ = writeln!(
                out,
                "      {} <= {};",
                sanitize(&m.ports[port as usize].name),
                literal(0, cell.width)
            );
        }
        let _ = writeln!(out, "    end else begin");
        for &id in &regs {
            let cell = m.cell(id);
            let target = p.names[id.index()].as_deref().unwrap().to_string();
            write_capture(&mut out, &p, &target, cell.inputs[0], cell.inputs[1], m);
        }
        for &id in &outputs {
            let cell = m.cell(id);
            let CellKind::Output { port, .. } = cell.kind else {
                unreachable!()
            };
            let target = sanitize(&m.ports[port as usize].name);
            write_capture(&mut out, &p, &target, cell.inputs[0], cell.inputs[1], m);
        }
        let _ = writeln!(out, "    end");
        let _ = writeln!(out, "  end");
    }

    let _ = writeln!(out, "endmodule");
    out
}

fn write_capture(
    out: &mut String,
    p: &Printer<'_>,
    target: &str,
    data: CellId,
    enable: CellId,
    m: &NirModule,
) {
    let d = p.reference(data);
    match m.cell(enable).kind {
        // A constant enable needs no guard (and a constant-false one no
        // statement at all).
        CellKind::Const(v) => {
            if BitVal::new(v, m.cell(enable).width).is_true() {
                let _ = writeln!(out, "      {target} <= {d};");
            }
        }
        _ => {
            let _ = writeln!(out, "      if ({}) {target} <= {d};", p.reference(enable));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{Port, PortDirection};
    use hls_nir::{validate, Cell, NirModule};

    fn named(
        m: &mut NirModule,
        kind: CellKind,
        width: u16,
        inputs: Vec<CellId>,
        name: &str,
    ) -> CellId {
        m.add_cell(Cell {
            kind,
            width,
            inputs,
            name: Some(name.to_string()),
        })
    }

    /// A tiny hand-built accumulator netlist: out <= reg(acc + x) in a
    /// 2-state FSM, written in state 1.
    fn accumulator() -> NirModule {
        let mut m = NirModule::new("acc loop");
        m.fold_states = 2;
        m.num_states = 2;
        m.ports.push(Port {
            name: "x".into(),
            direction: PortDirection::Input,
            width: 16,
        });
        m.ports.push(Port {
            name: "out".into(),
            direction: PortDirection::Output,
            width: 16,
        });
        let x = m.push(CellKind::Input { port: 0, state: 0 }, 16, vec![]);
        let fsm = m.push(CellKind::FsmState, 8, vec![]);
        let s0 = m.push(CellKind::Const(0), 8, vec![]);
        let in_s0 = named(
            &mut m,
            CellKind::Bin(BinKind::Cmp(hls_ir::CmpKind::Eq)),
            1,
            vec![fsm, s0],
            "at_s0",
        );
        // acc register feeds back through an adder
        let en1 = m.push(CellKind::Const(1), 1, vec![]);
        let acc = m.add_cell(Cell {
            kind: CellKind::Reg { init: 0 },
            width: 16,
            inputs: vec![x, en1], // patched below
            name: Some("v_acc".into()),
        });
        let sum = named(
            &mut m,
            CellKind::Bin(BinKind::Add),
            16,
            vec![acc, x],
            "w_sum",
        );
        m.cells[acc.index()].inputs = vec![sum, in_s0];
        let s1 = m.push(CellKind::Const(1), 8, vec![]);
        let in_s1 = named(
            &mut m,
            CellKind::Bin(BinKind::Cmp(hls_ir::CmpKind::Eq)),
            1,
            vec![fsm, s1],
            "at_s1",
        );
        m.push(CellKind::Output { port: 1, state: 1 }, 16, vec![acc, in_s1]);
        m
    }

    #[test]
    fn prints_a_complete_module() {
        let m = accumulator();
        validate(&m).unwrap();
        let v = emit_verilog(&m);
        assert!(v.contains("module acc_loop ("), "{v}");
        assert!(v.contains("input wire signed [15:0] x"), "{v}");
        assert!(v.contains("output reg signed [15:0] out"), "{v}");
        assert!(v.contains("reg [7:0] state;"), "{v}");
        assert!(
            v.contains("state <= (state == 8'd1) ? 8'd0 : state + 8'd1;"),
            "{v}"
        );
        assert!(v.contains("assign at_s0 = state == 8'sd0;"), "{v}");
        assert!(v.contains("assign w_sum = v_acc + x;"), "{v}");
        assert!(v.contains("if (at_s0) v_acc <= w_sum;"), "{v}");
        assert!(v.contains("if (at_s1) out <= v_acc;"), "{v}");
        assert!(v.ends_with("endmodule\n"), "{v}");
    }

    #[test]
    fn one_multiply_cell_prints_one_star() {
        let mut m = NirModule::new("mul once");
        m.ports.push(Port {
            name: "o".into(),
            direction: PortDirection::Output,
            width: 8,
        });
        let a = m.push(CellKind::Const(3), 8, vec![]);
        let b = m.push(CellKind::Const(5), 8, vec![]);
        let prod = named(&mut m, CellKind::Bin(BinKind::Mul), 8, vec![a, b], "w_p");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        m.push(CellKind::Output { port: 0, state: 0 }, 8, vec![prod, en]);
        validate(&m).unwrap();
        let v = emit_verilog(&m);
        assert_eq!(v.matches(" * ").count(), 1, "{v}");
        // constant-true enable prints an unguarded capture
        assert!(v.contains("      o <= w_p;"), "{v}");
    }

    #[test]
    fn resize_and_slice_print_as_assignments() {
        let mut m = NirModule::new("shapes");
        m.ports.push(Port {
            name: "o".into(),
            direction: PortDirection::Output,
            width: 4,
        });
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let c = m.push(CellKind::Const(-100), 16, vec![]);
        let r = m.add_cell(Cell {
            kind: CellKind::Reg { init: 0 },
            width: 16,
            inputs: vec![c, en],
            name: Some("v_c".into()),
        });
        let sl = named(
            &mut m,
            CellKind::Slice { hi: 11, lo: 4 },
            8,
            vec![r],
            "w_mid",
        );
        let rz = named(&mut m, CellKind::Resize, 4, vec![sl], "w_small");
        m.push(CellKind::Output { port: 0, state: 0 }, 4, vec![rz, en]);
        validate(&m).unwrap();
        let v = emit_verilog(&m);
        assert!(v.contains("assign w_mid = v_c[11:4];"), "{v}");
        // truncation is implicit in the assignment
        assert!(v.contains("assign w_small = w_mid;"), "{v}");
    }

    #[test]
    fn division_is_guarded_against_zero() {
        let mut m = NirModule::new("divs");
        m.ports.push(Port {
            name: "o".into(),
            direction: PortDirection::Output,
            width: 8,
        });
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let c = m.push(CellKind::Const(9), 8, vec![]);
        let d = m.add_cell(Cell {
            kind: CellKind::Reg { init: 1 },
            width: 8,
            inputs: vec![c, en],
            name: Some("v_d".into()),
        });
        let q = named(&mut m, CellKind::Bin(BinKind::Div), 8, vec![c, d], "w_q");
        m.push(CellKind::Output { port: 0, state: 0 }, 8, vec![q, en]);
        validate(&m).unwrap();
        let v = emit_verilog(&m);
        assert!(
            v.contains("assign w_q = (v_d == 8'sd0) ? 8'sd0 : 8'sd9 / v_d;"),
            "{v}"
        );
    }

    #[test]
    fn pipeline_controller_prints_fill_and_first_iteration_pipes() {
        let mut m = NirModule::new("pipe");
        m.fold_states = 2;
        m.num_states = 4;
        m.stages = 2;
        m.ports.push(Port {
            name: "o".into(),
            direction: PortDirection::Output,
            width: 8,
        });
        let sv = m.push(CellKind::StageValid { stage: 1 }, 1, vec![]);
        let _fi = m.push(CellKind::FirstIter { stage: 0 }, 1, vec![]);
        let c = m.push(CellKind::Const(7), 8, vec![]);
        m.push(CellKind::Output { port: 0, state: 3 }, 8, vec![c, sv]);
        validate(&m).unwrap();
        let v = emit_verilog(&m);
        assert!(v.contains("reg [1:0] stage_valid;"), "{v}");
        assert!(v.contains("stage_valid <= 2'd1;"), "{v}");
        assert!(
            v.contains("if (state == 8'd1) stage_valid <= {stage_valid[0:0], 1'b1};"),
            "{v}"
        );
        assert!(
            v.contains("if (state == 8'd1) first_iter <= first_iter << 1;"),
            "{v}"
        );
        assert!(v.contains("if (stage_valid[1]) o <= 8'sd7;"), "{v}");
    }
}
