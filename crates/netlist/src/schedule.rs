//! Schedule description, datapath extraction, and area / power estimation.

use hls_ir::{LinearBody, OpId, OpKind};
use hls_tech::{
    ClockConstraint, ImplVariant, ResourceInstanceId, ResourceSet, ResourceType, TechLibrary,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One scheduled and bound operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledOp {
    /// The operation.
    pub op: OpId,
    /// Control step (state) the operation executes in, within the loop body
    /// schedule (before folding for pipelined loops).
    pub state: u32,
    /// The resource instance it is bound to, if it occupies one (free
    /// operations such as constants have no binding).
    pub resource: Option<ResourceInstanceId>,
}

/// The result of scheduling one loop body: state count, bindings and the
/// allocated resource set, plus the initiation interval when pipelined.
#[derive(Clone, Debug, Default)]
pub struct ScheduleDesc {
    /// Number of control steps of the (unfolded) schedule — the latency
    /// interval LI for pipelined loops.
    pub num_states: u32,
    /// Initiation interval; `None` for a sequential (non-pipelined) schedule.
    pub ii: Option<u32>,
    /// Per-operation placement, keyed by operation.
    pub ops: BTreeMap<OpId, ScheduledOp>,
    /// The allocated resources.
    pub resources: ResourceSet,
}

impl ScheduleDesc {
    /// State of an operation.
    ///
    /// # Panics
    /// Panics if the operation is not scheduled.
    pub fn state_of(&self, op: OpId) -> u32 {
        self.ops[&op].state
    }

    /// Resource binding of an operation, if any.
    pub fn resource_of(&self, op: OpId) -> Option<ResourceInstanceId> {
        self.ops.get(&op).and_then(|s| s.resource)
    }

    /// Effective cycles per loop iteration: the initiation interval when
    /// pipelined, otherwise the full latency.
    pub fn cycles_per_iteration(&self) -> u32 {
        self.ii.unwrap_or(self.num_states).max(1)
    }

    /// Operations scheduled in a given state, in id order.
    pub fn ops_in_state(&self, state: u32) -> Vec<OpId> {
        self.ops
            .values()
            .filter(|s| s.state == state)
            .map(|s| s.op)
            .collect()
    }

    /// Number of *physical* FSM states after folding: the initiation
    /// interval for pipelined schedules, the full latency otherwise. This is
    /// the modulus of the controller's state counter in the emitted RTL and
    /// in the cycle-accurate simulator.
    pub fn fold_states(&self) -> u32 {
        // numerically the iteration cadence: the FSM wraps once per
        // initiated iteration
        self.cycles_per_iteration()
    }

    /// Clock cycle at which `op` fires while executing iteration
    /// `iteration`, assuming iteration `k` is initiated at cycle
    /// `k * cycles_per_iteration()` (back-to-back iterations). Returns
    /// `None` for unscheduled operations.
    pub fn fire_cycle(&self, op: OpId, iteration: u64) -> Option<u64> {
        self.ops
            .get(&op)
            .map(|s| iteration * u64::from(self.cycles_per_iteration()) + u64::from(s.state))
    }

    /// Pipeline stage of an operation (state / II); 0 for sequential
    /// schedules.
    pub fn stage_of(&self, op: OpId) -> u32 {
        match self.ii {
            Some(ii) if ii > 0 => self.state_of(op) / ii,
            _ => 0,
        }
    }

    /// Number of pipeline stages (`ceil(LI / II)`); 1 for sequential.
    pub fn num_stages(&self) -> u32 {
        match self.ii {
            Some(ii) if ii > 0 => self.num_states.div_ceil(ii),
            _ => 1,
        }
    }

    /// Renders the schedule as a state × resource table, like the paper's
    /// Table 2.
    pub fn to_table(&self, body: &LinearBody) -> String {
        let mut out = String::new();
        out.push_str("state | bindings\n");
        for state in 0..self.num_states {
            let mut cells = Vec::new();
            for op in self.ops_in_state(state) {
                let name = body.dfg.op(op).display_name();
                if body.dfg.op(op).kind.is_free() {
                    continue;
                }
                let res = self
                    .resource_of(op)
                    .map(|r| self.resources.instance(r).name.clone())
                    .unwrap_or_else(|| "-".to_string());
                cells.push(format!("{name}→{res}"));
            }
            out.push_str(&format!("s{}    | {}\n", state + 1, cells.join(", ")));
        }
        out
    }
}

/// Area breakdown of an implementation, in library area units.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AreaBreakdown {
    /// Functional units.
    pub functional: f64,
    /// Sharing multiplexers (FU inputs and register inputs).
    pub muxes: f64,
    /// Registers.
    pub registers: f64,
    /// FSM / controller.
    pub controller: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.functional + self.muxes + self.registers + self.controller
    }
}

/// Power breakdown of an implementation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Dynamic (switching) power in microwatts.
    pub dynamic_uw: f64,
    /// Leakage power in microwatts.
    pub leakage_uw: f64,
}

impl PowerBreakdown {
    /// Total power in microwatts.
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.leakage_uw
    }
}

/// The structural datapath extracted from a schedule: functional units with
/// their input-sharing multiplexers, storage registers and the controller.
#[derive(Clone, Debug)]
pub struct Datapath {
    /// Per resource instance: number of operations sharing it.
    pub ops_per_resource: HashMap<ResourceInstanceId, usize>,
    /// Registers allocated: `(producing op, width, copies)` — `copies` > 1
    /// when the value must survive several pipeline stages.
    pub registers: Vec<(OpId, u16, u32)>,
    /// Area breakdown.
    pub area: AreaBreakdown,
    /// Power breakdown.
    pub power: PowerBreakdown,
}

impl Datapath {
    /// Builds the datapath implied by a schedule and estimates its area and
    /// power, using the *fast* implementation variant for resources on
    /// timing-critical states and the *small* variant when slack allows.
    ///
    /// `slack_fraction` is the fraction of the clock period left unused on
    /// the most critical path (0.0 = critical, used to pick fast cells
    /// everywhere; larger values let non-critical units shrink).
    pub fn from_schedule(
        body: &LinearBody,
        sched: &ScheduleDesc,
        lib: &TechLibrary,
        clock: ClockConstraint,
        slack_fraction: f64,
    ) -> Datapath {
        // --- sharing structure -------------------------------------------------
        let mut ops_per_resource: HashMap<ResourceInstanceId, usize> = HashMap::new();
        for s in sched.ops.values() {
            if let Some(r) = s.resource {
                *ops_per_resource.entry(r).or_insert(0) += 1;
            }
        }

        // --- functional unit area ---------------------------------------------
        // Units whose class is fast enough to afford the small variant under
        // the given slack use it; otherwise the fast variant.
        let mut functional = 0.0;
        let mut fu_leakage = 0.0;
        for inst in sched.resources.iter() {
            let fast = lib.characterize_variant(&inst.ty, ImplVariant::Fast);
            let small = lib.characterize_variant(&inst.ty, ImplVariant::Small);
            let usable = clock.usable_period_ps() * (1.0 - slack_fraction.clamp(0.0, 0.9));
            let chosen = if small.delay_ps <= usable * 0.75 {
                small
            } else {
                fast
            };
            functional += chosen.area;
            fu_leakage += chosen.leakage_uw;
        }

        // --- sharing multiplexers ----------------------------------------------
        // FU input muxes: one n-way mux per input port of every shared unit.
        let mut muxes = 0.0;
        for (res, &n_ops) in &ops_per_resource {
            if n_ops >= 2 {
                let ty = &sched.resources.instance(*res).ty;
                let ports = ty.in_widths.len().max(1);
                for w in ty.in_widths.iter().take(ports) {
                    muxes += lib.mux_area(n_ops.min(255) as u8, *w);
                }
            }
        }

        // --- registers ----------------------------------------------------------
        // A value needs storage if any consumer reads it in a later state or a
        // later iteration; it needs one copy per stage boundary it crosses.
        let mut registers_list: Vec<(OpId, u16, u32)> = Vec::new();
        let mut register_area = 0.0;
        let mut writers_per_reg = 0usize;
        let consumers: HashMap<OpId, Vec<(OpId, u32)>> = {
            let mut m: HashMap<OpId, Vec<(OpId, u32)>> = HashMap::new();
            for (id, op) in body.dfg.iter_ops() {
                for sig in &op.inputs {
                    if let Some(p) = sig.producer() {
                        m.entry(p).or_default().push((id, sig.distance));
                    }
                }
            }
            m
        };
        for (id, op) in body.dfg.iter_ops() {
            if op.kind.is_free() && !matches!(op.kind, OpKind::Pass) {
                continue;
            }
            let Some(sid) = sched.ops.get(&id) else {
                continue;
            };
            let mut max_span = 0u32;
            let mut needed = false;
            if let Some(cons) = consumers.get(&id) {
                for (c, distance) in cons {
                    let Some(cs) = sched.ops.get(c) else { continue };
                    if *distance > 0 {
                        needed = true;
                        let span = (cs.state + distance * sched.cycles_per_iteration())
                            .saturating_sub(sid.state)
                            .div_ceil(sched.cycles_per_iteration().max(1))
                            .max(1);
                        max_span = max_span.max(span);
                    } else if cs.state > sid.state {
                        needed = true;
                        let span = match sched.ii {
                            Some(ii) if ii > 0 => (cs.state - sid.state).div_ceil(ii).max(1),
                            _ => 1,
                        };
                        max_span = max_span.max(span);
                    }
                }
            }
            // Port writes always register their output value.
            if matches!(op.kind, OpKind::Write(_)) {
                needed = true;
                max_span = max_span.max(1);
            }
            if needed {
                let width = op.width;
                registers_list.push((id, width, max_span.max(1)));
                register_area += lib.register_area(width) * f64::from(max_span.max(1));
                writers_per_reg += 1;
            }
        }
        // Register-input sharing muxes: charge one 2-input mux per register.
        muxes += writers_per_reg as f64 * lib.mux_area(2, 32);

        // --- controller ----------------------------------------------------------
        let controller =
            60.0 + 35.0 * f64::from(sched.num_states) + 25.0 * f64::from(sched.num_stages());

        // --- power ----------------------------------------------------------------
        // Dynamic: every non-free op activates its resource once per iteration;
        // registers toggle every initiation interval.
        let iteration_ps = f64::from(sched.cycles_per_iteration()) * clock.period_ps();
        let mut energy_fj_per_iter = 0.0;
        for (id, op) in body.dfg.iter_ops() {
            if op.kind.is_free() {
                continue;
            }
            if !sched.ops.contains_key(&id) {
                continue;
            }
            if let Some(ty) = ResourceType::for_op(op) {
                energy_fj_per_iter += lib.energy_fj(&ty);
            }
        }
        for (_, width, copies) in &registers_list {
            energy_fj_per_iter +=
                lib.characterize(&ResourceType::register(*width)).energy_fj * f64::from(*copies);
        }
        // fJ / ps = mW; convert to µW (× 1000).
        let dynamic_uw = energy_fj_per_iter / iteration_ps * 1000.0;
        let area = AreaBreakdown {
            functional,
            muxes,
            registers: register_area,
            controller,
        };
        let leakage_uw = fu_leakage + 0.0008 * area.total();
        Datapath {
            ops_per_resource,
            registers: registers_list,
            area,
            power: PowerBreakdown {
                dynamic_uw,
                leakage_uw,
            },
        }
    }

    /// Total area in library units.
    pub fn total_area(&self) -> f64 {
        self.area.total()
    }

    /// Total power in microwatts.
    pub fn total_power_uw(&self) -> f64 {
        self.power.total_uw()
    }
}

/// Resource-level connectivity check: returns the pairs of resource instances
/// that are chained combinationally (producer and consumer bound in the same
/// state), used to seed [`crate::timing::CombGraph`].
pub fn chained_resource_pairs(
    body: &LinearBody,
    sched: &ScheduleDesc,
) -> HashSet<(ResourceInstanceId, ResourceInstanceId)> {
    let mut pairs = HashSet::new();
    for (id, op) in body.dfg.iter_ops() {
        let Some(si) = sched.ops.get(&id) else {
            continue;
        };
        let Some(ri) = si.resource else { continue };
        for sig in &op.inputs {
            if sig.distance > 0 {
                continue;
            }
            let Some(p) = sig.producer() else { continue };
            let Some(sp) = sched.ops.get(&p) else {
                continue;
            };
            if sp.state == si.state {
                if let Some(rp) = sp.resource {
                    pairs.insert((rp, ri));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{Dfg, PortDirection, Signal};
    use hls_tech::ResourceClass;

    /// A small hand-scheduled body: read → mul → add → write over 2 states.
    fn tiny() -> (LinearBody, ScheduleDesc) {
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 32);
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let r = dfg.add_op(OpKind::Read(x), 32, vec![]);
        let m = dfg.add_op(OpKind::Mul, 32, vec![Signal::op(r), Signal::op(r)]);
        let a = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op(m), Signal::constant(1, 32)],
        );
        let w = dfg.add_op(OpKind::Write(y), 32, vec![Signal::op(a)]);
        let body = LinearBody::from_dfg("tiny", dfg);

        let mut resources = ResourceSet::new();
        let mul = resources.add(ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32));
        let add = resources.add(ResourceType::binary(ResourceClass::Adder, 32, 32, 32));
        let mut ops = BTreeMap::new();
        ops.insert(
            r,
            ScheduledOp {
                op: r,
                state: 0,
                resource: None,
            },
        );
        ops.insert(
            m,
            ScheduledOp {
                op: m,
                state: 0,
                resource: Some(mul),
            },
        );
        ops.insert(
            a,
            ScheduledOp {
                op: a,
                state: 1,
                resource: Some(add),
            },
        );
        ops.insert(
            w,
            ScheduledOp {
                op: w,
                state: 1,
                resource: None,
            },
        );
        let sched = ScheduleDesc {
            num_states: 2,
            ii: None,
            ops,
            resources,
        };
        (body, sched)
    }

    #[test]
    fn schedule_queries() {
        let (_, sched) = tiny();
        assert_eq!(sched.num_states, 2);
        assert_eq!(sched.cycles_per_iteration(), 2);
        assert_eq!(sched.num_stages(), 1);
        assert_eq!(sched.ops_in_state(0).len(), 2);
        assert_eq!(sched.ops_in_state(1).len(), 2);
    }

    #[test]
    fn pipelined_stage_math() {
        let (_, mut sched) = tiny();
        sched.ii = Some(1);
        assert_eq!(sched.cycles_per_iteration(), 1);
        assert_eq!(sched.num_stages(), 2);
    }

    #[test]
    fn fold_states_and_fire_cycles() {
        let (body, mut sched) = tiny();
        assert_eq!(sched.fold_states(), 2, "sequential folds to the latency");
        let add_id = body
            .dfg
            .iter_ops()
            .find(|(_, op)| matches!(op.kind, OpKind::Add))
            .map(|(id, _)| id)
            .unwrap();
        // sequential: iteration k starts at k * latency
        assert_eq!(sched.fire_cycle(add_id, 0), Some(1));
        assert_eq!(sched.fire_cycle(add_id, 3), Some(7));
        // pipelined at II=1: iterations start every cycle
        sched.ii = Some(1);
        assert_eq!(sched.fold_states(), 1);
        assert_eq!(sched.fire_cycle(add_id, 3), Some(4));
        assert_eq!(sched.fire_cycle(OpId::from_raw(99), 0), None);
    }

    #[test]
    fn datapath_area_is_positive_and_decomposed() {
        let (body, sched) = tiny();
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(1600.0);
        let dp = Datapath::from_schedule(&body, &sched, &lib, clock, 0.0);
        assert!(dp.area.functional > 0.0);
        assert!(
            dp.area.registers > 0.0,
            "mul result crosses a state boundary"
        );
        assert!(dp.area.controller > 0.0);
        assert!(dp.total_area() >= dp.area.functional);
        assert!(dp.total_power_uw() > 0.0);
    }

    #[test]
    fn more_resources_mean_more_area() {
        let (body, sched) = tiny();
        let lib = TechLibrary::artisan_90nm_typical();
        let clock = ClockConstraint::from_period_ps(1600.0);
        let base = Datapath::from_schedule(&body, &sched, &lib, clock, 0.0).total_area();
        let mut bigger = sched.clone();
        bigger
            .resources
            .add(ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32));
        let more = Datapath::from_schedule(&body, &bigger, &lib, clock, 0.0).total_area();
        assert!(more > base);
    }

    #[test]
    fn slower_clock_lowers_dynamic_power() {
        let (body, sched) = tiny();
        let lib = TechLibrary::artisan_90nm_typical();
        let fast = Datapath::from_schedule(
            &body,
            &sched,
            &lib,
            ClockConstraint::from_period_ps(800.0),
            0.0,
        );
        let slow = Datapath::from_schedule(
            &body,
            &sched,
            &lib,
            ClockConstraint::from_period_ps(3200.0),
            0.0,
        );
        assert!(slow.power.dynamic_uw < fast.power.dynamic_uw);
    }

    #[test]
    fn generous_slack_allows_smaller_functional_area() {
        let (body, sched) = tiny();
        let lib = TechLibrary::artisan_90nm_typical();
        // A very slow clock lets every unit use its small variant.
        let clock = ClockConstraint::from_period_ps(6400.0);
        let tight = Datapath::from_schedule(
            &body,
            &sched,
            &lib,
            ClockConstraint::from_period_ps(1100.0),
            0.0,
        );
        let relaxed = Datapath::from_schedule(&body, &sched, &lib, clock, 0.0);
        assert!(relaxed.area.functional < tight.area.functional);
    }

    #[test]
    fn chained_pairs_detects_same_state_chaining() {
        let (body, mut sched) = tiny();
        // move the add into state 0 so mul→add chain exists
        let add_id = body
            .dfg
            .iter_ops()
            .find(|(_, op)| matches!(op.kind, OpKind::Add))
            .map(|(id, _)| id)
            .unwrap();
        let entry = sched.ops.get_mut(&add_id).unwrap();
        entry.state = 0;
        let pairs = chained_resource_pairs(&body, &sched);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn table_rendering_mentions_states_and_resources() {
        let (body, sched) = tiny();
        let table = sched.to_table(&body);
        assert!(table.contains("s1"));
        assert!(table.contains("s2"));
        assert!(table.contains("mul1"));
    }
}
