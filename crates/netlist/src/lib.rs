//! # hls-netlist — datapath model, timing, area, power and RTL
//!
//! The paper's scheduler is "tightly integrated with logic synthesis": it
//! builds a netlist for the scheduled part of the CDFG and performs (cached)
//! timing queries on it (Section IV.B.1), rejects bindings that would create
//! combinational cycles (IV.B.3), and the final implementation is evaluated
//! for area and power (Section VI). This crate is the stand-in for that logic
//! synthesis back-end:
//!
//! * [`timing::ChainTiming`] — the register-to-register path delay model of
//!   Figure 8 (`FF launch + input mux + FU + ... + register mux + FF setup`),
//!   with memoized resource-delay queries;
//! * [`timing::CombGraph`] — incremental combinational-cycle detection over
//!   resource instances;
//! * [`schedule::ScheduleDesc`] — the binding/state assignment produced by the
//!   scheduler, shared between crates;
//! * [`schedule::Datapath`] — functional units, sharing multiplexers and
//!   registers extracted from a schedule, with area and power estimation;
//! * [`rtl`] — the Verilog printer: a thin, deterministic walk over the
//!   structural netlist ([`hls_nir::NirModule`]) produced by `hls_bind`'s
//!   lowering.
//!
//! This crate is also the façade for the structural netlist IR: downstream
//! crates import the netlist types ([`NirModule`], [`validate`],
//! [`text_emit`]/[`text_parse`], [`optimize`]) and the printer
//! ([`emit_verilog`]) from here instead of reaching into modules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rtl;
pub mod schedule;
pub mod timing;

pub use hls_nir as nir;

pub use hls_nir::{
    optimize, sanitize, text_emit, text_parse, validate, BinKind, Cell, CellId, CellKind,
    NetlistStats, NirError, NirModule, ParseError, RewriteReport, UnKind,
};
pub use rtl::emit_verilog;
pub use schedule::{AreaBreakdown, Datapath, PowerBreakdown, ScheduleDesc, ScheduledOp};
pub use timing::{ChainTiming, CombGraph};
