//! # hls-netlist — datapath model, timing, area, power and RTL
//!
//! The paper's scheduler is "tightly integrated with logic synthesis": it
//! builds a netlist for the scheduled part of the CDFG and performs (cached)
//! timing queries on it (Section IV.B.1), rejects bindings that would create
//! combinational cycles (IV.B.3), and the final implementation is evaluated
//! for area and power (Section VI). This crate is the stand-in for that logic
//! synthesis back-end:
//!
//! * [`timing::ChainTiming`] — the register-to-register path delay model of
//!   Figure 8 (`FF launch + input mux + FU + ... + register mux + FF setup`),
//!   with memoized resource-delay queries;
//! * [`timing::CombGraph`] — incremental combinational-cycle detection over
//!   resource instances;
//! * [`schedule::ScheduleDesc`] — the binding/state assignment produced by the
//!   scheduler, shared between crates;
//! * [`schedule::Datapath`] — functional units, sharing multiplexers and
//!   registers extracted from a schedule, with area and power estimation;
//! * [`rtl`] — a Verilog-like RTL emitter with an FSM controller, including
//!   the stage-valid predication used by folded pipelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rtl;
pub mod schedule;
pub mod timing;

pub use schedule::{AreaBreakdown, Datapath, PowerBreakdown, ScheduleDesc, ScheduledOp};
pub use timing::{ChainTiming, CombGraph};
