//! Standard compiler optimizations on the CDFG's data flow graph.
//!
//! All passes are *use-rewriting*: they never delete operations directly
//! (which would invalidate ids held elsewhere); instead they redirect uses
//! and neutralize operations, and [`DeadCodeElimination`] finally turns
//! unreachable operations into free `Pass` nodes that the scheduler ignores
//! and reports exclude.

use crate::error::OptError;
use hls_ir::{Cdfg, OpId, OpKind, Signal};
use std::collections::{HashMap, HashSet};

/// A CDFG optimization pass.
pub trait Pass {
    /// Pass name used in reports.
    fn name(&self) -> &'static str;

    /// Runs the pass, returning the number of changes applied.
    ///
    /// # Errors
    /// Returns [`OptError`] if the pass encounters or produces invalid IR.
    fn run(&self, cdfg: &mut Cdfg) -> Result<usize, OptError>;
}

/// Replaces every use of the result of `from` with `to` (width preserved from
/// the original use). Returns the number of rewritten uses.
pub(crate) fn replace_uses(cdfg: &mut Cdfg, from: OpId, to: Signal) -> usize {
    let mut changed = 0;
    for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
        let op = cdfg.dfg.op_mut(id);
        for input in &mut op.inputs {
            if input.producer() == Some(from) {
                let width = input.width;
                let distance = input.distance;
                *input = Signal {
                    width,
                    distance: distance + to.distance,
                    ..to
                };
                changed += 1;
            }
        }
    }
    changed
}

/// Redirects every *control* reference to condition op `from` onto `to`:
/// fork conditions, loop exit conditions and operation predicates. Data uses
/// are handled by [`replace_uses`]; forgetting these control references would
/// leave branches/loops keyed on a neutralized operation.
pub(crate) fn redirect_condition_refs(cdfg: &mut Cdfg, from: OpId, to: OpId) {
    for cond in cdfg.fork_conditions.values_mut() {
        if *cond == from {
            *cond = to;
        }
    }
    for l in &mut cdfg.loops {
        if l.exit_condition == Some(from) {
            l.exit_condition = Some(to);
        }
    }
    for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
        cdfg.dfg.op_mut(id).predicate.replace_cond(from, to);
    }
}

/// Evaluates an operation on constant inputs, if possible, using the IR's
/// executable semantics ([`hls_ir::eval`]) so folding is bit-exact with the
/// interpreter, the schedule simulator and the emitted RTL: inputs wrap to
/// their signal widths, the result wraps to the operation width.
///
/// Division/remainder by a literal zero is *not* folded even though the
/// semantics define it (`a / 0 = 0`, `a % 0 = a`): keeping the operation
/// preserves the guard in the emitted hardware, which reads more honestly
/// than a silently materialized constant.
fn eval_const(op: &hls_ir::Operation) -> Option<i64> {
    use hls_ir::dfg::SignalSource;
    use hls_ir::eval::{eval_op, BitVal};
    if matches!(op.kind, OpKind::Div | OpKind::Rem) {
        // the divisor counts as zero if it *wraps* to zero at its width
        if let Some(s) = op.inputs.get(1) {
            if let SignalSource::Const(v) = s.source {
                if BitVal::new(v, s.width).as_i64() == 0 {
                    return None;
                }
            }
        }
    }
    let inputs: Option<Vec<BitVal>> = op
        .inputs
        .iter()
        .map(|s| match s.source {
            SignalSource::Const(v) => Some(BitVal::new(v, s.width)),
            SignalSource::Op(_) => None,
        })
        .collect();
    eval_op(&op.kind, op.width, &inputs?)
        .ok()
        .map(BitVal::as_i64)
}

/// Constant folding: operations whose inputs are all literal constants are
/// replaced by `Const` operations and their uses rewritten.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConstantFolding;

impl Pass for ConstantFolding {
    fn name(&self) -> &'static str {
        "constant-folding"
    }

    fn run(&self, cdfg: &mut Cdfg) -> Result<usize, OptError> {
        let mut changed = 0;
        loop {
            let mut round = 0;
            for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
                let op = cdfg.dfg.op(id);
                if matches!(op.kind, OpKind::Const(_)) || op.kind.has_side_effects() {
                    continue;
                }
                if op.inputs.is_empty() {
                    continue;
                }
                let Some(result) = eval_const(op) else {
                    continue;
                };
                let width = op.width;
                let op_mut = cdfg.dfg.op_mut(id);
                op_mut.kind = OpKind::Const(result);
                op_mut.inputs.clear();
                replace_uses(cdfg, id, Signal::constant(result, width));
                round += 1;
            }
            changed += round;
            if round == 0 {
                break;
            }
        }
        Ok(changed)
    }
}

/// Strength reduction: `x * 2^k → x << k`, `x * 1 → x`, `x + 0 → x`,
/// `x * 0 → 0`, mirrored for commuted operand orders.
#[derive(Clone, Copy, Debug, Default)]
pub struct StrengthReduction;

impl Pass for StrengthReduction {
    fn name(&self) -> &'static str {
        "strength-reduction"
    }

    fn run(&self, cdfg: &mut Cdfg) -> Result<usize, OptError> {
        let mut changed = 0;
        for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
            let op = cdfg.dfg.op(id).clone();
            let const_of = |s: &Signal| match s.source {
                hls_ir::dfg::SignalSource::Const(v) => Some(v),
                hls_ir::dfg::SignalSource::Op(_) => None,
            };
            match op.kind {
                OpKind::Mul => {
                    let (lhs, rhs) = (op.inputs[0], op.inputs[1]);
                    let rewrite = match (const_of(&lhs), const_of(&rhs)) {
                        (_, Some(0)) | (Some(0), _) => Some(Signal::constant(0, op.width)),
                        (_, Some(1)) => Some(lhs),
                        (Some(1), _) => Some(rhs),
                        _ => None,
                    };
                    if let Some(sig) = rewrite {
                        replace_uses(cdfg, id, sig);
                        changed += 1;
                        continue;
                    }
                    // power-of-two multiplicand → shift
                    let shift_of =
                        |v: i64| (v > 1 && (v & (v - 1)) == 0).then(|| v.trailing_zeros() as i64);
                    if let Some(k) = const_of(&rhs).and_then(shift_of) {
                        let op_mut = cdfg.dfg.op_mut(id);
                        op_mut.kind = OpKind::Shl;
                        op_mut.inputs = vec![lhs, Signal::constant(k, 8)];
                        changed += 1;
                    } else if let Some(k) = const_of(&lhs).and_then(shift_of) {
                        let op_mut = cdfg.dfg.op_mut(id);
                        op_mut.kind = OpKind::Shl;
                        op_mut.inputs = vec![rhs, Signal::constant(k, 8)];
                        changed += 1;
                    }
                }
                OpKind::Add => {
                    let (lhs, rhs) = (op.inputs[0], op.inputs[1]);
                    if const_of(&rhs) == Some(0) {
                        replace_uses(cdfg, id, lhs);
                        changed += 1;
                    } else if const_of(&lhs) == Some(0) {
                        replace_uses(cdfg, id, rhs);
                        changed += 1;
                    }
                }
                _ => {}
            }
        }
        Ok(changed)
    }
}

/// Common subexpression elimination: operations with identical kind, result
/// width, inputs and predicate are merged (later occurrences redirect to the
/// first one). I/O and side-effecting operations are never merged.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommonSubexpression;

impl Pass for CommonSubexpression {
    fn name(&self) -> &'static str {
        "common-subexpression-elimination"
    }

    fn run(&self, cdfg: &mut Cdfg) -> Result<usize, OptError> {
        let mut changed = 0;
        loop {
            let mut seen: HashMap<String, OpId> = HashMap::new();
            let mut round = 0;
            for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
                let op = cdfg.dfg.op(id);
                if op.kind.has_side_effects() || matches!(op.kind, OpKind::Read(_) | OpKind::Pass) {
                    continue;
                }
                let key = format!(
                    "{:?}|{}|{:?}|{:?}|{:?}",
                    op.kind, op.width, op.inputs, op.predicate, op.home_edge
                );
                match seen.get(&key) {
                    Some(&first) if first != id => {
                        let width = op.width;
                        replace_uses(cdfg, id, Signal::op_w(first, width));
                        redirect_condition_refs(cdfg, id, first);
                        // Neutralize the duplicate so later rounds (and the
                        // convergence check) do not rediscover it.
                        let op = cdfg.dfg.op_mut(id);
                        op.kind = OpKind::Pass;
                        op.inputs.clear();
                        op.predicate = hls_ir::Predicate::True;
                        op.name = Some(format!("cse_{}", id.index()));
                        round += 1;
                    }
                    _ => {
                        seen.insert(key, id);
                    }
                }
            }
            changed += round;
            if round == 0 {
                break;
            }
        }
        Ok(changed)
    }
}

/// Dead code elimination: operations whose results cannot reach an output
/// write, an IP call, a loop exit condition, a fork condition or a predicate
/// are neutralized into free `Pass` operations with no inputs.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeadCodeElimination;

impl Pass for DeadCodeElimination {
    fn name(&self) -> &'static str {
        "dead-code-elimination"
    }

    fn run(&self, cdfg: &mut Cdfg) -> Result<usize, OptError> {
        let mut live: HashSet<OpId> = HashSet::new();
        let mut worklist: Vec<OpId> = Vec::new();
        for (id, op) in cdfg.dfg.iter_ops() {
            if op.kind.has_side_effects() {
                worklist.push(id);
            }
        }
        for l in &cdfg.loops {
            if let Some(c) = l.exit_condition {
                worklist.push(c);
            }
        }
        for &c in cdfg.fork_conditions.values() {
            worklist.push(c);
        }
        // predicates of live ops keep their condition ops alive; handled in
        // the propagation loop below.
        while let Some(id) = worklist.pop() {
            if !live.insert(id) {
                continue;
            }
            let op = cdfg.dfg.op(id);
            for s in &op.inputs {
                if let Some(p) = s.producer() {
                    worklist.push(p);
                }
            }
            for c in op.predicate.condition_ops() {
                worklist.push(c);
            }
        }
        let mut changed = 0;
        for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
            if live.contains(&id) {
                continue;
            }
            let op = cdfg.dfg.op_mut(id);
            if matches!(op.kind, OpKind::Pass) && op.inputs.is_empty() {
                continue; // already neutral
            }
            op.kind = OpKind::Pass;
            op.inputs.clear();
            op.predicate = hls_ir::Predicate::True;
            op.name = Some(format!("dead_{}", id.index()));
            changed += 1;
        }
        Ok(changed)
    }
}

/// Width reduction for literal constants: shrink the recorded width of
/// constant signals to the number of bits actually needed (plus a sign bit),
/// which lets downstream resource sizing pick narrower units.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConstWidthReduction;

impl ConstWidthReduction {
    fn needed_width(v: i64) -> u16 {
        if v == 0 {
            1
        } else if v > 0 {
            (64 - v.leading_zeros() as u16) + 1
        } else {
            (64 - (!v).leading_zeros() as u16) + 1
        }
    }
}

impl Pass for ConstWidthReduction {
    fn name(&self) -> &'static str {
        "const-width-reduction"
    }

    fn run(&self, cdfg: &mut Cdfg) -> Result<usize, OptError> {
        let mut changed = 0;
        for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
            let op = cdfg.dfg.op_mut(id);
            for input in &mut op.inputs {
                if let hls_ir::dfg::SignalSource::Const(v) = input.source {
                    let needed = Self::needed_width(v).min(input.width.max(1));
                    if needed < input.width {
                        input.width = needed;
                        changed += 1;
                    }
                }
            }
        }
        Ok(changed)
    }
}

/// Comparison canonicalization: rewrites `const OP x` into `x swapped(OP)
/// const` so CSE catches commuted duplicates of comparisons.
#[derive(Clone, Copy, Debug, Default)]
pub struct CanonicalizeCompares;

impl Pass for CanonicalizeCompares {
    fn name(&self) -> &'static str {
        "canonicalize-compares"
    }

    fn run(&self, cdfg: &mut Cdfg) -> Result<usize, OptError> {
        let mut changed = 0;
        for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
            let op = cdfg.dfg.op_mut(id);
            if let OpKind::Cmp(kind) = op.kind {
                let lhs_is_const =
                    matches!(op.inputs[0].source, hls_ir::dfg::SignalSource::Const(_));
                let rhs_is_op = matches!(op.inputs[1].source, hls_ir::dfg::SignalSource::Op(_));
                if lhs_is_const && rhs_is_op {
                    op.inputs.swap(0, 1);
                    op.kind = OpKind::Cmp(kind.swapped());
                    changed += 1;
                }
            }
        }
        Ok(changed)
    }
}

/// Number of operations that still occupy datapath resources (free `Pass`,
/// `Const` and slice nodes excluded) — the "real" size of a design after
/// optimization, comparable with the op counts the paper quotes.
pub fn effective_op_count(cdfg: &Cdfg) -> usize {
    cdfg.dfg
        .iter_ops()
        .filter(|(_, op)| !op.kind.is_free())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{CmpKind, Dfg, PortDirection};

    fn cdfg_with(dfg: Dfg) -> Cdfg {
        let mut cdfg = Cdfg::new("t");
        cdfg.dfg = dfg;
        cdfg
    }

    #[test]
    fn constant_folding_collapses_chains() {
        let mut dfg = Dfg::new();
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let a = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::constant(2, 32), Signal::constant(3, 32)],
        );
        let b = dfg.add_op(
            OpKind::Mul,
            32,
            vec![Signal::op(a), Signal::constant(4, 32)],
        );
        dfg.add_op(OpKind::Write(y), 32, vec![Signal::op(b)]);
        let mut cdfg = cdfg_with(dfg);
        let n = ConstantFolding.run(&mut cdfg).unwrap();
        assert_eq!(n, 2);
        assert_eq!(cdfg.dfg.op(b).kind, OpKind::Const(20));
    }

    #[test]
    fn constant_folding_handles_mux_and_cmp() {
        let mut dfg = Dfg::new();
        let c = dfg.add_op(
            OpKind::Cmp(CmpKind::Gt),
            1,
            vec![Signal::constant(5, 32), Signal::constant(3, 32)],
        );
        let m = dfg.add_op(
            OpKind::Mux,
            32,
            vec![
                Signal::op_w(c, 1),
                Signal::constant(10, 32),
                Signal::constant(20, 32),
            ],
        );
        let mut cdfg = cdfg_with(dfg);
        ConstantFolding.run(&mut cdfg).unwrap();
        // a true comparison is the all-ones 1-bit value, whose canonical
        // signed reading is -1 (same bits as 1'b1)
        assert_eq!(cdfg.dfg.op(c).kind, OpKind::Const(-1));
        assert_eq!(cdfg.dfg.op(m).kind, OpKind::Const(10));
    }

    #[test]
    fn constant_folding_wraps_to_the_operation_width() {
        let mut dfg = Dfg::new();
        let y = dfg.add_port("y", PortDirection::Output, 8);
        // 127 + 1 wraps to -128 at 8 bits (the old i64 folding said 128)
        let a = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::constant(127, 8), Signal::constant(1, 8)],
        );
        dfg.add_op(OpKind::Write(y), 8, vec![Signal::op_w(a, 8)]);
        let mut cdfg = cdfg_with(dfg);
        ConstantFolding.run(&mut cdfg).unwrap();
        assert_eq!(cdfg.dfg.op(a).kind, OpKind::Const(-128));
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let mut dfg = Dfg::new();
        let d = dfg.add_op(
            OpKind::Div,
            32,
            vec![Signal::constant(5, 32), Signal::constant(0, 32)],
        );
        // 256 wraps to zero at 8 bits: the guard must catch it too
        let wrapped = dfg.add_op(
            OpKind::Rem,
            8,
            vec![Signal::constant(5, 8), Signal::constant(256, 8)],
        );
        let mut cdfg = cdfg_with(dfg);
        ConstantFolding.run(&mut cdfg).unwrap();
        assert_eq!(cdfg.dfg.op(d).kind, OpKind::Div);
        assert_eq!(cdfg.dfg.op(wrapped).kind, OpKind::Rem);
    }

    #[test]
    fn strength_reduction_power_of_two() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let m = dfg.add_op(
            OpKind::Mul,
            32,
            vec![Signal::op(r), Signal::constant(8, 32)],
        );
        let mut cdfg = cdfg_with(dfg);
        let n = StrengthReduction.run(&mut cdfg).unwrap();
        assert_eq!(n, 1);
        assert_eq!(cdfg.dfg.op(m).kind, OpKind::Shl);
    }

    #[test]
    fn strength_reduction_identities() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 32);
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let add0 = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op(r), Signal::constant(0, 32)],
        );
        let mul1 = dfg.add_op(
            OpKind::Mul,
            32,
            vec![Signal::op(add0), Signal::constant(1, 32)],
        );
        let w = dfg.add_op(OpKind::Write(y), 32, vec![Signal::op(mul1)]);
        let mut cdfg = cdfg_with(dfg);
        StrengthReduction.run(&mut cdfg).unwrap();
        // the write should now consume the port read directly
        assert_eq!(cdfg.dfg.op(w).inputs[0].producer(), Some(r));
    }

    #[test]
    fn cse_merges_duplicate_multiplications() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 32);
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let m1 = dfg.add_op(OpKind::Mul, 32, vec![Signal::op(r), Signal::op(r)]);
        let m2 = dfg.add_op(OpKind::Mul, 32, vec![Signal::op(r), Signal::op(r)]);
        let sum = dfg.add_op(OpKind::Add, 32, vec![Signal::op(m1), Signal::op(m2)]);
        dfg.add_op(OpKind::Write(y), 32, vec![Signal::op(sum)]);
        let mut cdfg = cdfg_with(dfg);
        let n = CommonSubexpression.run(&mut cdfg).unwrap();
        assert_eq!(n, 1);
        assert_eq!(cdfg.dfg.op(sum).inputs[0].producer(), Some(m1));
        assert_eq!(cdfg.dfg.op(sum).inputs[1].producer(), Some(m1));
    }

    #[test]
    fn cse_redirects_fork_and_exit_conditions_and_predicates() {
        use hls_ir::{CfgNodeId, Predicate};
        // Two structurally identical comparisons; one backs a fork condition,
        // a loop exit condition and an operation predicate. After CSE merges
        // them, every control reference must point at the survivor, never at
        // the neutralized duplicate.
        let mut dfg = Dfg::new();
        let p = dfg.add_port("v", PortDirection::Input, 32);
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let c1 = dfg.add_op(
            OpKind::Cmp(CmpKind::Gt),
            1,
            vec![Signal::op(r), Signal::constant(0, 32)],
        );
        let c2 = dfg.add_op(
            OpKind::Cmp(CmpKind::Gt),
            1,
            vec![Signal::op(r), Signal::constant(0, 32)],
        );
        let w = dfg.add_op(OpKind::Write(y), 32, vec![Signal::op(r)]);
        dfg.op_mut(w).predicate = Predicate::Cond(c2);
        let mut cdfg = cdfg_with(dfg);
        let fork = CfgNodeId::from_raw(7);
        cdfg.fork_conditions.insert(fork, c2);
        cdfg.loops.push(hls_ir::LoopInfo {
            id: hls_ir::LoopId::from_raw(0),
            top: CfgNodeId::from_raw(0),
            bottom: CfgNodeId::from_raw(1),
            body_edges: vec![],
            exit_condition: Some(c2),
            infinite: false,
            name: None,
        });

        let n = CommonSubexpression.run(&mut cdfg).unwrap();
        assert_eq!(n, 1);
        assert_eq!(cdfg.dfg.op(c2).kind, OpKind::Pass);
        assert_eq!(cdfg.fork_conditions[&fork], c1);
        assert_eq!(cdfg.loops[0].exit_condition, Some(c1));
        assert_eq!(cdfg.dfg.op(w).predicate, Predicate::Cond(c1));
    }

    #[test]
    fn cse_does_not_merge_ops_of_different_width() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 32);
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let narrow = dfg.add_op(OpKind::Add, 16, vec![Signal::op(r), Signal::op(r)]);
        let wide = dfg.add_op(OpKind::Add, 32, vec![Signal::op(r), Signal::op(r)]);
        let sum = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op_w(narrow, 16), Signal::op_w(wide, 32)],
        );
        dfg.add_op(OpKind::Write(y), 32, vec![Signal::op(sum)]);
        let mut cdfg = cdfg_with(dfg);
        let n = CommonSubexpression.run(&mut cdfg).unwrap();
        assert_eq!(n, 0, "16-bit and 32-bit adds must not be merged");
        assert_eq!(cdfg.dfg.op(narrow).kind, OpKind::Add);
        assert_eq!(cdfg.dfg.op(wide).kind, OpKind::Add);
    }

    #[test]
    fn dce_neutralizes_unused_ops() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 32);
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let used = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op(r), Signal::constant(1, 32)],
        );
        let unused = dfg.add_op(OpKind::Mul, 32, vec![Signal::op(r), Signal::op(r)]);
        dfg.add_op(OpKind::Write(y), 32, vec![Signal::op(used)]);
        let mut cdfg = cdfg_with(dfg);
        let n = DeadCodeElimination.run(&mut cdfg).unwrap();
        assert_eq!(n, 1);
        assert_eq!(cdfg.dfg.op(unused).kind, OpKind::Pass);
        assert_eq!(cdfg.dfg.op(used).kind, OpKind::Add);
        assert_eq!(effective_op_count(&cdfg), 3);
    }

    #[test]
    fn dce_keeps_predicate_conditions_alive() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 32);
        let y = dfg.add_port("y", PortDirection::Output, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let cond = dfg.add_op(
            OpKind::Cmp(CmpKind::Gt),
            1,
            vec![Signal::op(r), Signal::constant(0, 32)],
        );
        let val = dfg.add_predicated_op(
            OpKind::Add,
            32,
            vec![Signal::op(r), Signal::constant(1, 32)],
            hls_ir::Predicate::Cond(cond),
        );
        dfg.add_op(OpKind::Write(y), 32, vec![Signal::op(val)]);
        let mut cdfg = cdfg_with(dfg);
        DeadCodeElimination.run(&mut cdfg).unwrap();
        assert_eq!(cdfg.dfg.op(cond).kind, OpKind::Cmp(CmpKind::Gt));
    }

    #[test]
    fn const_width_reduction_narrows_literals() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let a = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op(r), Signal::constant(3, 32)],
        );
        let mut cdfg = cdfg_with(dfg);
        let n = ConstWidthReduction.run(&mut cdfg).unwrap();
        assert_eq!(n, 1);
        assert_eq!(cdfg.dfg.op(a).inputs[1].width, 3);
    }

    #[test]
    fn canonicalize_compares_swaps_const_lhs() {
        let mut dfg = Dfg::new();
        let p = dfg.add_port("x", PortDirection::Input, 32);
        let r = dfg.add_op(OpKind::Read(p), 32, vec![]);
        let c = dfg.add_op(
            OpKind::Cmp(CmpKind::Lt),
            1,
            vec![Signal::constant(0, 32), Signal::op(r)],
        );
        let mut cdfg = cdfg_with(dfg);
        CanonicalizeCompares.run(&mut cdfg).unwrap();
        assert_eq!(cdfg.dfg.op(c).kind, OpKind::Cmp(CmpKind::Gt));
        assert_eq!(cdfg.dfg.op(c).inputs[0].producer(), Some(r));
    }
}
