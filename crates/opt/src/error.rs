//! Error type of the optimizer.

use std::error::Error;
use std::fmt;

/// Errors reported by optimization passes and linearization.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// The requested loop does not exist in the CDFG.
    UnknownLoop {
        /// Rendering of the missing loop id.
        loop_id: String,
    },
    /// A pass produced or encountered an invalid IR.
    InvalidIr {
        /// The underlying IR error rendering.
        message: String,
    },
    /// The loop cannot be linearized (e.g. it still contains an unsupported
    /// construct after optimization).
    Linearize {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::UnknownLoop { loop_id } => write!(f, "unknown loop {loop_id}"),
            OptError::InvalidIr { message } => write!(f, "invalid IR after pass: {message}"),
            OptError::Linearize { message } => write!(f, "cannot linearize loop: {message}"),
        }
    }
}

impl Error for OptError {}

impl From<hls_ir::IrError> for OptError {
    fn from(e: hls_ir::IrError) -> Self {
        OptError::InvalidIr {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = OptError::UnknownLoop {
            loop_id: "loop3".into(),
        };
        assert!(e.to_string().contains("loop3"));
        let ir: OptError = hls_ir::IrError::MultipleEntries { count: 2 }.into();
        assert!(matches!(ir, OptError::InvalidIr { .. }));
    }
}
