//! # hls-opt — CDFG optimizer and loop linearization
//!
//! The optimizer box of the paper's Figure 2: it simplifies the DFG/CFG with
//! standard compiler optimizations and applies the **branch predication
//! transformation** (Figure 4) that replaces fork/join regions with
//! straight-line predicated code, increasing operation mobility for the
//! scheduler.
//!
//! Provided passes:
//!
//! * [`passes::ConstantFolding`] — evaluates operations whose inputs are all
//!   constants;
//! * [`passes::StrengthReduction`] — rewrites multiplications/divisions by
//!   powers of two into shifts and removes additive/multiplicative identities;
//! * [`passes::CommonSubexpression`] — merges structurally identical
//!   operations;
//! * [`passes::DeadCodeElimination`] — removes operations whose results reach
//!   no output, loop exit condition or predicate;
//! * [`predicate::PredicateConversion`] — the paper's if-conversion;
//! * [`passes::ConstWidthReduction`] — operand width reduction for literals.
//!
//! [`manager::PassManager`] runs a configurable pipeline and reports per-pass
//! statistics. [`linearize::linearize_loop`] extracts a loop body as the
//! straight-line [`hls_ir::LinearBody`] consumed by the scheduler.
//!
//! ## Example
//!
//! ```
//! use hls_frontend::designs;
//! use hls_opt::manager::PassManager;
//! use hls_opt::linearize::linearize_loop;
//!
//! let mut cdfg = designs::paper_example1_cdfg()?;
//! PassManager::standard().run(&mut cdfg)?;
//! let inner = cdfg.innermost_loop().unwrap().id;
//! let body = linearize_loop(&cdfg, inner)?;
//! assert_eq!(body.source_states, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod linearize;
pub mod manager;
pub mod passes;
pub mod predicate;

pub use error::OptError;
pub use linearize::linearize_loop;
pub use manager::{PassManager, PassReport};
pub use passes::Pass;
