//! Pass manager: runs a configurable pipeline of optimization passes and
//! collects per-pass statistics.

use crate::error::OptError;
use crate::passes::{
    CanonicalizeCompares, CommonSubexpression, ConstWidthReduction, ConstantFolding,
    DeadCodeElimination, Pass, StrengthReduction,
};
use crate::predicate::PredicateConversion;
use hls_ir::Cdfg;

/// Statistics of one pass-manager run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassReport {
    /// `(pass name, number of changes)` in execution order.
    pub changes: Vec<(String, usize)>,
    /// Operation count before optimization.
    pub ops_before: usize,
    /// Operation count (non-free) after optimization.
    pub effective_ops_after: usize,
}

impl PassReport {
    /// Total number of changes across all passes.
    pub fn total_changes(&self) -> usize {
        self.changes.iter().map(|(_, n)| n).sum()
    }
}

/// Runs a sequence of [`Pass`]es over a CDFG.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Creates an empty pass manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard pipeline used by the synthesis flow: canonicalization,
    /// constant folding, strength reduction, CSE, predicate conversion,
    /// constant width reduction and finally dead-code elimination.
    pub fn standard() -> Self {
        let mut pm = Self::new();
        pm.add(CanonicalizeCompares)
            .add(ConstantFolding)
            .add(StrengthReduction)
            .add(CommonSubexpression)
            .add(PredicateConversion)
            .add(ConstWidthReduction)
            .add(DeadCodeElimination);
        pm
    }

    /// A reduced pipeline that skips predicate conversion, used by the
    /// ablation experiments to measure its impact.
    pub fn without_predicate_conversion() -> Self {
        let mut pm = Self::new();
        pm.add(CanonicalizeCompares)
            .add(ConstantFolding)
            .add(StrengthReduction)
            .add(CommonSubexpression)
            .add(ConstWidthReduction)
            .add(DeadCodeElimination);
        pm
    }

    /// Appends a pass to the pipeline.
    pub fn add<P: Pass + 'static>(&mut self, pass: P) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Runs every pass once, in order, validating the IR afterwards.
    ///
    /// # Errors
    /// Returns the first [`OptError`] raised by a pass or by post-run
    /// validation.
    pub fn run(&self, cdfg: &mut Cdfg) -> Result<PassReport, OptError> {
        let ops_before = cdfg.dfg.num_ops();
        let mut report = PassReport {
            ops_before,
            ..PassReport::default()
        };
        for pass in &self.passes {
            let n = pass.run(cdfg)?;
            report.changes.push((pass.name().to_string(), n));
        }
        cdfg.validate()?;
        report.effective_ops_after = crate::passes::effective_op_count(cdfg);
        Ok(report)
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::designs;

    #[test]
    fn standard_pipeline_runs_on_example1() {
        let mut cdfg = designs::paper_example1_cdfg().expect("elaborate");
        let report = PassManager::standard().run(&mut cdfg).expect("passes");
        assert_eq!(report.ops_before, cdfg.dfg.num_ops());
        assert!(report.effective_ops_after <= report.ops_before);
        // predicate conversion must have predicated at least one op
        let pc = report
            .changes
            .iter()
            .find(|(name, _)| name == "predicate-conversion")
            .expect("predicate conversion in pipeline");
        assert!(pc.1 >= 1);
        assert!(cdfg.validate().is_ok());
    }

    #[test]
    fn pipeline_without_predicate_conversion() {
        let mut cdfg = designs::paper_example1_cdfg().expect("elaborate");
        let report = PassManager::without_predicate_conversion()
            .run(&mut cdfg)
            .expect("passes");
        assert!(report
            .changes
            .iter()
            .all(|(name, _)| name != "predicate-conversion"));
    }

    #[test]
    fn report_totals() {
        let report = PassReport {
            changes: vec![("a".into(), 2), ("b".into(), 3)],
            ops_before: 10,
            effective_ops_after: 8,
        };
        assert_eq!(report.total_changes(), 5);
    }

    #[test]
    fn debug_lists_pass_names() {
        let pm = PassManager::standard();
        let dbg = format!("{pm:?}");
        assert!(dbg.contains("constant-folding"));
        assert!(dbg.contains("dead-code-elimination"));
    }
}
