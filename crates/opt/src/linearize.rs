//! Loop linearization: extracting a loop body as a straight-line
//! [`LinearBody`] ready for (pipelined or sequential) scheduling.
//!
//! Step I.1 of the paper's pipelining procedure converts the loop into a
//! straight-line sequence of control steps. After predicate conversion all
//! control flow inside the body is expressed as predicates, so linearization
//! reduces to:
//!
//! 1. collecting the operations homed on the loop's body edges,
//! 2. numbering the source control steps (one per `wait()` boundary),
//! 3. rewriting references to values computed *outside* the loop as free
//!    live-in operations (they arrive in registers),
//! 4. carrying over predicates, loop-carried distances and the exit
//!    condition.

use crate::error::OptError;
use hls_ir::{Cdfg, CfgNodeKind, Dfg, LinearBody, LoopId, OpId, OpKind, Signal};
use std::collections::{HashMap, HashSet};

/// Extracts the body of `loop_id` from an (optimized) CDFG as a
/// [`LinearBody`].
///
/// # Errors
/// Returns [`OptError::UnknownLoop`] if the loop does not exist, or
/// [`OptError::Linearize`] if the body references malformed structure.
pub fn linearize_loop(cdfg: &Cdfg, loop_id: LoopId) -> Result<LinearBody, OptError> {
    let info = cdfg
        .loop_info(loop_id)
        .ok_or_else(|| OptError::UnknownLoop {
            loop_id: loop_id.to_string(),
        })?
        .clone();

    // 1. Operations homed on body edges, in (edge order, op id) order.
    let by_edge = cdfg.ops_by_edge();
    let mut body_ops: Vec<OpId> = Vec::new();
    let mut op_state: HashMap<OpId, u32> = HashMap::new();
    let mut state = 0u32;
    for &edge in &info.body_edges {
        if let Some(ops) = by_edge.get(&edge) {
            let mut ops = ops.clone();
            ops.sort();
            for op in ops {
                body_ops.push(op);
                op_state.insert(op, state);
            }
        }
        // A control step ends when the edge reaches a wait boundary.
        if matches!(
            cdfg.cfg.node(cdfg.cfg.edge(edge).to).kind,
            CfgNodeKind::Wait { .. }
        ) {
            state += 1;
        }
    }
    let source_states = state + 1;
    let body_set: HashSet<OpId> = body_ops.iter().copied().collect();

    // 2. Build the new DFG: ports first (preserving ids), then live-ins, then
    //    the body operations in source order.
    let mut dfg = Dfg::new();
    for (_, port) in cdfg.dfg.iter_ports() {
        dfg.add_port(port.name.clone(), port.direction, port.width);
    }

    let mut remap: HashMap<OpId, OpId> = HashMap::new();

    // live-ins: operations outside the loop that body operations reference.
    let mut live_ins: Vec<OpId> = Vec::new();
    for &op in &body_ops {
        for sig in &cdfg.dfg.op(op).inputs {
            if let Some(p) = sig.producer() {
                if !body_set.contains(&p) && !live_ins.contains(&p) {
                    live_ins.push(p);
                }
            }
        }
        for cond in cdfg.dfg.op(op).predicate.condition_ops() {
            if !body_set.contains(&cond) && !live_ins.contains(&cond) {
                live_ins.push(cond);
            }
        }
    }
    live_ins.sort();
    for &op in &live_ins {
        let orig = cdfg.dfg.op(op);
        let new_id = dfg.add_named_op(
            format!("livein_{}", orig.display_name()),
            OpKind::Pass,
            orig.width,
            vec![],
        );
        remap.insert(op, new_id);
    }

    for &op in &body_ops {
        let orig = cdfg.dfg.op(op);
        let new_id = dfg.add_op(orig.kind.clone(), orig.width, vec![]);
        remap.insert(op, new_id);
        if let Some(name) = &orig.name {
            dfg.op_mut(new_id).name = Some(name.clone());
        }
    }

    // 3. Rewrite inputs and predicates through the remap table.
    for &op in &body_ops {
        let orig = cdfg.dfg.op(op).clone();
        let new_id = remap[&op];
        let mut inputs = Vec::with_capacity(orig.inputs.len());
        for sig in &orig.inputs {
            inputs.push(remap_signal(sig, &remap)?);
        }
        let predicate = remap_predicate(&orig.predicate, &remap)?;
        let new_op = dfg.op_mut(new_id);
        new_op.inputs = inputs;
        new_op.predicate = predicate;
    }

    let mut body =
        LinearBody::from_dfg(info.name.clone().unwrap_or_else(|| cdfg.name.clone()), dfg);
    body.source_states = source_states;
    for (&op, &s) in &op_state {
        body.source_state.insert(remap[&op], s);
    }
    body.exit_condition = info.exit_condition.and_then(|c| remap.get(&c).copied());
    body.validate().map_err(OptError::from)?;
    Ok(body)
}

fn remap_signal(sig: &Signal, remap: &HashMap<OpId, OpId>) -> Result<Signal, OptError> {
    match sig.producer() {
        None => Ok(*sig),
        Some(p) => {
            let new = remap.get(&p).ok_or_else(|| OptError::Linearize {
                message: format!("operation {p} referenced by the loop body was not remapped"),
            })?;
            Ok(Signal {
                source: hls_ir::dfg::SignalSource::Op(*new),
                ..*sig
            })
        }
    }
}

fn remap_predicate(
    pred: &hls_ir::Predicate,
    remap: &HashMap<OpId, OpId>,
) -> Result<hls_ir::Predicate, OptError> {
    use hls_ir::Predicate as P;
    Ok(match pred {
        P::True => P::True,
        P::Cond(c) => P::Cond(*remap.get(c).ok_or_else(|| OptError::Linearize {
            message: format!("predicate condition {c} not remapped"),
        })?),
        P::NotCond(c) => P::NotCond(*remap.get(c).ok_or_else(|| OptError::Linearize {
            message: format!("predicate condition {c} not remapped"),
        })?),
        P::And(ps) => P::And(
            ps.iter()
                .map(|p| remap_predicate(p, remap))
                .collect::<Result<Vec<_>, _>>()?,
        ),
    })
}

/// Convenience: elahorated CDFG → optimized → innermost loop linearized.
/// Applies [`crate::manager::PassManager::standard`] and then
/// [`linearize_loop`] on [`Cdfg::innermost_loop`].
///
/// # Errors
/// Returns [`OptError::UnknownLoop`] if the design has no loop, or any error
/// raised by the passes or the linearization itself.
pub fn prepare_innermost_loop(cdfg: &mut Cdfg) -> Result<LinearBody, OptError> {
    crate::manager::PassManager::standard().run(cdfg)?;
    let id = cdfg
        .innermost_loop()
        .map(|l| l.id)
        .ok_or_else(|| OptError::UnknownLoop {
            loop_id: "<none>".to_string(),
        })?;
    linearize_loop(cdfg, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PassManager;
    use hls_frontend::designs;
    use hls_ir::analysis::sccs;

    fn example1_body() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elaborate");
        PassManager::standard().run(&mut cdfg).expect("passes");
        let id = cdfg.innermost_loop().unwrap().id;
        linearize_loop(&cdfg, id).expect("linearize")
    }

    #[test]
    fn example1_linearizes_to_two_source_states() {
        let body = example1_body();
        assert_eq!(body.source_states, 2);
        assert!(body.exit_condition.is_some());
        assert!(body.validate().is_ok());
    }

    #[test]
    fn example1_body_keeps_the_recurrence_scc() {
        let body = example1_body();
        let comps = sccs(&body.dfg);
        assert_eq!(comps.len(), 1);
        let names: Vec<String> = comps[0]
            .ops
            .iter()
            .map(|&o| body.dfg.op(o).display_name())
            .collect();
        assert!(names.contains(&"loopMux".to_string()), "{names:?}");
        assert!(names.contains(&"add_op".to_string()), "{names:?}");
        assert!(names.contains(&"mul2_op".to_string()), "{names:?}");
    }

    #[test]
    fn example1_source_states_split_at_the_wait() {
        let body = example1_body();
        let state_of = |name: &str| {
            let (id, _) = body
                .dfg
                .iter_ops()
                .find(|(_, op)| op.display_name() == name)
                .unwrap_or_else(|| panic!("op {name} not found"));
            body.source_state.get(&id).copied().unwrap_or(0)
        };
        assert_eq!(state_of("mul1_op"), 0);
        assert_eq!(state_of("add_op"), 0);
        assert_eq!(state_of("mul2_op"), 0);
        assert_eq!(
            state_of("mul3_op"),
            1,
            "pixel computation comes after the wait"
        );
        assert_eq!(state_of("pixel_write"), 1);
    }

    #[test]
    fn mul2_is_predicated_after_the_standard_pipeline() {
        let body = example1_body();
        let (_, mul2) = body
            .dfg
            .iter_ops()
            .find(|(_, op)| op.display_name() == "mul2_op")
            .expect("mul2");
        assert!(!mul2.predicate.is_true());
    }

    #[test]
    fn unknown_loop_is_an_error() {
        let cdfg = designs::paper_example1_cdfg().expect("elaborate");
        let err = linearize_loop(&cdfg, LoopId::from_raw(99)).unwrap_err();
        assert!(matches!(err, OptError::UnknownLoop { .. }));
    }

    #[test]
    fn live_ins_become_free_pass_ops() {
        // the outer loop of example1 computes `aver = 0` (a constant, inlined)
        // — craft a case with a real live-in: moving_average's shift amount is
        // a constant so use fir where taps are constants too; instead check
        // that linearizing the *outer* loop of example1 works and any
        // referenced inner value appears as a live-in pass op or is internal.
        let mut cdfg = designs::paper_example1_cdfg().expect("elaborate");
        PassManager::standard().run(&mut cdfg).expect("passes");
        let outer = cdfg.loops[0].id;
        let body = linearize_loop(&cdfg, outer).expect("linearize outer");
        assert!(body.validate().is_ok());
    }

    #[test]
    fn prepare_innermost_loop_end_to_end() {
        let mut cdfg = designs::paper_example1_cdfg().expect("elaborate");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        assert_eq!(body.source_states, 2);
        assert!(body.num_ops() >= 10);
    }

    #[test]
    fn fir_linearizes_without_scc() {
        let mut cdfg =
            hls_frontend::elaborate(&designs::fir_filter(&[1, 2, 3, 4], 16)).expect("elab");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        assert!(sccs(&body.dfg).is_empty());
        // all computation sits before the trailing wait; the state after the
        // wait (closing the iteration) is empty
        assert_eq!(body.source_states, 2);
    }
}
