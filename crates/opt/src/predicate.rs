//! Predicate conversion (branch predication, Figure 4 of the paper).
//!
//! Operations homed on the branch edges of a fork receive a predicate derived
//! from the fork's condition: `Cond(c)` for the taken branch, `NotCond(c)`
//! for the not-taken branch, conjoined with any predicate they already carry
//! (nested conditionals). After this pass the scheduler can treat the loop
//! body as a straight line: mutual exclusion between the two arms is captured
//! entirely by predicates, which both the resource lower bound and
//! per-control-step resource sharing exploit.

use crate::error::OptError;
use crate::passes::Pass;
use hls_ir::{Cdfg, CfgNodeKind, Predicate};

/// The branch predication pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct PredicateConversion;

impl Pass for PredicateConversion {
    fn name(&self) -> &'static str {
        "predicate-conversion"
    }

    fn run(&self, cdfg: &mut Cdfg) -> Result<usize, OptError> {
        let mut changed = 0;
        // Collect (edge, predicate literal) pairs for every branch edge.
        let mut edge_predicates = Vec::new();
        for (edge_id, edge) in cdfg.cfg.iter_edges() {
            let Some(taken) = edge.branch_taken else {
                continue;
            };
            let from_kind = &cdfg.cfg.node(edge.from).kind;
            if !matches!(from_kind, CfgNodeKind::Fork) {
                continue;
            }
            let Some(&cond) = cdfg.fork_conditions.get(&edge.from) else {
                continue;
            };
            let literal = if taken {
                Predicate::Cond(cond)
            } else {
                Predicate::NotCond(cond)
            };
            edge_predicates.push((edge_id, literal));
        }
        for (edge_id, literal) in edge_predicates {
            for op_id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
                if cdfg.dfg.op(op_id).home_edge != Some(edge_id) {
                    continue;
                }
                let op = cdfg.dfg.op_mut(op_id);
                let old = std::mem::take(&mut op.predicate);
                op.predicate = old.and(literal.clone());
                changed += 1;
            }
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::{designs, elaborate, BehaviorBuilder, Expr};
    use hls_ir::{CmpKind, OpKind};

    #[test]
    fn example1_mul2_gets_predicated_on_gt() {
        let mut cdfg = designs::paper_example1_cdfg().expect("elaborate");
        let n = PredicateConversion.run(&mut cdfg).unwrap();
        assert!(n >= 1, "at least mul2_op must be predicated");
        let (gt_id, _) = cdfg
            .dfg
            .iter_ops()
            .find(|(_, op)| op.display_name() == "gt_op")
            .expect("gt op");
        let (_, mul2) = cdfg
            .dfg
            .iter_ops()
            .find(|(_, op)| op.display_name() == "mul2_op")
            .expect("mul2 op");
        assert_eq!(mul2.predicate, Predicate::Cond(gt_id));
        // operations outside the branch stay unconditional
        let (_, mul1) = cdfg
            .dfg
            .iter_ops()
            .find(|(_, op)| op.display_name() == "mul1_op")
            .expect("mul1 op");
        assert!(mul1.predicate.is_true());
    }

    #[test]
    fn then_and_else_arms_become_mutually_exclusive() {
        let mut b = BehaviorBuilder::new("branchy");
        b.port_in("x", 16);
        b.port_out("y", 16);
        let v = b.var("v", 16, 0);
        let body = vec![
            b.assign(v, b.read_port("x")),
            b.if_then_else(
                Expr::cmp(CmpKind::Gt, b.read_var(v), Expr::Const(7)),
                vec![b.assign(v, Expr::mul(b.read_var(v), Expr::Const(3)))],
                vec![b.assign(v, Expr::mul(b.read_var(v), Expr::Const(5)))],
            ),
            b.write_port("y", b.read_var(v)),
            b.wait(),
        ];
        let l = b.do_while(
            "main",
            body,
            Expr::cmp(CmpKind::Ne, b.read_var(v), Expr::Const(0)),
        );
        b.push(l);
        let mut cdfg = elaborate(&b.build()).expect("elaborate");
        PredicateConversion.run(&mut cdfg).unwrap();
        let muls: Vec<_> = cdfg
            .dfg
            .iter_ops()
            .filter(|(_, op)| matches!(op.kind, OpKind::Mul))
            .map(|(_, op)| op.predicate.clone())
            .collect();
        assert_eq!(muls.len(), 2);
        assert!(muls[0].mutually_exclusive(&muls[1]), "{muls:?}");
    }

    #[test]
    fn design_without_branches_is_untouched() {
        let mut cdfg = elaborate(&designs::moving_average(3, 16)).expect("elaborate");
        let n = PredicateConversion.run(&mut cdfg).unwrap();
        assert_eq!(n, 0);
    }
}
