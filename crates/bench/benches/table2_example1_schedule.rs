//! Table 2: schedule of the paper's Example 1 (sequential, 3 states).
use criterion::{criterion_group, criterion_main, Criterion};
use hls_explore::table2_example1_schedule;

fn bench(c: &mut Criterion) {
    let t2 = table2_example1_schedule();
    println!(
        "\nTABLE 2 — Example 1 sequential schedule (latency {}):\n{}",
        t2.latency, t2.table
    );
    c.bench_function("table2_example1_schedule", |b| {
        b.iter(table2_example1_schedule)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
