//! Figure 10: area/delay curves of IDCT micro-architectures.
use criterion::{criterion_group, criterion_main, Criterion};
use hls_explore::experiments::{idct_exploration, render_points};
use hls_explore::pareto_front;

fn bench(c: &mut Criterion) {
    let points = hls_explore::figure10_idct_area_delay();
    println!(
        "\nFIGURE 10 — IDCT area vs delay:\n{}",
        render_points(&points)
    );
    let front = pareto_front(&points);
    println!("Pareto front (delay, area):");
    for p in &front {
        println!(
            "  {:28} delay {:7.1} ns  area {:9.0}",
            p.label, p.delay_ns, p.area
        );
    }
    c.bench_function("figure10_idct_two_clock_sweep", |b| {
        b.iter(|| idct_exploration(&[1600.0, 2600.0]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
