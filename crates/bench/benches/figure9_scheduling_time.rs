//! Figure 9: scheduler runtime vs design size over synthetic industrial designs.
//!
//! The sweep itself (design population, table rendering, `BENCH_sched.json`
//! emission) is shared with the `figure9_perf` example via
//! `hls_explore::experiments::figure9_sweep`; CI runs the example with a
//! reduced size list and a wall-clock budget.
use criterion::{criterion_group, criterion_main, Criterion};
use hls_explore::experiments::{figure9_default_sizes, figure9_sweep};
use hls_explore::figure9_scheduling_time;

fn bench(c: &mut Criterion) {
    let sweep = figure9_sweep(&figure9_default_sizes());
    println!("\n{}", sweep.table());

    // Machine-readable perf trajectory at the repo root (crates/bench/../..).
    let json_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sched.json");
    sweep
        .write_json(&json_path)
        .expect("write BENCH_sched.json");
    println!("wrote {}", json_path.display());

    c.bench_function("figure9_small_design_scheduling", |b| {
        b.iter(|| figure9_scheduling_time(&[150, 300]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
