//! Figure 9: scheduler runtime vs design size over synthetic industrial designs.
use criterion::{criterion_group, criterion_main, Criterion};
use hls_explore::figure9_scheduling_time;

fn bench(c: &mut Criterion) {
    // 12 designs spanning the 100..2000 op range (a scaled-down version of
    // the paper's 40-design population; sizes grow roughly geometrically).
    let sizes: Vec<usize> = vec![
        100, 150, 220, 320, 450, 600, 800, 1000, 1250, 1500, 1750, 2000,
    ];
    let points = figure9_scheduling_time(&sizes);
    println!("\nFIGURE 9 — scheduling time vs design size:");
    println!(
        "  {:>6} {:>10} {:>8} {:>12}",
        "ops", "seconds", "latency", "class"
    );
    for p in &points {
        println!(
            "  {:>6} {:>10.3} {:>8} {:>12}",
            p.ops, p.seconds, p.latency, p.class
        );
    }
    c.bench_function("figure9_small_design_scheduling", |b| {
        b.iter(|| figure9_scheduling_time(&[150, 300]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
