//! Table 1: initial set of resources with delays (artisan 90nm, fastest cells).
use criterion::{criterion_group, criterion_main, Criterion};
use hls_explore::table1_library;

fn bench(c: &mut Criterion) {
    let rows = table1_library();
    println!("\nTABLE 1 — resource delays (ps):");
    for (name, delay) in &rows {
        println!("  {name:6} {delay:7.0}");
    }
    c.bench_function("table1_library_characterization", |b| {
        b.iter(table1_library)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
