//! Table 4: impact of time-driven SCC placement (area penalty when disabled).
use criterion::{criterion_group, criterion_main, Criterion};
use hls_explore::table4_scc_move_ablation;

fn bench(c: &mut Criterion) {
    let t4 = table4_scc_move_ablation(10, 180);
    println!("\nTABLE 4 — % area penalty with SCC-move disabled (7 most critical designs):");
    for (i, p) in t4.penalties_percent.iter().enumerate() {
        println!("  D{} {:6.1}%", i + 1, p);
    }
    println!("  avg {:6.1}%", t4.average_percent);
    c.bench_function("table4_scc_move_ablation_small", |b| {
        b.iter(|| table4_scc_move_ablation(3, 120))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
