//! Figure 11: power/delay curves of IDCT micro-architectures.
use criterion::{criterion_group, criterion_main, Criterion};
use hls_explore::experiments::idct_exploration;

fn bench(c: &mut Criterion) {
    let points = hls_explore::figure11_idct_power_delay();
    println!("\nFIGURE 11 — IDCT power vs delay:");
    println!("  {:28} {:>10} {:>12}", "point", "delay_ns", "power_uW");
    for p in &points {
        println!("  {:28} {:>10.1} {:>12.1}", p.label, p.delay_ns, p.power_uw);
    }
    if let (Some(max), Some(min)) = (
        points
            .iter()
            .map(|p| p.power_uw)
            .fold(None::<f64>, |a, v| Some(a.map_or(v, |m| m.max(v)))),
        points
            .iter()
            .map(|p| p.power_uw)
            .fold(None::<f64>, |a, v| Some(a.map_or(v, |m| m.min(v)))),
    ) {
        println!("  power range explored: {:.1}x", max / min.max(1e-9));
    }
    c.bench_function("figure11_idct_power_sweep", |b| {
        b.iter(|| idct_exploration(&[2100.0]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
