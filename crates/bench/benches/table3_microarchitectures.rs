//! Table 3: comparing micro-architectures of Example 1 (S, P2, P1).
use criterion::{criterion_group, criterion_main, Criterion};
use hls_explore::table3_microarchitectures;

fn bench(c: &mut Criterion) {
    let rows = table3_microarchitectures();
    println!("\nTABLE 3 — micro-architecture comparison:");
    println!(
        "  {:12} {:>18} {:>10} {:>5}",
        "arch", "cycles/iteration", "area", "muls"
    );
    for r in &rows {
        println!(
            "  {:12} {:>18} {:>10.0} {:>5}",
            r.name, r.cycles_per_iteration, r.area, r.multipliers
        );
    }
    c.bench_function("table3_microarchitectures", |b| {
        b.iter(table3_microarchitectures)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
