//! Ablation: unified scheduling+binding vs the classical separated flow, and
//! vs the modulo-scheduling baseline.
use criterion::{criterion_group, criterion_main, Criterion};
use hls::designs;
use hls::opt::linearize::prepare_innermost_loop;
use hls::sched::{schedule_separated, Scheduler, SchedulerConfig};
use hls::tech::{ClockConstraint, TechLibrary};

fn bench(c: &mut Criterion) {
    let mut cdfg = designs::paper_example1_cdfg().expect("elaborate");
    let body = prepare_innermost_loop(&mut cdfg).expect("linearize");
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(1600.0);

    let unified = Scheduler::new(&body, &lib, SchedulerConfig::sequential(clock, 1, 3))
        .run()
        .expect("unified");
    let separated = schedule_separated(&body, &lib, SchedulerConfig::sequential(clock, 1, 3))
        .expect("separated");
    println!("\nABLATION — unified vs separated scheduling/binding (Example 1):");
    println!(
        "  unified   : latency {}  worst slack {:+.0} ps",
        unified.latency, unified.min_slack_ps
    );
    println!(
        "  separated : latency {}  worst slack {:+.0} ps",
        separated.latency, separated.min_slack_ps
    );

    let modulo =
        hls::pipeline::modulo_schedule(&body, &lib, 1600.0, 2, 8, |_| 2).expect("modulo baseline");
    println!(
        "  modulo-scheduling baseline: II {}  latency {}",
        modulo.ii,
        modulo.latency()
    );

    c.bench_function("unified_scheduler_example1", |b| {
        b.iter(|| {
            Scheduler::new(&body, &lib, SchedulerConfig::sequential(clock, 1, 3))
                .run()
                .expect("unified")
        })
    });
    c.bench_function("separated_scheduler_example1", |b| {
        b.iter(|| {
            schedule_separated(&body, &lib, SchedulerConfig::sequential(clock, 1, 3))
                .expect("separated")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench
}
criterion_main!(benches);
