//! # hls-bench — benchmark harness regenerating the paper's tables and figures
//!
//! Each Criterion bench target corresponds to one table or figure of the
//! DATE 2011 paper; running `cargo bench` prints the measured rows next to
//! the timing statistics. See `EXPERIMENTS.md` at the workspace root for the
//! paper-reported vs measured comparison.
#![forbid(unsafe_code)]
