//! Error type of the front-end.

use std::error::Error;
use std::fmt;

/// Errors reported by parsing and elaboration.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FrontendError {
    /// A referenced port is not declared.
    UnknownPort {
        /// Port name.
        name: String,
    },
    /// A referenced variable is not declared.
    UnknownVar {
        /// Variable name (or id rendering).
        name: String,
    },
    /// A write targets an input port or a read targets an output port.
    PortDirection {
        /// Port name.
        name: String,
    },
    /// The behavioural text could not be parsed.
    Parse {
        /// Line number (1-based).
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The behaviour uses a construct elaboration does not support.
    Unsupported {
        /// Explanation.
        message: String,
    },
    /// Elaboration produced an inconsistent CDFG (internal invariant).
    Elaboration {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::UnknownPort { name } => write!(f, "unknown port `{name}`"),
            FrontendError::UnknownVar { name } => write!(f, "unknown variable `{name}`"),
            FrontendError::PortDirection { name } => {
                write!(f, "port `{name}` accessed against its direction")
            }
            FrontendError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FrontendError::Unsupported { message } => write!(f, "unsupported construct: {message}"),
            FrontendError::Elaboration { message } => write!(f, "elaboration error: {message}"),
        }
    }
}

impl Error for FrontendError {}

impl From<hls_ir::IrError> for FrontendError {
    fn from(e: hls_ir::IrError) -> Self {
        FrontendError::Elaboration {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            FrontendError::UnknownPort { name: "p".into() },
            FrontendError::Parse {
                line: 3,
                message: "expected `;`".into(),
            },
            FrontendError::Unsupported {
                message: "nested threads".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn ir_error_converts() {
        let ir = hls_ir::IrError::MultipleEntries { count: 2 };
        let fe: FrontendError = ir.into();
        assert!(matches!(fe, FrontendError::Elaboration { .. }));
    }
}
