//! Abstract syntax tree for behavioural threads.
//!
//! The AST is deliberately close to the untimed / partially timed SystemC
//! subset the paper's tool consumes: a module has input/output ports and one
//! thread whose body mixes variable assignments, port writes, `wait()` clock
//! boundaries, `if/else` conditionals and loops.

use hls_ir::{CmpKind, PortDirection};
use std::fmt;

/// Identifier of a local variable of a behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Binary arithmetic / logic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// An expression of the behavioural language.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Read of a local variable.
    Var(VarId),
    /// Read of an input port.
    Port(String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison producing a 1-bit value.
    Cmp(CmpKind, Box<Expr>, Box<Expr>),
    /// Unary negation (`-x`).
    Neg(Box<Expr>),
    /// Bitwise not (`~x`).
    Not(Box<Expr>),
    /// Conditional expression `cond ? a : b`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit-range selection `x.range(hi, lo)`.
    Slice {
        /// Value being sliced.
        value: Box<Expr>,
        /// Most significant bit.
        hi: u16,
        /// Least significant bit.
        lo: u16,
    },
    /// Call of a pre-designed IP function.
    Call {
        /// IP block name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Latency of the block in cycles (0 = combinational).
        latency: u32,
    },
}

// The constructors below are free associated functions (no `self`), not
// operator implementations; the std-ops names are kept because they read as
// the operation they build.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Convenience constructor for `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(a), Box::new(b))
    }
    /// Convenience constructor for `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(a), Box::new(b))
    }
    /// Convenience constructor for `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(a), Box::new(b))
    }
    /// Convenience constructor for `a >> n`.
    pub fn shr(a: Expr, n: Expr) -> Expr {
        Expr::Binary(BinOp::Shr, Box::new(a), Box::new(n))
    }
    /// Convenience constructor for `a << n`.
    pub fn shl(a: Expr, n: Expr) -> Expr {
        Expr::Binary(BinOp::Shl, Box::new(a), Box::new(n))
    }
    /// Convenience constructor for a comparison.
    pub fn cmp(kind: CmpKind, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(kind, Box::new(a), Box::new(b))
    }
    /// Convenience constructor for `cond ? a : b`.
    pub fn select(cond: Expr, a: Expr, b: Expr) -> Expr {
        Expr::Select(Box::new(cond), Box::new(a), Box::new(b))
    }

    /// Number of operation-producing nodes in the expression tree (constants
    /// and variable/port references excluded). Useful for size estimates.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Port(_) => 0,
            Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Neg(a) | Expr::Not(a) => 1 + a.op_count(),
            Expr::Select(c, a, b) => 1 + c.op_count() + a.op_count() + b.op_count(),
            Expr::Slice { value, .. } => value.op_count(),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::op_count).sum::<usize>(),
        }
    }
}

/// Kind of a loop statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    /// `do { body } while (cond)` — condition evaluated at the end.
    DoWhile,
    /// `while (cond) { body }` — condition evaluated at the start.
    While,
    /// `while (true) { body }` — runs forever (thread outer loop).
    Infinite,
}

/// A statement of the behavioural language.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `var = expr;`
    Assign {
        /// Target variable.
        var: VarId,
        /// Value.
        value: Expr,
    },
    /// `port = expr;` (output port write).
    WritePort {
        /// Output port name.
        port: String,
        /// Value written.
        value: Expr,
    },
    /// `wait();` — clock boundary.
    Wait,
    /// `if (cond) { then_body } else { else_body }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken branch.
        then_body: Vec<Stmt>,
        /// Not-taken branch (may be empty).
        else_body: Vec<Stmt>,
    },
    /// A loop.
    Loop {
        /// Loop kind.
        kind: LoopKind,
        /// Loop body.
        body: Vec<Stmt>,
        /// Continuation condition (ignored for `Infinite`).
        cond: Option<Expr>,
        /// Optional label used in reports and pipelining directives.
        label: Option<String>,
    },
}

impl Stmt {
    /// Number of operation-producing expression nodes in the statement,
    /// recursively.
    pub fn op_count(&self) -> usize {
        match self {
            Stmt::Assign { value, .. } => value.op_count(),
            Stmt::WritePort { value, .. } => 1 + value.op_count(),
            Stmt::Wait => 0,
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                cond.op_count()
                    + then_body.iter().map(Stmt::op_count).sum::<usize>()
                    + else_body.iter().map(Stmt::op_count).sum::<usize>()
            }
            Stmt::Loop { body, cond, .. } => {
                body.iter().map(Stmt::op_count).sum::<usize>()
                    + cond.as_ref().map(Expr::op_count).unwrap_or(0)
            }
        }
    }

    /// Number of `wait()` statements directly or indirectly contained.
    pub fn wait_count(&self) -> usize {
        match self {
            Stmt::Wait => 1,
            Stmt::Assign { .. } | Stmt::WritePort { .. } => 0,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                then_body.iter().map(Stmt::wait_count).sum::<usize>()
                    + else_body.iter().map(Stmt::wait_count).sum::<usize>()
            }
            Stmt::Loop { body, .. } => body.iter().map(Stmt::wait_count).sum(),
        }
    }
}

/// Declaration of a local variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Bit width.
    pub width: u16,
    /// Initial value at thread start.
    pub init: i64,
}

/// Declaration of a module port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// Bit width.
    pub width: u16,
}

/// A behavioural thread: ports, local variables and a statement body.
#[derive(Clone, Debug, PartialEq)]
pub struct Behavior {
    /// Design (module) name.
    pub name: String,
    /// Port declarations.
    pub ports: Vec<PortDecl>,
    /// Variable declarations, indexed by [`VarId`].
    pub vars: Vec<VarDecl>,
    /// Thread body.
    pub body: Vec<Stmt>,
}

impl Behavior {
    /// Looks up a port declaration by name.
    pub fn port(&self, name: &str) -> Option<&PortDecl> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Looks up a variable id by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Declaration of a variable.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn var(&self, id: VarId) -> &VarDecl {
        &self.vars[id.index()]
    }

    /// Total operation-producing expression nodes in the body (a rough
    /// pre-elaboration size estimate).
    pub fn op_count(&self) -> usize {
        self.body.iter().map(Stmt::op_count).sum()
    }

    /// Total `wait()` statements in the body.
    pub fn wait_count(&self) -> usize {
        self.body.iter().map(Stmt::wait_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_and_op_count() {
        let e = Expr::mul(
            Expr::Port("a".into()),
            Expr::add(Expr::Var(VarId(0)), Expr::Const(1)),
        );
        assert_eq!(e.op_count(), 2);
        let s = Expr::select(
            Expr::cmp(CmpKind::Gt, Expr::Var(VarId(0)), Expr::Const(3)),
            Expr::Const(1),
            Expr::Const(0),
        );
        assert_eq!(s.op_count(), 2);
    }

    #[test]
    fn stmt_counts() {
        let body = vec![
            Stmt::Assign {
                var: VarId(0),
                value: Expr::add(Expr::Const(1), Expr::Const(2)),
            },
            Stmt::Wait,
            Stmt::If {
                cond: Expr::cmp(CmpKind::Ne, Expr::Var(VarId(0)), Expr::Const(0)),
                then_body: vec![Stmt::WritePort {
                    port: "y".into(),
                    value: Expr::Var(VarId(0)),
                }],
                else_body: vec![],
            },
        ];
        let loop_stmt = Stmt::Loop {
            kind: LoopKind::Infinite,
            body,
            cond: None,
            label: None,
        };
        assert_eq!(loop_stmt.wait_count(), 1);
        assert_eq!(loop_stmt.op_count(), 1 + 1 + 1);
    }

    #[test]
    fn behavior_lookup() {
        let b = Behavior {
            name: "m".into(),
            ports: vec![PortDecl {
                name: "x".into(),
                direction: PortDirection::Input,
                width: 8,
            }],
            vars: vec![VarDecl {
                name: "acc".into(),
                width: 16,
                init: 0,
            }],
            body: vec![],
        };
        assert!(b.port("x").is_some());
        assert!(b.port("y").is_none());
        assert_eq!(b.var_by_name("acc"), Some(VarId(0)));
        assert_eq!(b.var(VarId(0)).width, 16);
        assert_eq!(b.op_count(), 0);
    }
}
