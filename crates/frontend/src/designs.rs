//! Canonical designs used by examples, tests and benchmarks.
//!
//! The most important one is [`paper_example1`], the SystemC thread of the
//! paper's Figure 1 whose scheduling walk-through (Tables 1–3, Examples 1–3)
//! this repository reproduces.

use crate::ast::{Behavior, Expr};
use crate::builder::BehaviorBuilder;
use crate::elaborate::elaborate;
use crate::error::FrontendError;
use hls_ir::{Cdfg, CmpKind, OpKind};

/// The behaviour of the paper's Figure 1.
///
/// ```c
/// void example1::thread() {
///     wait();
///     while (true) {
///         int aver = 0;
///         wait(); // s0
///         do {
///             int filt = mask;
///             delta = mask * chrome;
///             aver += delta;
///             if (aver > th) { aver *= scale; }
///             wait(); // s1
///             pixel = aver * filt;
///         } while (delta != 0);
///     }
/// }
/// ```
pub fn paper_example1() -> Behavior {
    let mut b = BehaviorBuilder::new("example1");
    b.port_in("mask", 32);
    b.port_in("chrome", 32);
    b.port_in("scale", 32);
    b.port_in("th", 32);
    b.port_out("pixel", 32);
    let aver = b.var("aver", 32, 0);
    let delta = b.var("delta", 32, 0);
    let filt = b.var("filt", 32, 0);

    let do_while_body = vec![
        b.assign(filt, b.read_port("mask")),
        b.assign(delta, Expr::mul(b.read_port("mask"), b.read_port("chrome"))),
        b.assign(aver, Expr::add(b.read_var(aver), b.read_var(delta))),
        b.if_then(
            Expr::cmp(CmpKind::Gt, b.read_var(aver), b.read_port("th")),
            vec![b.assign(aver, Expr::mul(b.read_var(aver), b.read_port("scale")))],
        ),
        b.wait(), // s1
        b.write_port("pixel", Expr::mul(b.read_var(aver), b.read_var(filt))),
    ];
    let inner = b.do_while(
        "do_while",
        do_while_body,
        Expr::cmp(CmpKind::Ne, b.read_var(delta), Expr::Const(0)),
    );
    let outer_body = vec![
        b.assign(aver, Expr::Const(0)),
        b.wait(), // s0
        inner,
    ];
    b.infinite_loop(outer_body);
    b.build()
}

/// Elaborates [`paper_example1`] and renames the arithmetic operations to the
/// paper's names (`mul1_op`, `mul2_op`, `mul3_op`, `add_op`, `gt_op`,
/// `neq_op`, `loopMux`, `MUX`) so that schedule reports read like Table 2.
///
/// # Errors
/// Propagates any [`FrontendError`] from elaboration.
pub fn paper_example1_cdfg() -> Result<Cdfg, FrontendError> {
    let mut cdfg = elaborate(&paper_example1())?;
    let mut mul_ordinal = 0;
    for id in cdfg.dfg.op_ids().collect::<Vec<_>>() {
        let new_name = {
            let op = cdfg.dfg.op(id);
            match &op.kind {
                OpKind::Mul => {
                    mul_ordinal += 1;
                    Some(format!("mul{mul_ordinal}_op"))
                }
                OpKind::Add => Some("add_op".to_string()),
                OpKind::Cmp(CmpKind::Gt) => Some("gt_op".to_string()),
                OpKind::Cmp(CmpKind::Ne) => Some("neq_op".to_string()),
                OpKind::Mux => {
                    let name = op.display_name();
                    if name.contains("loop_mux") {
                        Some("loopMux".to_string())
                    } else if name.ends_with("_mux") {
                        Some("MUX".to_string())
                    } else {
                        None
                    }
                }
                _ => None,
            }
        };
        if let Some(name) = new_name {
            cdfg.dfg.op_mut(id).name = Some(name);
        }
    }
    Ok(cdfg)
}

/// A `taps.len()`-tap FIR filter: one new sample in, one filtered sample out
/// per loop iteration, with the delay line carried across iterations.
///
/// This is representative of the "filters" among the paper's industrial
/// designs (Section VI.1).
pub fn fir_filter(taps: &[i64], width: u16) -> Behavior {
    let mut b = BehaviorBuilder::new(format!("fir{}", taps.len()));
    b.port_in("sample", width);
    b.port_out("filtered", width.saturating_mul(2).min(64));
    let delays: Vec<_> = (0..taps.len())
        .map(|i| b.var(format!("z{i}"), width, 0))
        .collect();
    let acc = b.var("acc", width.saturating_mul(2).min(64), 0);

    let mut body = Vec::new();
    // acc = sum(tap_i * z_i) with z_0 being the fresh sample.
    body.push(b.assign(delays[0], b.read_port("sample")));
    let mut sum = Expr::mul(Expr::Const(taps[0]), b.read_var(delays[0]));
    for (i, &t) in taps.iter().enumerate().skip(1) {
        sum = Expr::add(sum, Expr::mul(Expr::Const(t), b.read_var(delays[i])));
    }
    body.push(b.assign(acc, sum));
    body.push(b.write_port("filtered", b.read_var(acc)));
    // shift the delay line (read-before-write → loop-carried)
    for i in (1..taps.len()).rev() {
        body.push(b.assign(delays[i], b.read_var(delays[i - 1])));
    }
    body.push(b.wait());
    let l = b.do_while(
        "fir_loop",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("sample"), Expr::Const(0)),
    );
    b.infinite_loop(vec![l]);
    b.build()
}

/// An exponential moving average: `avg += (sample - avg) >> k`, a classic
/// single-SCC recurrence used to exercise SCC-to-stage placement.
pub fn moving_average(shift: i64, width: u16) -> Behavior {
    let mut b = BehaviorBuilder::new("moving_average");
    b.port_in("sample", width);
    b.port_out("avg_out", width);
    let avg = b.var("avg", width, 0);
    let body = vec![
        b.assign(
            avg,
            Expr::add(
                b.read_var(avg),
                Expr::shr(
                    Expr::sub(b.read_port("sample"), b.read_var(avg)),
                    Expr::Const(shift),
                ),
            ),
        ),
        b.write_port("avg_out", b.read_var(avg)),
        b.wait(),
    ];
    let l = b.do_while(
        "ema_loop",
        body,
        Expr::cmp(CmpKind::Ne, b.read_port("sample"), Expr::Const(0)),
    );
    b.infinite_loop(vec![l]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::analysis::sccs;

    #[test]
    fn example1_elaborates() {
        let cdfg = elaborate(&paper_example1()).expect("elaboration");
        // two loops: the thread loop and the do_while
        assert_eq!(cdfg.loops.len(), 2);
        let inner = cdfg.innermost_loop().unwrap();
        assert_eq!(inner.name.as_deref(), Some("do_while"));
        assert!(inner.exit_condition.is_some());
        // three multiplications, one addition, one gt, one neq
        let hist = cdfg.dfg.kind_histogram();
        assert_eq!(hist.get("mul"), Some(&3));
        assert_eq!(hist.get("add"), Some(&1));
        assert_eq!(hist.get("gt"), Some(&1));
        assert_eq!(hist.get("neq"), Some(&1));
    }

    #[test]
    fn example1_has_the_paper_scc() {
        let cdfg = paper_example1_cdfg().expect("elaboration");
        let comps = sccs(&cdfg.dfg);
        assert_eq!(comps.len(), 1);
        let names: Vec<String> = comps[0]
            .ops
            .iter()
            .map(|&id| cdfg.dfg.op(id).display_name())
            .collect();
        for expected in ["loopMux", "add_op", "mul2_op", "MUX", "gt_op"] {
            assert!(
                names.contains(&expected.to_string()),
                "missing {expected} in {names:?}"
            );
        }
        // mul1 (mask*chrome) and mul3 (aver*filt) are not on the recurrence
        assert!(!names.contains(&"mul1_op".to_string()));
        assert!(!names.contains(&"mul3_op".to_string()));
    }

    #[test]
    fn example1_renames_follow_paper() {
        let cdfg = paper_example1_cdfg().expect("elaboration");
        let names: Vec<String> = cdfg
            .dfg
            .iter_ops()
            .map(|(_, op)| op.display_name())
            .collect();
        for expected in [
            "mul1_op", "mul2_op", "mul3_op", "add_op", "gt_op", "neq_op", "loopMux",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn fir_filter_has_expected_multipliers() {
        let taps = [1, 2, 3, 4];
        let cdfg = elaborate(&fir_filter(&taps, 16)).expect("elaboration");
        let hist = cdfg.dfg.kind_histogram();
        assert_eq!(hist.get("mul"), Some(&4));
        assert_eq!(hist.get("add"), Some(&3));
        // the delay line is loop-carried (loopMux per tap register) but is a
        // feed-forward chain across iterations, so there is no recurrence SCC
        assert!(sccs(&cdfg.dfg).is_empty());
        let loop_muxes = cdfg
            .dfg
            .iter_ops()
            .filter(|(_, op)| op.display_name().contains("loop_mux"))
            .count();
        // z1..z3 are carried across inner-loop iterations (and, conservatively,
        // across the outer thread loop as well)
        assert!(
            loop_muxes >= 3,
            "expected at least 3 loop muxes, found {loop_muxes}"
        );
    }

    #[test]
    fn moving_average_is_a_single_scc_recurrence() {
        let cdfg = elaborate(&moving_average(3, 16)).expect("elaboration");
        let comps = sccs(&cdfg.dfg);
        assert_eq!(comps.len(), 1);
    }
}
