//! Elaboration: turning a [`Behavior`] into an [`hls_ir::Cdfg`].
//!
//! This mirrors the first box of the paper's Figure 2 design flow. The
//! elaborator walks the thread body and builds:
//!
//! * CFG nodes for `wait()` boundaries, fork/join pairs for conditionals and
//!   loop top/bottom pairs for loops, with control-step edges between them;
//! * DFG operations for every expression node, with each operation *homed* on
//!   the control-step edge it appears on in the source;
//! * the `loopMux` pattern for loop-carried variables: a multiplexer that
//!   selects the pre-loop value on the first iteration and the value produced
//!   by the previous iteration afterwards (see Figure 3(b) of the paper,
//!   where `aver` is carried through `loopMux`);
//! * the per-fork branch-condition table used later by predicate conversion.

use crate::ast::{Behavior, BinOp, Expr, LoopKind, Stmt, VarId};
use crate::error::FrontendError;
use hls_ir::{
    Cdfg, CfgEdgeId, CfgNodeId, CfgNodeKind, CmpKind, LoopId, LoopInfo, OpId, OpKind,
    PortDirection, PortId, Signal,
};
use std::collections::{BTreeMap, HashSet};

/// Elaborates a behaviour into a CDFG.
///
/// # Errors
///
/// Returns a [`FrontendError`] if the behaviour references undeclared
/// ports/variables, accesses a port against its direction, uses `wait()`
/// inside a conditional branch (unsupported — the paper balances such
/// branches before predicate conversion, this reproduction requires them to
/// be balanced in the source), or produces an invalid CDFG.
pub fn elaborate(behavior: &Behavior) -> Result<Cdfg, FrontendError> {
    let mut elab = Elaborator::new(behavior)?;
    elab.run()?;
    let cdfg = elab.finish();
    cdfg.validate()?;
    Ok(cdfg)
}

struct Elaborator<'a> {
    behavior: &'a Behavior,
    cdfg: Cdfg,
    /// Port table keyed by name. Ordered (`BTreeMap`) so that any iteration
    /// — today only lookups, but the map is a public-ish surface through
    /// elaboration order — is deterministic across runs.
    ports: BTreeMap<String, (PortId, PortDirection, u16)>,
    /// Current value of each variable.
    env: Vec<Signal>,
    /// Operations created since the last control-step boundary, awaiting
    /// assignment of their home edge.
    pending: Vec<OpId>,
    current_node: CfgNodeId,
    next_loop_id: u32,
}

impl<'a> Elaborator<'a> {
    fn new(behavior: &'a Behavior) -> Result<Self, FrontendError> {
        let mut cdfg = Cdfg::new(behavior.name.clone());
        let mut ports = BTreeMap::new();
        for decl in &behavior.ports {
            let id = cdfg
                .dfg
                .add_port(decl.name.clone(), decl.direction, decl.width);
            ports.insert(decl.name.clone(), (id, decl.direction, decl.width));
        }
        let env = behavior
            .vars
            .iter()
            .map(|v| Signal::constant(v.init, v.width))
            .collect();
        let entry = cdfg.cfg.add_node(CfgNodeKind::Entry);
        Ok(Elaborator {
            behavior,
            cdfg,
            ports,
            env,
            pending: Vec::new(),
            current_node: entry,
            next_loop_id: 0,
        })
    }

    fn run(&mut self) -> Result<(), FrontendError> {
        let body = self.behavior.body.clone();
        self.stmts(&body)?;
        if !self.pending.is_empty() || self.cdfg.loops.is_empty() {
            let exit = self.cdfg.cfg.add_node(CfgNodeKind::Exit);
            self.flush_to(exit);
        }
        Ok(())
    }

    fn finish(self) -> Cdfg {
        self.cdfg
    }

    /// Creates the edge `current_node → to`, homes all pending operations on
    /// it, and makes `to` the current node.
    fn flush_to(&mut self, to: CfgNodeId) -> CfgEdgeId {
        let edge = self.cdfg.cfg.add_edge(self.current_node, to);
        for op in self.pending.drain(..) {
            self.cdfg.dfg.set_home_edge(op, edge);
        }
        self.current_node = to;
        edge
    }

    /// Creates a branch edge `from → to` and homes all pending operations on it.
    fn flush_branch(&mut self, from: CfgNodeId, to: CfgNodeId, taken: bool) -> CfgEdgeId {
        let edge = self.cdfg.cfg.add_branch_edge(from, to, taken);
        for op in self.pending.drain(..) {
            self.cdfg.dfg.set_home_edge(op, edge);
        }
        edge
    }

    fn add_op(&mut self, kind: OpKind, width: u16, inputs: Vec<Signal>) -> OpId {
        let id = self.cdfg.dfg.add_op(kind, width, inputs);
        self.pending.push(id);
        id
    }

    fn add_named_op(&mut self, name: &str, kind: OpKind, width: u16, inputs: Vec<Signal>) -> OpId {
        let id = self.add_op(kind, width, inputs);
        self.cdfg.dfg.op_mut(id).name = Some(name.to_string());
        id
    }

    fn port(&self, name: &str) -> Result<(PortId, PortDirection, u16), FrontendError> {
        self.ports
            .get(name)
            .copied()
            .ok_or_else(|| FrontendError::UnknownPort {
                name: name.to_string(),
            })
    }

    fn var_signal(&self, var: VarId) -> Result<Signal, FrontendError> {
        self.env
            .get(var.index())
            .copied()
            .ok_or_else(|| FrontendError::UnknownVar {
                name: var.to_string(),
            })
    }

    /// Elaborates an expression and returns the signal carrying its value.
    fn expr(&mut self, e: &Expr) -> Result<Signal, FrontendError> {
        match e {
            Expr::Const(v) => Ok(Signal::constant(*v, 32)),
            Expr::Var(v) => self.var_signal(*v),
            Expr::Port(name) => {
                let (pid, dir, width) = self.port(name)?;
                if dir != PortDirection::Input {
                    return Err(FrontendError::PortDirection { name: name.clone() });
                }
                let op =
                    self.add_named_op(&format!("{name}_read"), OpKind::Read(pid), width, vec![]);
                Ok(Signal::op_w(op, width))
            }
            Expr::Binary(op, a, b) => {
                let sa = self.expr(a)?;
                let sb = self.expr(b)?;
                let width = sa.width.max(sb.width);
                let kind = match op {
                    BinOp::Add => OpKind::Add,
                    BinOp::Sub => OpKind::Sub,
                    BinOp::Mul => OpKind::Mul,
                    BinOp::Div => OpKind::Div,
                    BinOp::Rem => OpKind::Rem,
                    BinOp::And => OpKind::And,
                    BinOp::Or => OpKind::Or,
                    BinOp::Xor => OpKind::Xor,
                    BinOp::Shl => OpKind::Shl,
                    BinOp::Shr => OpKind::Shr,
                };
                let id = self.add_op(kind, width, vec![sa, sb]);
                Ok(Signal::op_w(id, width))
            }
            Expr::Cmp(kind, a, b) => {
                let sa = self.expr(a)?;
                let sb = self.expr(b)?;
                let id = self.add_op(OpKind::Cmp(*kind), 1, vec![sa, sb]);
                Ok(Signal::op_w(id, 1))
            }
            Expr::Neg(a) => {
                let sa = self.expr(a)?;
                let id = self.add_op(OpKind::Neg, sa.width, vec![sa]);
                Ok(Signal::op_w(id, sa.width))
            }
            Expr::Not(a) => {
                let sa = self.expr(a)?;
                let id = self.add_op(OpKind::Not, sa.width, vec![sa]);
                Ok(Signal::op_w(id, sa.width))
            }
            Expr::Select(c, a, b) => {
                let sc = self.expr(c)?;
                let sa = self.expr(a)?;
                let sb = self.expr(b)?;
                let width = sa.width.max(sb.width);
                let id = self.add_op(OpKind::Mux, width, vec![sc, sa, sb]);
                Ok(Signal::op_w(id, width))
            }
            Expr::Slice { value, hi, lo } => {
                let sv = self.expr(value)?;
                let width = hi.saturating_sub(*lo) + 1;
                let id = self.add_op(OpKind::Slice { hi: *hi, lo: *lo }, width, vec![sv]);
                Ok(Signal::op_w(id, width))
            }
            Expr::Call {
                name,
                args,
                latency,
            } => {
                let mut inputs = Vec::new();
                for a in args {
                    inputs.push(self.expr(a)?);
                }
                let width = inputs.iter().map(|s| s.width).max().unwrap_or(32);
                let id = self.add_op(
                    OpKind::Call {
                        name: name.clone(),
                        latency: *latency,
                    },
                    width,
                    inputs,
                );
                Ok(Signal::op_w(id, width))
            }
        }
    }

    /// Materializes an operation id for a signal so it can serve as a branch
    /// condition: the producing operation if there is one in this iteration,
    /// otherwise a `!= 0` comparison.
    fn materialize_condition(&mut self, sig: Signal) -> OpId {
        match sig.producer() {
            Some(op) if sig.distance == 0 => op,
            _ => self.add_op(
                OpKind::Cmp(CmpKind::Ne),
                1,
                vec![sig, Signal::constant(0, sig.width)],
            ),
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), FrontendError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), FrontendError> {
        match stmt {
            Stmt::Assign { var, value } => {
                let sig = self.expr(value)?;
                let decl_width = self.behavior.var(*var).width;
                // Assigning a wider expression to a narrower variable
                // truncates. Materialize the truncation as a free `Resize`
                // op so the IR, the estimators and the emitted RTL agree on
                // the value's width; constants just narrow in place.
                let sig = if sig.width > decl_width && sig.producer().is_some() {
                    let r = self.add_op(OpKind::Resize, decl_width, vec![sig]);
                    Signal::op_w(r, decl_width)
                } else {
                    Signal {
                        width: sig.width.min(decl_width),
                        ..sig
                    }
                };
                if var.index() >= self.env.len() {
                    return Err(FrontendError::UnknownVar {
                        name: var.to_string(),
                    });
                }
                self.env[var.index()] = sig;
                Ok(())
            }
            Stmt::WritePort { port, value } => {
                let (pid, dir, width) = self.port(port)?;
                if dir != PortDirection::Output {
                    return Err(FrontendError::PortDirection { name: port.clone() });
                }
                let sig = self.expr(value)?;
                self.add_named_op(
                    &format!("{port}_write"),
                    OpKind::Write(pid),
                    width,
                    vec![sig],
                );
                Ok(())
            }
            Stmt::Wait => {
                let node = self.cdfg.cfg.add_node(CfgNodeKind::Wait { label: None });
                self.flush_to(node);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => self.if_stmt(cond, then_body, else_body),
            Stmt::Loop {
                kind,
                body,
                cond,
                label,
            } => self.loop_stmt(*kind, body, cond.as_ref(), label.as_deref()),
        }
    }

    fn if_stmt(
        &mut self,
        cond: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
    ) -> Result<(), FrontendError> {
        if then_body.iter().map(Stmt::wait_count).sum::<usize>() > 0
            || else_body.iter().map(Stmt::wait_count).sum::<usize>() > 0
        {
            return Err(FrontendError::Unsupported {
                message: "wait() inside a conditional branch; balance branches before elaboration"
                    .to_string(),
            });
        }
        let cond_sig = self.expr(cond)?;
        let cond_op = self.materialize_condition(cond_sig);
        let cond_sig = Signal::op_w(cond_op, 1);

        let fork = self.cdfg.cfg.add_node(CfgNodeKind::Fork);
        self.flush_to(fork);
        self.cdfg.fork_conditions.insert(fork, cond_op);
        let join = self.cdfg.cfg.add_node(CfgNodeKind::Join);

        let env_before = self.env.clone();

        // Then branch.
        self.stmts(then_body)?;
        let env_then = self.env.clone();
        self.flush_branch(fork, join, true);

        // Else branch.
        self.env = env_before.clone();
        self.stmts(else_body)?;
        let env_else = self.env.clone();
        self.flush_branch(fork, join, false);

        // Merge at the join: variables that differ get a selection mux.
        self.current_node = join;
        self.env = env_before;
        for (idx, (t, e)) in env_then.iter().zip(env_else.iter()).enumerate() {
            if t == e {
                self.env[idx] = *t;
            } else {
                let width = t.width.max(e.width);
                let var_name = &self.behavior.vars[idx].name;
                let mux = self.add_named_op(
                    &format!("{var_name}_mux"),
                    OpKind::Mux,
                    width,
                    vec![cond_sig, *t, *e],
                );
                self.env[idx] = Signal::op_w(mux, width);
            }
        }
        Ok(())
    }

    fn loop_stmt(
        &mut self,
        kind: LoopKind,
        body: &[Stmt],
        cond: Option<&Expr>,
        label: Option<&str>,
    ) -> Result<(), FrontendError> {
        let loop_id = LoopId::from_raw(self.next_loop_id);
        self.next_loop_id += 1;
        let label = label
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("loop{}", loop_id.index()));

        let top = self.cdfg.cfg.add_node(CfgNodeKind::LoopTop { loop_id });
        self.flush_to(top);

        // Reserve the loop record now so that outer loops appear before inner
        // ones in `cdfg.loops` (outermost-first ordering).
        let loop_slot = self.cdfg.loops.len();
        self.cdfg.loops.push(LoopInfo {
            id: loop_id,
            top,
            bottom: top, // patched below
            body_edges: Vec::new(),
            exit_condition: None,
            infinite: kind == LoopKind::Infinite,
            name: Some(label.clone()),
        });

        let first_edge_idx = self.cdfg.cfg.num_edges();

        // Loop-carried variables: those read before being written inside the
        // body. Each gets the paper's loopMux selecting the pre-loop value on
        // the first iteration and the previous iteration's value afterwards.
        let carried: Vec<VarId> = {
            let exposed = upward_exposed_vars(body);
            let mut v: Vec<VarId> = exposed.into_iter().collect();
            v.sort();
            v
        };
        let first_iter = if carried.is_empty() {
            None
        } else {
            Some(self.add_named_op(&format!("{label}_first_iter"), OpKind::Pass, 1, vec![]))
        };
        let mut loop_muxes: Vec<(VarId, OpId)> = Vec::new();
        for var in &carried {
            let width = self.behavior.var(*var).width;
            let init = self.env[var.index()];
            let name = format!("{}_loop_mux", self.behavior.var(*var).name);
            let mux = self.add_named_op(
                &name,
                OpKind::Mux,
                width,
                vec![
                    Signal::op_w(first_iter.expect("carried implies first_iter"), 1),
                    init,
                    Signal::constant(0, width), // patched to the carried value below
                ],
            );
            self.env[var.index()] = Signal::op_w(mux, width);
            loop_muxes.push((*var, mux));
        }

        // While loops evaluate their condition at the top of the body.
        let mut exit_condition = None;
        if kind == LoopKind::While {
            if let Some(c) = cond {
                let sig = self.expr(c)?;
                exit_condition = Some(self.materialize_condition(sig));
            }
        }

        self.stmts(body)?;

        // Do-while loops evaluate their condition at the end of the body.
        if kind == LoopKind::DoWhile {
            if let Some(c) = cond {
                let sig = self.expr(c)?;
                exit_condition = Some(self.materialize_condition(sig));
            }
        }

        let bottom = self.cdfg.cfg.add_node(CfgNodeKind::LoopBottom { loop_id });
        self.flush_to(bottom);
        self.cdfg.cfg.add_back_edge(bottom, top);

        // Patch the carried input of every loopMux with the value the body
        // computed, one iteration away.
        for (var, mux) in loop_muxes {
            let end_val = self.env[var.index()];
            let width = self.cdfg.dfg.op(mux).width;
            let carried_sig = match end_val.producer() {
                Some(producer) => Signal::carried(producer, end_val.width, end_val.distance + 1),
                None => end_val,
            };
            self.cdfg.dfg.op_mut(mux).inputs[2] = Signal {
                width: carried_sig.width.min(width),
                ..carried_sig
            };
        }

        // Record the loop body edges: every forward edge created while the
        // body was elaborated (branch edges included, back edge excluded).
        let body_edges: Vec<CfgEdgeId> = (first_edge_idx..self.cdfg.cfg.num_edges())
            .map(|i| CfgEdgeId::from_raw(i as u32))
            .filter(|&e| !self.cdfg.cfg.edge(e).back_edge)
            .collect();

        let info = &mut self.cdfg.loops[loop_slot];
        info.bottom = bottom;
        info.body_edges = body_edges;
        info.exit_condition = exit_condition;
        Ok(())
    }
}

/// Variables read before being (definitely) written inside a statement list —
/// the loop-carried candidates.
fn upward_exposed_vars(body: &[Stmt]) -> HashSet<VarId> {
    let mut exposed = HashSet::new();
    let mut assigned = HashSet::new();
    scan_stmts(body, &mut assigned, &mut exposed);
    exposed
}

fn scan_stmts(stmts: &[Stmt], assigned: &mut HashSet<VarId>, exposed: &mut HashSet<VarId>) {
    for s in stmts {
        match s {
            Stmt::Assign { var, value } => {
                scan_expr(value, assigned, exposed);
                assigned.insert(*var);
            }
            Stmt::WritePort { value, .. } => scan_expr(value, assigned, exposed),
            Stmt::Wait => {}
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                scan_expr(cond, assigned, exposed);
                let mut assigned_then = assigned.clone();
                let mut assigned_else = assigned.clone();
                scan_stmts(then_body, &mut assigned_then, exposed);
                scan_stmts(else_body, &mut assigned_else, exposed);
                // Only variables assigned on *both* paths are definitely
                // assigned after the conditional.
                for v in assigned_then.intersection(&assigned_else) {
                    assigned.insert(*v);
                }
            }
            Stmt::Loop { body, cond, .. } => {
                // A nested loop may execute zero times (while) or at least
                // once (do-while); be conservative: its body reads count as
                // exposed unless already assigned, and its assignments are
                // not guaranteed.
                let mut inner_assigned = assigned.clone();
                scan_stmts(body, &mut inner_assigned, exposed);
                if let Some(c) = cond {
                    scan_expr(c, &inner_assigned, exposed);
                }
            }
        }
    }
}

fn scan_expr(expr: &Expr, assigned: &HashSet<VarId>, exposed: &mut HashSet<VarId>) {
    match expr {
        Expr::Const(_) | Expr::Port(_) => {}
        Expr::Var(v) => {
            if !assigned.contains(v) {
                exposed.insert(*v);
            }
        }
        Expr::Binary(_, a, b) | Expr::Cmp(_, a, b) => {
            scan_expr(a, assigned, exposed);
            scan_expr(b, assigned, exposed);
        }
        Expr::Neg(a) | Expr::Not(a) => scan_expr(a, assigned, exposed),
        Expr::Select(c, a, b) => {
            scan_expr(c, assigned, exposed);
            scan_expr(a, assigned, exposed);
            scan_expr(b, assigned, exposed);
        }
        Expr::Slice { value, .. } => scan_expr(value, assigned, exposed),
        Expr::Call { args, .. } => {
            for a in args {
                scan_expr(a, assigned, exposed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BehaviorBuilder;
    use hls_ir::analysis::sccs;

    fn accumulator_behavior() -> Behavior {
        let mut b = BehaviorBuilder::new("acc");
        b.port_in("x", 16);
        b.port_out("y", 32);
        let acc = b.var("acc", 32, 0);
        let body = vec![
            b.assign(acc, Expr::add(b.read_var(acc), b.read_port("x"))),
            b.write_port("y", b.read_var(acc)),
            b.wait(),
        ];
        let inner = b.do_while(
            "main",
            body,
            Expr::cmp(CmpKind::Ne, b.read_var(acc), Expr::Const(0)),
        );
        b.push(inner);
        b.build()
    }

    #[test]
    fn accumulator_elaborates_with_loop_mux_scc() {
        let cdfg = elaborate(&accumulator_behavior()).expect("elaboration");
        assert_eq!(cdfg.loops.len(), 1);
        let comps = sccs(&cdfg.dfg);
        assert_eq!(comps.len(), 1, "accumulator recurrence must form one SCC");
        // the SCC contains the add and the loop mux
        let names: Vec<String> = comps[0]
            .ops
            .iter()
            .map(|&op| cdfg.dfg.op(op).display_name())
            .collect();
        assert!(names.iter().any(|n| n.contains("loop_mux")), "{names:?}");
        assert!(names.iter().any(|n| n == "add"), "{names:?}");
    }

    #[test]
    fn loop_anchor_satisfies_the_first_iter_contract() {
        // The execution engines (hls-sim) and the RTL emitter detect the
        // first-iteration anchor through Operation::is_first_iter_anchor,
        // which matches the name this elaborator assigns. Renaming the
        // anchor here without updating that predicate would silently break
        // all loop-carried initialization — this test pins the contract.
        let cdfg = elaborate(&accumulator_behavior()).expect("elaboration");
        let anchors: Vec<_> = cdfg
            .dfg
            .iter_ops()
            .filter(|(_, op)| op.is_first_iter_anchor())
            .collect();
        assert_eq!(anchors.len(), 1, "one anchor for the single loop");
        assert!(anchors[0].1.display_name().ends_with("first_iter"));
    }

    #[test]
    fn elaboration_is_deterministic_across_runs() {
        let a = elaborate(&accumulator_behavior()).expect("elab a");
        let b = elaborate(&accumulator_behavior()).expect("elab b");
        assert_eq!(a.dfg, b.dfg, "op tables must match exactly");
        let ports_a: Vec<_> = a
            .dfg
            .iter_ports()
            .map(|(id, p)| (id, p.name.clone()))
            .collect();
        let ports_b: Vec<_> = b
            .dfg
            .iter_ports()
            .map(|(id, p)| (id, p.name.clone()))
            .collect();
        assert_eq!(ports_a, ports_b);
    }

    #[test]
    fn upward_exposed_detects_read_before_write() {
        let behavior = accumulator_behavior();
        let Stmt::Loop { body, .. } = &behavior.body[0] else {
            panic!("expected loop")
        };
        let exposed = upward_exposed_vars(body);
        assert!(exposed.contains(&VarId(0)), "acc is read before written");
    }

    #[test]
    fn variable_written_first_is_not_carried() {
        let mut b = BehaviorBuilder::new("t");
        b.port_in("x", 8);
        b.port_out("y", 8);
        let tmp = b.var("tmp", 8, 0);
        let body = vec![
            b.assign(tmp, b.read_port("x")),
            b.write_port("y", b.read_var(tmp)),
            b.wait(),
        ];
        let l = b.do_while(
            "main",
            body,
            Expr::cmp(CmpKind::Ne, b.read_var(tmp), Expr::Const(0)),
        );
        b.push(l);
        let cdfg = elaborate(&b.build()).expect("elaboration");
        // no loop mux, no SCC
        assert!(sccs(&cdfg.dfg).is_empty());
        let has_loop_mux = cdfg
            .dfg
            .iter_ops()
            .any(|(_, op)| op.display_name().contains("loop_mux"));
        assert!(!has_loop_mux);
    }

    #[test]
    fn if_creates_fork_join_and_merge_mux() {
        let mut b = BehaviorBuilder::new("cond");
        b.port_in("x", 8);
        b.port_out("y", 8);
        let v = b.var("v", 8, 0);
        let body = vec![
            b.assign(v, b.read_port("x")),
            b.if_then_else(
                Expr::cmp(CmpKind::Gt, b.read_var(v), Expr::Const(5)),
                vec![b.assign(v, Expr::mul(b.read_var(v), Expr::Const(3)))],
                vec![b.assign(v, Expr::add(b.read_var(v), Expr::Const(1)))],
            ),
            b.write_port("y", b.read_var(v)),
            b.wait(),
        ];
        let l = b.do_while(
            "main",
            body,
            Expr::cmp(CmpKind::Ne, b.read_var(v), Expr::Const(0)),
        );
        b.push(l);
        let cdfg = elaborate(&b.build()).expect("elaboration");
        let forks = cdfg
            .cfg
            .iter_nodes()
            .filter(|(_, n)| matches!(n.kind, CfgNodeKind::Fork))
            .count();
        assert_eq!(forks, 1);
        assert_eq!(cdfg.fork_conditions.len(), 1);
        let mux_count = cdfg
            .dfg
            .iter_ops()
            .filter(|(_, op)| matches!(op.kind, OpKind::Mux))
            .count();
        assert!(mux_count >= 1, "merge mux expected");
    }

    #[test]
    fn wait_in_branch_is_rejected() {
        let mut b = BehaviorBuilder::new("bad");
        b.port_in("x", 8);
        let v = b.var("v", 8, 0);
        let body = vec![
            b.if_then(
                Expr::cmp(CmpKind::Gt, b.read_port("x"), Expr::Const(0)),
                vec![b.wait(), b.assign(v, Expr::Const(1))],
            ),
            b.wait(),
        ];
        let l = b.do_while(
            "main",
            body,
            Expr::cmp(CmpKind::Ne, b.read_var(v), Expr::Const(0)),
        );
        b.push(l);
        let err = elaborate(&b.build()).unwrap_err();
        assert!(matches!(err, FrontendError::Unsupported { .. }));
    }

    #[test]
    fn unknown_port_is_rejected() {
        let mut b = BehaviorBuilder::new("bad");
        let v = b.var("v", 8, 0);
        b.push(Stmt::Assign {
            var: v,
            value: Expr::Port("nope".into()),
        });
        let err = elaborate(&b.build()).unwrap_err();
        assert!(matches!(err, FrontendError::UnknownPort { .. }));
    }

    #[test]
    fn port_direction_enforced() {
        let mut b = BehaviorBuilder::new("bad");
        b.port_in("x", 8);
        b.push(Stmt::WritePort {
            port: "x".into(),
            value: Expr::Const(0),
        });
        let err = elaborate(&b.build()).unwrap_err();
        assert!(matches!(err, FrontendError::PortDirection { .. }));
    }

    #[test]
    fn loop_body_edges_are_recorded() {
        let cdfg = elaborate(&accumulator_behavior()).expect("elaboration");
        let l = cdfg.innermost_loop().unwrap();
        assert!(!l.body_edges.is_empty());
        assert!(l.exit_condition.is_some());
        // ops of the loop are homed on body edges
        let by_edge = cdfg.ops_by_edge();
        let total_on_body: usize = l
            .body_edges
            .iter()
            .filter_map(|e| by_edge.get(e))
            .map(Vec::len)
            .sum();
        assert!(total_on_body >= 5);
    }

    #[test]
    fn nested_loops_are_outermost_first() {
        let mut b = BehaviorBuilder::new("nested");
        b.port_in("x", 8);
        b.port_out("y", 8);
        let acc = b.var("acc", 16, 0);
        let inner_body = vec![
            b.assign(acc, Expr::add(b.read_var(acc), b.read_port("x"))),
            b.wait(),
        ];
        let inner = b.do_while(
            "inner",
            inner_body,
            Expr::cmp(CmpKind::Ne, b.read_var(acc), Expr::Const(0)),
        );
        let outer_body = vec![
            b.assign(acc, Expr::Const(0)),
            b.wait(),
            inner,
            b.write_port("y", b.read_var(acc)),
        ];
        b.infinite_loop(outer_body);
        let cdfg = elaborate(&b.build()).expect("elaboration");
        assert_eq!(cdfg.loops.len(), 2);
        assert!(cdfg.loops[0].infinite, "outer thread loop first");
        assert!(!cdfg.loops[1].infinite);
        assert_eq!(
            cdfg.innermost_loop().unwrap().name.as_deref(),
            Some("inner")
        );
    }

    #[test]
    fn narrowing_assignment_materializes_a_resize_op() {
        // `var v : 8` assigned a 16-bit sum: the declared-width truncation
        // must exist in the IR (as a free Resize op of width 8), not just as
        // relabeled signal metadata.
        let mut b = BehaviorBuilder::new("narrow");
        b.port_in("a", 16);
        b.port_out("y", 8);
        let v = b.var("v", 8, 0);
        let body = vec![
            b.assign(v, Expr::add(b.read_port("a"), b.read_port("a"))),
            b.write_port("y", b.read_var(v)),
            b.wait(),
        ];
        b.infinite_loop(body);
        let cdfg = elaborate(&b.build()).expect("elaboration");
        let resizes: Vec<_> = cdfg
            .dfg
            .iter_ops()
            .filter(|(_, op)| matches!(op.kind, OpKind::Resize))
            .collect();
        assert_eq!(resizes.len(), 1, "one truncation op expected");
        let (_, resize) = resizes[0];
        assert_eq!(resize.width, 8);
        assert_eq!(resize.inputs[0].width, 16);
        // widening or equal-width assignments add no resize
        let mut b2 = BehaviorBuilder::new("wide");
        b2.port_in("a", 8);
        b2.port_out("y", 16);
        let w = b2.var("w", 16, 0);
        let body2 = vec![
            b2.assign(w, b2.read_port("a")),
            b2.write_port("y", b2.read_var(w)),
            b2.wait(),
        ];
        b2.infinite_loop(body2);
        let cdfg2 = elaborate(&b2.build()).expect("elaboration");
        assert!(!cdfg2
            .dfg
            .iter_ops()
            .any(|(_, op)| matches!(op.kind, OpKind::Resize)));
    }
}
