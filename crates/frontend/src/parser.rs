//! A small textual behavioural language.
//!
//! The language is a C-like subset sufficient to describe the paper's input
//! threads without a SystemC compiler:
//!
//! ```text
//! module example1 {
//!   in  mask : 32;  in chrome : 32;  in scale : 32;  in th : 32;
//!   out pixel : 32;
//!   var aver : 32 = 0;  var delta : 32 = 0;  var filt : 32 = 0;
//!   thread {
//!     aver = 0;
//!     wait;
//!     do {
//!       filt = mask;
//!       delta = mask * chrome;
//!       aver = aver + delta;
//!       if (aver > th) { aver = aver * scale; }
//!       wait;
//!       pixel = aver * filt;
//!     } while (delta != 0);
//!   }
//! }
//! ```
//!
//! Statements inside `thread { ... }` are wrapped in the implicit infinite
//! thread loop, exactly like the `while(true)` of the SystemC original.

use crate::ast::{Behavior, BinOp, Expr, LoopKind, PortDecl, Stmt, VarDecl, VarId};
use crate::error::FrontendError;
use hls_ir::{CmpKind, PortDirection};

/// Parses the textual behavioural language into a [`Behavior`].
///
/// # Errors
/// Returns [`FrontendError::Parse`] with a line number and message when the
/// text does not conform to the grammar.
pub fn parse(source: &str) -> Result<Behavior, FrontendError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.module()
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Sym(String),
}

#[derive(Clone, Debug)]
struct Token {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<Token>, FrontendError> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let code = line.split("//").next().unwrap_or("");
        let mut chars = code.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
            } else if c.is_ascii_digit() {
                let mut n = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value = n.parse::<i64>().map_err(|_| FrontendError::Parse {
                    line: line_no,
                    message: format!("bad number `{n}`"),
                })?;
                out.push(Token {
                    tok: Tok::Num(value),
                    line: line_no,
                });
            } else if c.is_alphabetic() || c == '_' {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(s),
                    line: line_no,
                });
            } else {
                chars.next();
                let two = match (c, chars.peek()) {
                    ('=', Some('='))
                    | ('!', Some('='))
                    | ('<', Some('='))
                    | ('>', Some('='))
                    | ('<', Some('<'))
                    | ('>', Some('>')) => {
                        let mut s = String::from(c);
                        s.push(*chars.peek().expect("peeked"));
                        chars.next();
                        Some(s)
                    }
                    _ => None,
                };
                let sym = two.unwrap_or_else(|| c.to_string());
                out.push(Token {
                    tok: Tok::Sym(sym),
                    line: line_no,
                });
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> FrontendError {
        FrontendError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, sym: &str) -> Result<(), FrontendError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            other => Err(self.err(format!("expected `{sym}`, found {other:?}"))),
        }
    }

    fn eat_ident(&mut self, kw: &str) -> Result<(), FrontendError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, FrontendError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<i64, FrontendError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            Some(Tok::Sym(s)) if s == "-" => Ok(-self.number()?),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    /// Parses a port/variable bit width, rejecting widths outside `1..=1024`
    /// (which would otherwise truncate silently through `as u16`).
    fn width(&mut self) -> Result<u16, FrontendError> {
        let n = self.number()?;
        if !(1..=1024).contains(&n) {
            return Err(self.err(format!("bad width `{n}` (expected 1..=1024 bits)")));
        }
        Ok(n as u16)
    }

    fn is_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(s)) if s == sym)
    }

    fn is_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn module(&mut self) -> Result<Behavior, FrontendError> {
        self.eat_ident("module")?;
        let name = self.ident()?;
        self.eat_sym("{")?;
        let mut ports = Vec::new();
        let mut vars = Vec::new();
        let mut body = Vec::new();
        loop {
            if self.is_sym("}") {
                self.next();
                break;
            }
            if self.is_ident("in") || self.is_ident("out") {
                let dir = if self.is_ident("in") {
                    PortDirection::Input
                } else {
                    PortDirection::Output
                };
                self.next();
                let pname = self.ident()?;
                self.eat_sym(":")?;
                let width = self.width()?;
                self.eat_sym(";")?;
                ports.push(PortDecl {
                    name: pname,
                    direction: dir,
                    width,
                });
            } else if self.is_ident("var") {
                self.next();
                let vname = self.ident()?;
                self.eat_sym(":")?;
                let width = self.width()?;
                let init = if self.is_sym("=") {
                    self.next();
                    self.number()?
                } else {
                    0
                };
                self.eat_sym(";")?;
                vars.push(VarDecl {
                    name: vname,
                    width,
                    init,
                });
            } else if self.is_ident("thread") {
                self.next();
                let names = Names {
                    ports: &ports,
                    vars: &vars,
                };
                let stmts = self.block(&names)?;
                body.push(Stmt::Loop {
                    kind: LoopKind::Infinite,
                    body: stmts,
                    cond: None,
                    label: Some("thread".into()),
                });
            } else {
                return Err(self.err(format!("unexpected token {:?}", self.peek())));
            }
        }
        Ok(Behavior {
            name,
            ports,
            vars,
            body,
        })
    }

    fn block(&mut self, names: &Names<'_>) -> Result<Vec<Stmt>, FrontendError> {
        self.eat_sym("{")?;
        let mut out = Vec::new();
        while !self.is_sym("}") {
            out.push(self.stmt(names)?);
        }
        self.eat_sym("}")?;
        Ok(out)
    }

    fn stmt(&mut self, names: &Names<'_>) -> Result<Stmt, FrontendError> {
        if self.is_ident("wait") {
            self.next();
            if self.is_sym("(") {
                self.next();
                self.eat_sym(")")?;
            }
            self.eat_sym(";")?;
            return Ok(Stmt::Wait);
        }
        if self.is_ident("if") {
            self.next();
            self.eat_sym("(")?;
            let cond = self.expr(names)?;
            self.eat_sym(")")?;
            let then_body = self.block(names)?;
            let else_body = if self.is_ident("else") {
                self.next();
                self.block(names)?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        if self.is_ident("do") {
            self.next();
            let body = self.block(names)?;
            self.eat_ident("while")?;
            self.eat_sym("(")?;
            let cond = self.expr(names)?;
            self.eat_sym(")")?;
            self.eat_sym(";")?;
            return Ok(Stmt::Loop {
                kind: LoopKind::DoWhile,
                body,
                cond: Some(cond),
                label: Some("do_while".into()),
            });
        }
        if self.is_ident("while") {
            self.next();
            self.eat_sym("(")?;
            let cond = self.expr(names)?;
            self.eat_sym(")")?;
            let body = self.block(names)?;
            return Ok(Stmt::Loop {
                kind: LoopKind::While,
                body,
                cond: Some(cond),
                label: Some("while".into()),
            });
        }
        // assignment: `name = expr ;`
        let target = self.ident()?;
        self.eat_sym("=")?;
        let value = self.expr(names)?;
        self.eat_sym(";")?;
        if let Some(var) = names.var(&target) {
            Ok(Stmt::Assign { var, value })
        } else if names.is_port(&target) {
            Ok(Stmt::WritePort {
                port: target,
                value,
            })
        } else {
            Err(self.err(format!("unknown assignment target `{target}`")))
        }
    }

    fn expr(&mut self, names: &Names<'_>) -> Result<Expr, FrontendError> {
        self.comparison(names)
    }

    fn comparison(&mut self, names: &Names<'_>) -> Result<Expr, FrontendError> {
        let lhs = self.add_sub(names)?;
        let kind = match self.peek() {
            Some(Tok::Sym(s)) if s == "==" => Some(CmpKind::Eq),
            Some(Tok::Sym(s)) if s == "!=" => Some(CmpKind::Ne),
            Some(Tok::Sym(s)) if s == "<" => Some(CmpKind::Lt),
            Some(Tok::Sym(s)) if s == "<=" => Some(CmpKind::Le),
            Some(Tok::Sym(s)) if s == ">" => Some(CmpKind::Gt),
            Some(Tok::Sym(s)) if s == ">=" => Some(CmpKind::Ge),
            _ => None,
        };
        if let Some(kind) = kind {
            self.next();
            let rhs = self.add_sub(names)?;
            Ok(Expr::Cmp(kind, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_sub(&mut self, names: &Names<'_>) -> Result<Expr, FrontendError> {
        let mut lhs = self.mul_div(names)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym(s)) if s == "+" => BinOp::Add,
                Some(Tok::Sym(s)) if s == "-" => BinOp::Sub,
                Some(Tok::Sym(s)) if s == "&" => BinOp::And,
                Some(Tok::Sym(s)) if s == "|" => BinOp::Or,
                Some(Tok::Sym(s)) if s == "^" => BinOp::Xor,
                _ => break,
            };
            self.next();
            let rhs = self.mul_div(names)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_div(&mut self, names: &Names<'_>) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary(names)?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym(s)) if s == "*" => BinOp::Mul,
                Some(Tok::Sym(s)) if s == "/" => BinOp::Div,
                Some(Tok::Sym(s)) if s == "%" => BinOp::Rem,
                Some(Tok::Sym(s)) if s == "<<" => BinOp::Shl,
                Some(Tok::Sym(s)) if s == ">>" => BinOp::Shr,
                _ => break,
            };
            self.next();
            let rhs = self.unary(names)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self, names: &Names<'_>) -> Result<Expr, FrontendError> {
        if self.is_sym("-") {
            self.next();
            return Ok(Expr::Neg(Box::new(self.unary(names)?)));
        }
        if self.is_sym("~") {
            self.next();
            return Ok(Expr::Not(Box::new(self.unary(names)?)));
        }
        self.primary(names)
    }

    fn primary(&mut self, names: &Names<'_>) -> Result<Expr, FrontendError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(Expr::Const(n)),
            Some(Tok::Sym(s)) if s == "(" => {
                let e = self.expr(names)?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if let Some(var) = names.var(&name) {
                    Ok(Expr::Var(var))
                } else if names.is_port(&name) {
                    Ok(Expr::Port(name))
                } else {
                    Err(self.err(format!("unknown identifier `{name}`")))
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

struct Names<'a> {
    ports: &'a [PortDecl],
    vars: &'a [VarDecl],
}

impl Names<'_> {
    fn var(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }
    fn is_port(&self, name: &str) -> bool {
        self.ports.iter().any(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;

    const EXAMPLE1_SRC: &str = r#"
module example1 {
  in mask : 32; in chrome : 32; in scale : 32; in th : 32;
  out pixel : 32;
  var aver : 32 = 0; var delta : 32 = 0; var filt : 32 = 0;
  thread {
    aver = 0;
    wait;
    do {
      filt = mask;
      delta = mask * chrome;
      aver = aver + delta;
      if (aver > th) { aver = aver * scale; }
      wait;
      pixel = aver * filt;
    } while (delta != 0);
  }
}
"#;

    #[test]
    fn parses_paper_example() {
        let behavior = parse(EXAMPLE1_SRC).expect("parse");
        assert_eq!(behavior.name, "example1");
        assert_eq!(behavior.ports.len(), 5);
        assert_eq!(behavior.vars.len(), 3);
        assert_eq!(behavior.wait_count(), 2);
        // and it elaborates with the expected operation mix
        let cdfg = elaborate(&behavior).expect("elaborate");
        let hist = cdfg.dfg.kind_histogram();
        assert_eq!(hist.get("mul"), Some(&3));
        assert_eq!(hist.get("add"), Some(&1));
    }

    #[test]
    fn parsed_example_matches_builder_example() {
        let parsed = parse(EXAMPLE1_SRC).expect("parse");
        let built = crate::designs::paper_example1();
        // Same op and wait counts (structural equivalence proxy).
        assert_eq!(parsed.op_count(), built.op_count());
        assert_eq!(parsed.wait_count(), built.wait_count());
    }

    #[test]
    fn precedence_mul_over_add() {
        let src = "module m { in a : 8; out y : 8; var v : 8 = 0; thread { v = a + a * 2; wait; y = v; } }";
        let b = parse(src).expect("parse");
        // v = a + (a*2): top node is Add
        let Stmt::Loop { body, .. } = &b.body[0] else {
            panic!()
        };
        let Stmt::Assign { value, .. } = &body[0] else {
            panic!()
        };
        match value {
            Expr::Binary(BinOp::Add, _, rhs) => match rhs.as_ref() {
                Expr::Binary(BinOp::Mul, _, _) => {}
                other => panic!("expected mul on rhs, got {other:?}"),
            },
            other => panic!("expected add at top, got {other:?}"),
        }
    }

    #[test]
    fn comparison_and_while_loop() {
        let src = "module m { in a : 8; out y : 8; var i : 8 = 0; thread { while (i < 10) { i = i + 1; wait; } y = i; wait; } }";
        let b = parse(src).expect("parse");
        let Stmt::Loop { body, .. } = &b.body[0] else {
            panic!()
        };
        assert!(matches!(
            &body[0],
            Stmt::Loop {
                kind: LoopKind::While,
                ..
            }
        ));
    }

    #[test]
    fn error_has_line_number() {
        let src = "module m {\n  in a : 8;\n  bogus token here\n}";
        let err = parse(src).unwrap_err();
        match err {
            FrontendError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_identifier_rejected() {
        let src = "module m { in a : 8; out y : 8; var v : 8; thread { v = nosuch + 1; wait; } }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn malformed_module_is_rejected() {
        // missing `module` keyword
        let err = parse("widget m { }").unwrap_err();
        assert!(
            matches!(err, FrontendError::Parse { line: 1, .. }),
            "{err:?}"
        );
        // missing module name
        assert!(parse("module { }").is_err());
        // unclosed module body: the parser runs out of tokens
        let err = parse("module m {\n  in a : 8;\n").unwrap_err();
        let FrontendError::Parse { message, .. } = &err else {
            panic!("expected parse error, got {err:?}")
        };
        assert!(
            message.contains("None") || message.contains("unexpected"),
            "{message}"
        );
        // stray declaration keyword inside the body
        assert!(parse("module m { input a : 8; }").is_err());
    }

    #[test]
    fn unknown_assignment_target_is_rejected() {
        let src = "module m { in a : 8; out y : 8; thread { nosuch = a; wait; } }";
        let err = parse(src).unwrap_err();
        let FrontendError::Parse { message, .. } = &err else {
            panic!("expected parse error, got {err:?}")
        };
        assert!(message.contains("nosuch"), "{message}");
    }

    #[test]
    fn input_port_cannot_be_assigned_but_output_can() {
        // writing an output port is fine...
        let ok = "module m { in a : 8; out y : 8; thread { y = a; wait; } }";
        assert!(parse(ok).is_ok());
        // ...and an unknown name on the right-hand side is caught too
        let bad = "module m { in a : 8; out y : 8; thread { y = ghost + 1; wait; } }";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn bad_width_is_rejected() {
        for (src, what) in [
            ("module m { in a : 0; }", "zero width"),
            ("module m { in a : -4; }", "negative width"),
            ("module m { in a : 100000; }", "huge width"),
            ("module m { var v : 0; }", "zero var width"),
        ] {
            let err = parse(src).unwrap_err();
            let FrontendError::Parse { message, .. } = &err else {
                panic!("{what}: expected parse error, got {err:?}")
            };
            assert!(message.contains("bad width"), "{what}: {message}");
        }
        // non-numeric width is still a plain "expected number" error
        assert!(parse("module m { in a : wide; }").is_err());
        // boundary widths are accepted
        assert!(parse("module m { in a : 1; }").is_ok());
        assert!(parse("module m { in a : 1024; }").is_ok());
    }

    #[test]
    fn comments_and_negative_literals() {
        let src = "module m { in a : 8; out y : 8; var v : 8 = 0; thread { // comment\n v = 0 - 3; wait; y = v; } }";
        let b = parse(src).expect("parse");
        assert_eq!(b.vars[0].init, 0);
        assert_eq!(b.wait_count(), 1);
    }
}
