//! Ergonomic construction of [`Behavior`] values.
//!
//! The builder plays the role of "writing the SystemC module" in the paper's
//! flow: it declares ports and variables and assembles the thread body.
//! Statement lists for nested constructs (loop bodies, branch arms) are built
//! with the free-standing block helpers and passed in as vectors.

use crate::ast::{Behavior, Expr, LoopKind, PortDecl, Stmt, VarDecl, VarId};
use hls_ir::PortDirection;

/// Builder for [`Behavior`] values.
///
/// # Example
///
/// ```
/// use hls_frontend::{BehaviorBuilder, Expr};
///
/// let mut b = BehaviorBuilder::new("doubler");
/// b.port_in("x", 16);
/// b.port_out("y", 17);
/// let body = vec![
///     b.write_port("y", Expr::mul(b.read_port("x"), Expr::Const(2))),
///     b.wait(),
/// ];
/// let behavior = b.infinite_loop(body).build();
/// assert_eq!(behavior.ports.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct BehaviorBuilder {
    name: String,
    ports: Vec<PortDecl>,
    vars: Vec<VarDecl>,
    body: Vec<Stmt>,
}

impl BehaviorBuilder {
    /// Starts a new behaviour with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        BehaviorBuilder {
            name: name.into(),
            ports: Vec::new(),
            vars: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Declares an input port.
    pub fn port_in(&mut self, name: impl Into<String>, width: u16) -> String {
        let name = name.into();
        self.ports.push(PortDecl {
            name: name.clone(),
            direction: PortDirection::Input,
            width,
        });
        name
    }

    /// Declares an output port.
    pub fn port_out(&mut self, name: impl Into<String>, width: u16) -> String {
        let name = name.into();
        self.ports.push(PortDecl {
            name: name.clone(),
            direction: PortDirection::Output,
            width,
        });
        name
    }

    /// Declares a local variable with an initial value and returns its id.
    pub fn var(&mut self, name: impl Into<String>, width: u16, init: i64) -> VarId {
        self.vars.push(VarDecl {
            name: name.into(),
            width,
            init,
        });
        VarId((self.vars.len() - 1) as u32)
    }

    /// Expression reading an input port.
    pub fn read_port(&self, name: impl Into<String>) -> Expr {
        Expr::Port(name.into())
    }

    /// Expression reading a variable.
    pub fn read_var(&self, var: VarId) -> Expr {
        Expr::Var(var)
    }

    /// Statement `var = value`.
    pub fn assign(&self, var: VarId, value: Expr) -> Stmt {
        Stmt::Assign { var, value }
    }

    /// Statement writing an output port.
    pub fn write_port(&self, port: impl Into<String>, value: Expr) -> Stmt {
        Stmt::WritePort {
            port: port.into(),
            value,
        }
    }

    /// Statement `wait()`.
    pub fn wait(&self) -> Stmt {
        Stmt::Wait
    }

    /// Statement `if (cond) { then_body }`.
    pub fn if_then(&self, cond: Expr, then_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_body,
            else_body: Vec::new(),
        }
    }

    /// Statement `if (cond) { then_body } else { else_body }`.
    pub fn if_then_else(&self, cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_body,
            else_body,
        }
    }

    /// Statement `do { body } while (cond)` with a loop label.
    pub fn do_while(&self, label: impl Into<String>, body: Vec<Stmt>, cond: Expr) -> Stmt {
        Stmt::Loop {
            kind: LoopKind::DoWhile,
            body,
            cond: Some(cond),
            label: Some(label.into()),
        }
    }

    /// Statement `while (cond) { body }` with a loop label.
    pub fn while_loop(&self, label: impl Into<String>, cond: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            kind: LoopKind::While,
            body,
            cond: Some(cond),
            label: Some(label.into()),
        }
    }

    /// Appends a statement to the top-level thread body.
    pub fn push(&mut self, stmt: Stmt) -> &mut Self {
        self.body.push(stmt);
        self
    }

    /// Wraps the given statements in the thread's outer `while(true)` loop and
    /// appends it to the body (the usual SystemC thread shape).
    pub fn infinite_loop(&mut self, body: Vec<Stmt>) -> &mut Self {
        self.body.push(Stmt::Loop {
            kind: LoopKind::Infinite,
            body,
            cond: None,
            label: Some("thread".into()),
        });
        self
    }

    /// Finishes construction.
    pub fn build(&self) -> Behavior {
        Behavior {
            name: self.name.clone(),
            ports: self.ports.clone(),
            vars: self.vars.clone(),
            body: self.body.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::CmpKind;

    #[test]
    fn builds_ports_vars_and_body() {
        let mut b = BehaviorBuilder::new("demo");
        b.port_in("a", 8);
        b.port_out("y", 8);
        let acc = b.var("acc", 16, 0);
        let body = vec![
            b.assign(acc, Expr::add(b.read_var(acc), b.read_port("a"))),
            b.wait(),
            b.write_port("y", b.read_var(acc)),
        ];
        let behavior = b.infinite_loop(body).build();
        assert_eq!(behavior.name, "demo");
        assert_eq!(behavior.ports.len(), 2);
        assert_eq!(behavior.vars.len(), 1);
        assert_eq!(behavior.wait_count(), 1);
        assert_eq!(behavior.body.len(), 1);
    }

    #[test]
    fn conditional_and_do_while() {
        let mut b = BehaviorBuilder::new("cond");
        b.port_in("x", 8);
        let v = b.var("v", 8, 0);
        let inner = vec![
            b.if_then_else(
                Expr::cmp(CmpKind::Gt, b.read_var(v), Expr::Const(3)),
                vec![b.assign(v, Expr::Const(0))],
                vec![b.assign(v, Expr::add(b.read_var(v), Expr::Const(1)))],
            ),
            b.wait(),
        ];
        let loop_stmt = b.do_while(
            "main",
            inner,
            Expr::cmp(CmpKind::Ne, b.read_var(v), Expr::Const(0)),
        );
        b.push(loop_stmt);
        let behavior = b.build();
        assert_eq!(behavior.body.len(), 1);
        match &behavior.body[0] {
            Stmt::Loop { kind, label, .. } => {
                assert_eq!(*kind, LoopKind::DoWhile);
                assert_eq!(label.as_deref(), Some("main"));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }
}
