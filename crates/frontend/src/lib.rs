//! # hls-frontend — behavioural front-end and elaboration
//!
//! The paper's tool takes SystemC modules (threads with `wait()` statements,
//! loops, conditionals and port I/O) and elaborates them into a CFG + DFG
//! (Section II, Figure 2). This crate reconstructs that front-end in pure
//! Rust:
//!
//! * [`ast`] — an abstract syntax tree for untimed / partially timed
//!   behavioural threads ([`Behavior`], [`Stmt`], [`Expr`]);
//! * [`builder`] — an ergonomic [`BehaviorBuilder`] to construct behaviours
//!   programmatically (the substitution for writing SystemC);
//! * [`parser`] — a small textual behavioural language (a C-like subset with
//!   `wait()`, `do { } while()`, `if/else`, port reads/writes) that parses
//!   into the same AST;
//! * [`elaborate`] — turning a [`Behavior`] into an [`hls_ir::Cdfg`], with
//!   loop-carried variables materialized as the paper's `loopMux` pattern;
//! * [`designs`] — canonical designs used by the examples, tests and
//!   benchmarks, starting with Figure 1 of the paper.
//!
//! ## Example
//!
//! ```
//! use hls_frontend::designs;
//! use hls_frontend::elaborate::elaborate;
//!
//! let behavior = designs::paper_example1();
//! let cdfg = elaborate(&behavior)?;
//! assert!(cdfg.num_ops() > 8);
//! // the outer thread loop plus the pipelineable do-while loop
//! assert_eq!(cdfg.loops.len(), 2);
//! # Ok::<(), hls_frontend::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod designs;
pub mod elaborate;
pub mod error;
pub mod parser;

pub use ast::{Behavior, Expr, LoopKind, Stmt, VarId};
pub use builder::BehaviorBuilder;
pub use elaborate::elaborate;
pub use error::FrontendError;
