//! Verified rewrite passes over a [`NirModule`].
//!
//! Two families of semantics-preserving rewrites run after lowering:
//!
//! * **normalization** — constant folding plus identity simplification
//!   (mux with constant select, `x*1`, `x+0`, full-range slices, identity
//!   resizes, …). Every replacement produces a cell of the *same width* as
//!   the replaced one, so consumers never change meaning.
//! * **mux-chain rebalancing** — the lowered FU steering chains are linear
//!   priority muxes (depth `n-1` for `n` arms). Because the chain semantics
//!   is *first true condition wins*, an order-preserving split into a
//!   balanced tree with prefix-OR selects computes the same function, at
//!   depth `ceil(log2 n)`.
//!
//! A third family runs only under the timing-driven loop
//! (`hls_lint::optimize_timed`), gated to cells on negative-slack cones via
//! an `eligible` mask so timing-clean netlists are never churned:
//!
//! * **operator chain rebalancing** ([`rebalance_operator_chains`]) —
//!   associative `add`/`mul`/`and`/`or`/`xor` reduction spines rebuilt as
//!   balanced trees, `ceil(log2 n)` deep instead of `n-1`;
//! * **shift strength reduction** ([`strength_reduce_shifts`]) — an
//!   arithmetic right shift by a constant becomes a sign-extended slice,
//!   which is wiring (0 ps) instead of a barrel shifter;
//! * **register retiming** ([`retime_registers`]) — a register bank feeding
//!   pure combinational logic moves forward across it, splitting the
//!   downstream path at the cost of the upstream one.
//!
//! A final mark-and-sweep from the output cells drops everything the
//! rewrites orphaned and compacts the arena. The synthesis driver re-runs
//! the differential harness on the rewritten netlist, so each pass is proven
//! safe on every verified design, not just argued safe.

use crate::model::{BinKind, Cell, CellId, CellKind, NirModule};
use hls_ir::{eval_op, BitVal, OpKind};

/// What the rewrite pipeline did, including the mux-depth movement the
/// rebalance achieved.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RewriteReport {
    /// Cells replaced by normalization (constant folding + identities).
    pub normalized: usize,
    /// Steering chains rebuilt as balanced trees.
    pub rebalanced: usize,
    /// Dead cells removed by the final sweep.
    pub swept: usize,
    /// Maximum mux-chain depth after normalization, before rebalancing.
    pub mux_depth_before: u32,
    /// Maximum mux-chain depth after the full pipeline.
    pub mux_depth_after: u32,
}

/// Runs the full rewrite pipeline in place: normalize to fixpoint, rebalance
/// steering chains, normalize again, sweep dead cells.
pub fn optimize(m: &mut NirModule) -> RewriteReport {
    let mut normalized = normalize(m);
    let mux_depth_before = m.max_mux_depth();
    let rebalanced = rebalance_mux_chains(m);
    normalized += normalize(m);
    let swept = sweep(m);
    RewriteReport {
        normalized,
        rebalanced,
        swept,
        mux_depth_before,
        mux_depth_after: m.max_mux_depth(),
    }
}

fn const_of(m: &NirModule, id: CellId) -> Option<BitVal> {
    match m.cell(id).kind {
        CellKind::Const(v) => Some(BitVal::new(v, m.cell(id).width)),
        _ => None,
    }
}

/// Returns `id` as-is when it already has width `w`, otherwise appends a
/// `Resize` cell. Used by identity rules whose surviving operand has a
/// different width than the replaced cell.
fn resized(m: &mut NirModule, id: CellId, w: u16) -> CellId {
    if m.cell(id).width == w {
        id
    } else {
        m.push(CellKind::Resize, w, vec![id])
    }
}

fn const_cell(m: &mut NirModule, value: i64, w: u16) -> CellId {
    let canon = BitVal::new(value, w).as_i64();
    m.push(CellKind::Const(canon), w, vec![])
}

/// The `OpKind` to constant-fold a pure combinational cell with, if any.
fn fold_kind(kind: &CellKind) -> Option<OpKind> {
    match kind {
        CellKind::Bin(b) => Some(b.op_kind()),
        CellKind::Un(u) => Some(u.op_kind()),
        CellKind::Mux { .. } => Some(OpKind::Mux),
        CellKind::Slice { hi, lo } => Some(OpKind::Slice { hi: *hi, lo: *lo }),
        CellKind::Resize => Some(OpKind::Resize),
        _ => None,
    }
}

/// Constant folding and identity normalization, iterated to fixpoint.
/// Returns the number of cells replaced. Replaced cells are left in place
/// (dead) for [`sweep`] to reclaim; all consumers are re-pointed.
pub fn normalize(m: &mut NirModule) -> usize {
    let mut repl: Vec<Option<CellId>> = vec![None; m.cells.len()];
    let mut replaced = 0usize;

    // Union-find-ish resolution with path compression over the replacement
    // map; replacement chains stay short but compress anyway.
    fn find(repl: &mut Vec<Option<CellId>>, id: CellId) -> CellId {
        match repl.get(id.index()).copied().flatten() {
            None => id,
            Some(next) => {
                let root = find(repl, next);
                repl[id.index()] = Some(root);
                root
            }
        }
    }

    loop {
        let mut changed = false;
        let mut i = 0;
        while i < m.cells.len() {
            let id = CellId::from_raw(i as u32);
            // Keep the map sized for cells appended by `resized`.
            if repl.len() < m.cells.len() {
                repl.resize(m.cells.len(), None);
            }
            // Re-point operands through the replacement map first.
            let n_inputs = m.cells[i].inputs.len();
            for k in 0..n_inputs {
                let cur = m.cells[i].inputs[k];
                let root = find(&mut repl, cur);
                if root != cur {
                    m.cells[i].inputs[k] = root;
                }
            }
            if repl[i].is_none() {
                if let Some(target) = simplify(m, id) {
                    debug_assert_eq!(m.cell(target).width, m.cells[i].width);
                    repl[i] = Some(target);
                    replaced += 1;
                    changed = true;
                }
            }
            i += 1;
        }
        if !changed {
            break;
        }
    }
    replaced
}

/// One normalization step for the cell `id`, or `None` when no rule applies.
/// Every returned cell has the same width as `id`.
fn simplify(m: &mut NirModule, id: CellId) -> Option<CellId> {
    let cell = m.cell(id);
    let w = cell.width;
    let inputs = cell.inputs.clone();
    let kind = cell.kind.clone();

    // Full constant folding via the shared evaluator.
    if let Some(op) = fold_kind(&kind) {
        let consts: Option<Vec<BitVal>> = inputs.iter().map(|&i| const_of(m, i)).collect();
        if let Some(vals) = consts {
            if let Ok(v) = eval_op(&op, w, &vals) {
                return Some(const_cell(m, v.as_i64(), w));
            }
        }
    }

    match kind {
        CellKind::Mux { .. } => {
            if let Some(sel) = const_of(m, inputs[0]) {
                // constant select: forward the chosen arm (arm width == w)
                return Some(if sel.is_true() { inputs[1] } else { inputs[2] });
            }
            if inputs[1] == inputs[2] {
                return Some(inputs[1]);
            }
            None
        }
        CellKind::Bin(b) => {
            let lc = const_of(m, inputs[0]);
            let rc = const_of(m, inputs[1]);
            let fwd = |m: &mut NirModule, keep: CellId| Some(resized(m, keep, w));
            // Same-operand identities: the value cancels (`x-x`, `x^x`),
            // passes through (`x&x`, `x|x`), or the comparison is decided
            // by reflexivity regardless of the operand's runtime value.
            if inputs[0] == inputs[1] {
                match b {
                    BinKind::Sub | BinKind::Xor => return Some(const_cell(m, 0, w)),
                    BinKind::And | BinKind::Or => return fwd(m, inputs[0]),
                    BinKind::Cmp(c) => {
                        let v = matches!(
                            c,
                            hls_ir::CmpKind::Eq | hls_ir::CmpKind::Ge | hls_ir::CmpKind::Le
                        );
                        return Some(const_cell(m, i64::from(v), w));
                    }
                    _ => {}
                }
            }
            match b {
                BinKind::Add => {
                    if rc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[0]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[1]);
                    }
                    None
                }
                BinKind::Sub => {
                    if rc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[0]);
                    }
                    None
                }
                BinKind::Mul => {
                    if rc.as_ref().is_some_and(|v| v.as_i64() == 1) {
                        return fwd(m, inputs[0]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 1) {
                        return fwd(m, inputs[1]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 0)
                        || rc.as_ref().is_some_and(|v| v.as_i64() == 0)
                    {
                        return Some(const_cell(m, 0, w));
                    }
                    None
                }
                BinKind::And => {
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 0)
                        || rc.as_ref().is_some_and(|v| v.as_i64() == 0)
                    {
                        return Some(const_cell(m, 0, w));
                    }
                    if rc.as_ref().is_some_and(|v| v.as_i64() == -1) {
                        return fwd(m, inputs[0]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == -1) {
                        return fwd(m, inputs[1]);
                    }
                    None
                }
                BinKind::Or | BinKind::Xor => {
                    if rc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[0]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[1]);
                    }
                    None
                }
                BinKind::Shl | BinKind::Shr => {
                    if rc.as_ref().is_some_and(|v| v.as_u64() == 0) {
                        return fwd(m, inputs[0]);
                    }
                    None
                }
                _ => None,
            }
        }
        CellKind::Slice { hi, lo } => {
            let iw = m.cell(inputs[0]).width;
            if lo == 0 && hi + 1 == iw && w == iw {
                return Some(inputs[0]);
            }
            None
        }
        CellKind::Resize => {
            if m.cell(inputs[0]).width == w {
                return Some(inputs[0]);
            }
            None
        }
        _ => None,
    }
}

/// Whether a spine may extend from some onehot mux into its else-arm `e`:
/// `e` must itself be an onehot mux and — critically — single-use. A
/// multi-use else-arm is *tapped*: another cell observes that intermediate
/// net, so rebuilding through it would have to duplicate its logic to keep
/// the side observer fed. The tap instead terminates the chain here and
/// heads a chain of its own, which is rebuilt in place (same [`CellId`]),
/// so every observer keeps the identical function without duplication.
fn spine_extends_into(m: &NirModule, use_count: &[u32], e: CellId) -> bool {
    matches!(m.cell(e).kind, CellKind::Mux { onehot: true })
        && use_count.get(e.index()).is_some_and(|&u| u == 1)
}

/// Collects the else-spine of the steering chain headed at `head`: the head
/// itself plus every single-use onehot mux reachable through else-arms. The
/// walk stops at the first tapped or non-onehot else-arm (see
/// [`spine_extends_into`]), which becomes the chain's fall-through.
fn collect_mux_spine(m: &NirModule, use_count: &[u32], head: CellId) -> Vec<CellId> {
    let mut spine = vec![head];
    loop {
        let e = m.cell(*spine.last().expect("non-empty")).inputs[2];
        if spine_extends_into(m, use_count, e) {
            spine.push(e);
        } else {
            return spine;
        }
    }
}

/// Rebuilds `x*1`-free steering chains (onehot mux spines) as balanced
/// trees. The produced tree muxes are *not* marked onehot, so the pass is
/// idempotent: a second run finds no chains. Returns the number of chains
/// rebuilt.
pub fn rebalance_mux_chains(m: &mut NirModule) -> usize {
    let n = m.cells.len();
    let use_count = m.use_counts();

    let is_onehot =
        |m: &NirModule, id: CellId| matches!(m.cell(id).kind, CellKind::Mux { onehot: true });

    // A spine interior is a single-use onehot mux consumed as the else-arm of
    // another onehot mux; heads are the onehot muxes that are not interiors.
    // Tapped muxes never become interiors, so they stay heads of their own
    // (sub-)chains.
    let mut interior = vec![false; n];
    for i in 0..n {
        let id = CellId::from_raw(i as u32);
        if is_onehot(m, id) {
            let e = m.cell(id).inputs[2];
            if spine_extends_into(m, &use_count, e) {
                interior[e.index()] = true;
            }
        }
    }

    let mut rebuilt = 0usize;
    for i in 0..n {
        let head = CellId::from_raw(i as u32);
        if !is_onehot(m, head) || interior[head.index()] {
            continue;
        }
        let spine = collect_mux_spine(m, &use_count, head);
        let arms: Vec<(CellId, CellId)> = spine
            .iter()
            .map(|&s| (m.cell(s).inputs[0], m.cell(s).inputs[1]))
            .collect();
        let default = m.cell(*spine.last().expect("non-empty")).inputs[2];
        if arms.len() < 3 {
            // Depth ≤ 2 already; just clear the marks so the pass is
            // convergent.
            for &s in &spine {
                m.cells[s.index()].kind = CellKind::Mux { onehot: false };
            }
            continue;
        }
        let w = m.cell(head).width;
        let root = build_tree(m, &arms, default, w);
        // Overwrite the head in place so consumers stay pointed at it; the
        // interior spine cells become dead and are swept.
        let root_cell = m.cell(root).clone();
        m.cells[head.index()].kind = root_cell.kind;
        m.cells[head.index()].inputs = root_cell.inputs;
        rebuilt += 1;
    }
    rebuilt
}

/// Builds a balanced first-true-wins tree over `arms` with `default` as the
/// fall-through. The select of an inner node ORs the conditions of its left
/// half (a prefix-OR), preserving priority order exactly.
fn build_tree(m: &mut NirModule, arms: &[(CellId, CellId)], default: CellId, w: u16) -> CellId {
    if arms.is_empty() {
        return default;
    }
    if arms.len() == 1 {
        let (c, v) = arms[0];
        return m.push(CellKind::Mux { onehot: false }, w, vec![c, v, default]);
    }
    let mid = arms.len().div_ceil(2);
    let (left, right) = arms.split_at(mid);
    // When the left subtree is selected, some left condition is true, so the
    // left half needs no fall-through of its own.
    let left_tree = build_left(m, left, w);
    let right_tree = build_tree(m, right, default, w);
    let sel = or_tree(m, &left.iter().map(|&(c, _)| c).collect::<Vec<_>>());
    m.push(
        CellKind::Mux { onehot: false },
        w,
        vec![sel, left_tree, right_tree],
    )
}

/// Like [`build_tree`], but for a subtree that is only entered when one of
/// its conditions is already known true: the last arm needs no test.
fn build_left(m: &mut NirModule, arms: &[(CellId, CellId)], w: u16) -> CellId {
    if arms.len() == 1 {
        return arms[0].1;
    }
    let mid = arms.len().div_ceil(2);
    let (left, right) = arms.split_at(mid);
    let left_tree = build_left(m, left, w);
    let right_tree = build_left(m, right, w);
    let sel = or_tree(m, &left.iter().map(|&(c, _)| c).collect::<Vec<_>>());
    m.push(
        CellKind::Mux { onehot: false },
        w,
        vec![sel, left_tree, right_tree],
    )
}

/// Balanced OR reduction of 1-bit condition cells.
fn or_tree(m: &mut NirModule, conds: &[CellId]) -> CellId {
    match conds.len() {
        0 => const_cell(m, 0, 1),
        1 => conds[0],
        _ => {
            let mid = conds.len().div_ceil(2);
            let l = or_tree(m, &conds[..mid]);
            let r = or_tree(m, &conds[mid..]);
            let lw = m.cell(l).width.max(m.cell(r).width);
            m.push(CellKind::Bin(BinKind::Or), lw, vec![l, r])
        }
    }
}

/// Whether an `eligible` criticality mask admits the cell at arena index
/// `i`. `None` means every cell is eligible; cells appended after the mask
/// was computed (by an earlier rewrite in the same round) are not.
fn is_eligible(eligible: Option<&[bool]>, i: usize) -> bool {
    match eligible {
        None => true,
        Some(mask) => mask.get(i).copied().unwrap_or(false),
    }
}

/// The associative [`BinKind`]s safe to reassociate at a fixed width: for
/// `add`/`mul` because arithmetic mod 2^w is associative, for the bitwise
/// ops trivially.
fn associative(b: BinKind) -> bool {
    matches!(
        b,
        BinKind::Add | BinKind::Mul | BinKind::And | BinKind::Or | BinKind::Xor
    )
}

/// Flattens the reduction tree rooted at `id` (a `Bin(b)` cell): recurses
/// through single-use same-op operands whose width is at least `root_w`,
/// collecting the leaf operands in evaluation order and the interior cells
/// passed through. Returns the nesting depth of the flattened region.
///
/// The width gate is what makes reassociation overflow-safe: every interior
/// wraps at its own width `w_i`, and `w_i ≥ root_w` means the low `root_w`
/// bits — the only ones the root keeps — equal the low bits of the
/// unwrapped reduction, for `add`/`mul` (mod 2^w arithmetic) and the
/// bitwise ops alike. A narrower interior truncates information the root
/// would still see, so it stays a leaf.
fn flatten_op_tree(
    m: &NirModule,
    use_count: &[u32],
    id: CellId,
    b: BinKind,
    root_w: u16,
    leaves: &mut Vec<CellId>,
    interiors: &mut Vec<CellId>,
) -> u32 {
    let mut depth = 0;
    for &x in &m.cell(id).inputs {
        let fuse = matches!(m.cell(x).kind, CellKind::Bin(k) if k == b)
            && use_count.get(x.index()).is_some_and(|&u| u == 1)
            && m.cell(x).width >= root_w;
        if fuse {
            interiors.push(x);
            depth = depth.max(flatten_op_tree(
                m, use_count, x, b, root_w, leaves, interiors,
            ));
        } else {
            leaves.push(x);
        }
    }
    depth + 1
}

/// Balanced reduction tree of `Bin(b)` cells at width `w` over `leaves`,
/// preserving evaluation order (reassociation needs associativity only, not
/// commutativity). The caller guarantees at least two leaves.
fn build_op_tree(m: &mut NirModule, b: BinKind, leaves: &[CellId], w: u16) -> CellId {
    if leaves.len() == 1 {
        return leaves[0];
    }
    let mid = leaves.len().div_ceil(2);
    let l = build_op_tree(m, b, &leaves[..mid], w);
    let r = build_op_tree(m, b, &leaves[mid..], w);
    m.push(CellKind::Bin(b), w, vec![l, r])
}

/// Rebuilds associative operator reduction spines — `add`/`mul`/`and`/`or`/
/// `xor` chains at least 3 deep — as balanced trees, `ceil(log2 n)` deep
/// for `n` leaves. Only chains whose root passes the `eligible` mask are
/// touched (the timed loop passes the negative-slack cone; `None` means
/// everything). Returns the number of chains rebuilt.
///
/// Interiors must be single-use (a tapped intermediate is side-observable
/// and stays a leaf) and at least as wide as the root (see
/// [`flatten_op_tree`] for why that makes the rebuild overflow-safe). A
/// rebuild happens only when it strictly reduces depth, which also makes
/// the pass idempotent: a balanced tree re-flattens to its own depth.
pub fn rebalance_operator_chains(m: &mut NirModule, eligible: Option<&[bool]>) -> usize {
    let use_count = m.use_counts();
    // Consumers before producers, so a chain is flattened from its true
    // root and its interiors are never revisited as roots of sub-chains.
    let order: Vec<CellId> = m.comb_topo_order().into_iter().rev().collect();
    let mut consumed = vec![false; m.cells.len()];
    let mut rebuilt = 0usize;
    for id in order {
        let i = id.index();
        if consumed[i] || !is_eligible(eligible, i) {
            continue;
        }
        let CellKind::Bin(b) = m.cell(id).kind else {
            continue;
        };
        if !associative(b) {
            continue;
        }
        let w = m.cell(id).width;
        let mut leaves = Vec::new();
        let mut interiors = Vec::new();
        let depth = flatten_op_tree(m, &use_count, id, b, w, &mut leaves, &mut interiors);
        let balanced = (leaves.len() as f64).log2().ceil() as u32;
        if depth < 3 || balanced >= depth {
            continue;
        }
        for &x in &interiors {
            consumed[x.index()] = true;
        }
        let root = build_op_tree(m, b, &leaves, w);
        // Overwrite the root in place so consumers stay pointed at it; the
        // flattened interiors become dead and are swept.
        let root_cell = m.cell(root).clone();
        m.cells[i].kind = root_cell.kind;
        m.cells[i].inputs = root_cell.inputs;
        rebuilt += 1;
    }
    rebuilt
}

/// Replaces arithmetic right shifts by a constant with sign-extended
/// slices, which the delay model (and real hardware) treats as wiring:
/// `shr(x, c)` reads bits `[iw-1 : c]` of `x` and sign-extends them to the
/// output width — exactly what [`hls_ir::eval_op`] computes, including the
/// saturating cases `c ≥ iw` (a pure sign fill, one bit sliced) and output
/// widths narrower or wider than the field. Shifts by a non-constant amount
/// and left shifts (which would need zero fill, not expressible as a slice)
/// are left alone. Returns the number of shifts reduced.
pub fn strength_reduce_shifts(m: &mut NirModule, eligible: Option<&[bool]>) -> usize {
    let n = m.cells.len();
    let mut reduced = 0usize;
    for i in 0..n {
        if !matches!(m.cells[i].kind, CellKind::Bin(BinKind::Shr)) || !is_eligible(eligible, i) {
            continue;
        }
        let x = m.cells[i].inputs[0];
        let amt = m.cells[i].inputs[1];
        let CellKind::Const(v) = m.cell(amt).kind else {
            continue;
        };
        // The evaluator reads shift amounts zero-extended (`as_u64`), so a
        // negative-looking constant is a large amount, i.e. a sign fill.
        let c = BitVal::new(v, m.cell(amt).width).as_u64();
        if c == 0 {
            // `x >> 0` is normalize's identity-forwarding job.
            continue;
        }
        let w = m.cells[i].width;
        let iw = m.cell(x).width;
        let hi = iw - 1;
        let lo = c.min(u64::from(hi)) as u16;
        let sw = hi - lo + 1;
        if sw == w {
            m.cells[i].kind = CellKind::Slice { hi, lo };
            m.cells[i].inputs = vec![x];
        } else {
            let s = m.push(CellKind::Slice { hi, lo }, sw, vec![x]);
            m.cells[i].kind = CellKind::Resize;
            m.cells[i].inputs = vec![s];
        }
        reduced += 1;
    }
    reduced
}

/// Moves a register bank forward across the pure combinational cell it
/// feeds: a `Bin`/`Un` cell whose operands are all constants or single-use
/// registers sharing one enable becomes a register (same [`CellId`], so
/// consumers are untouched) capturing the operation applied to the old
/// registers' data inputs, with its initial value the operation folded over
/// the old initial values. Returns the number of cells retimed.
///
/// Correctness is pointwise by induction over cycles: with `R'` the new
/// register and `C = f(R1..Rn)` the old cell, `R'(0) = f(inits) = C(0)`;
/// on an enabled edge every `Ri` captures its data `di` while `R'` captures
/// `f(d1..dn)`, and on a disabled edge all of them hold — either way
/// `R'(t) = f(R1(t)..Rn(t)) = C(t)` for every `t`, including self-loops
/// (a register whose data is the cell itself re-points at the new
/// register). The single-use gate keeps the old registers unobservable so
/// they sweep away; the shared-enable gate is what makes the captures move
/// in lockstep.
pub fn retime_registers(m: &mut NirModule, eligible: Option<&[bool]>) -> usize {
    let n = m.cells.len();
    let use_count = m.use_counts();
    let mut moved = 0usize;
    for i in 0..n {
        let id = CellId::from_raw(i as u32);
        let op = match &m.cell(id).kind {
            CellKind::Bin(b) => b.op_kind(),
            CellKind::Un(u) => u.op_kind(),
            _ => continue,
        };
        if !is_eligible(eligible, i) {
            continue;
        }
        let w = m.cell(id).width;
        let inputs = m.cell(id).inputs.clone();
        // Every operand: a constant, or a register observed only here (a
        // multi-use register must stay — removing it would change its other
        // observers). All registers must share one enable cell so the moved
        // capture fires on exactly the same edges.
        let mut enable: Option<CellId> = None;
        let mut movable = true;
        for &x in &inputs {
            match m.cell(x).kind {
                CellKind::Const(_) => {}
                CellKind::Reg { .. } if use_count[x.index()] == 1 => {
                    let en = m.cell(x).inputs[1];
                    if enable.is_some_and(|e| e != en) {
                        movable = false;
                        break;
                    }
                    enable = Some(en);
                }
                _ => {
                    movable = false;
                    break;
                }
            }
        }
        let Some(en) = enable else { continue };
        if !movable {
            continue;
        }
        let init_vals: Vec<BitVal> = inputs
            .iter()
            .map(|&x| {
                let c = m.cell(x);
                match c.kind {
                    CellKind::Const(v) => BitVal::new(v, c.width),
                    CellKind::Reg { init } => BitVal::new(init, c.width),
                    _ => unreachable!("gated above"),
                }
            })
            .collect();
        let Ok(new_init) = eval_op(&op, w, &init_vals) else {
            continue;
        };
        // The moved logic must see exactly what each register captured:
        // its data operand at the register's own width (`resized` is a
        // no-op on validated netlists, where reg data width == reg width).
        let new_inputs: Vec<CellId> = inputs
            .iter()
            .map(|&x| match m.cell(x).kind {
                CellKind::Const(_) => x,
                CellKind::Reg { .. } => {
                    let data = m.cell(x).inputs[0];
                    let rw = m.cell(x).width;
                    resized(m, data, rw)
                }
                _ => unreachable!("gated above"),
            })
            .collect();
        let kind = m.cells[i].kind.clone();
        let comb = m.push(kind, w, new_inputs);
        m.cells[i].kind = CellKind::Reg {
            init: new_init.as_i64(),
        };
        m.cells[i].inputs = vec![comb, en];
        moved += 1;
    }
    moved
}

/// Mark-and-sweep from the output cells: removes unreachable cells and
/// compacts ids. Returns the number of cells removed. A module without any
/// output cells is left untouched.
pub fn sweep(m: &mut NirModule) -> usize {
    let n = m.cells.len();
    if !m
        .cells
        .iter()
        .any(|c| matches!(c.kind, CellKind::Output { .. }))
    {
        return 0;
    }
    let live = m.live_cells();
    let dead = live.iter().filter(|&&l| !l).count();
    if dead == 0 {
        return 0;
    }
    let mut remap = vec![CellId::from_raw(0); n];
    let mut kept: Vec<Cell> = Vec::with_capacity(n - dead);
    for (i, cell) in m.cells.drain(..).enumerate() {
        if live[i] {
            remap[i] = CellId::from_raw(kept.len() as u32);
            kept.push(cell);
        }
    }
    for cell in &mut kept {
        for input in &mut cell.inputs {
            *input = remap[input.index()];
        }
    }
    m.cells = kept;
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NirModule;
    use crate::validate::validate;
    use hls_ir::{Port, PortDirection};

    fn shell() -> NirModule {
        let mut m = NirModule::new("t");
        m.ports.push(Port {
            name: "o".into(),
            direction: PortDirection::Output,
            width: 8,
        });
        m
    }

    fn finish(m: &mut NirModule, data: CellId) {
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let d8 = resized(m, data, 8);
        m.push(CellKind::Output { port: 0, state: 0 }, 8, vec![d8, en]);
    }

    #[test]
    fn folds_constants_through_the_evaluator() {
        let mut m = shell();
        let a = m.push(CellKind::Const(200), 8, vec![]);
        let b = m.push(CellKind::Const(100), 8, vec![]);
        let s = m.push(CellKind::Bin(BinKind::Add), 8, vec![a, b]);
        finish(&mut m, s);
        let r = optimize(&mut m);
        assert!(r.normalized >= 1);
        validate(&m).unwrap();
        // 200 + 100 wraps to 44 at 8 bits signed
        let out = m
            .iter_cells()
            .find(|(_, c)| matches!(c.kind, CellKind::Output { .. }))
            .unwrap()
            .1
            .inputs[0];
        assert_eq!(m.cell(out).kind, CellKind::Const(44));
    }

    #[test]
    fn forwards_identities_with_width_preserved() {
        let mut m = shell();
        let x = m.push(CellKind::Const(5), 4, vec![]); // opaque? it's const...
        let one = m.push(CellKind::Const(1), 8, vec![]);
        // keep x opaque by running through a register
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let r = m.push(CellKind::Reg { init: 0 }, 4, vec![x, en]);
        let rz = m.push(CellKind::Resize, 8, vec![r]);
        let prod = m.push(CellKind::Bin(BinKind::Mul), 8, vec![rz, one]);
        finish(&mut m, prod);
        let _ = optimize(&mut m);
        validate(&m).unwrap();
        // the multiply by one is gone
        assert_eq!(m.stats().count_bin(BinKind::Mul), 0);
    }

    #[test]
    fn mux_constant_select_forwards_an_arm() {
        let mut m = shell();
        let t = m.push(CellKind::Const(1), 1, vec![]);
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let x = m.push(CellKind::Input { port: 1, state: 0 }, 8, vec![]);
        m.ports.push(Port {
            name: "i".into(),
            direction: PortDirection::Input,
            width: 8,
        });
        let r = m.push(CellKind::Reg { init: 0 }, 8, vec![x, en]);
        let other = m.push(CellKind::Const(9), 8, vec![]);
        let mx = m.push(CellKind::Mux { onehot: false }, 8, vec![t, r, other]);
        finish(&mut m, mx);
        let _ = optimize(&mut m);
        validate(&m).unwrap();
        assert_eq!(m.stats().muxes(), 0);
    }

    #[test]
    fn rebalances_a_long_chain_and_is_idempotent() {
        // 8-arm onehot chain: depth 7 linear, depth 3 balanced.
        let mut m = shell();
        let mut conds = Vec::new();
        let mut vals = Vec::new();
        let en = m.push(CellKind::Const(1), 1, vec![]);
        for k in 0..8i64 {
            // distinct opaque conditions/values via registers
            let cbit = m.push(CellKind::Const(0), 1, vec![]);
            let c = m.push(CellKind::Reg { init: k & 1 }, 1, vec![cbit, en]);
            conds.push(c);
            let vconst = m.push(CellKind::Const(k), 8, vec![]);
            let v = m.push(CellKind::Reg { init: 0 }, 8, vec![vconst, en]);
            vals.push(v);
        }
        let default = m.push(CellKind::Const(-1), 8, vec![]);
        let mut acc = default;
        for k in (0..7).rev() {
            acc = m.push(
                CellKind::Mux { onehot: true },
                8,
                vec![conds[k], vals[k], acc],
            );
        }
        finish(&mut m, acc);
        assert_eq!(m.max_mux_depth(), 7);
        let r1 = optimize(&mut m);
        validate(&m).unwrap();
        assert_eq!(r1.rebalanced, 1);
        // 8 arms + default = 9 leaves → balanced depth ceil(log2 9) = 4
        assert!(r1.mux_depth_after <= 4, "depth {}", r1.mux_depth_after);
        assert!(r1.mux_depth_after < r1.mux_depth_before);
        // Second run: nothing left to do, structure unchanged.
        let before = m.clone();
        let r2 = optimize(&mut m);
        assert_eq!(r2.rebalanced, 0);
        assert_eq!(r2.swept, 0);
        assert_eq!(m, before);
    }

    /// Cycle-0 combinational snapshot: registers read as their initial
    /// values, so two modules that must be behaviourally identical can be
    /// compared by folding their output data cones through the shared
    /// evaluator.
    fn snapshot_eval(m: &NirModule, id: CellId, memo: &mut Vec<Option<BitVal>>) -> BitVal {
        if let Some(v) = memo[id.index()] {
            return v;
        }
        let cell = m.cell(id);
        let v = match &cell.kind {
            CellKind::Const(c) => BitVal::new(*c, cell.width),
            CellKind::Reg { init } => BitVal::new(*init, cell.width),
            _ => {
                let ins: Vec<BitVal> = cell
                    .inputs
                    .iter()
                    .map(|&x| snapshot_eval(m, x, memo))
                    .collect();
                eval_op(&fold_kind(&cell.kind).expect("pure cell"), cell.width, &ins)
                    .expect("evaluates")
            }
        };
        memo[id.index()] = Some(v);
        v
    }

    fn output_values(m: &NirModule) -> Vec<BitVal> {
        let mut memo = vec![None; m.num_cells()];
        m.iter_cells()
            .filter(|(_, c)| matches!(c.kind, CellKind::Output { .. }))
            .map(|(_, c)| c.inputs[0])
            .collect::<Vec<_>>()
            .into_iter()
            .map(|d| snapshot_eval(m, d, &mut memo))
            .collect()
    }

    /// Regression for tapped spines: a steering chain whose interior mux
    /// has a second observer must split at the tap instead of duplicating
    /// the tapped logic. Both chain halves rebuild in place and every
    /// observer keeps its function, checked by snapshot evaluation across
    /// several winner configurations.
    #[test]
    fn tapped_spine_splits_without_duplicating_logic() {
        // 8-arm chain, the mux at arm 3 tapped by a second output.
        let build = |hot: Option<usize>| {
            let mut m = shell();
            m.ports.push(Port {
                name: "tap".into(),
                direction: PortDirection::Output,
                width: 8,
            });
            let en = m.push(CellKind::Const(1), 1, vec![]);
            let mut conds = Vec::new();
            let mut vals = Vec::new();
            for k in 0..8usize {
                let cbit = m.push(CellKind::Const(0), 1, vec![]);
                let init = i64::from(hot == Some(k));
                let c = m.push(CellKind::Reg { init }, 1, vec![cbit, en]);
                conds.push(c);
                let vconst = m.push(CellKind::Const(10 + k as i64), 8, vec![]);
                let v = m.push(CellKind::Reg { init: 0 }, 8, vec![vconst, en]);
                vals.push(v);
            }
            let default = m.push(CellKind::Const(-1), 8, vec![]);
            let mut acc = default;
            let mut tapped = None;
            for k in (0..8).rev() {
                acc = m.push(
                    CellKind::Mux { onehot: true },
                    8,
                    vec![conds[k], vals[k], acc],
                );
                if k == 3 {
                    tapped = Some(acc);
                }
            }
            let tapped = tapped.unwrap();
            finish(&mut m, acc);
            let t8 = resized(&mut m, tapped, 8);
            m.push(CellKind::Output { port: 1, state: 0 }, 8, vec![t8, en]);
            m
        };
        // winners on both sides of the tap, at the tap, and the default
        for hot in [None, Some(0), Some(2), Some(3), Some(5), Some(7)] {
            let reference = build(hot);
            let mut m = build(hot);
            let r = optimize(&mut m);
            validate(&m).unwrap();
            // the chain split at the tap: arms 0..3 over the tapped cell,
            // arms 3..8 over the default — both halves rebuilt (≥ 3 arms)
            assert_eq!(r.rebalanced, 2, "{hot:?}");
            assert_eq!(
                output_values(&m),
                output_values(&reference),
                "winner {hot:?}"
            );
            // no duplication: the tapped function exists once, feeding both
            // observers, so the rebuilt module is no larger than a rebuild
            // of two independent chains
            let muxes = m.stats().muxes();
            assert!(muxes <= 7 + 2, "tap duplicated into {muxes} muxes");
        }
    }

    #[test]
    fn rebalances_operator_chains_and_is_idempotent() {
        // r0 + r1 + ... + r7 as a linear spine: depth 7 → balanced depth 3.
        let mut m = shell();
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let mut regs = Vec::new();
        for k in 0..8i64 {
            let c = m.push(CellKind::Const(k + 1), 8, vec![]);
            let r = m.push(CellKind::Reg { init: 3 * k }, 8, vec![c, en]);
            regs.push(r);
        }
        let mut acc = regs[0];
        for &r in &regs[1..] {
            acc = m.push(CellKind::Bin(BinKind::Add), 8, vec![acc, r]);
        }
        finish(&mut m, acc);
        let reference = m.clone();
        let rebuilt = rebalance_operator_chains(&mut m, None);
        assert_eq!(rebuilt, 1);
        sweep(&mut m);
        validate(&m).unwrap();
        assert_eq!(output_values(&m), output_values(&reference));
        // depth: longest add-to-add input chain is now ceil(log2 8) = 3
        let depth_of = |m: &NirModule| {
            let mut d = vec![0u32; m.num_cells()];
            let mut max = 0;
            for id in m.comb_topo_order() {
                if let CellKind::Bin(BinKind::Add) = m.cell(id).kind {
                    let c = m.cell(id);
                    let inner = c.inputs.iter().map(|&x| d[x.index()]).max().unwrap_or(0);
                    d[id.index()] = inner + 1;
                    max = max.max(d[id.index()]);
                }
            }
            max
        };
        assert_eq!(depth_of(&m), 3, "balanced");
        // idempotent: a second run finds nothing to improve
        let again = rebalance_operator_chains(&mut m, None);
        assert_eq!(again, 0);
    }

    #[test]
    fn operator_rebalance_respects_taps_widths_and_masks() {
        // A chain whose interior is observed elsewhere keeps the tap as a
        // leaf; a narrower interior is never flattened through (its wrap is
        // observable); an eligibility mask that misses the root is a no-op.
        let mut m = shell();
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let mut regs = Vec::new();
        for k in 0..6i64 {
            let c = m.push(CellKind::Const(k), 8, vec![]);
            let r = m.push(CellKind::Reg { init: 17 * k + 1 }, 8, vec![c, en]);
            regs.push(r);
        }
        // narrow = (r0 + r1) at 4 bits — wraps differently than at 8
        let narrow = m.push(CellKind::Bin(BinKind::Add), 4, vec![regs[0], regs[1]]);
        let mut acc: CellId = narrow;
        for &r in &regs[2..] {
            acc = m.push(CellKind::Bin(BinKind::Add), 8, vec![acc, r]);
        }
        finish(&mut m, acc);
        let reference = m.clone();
        let mask = vec![false; m.num_cells()];
        assert_eq!(rebalance_operator_chains(&mut m, Some(&mask)), 0);
        assert_eq!(m, reference, "masked-out roots are untouched");
        let rebuilt = rebalance_operator_chains(&mut m, None);
        assert_eq!(rebuilt, 1);
        validate(&m).unwrap();
        assert_eq!(output_values(&m), output_values(&reference));
        // the 4-bit interior survives as a leaf of the rebuilt tree
        assert_eq!(
            m.cell(narrow).kind,
            CellKind::Bin(BinKind::Add),
            "narrow interior stays"
        );
    }

    #[test]
    fn strength_reduces_constant_shifts_to_slices() {
        // shr by an in-range constant, by a saturating constant, and by a
        // "negative" (large unsigned) constant all become slices.
        for (amount, amount_w) in [(11i64, 5u16), (40, 6), (-1, 5)] {
            let mut m = shell();
            let en = m.push(CellKind::Const(1), 1, vec![]);
            let c = m.push(CellKind::Const(-12345), 32, vec![]);
            let x = m.push(CellKind::Reg { init: -9731 }, 32, vec![c, en]);
            let amt = m.push(CellKind::Const(amount), amount_w, vec![]);
            let sh = m.push(CellKind::Bin(BinKind::Shr), 32, vec![x, amt]);
            finish(&mut m, sh);
            let reference = m.clone();
            let reduced = strength_reduce_shifts(&mut m, None);
            assert_eq!(reduced, 1, "amount {amount}");
            validate(&m).unwrap();
            assert_eq!(
                output_values(&m),
                output_values(&reference),
                "amount {amount}"
            );
            assert_eq!(m.stats().count_bin(BinKind::Shr), 0);
            // idempotent: no shifts left
            assert_eq!(strength_reduce_shifts(&mut m, None), 0);
        }
        // a data-dependent amount is left alone
        let mut m = shell();
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let c = m.push(CellKind::Const(3), 5, vec![]);
        let amt = m.push(CellKind::Reg { init: 2 }, 5, vec![c, en]);
        let c2 = m.push(CellKind::Const(96), 32, vec![]);
        let x = m.push(CellKind::Reg { init: 64 }, 32, vec![c2, en]);
        let sh = m.push(CellKind::Bin(BinKind::Shr), 32, vec![x, amt]);
        finish(&mut m, sh);
        assert_eq!(strength_reduce_shifts(&mut m, None), 0);
    }

    #[test]
    fn retimes_a_register_bank_across_an_adder() {
        // r1, r2 (shared enable) -> add -> output becomes
        // data1, data2 -> add -> reg -> output, with init = init1 + init2.
        let mut m = shell();
        m.ports.push(Port {
            name: "i".into(),
            direction: PortDirection::Input,
            width: 8,
        });
        let en_src = m.push(CellKind::Input { port: 1, state: 0 }, 8, vec![]);
        let en = m.push(CellKind::Slice { hi: 0, lo: 0 }, 1, vec![en_src]);
        let d1 = m.push(CellKind::Const(100), 8, vec![]);
        let d2 = m.push(CellKind::Const(29), 8, vec![]);
        let r1 = m.push(CellKind::Reg { init: 70 }, 8, vec![d1, en]);
        let r2 = m.push(CellKind::Reg { init: 60 }, 8, vec![d2, en]);
        let sum = m.push(CellKind::Bin(BinKind::Add), 8, vec![r1, r2]);
        finish(&mut m, sum);
        let moved = retime_registers(&mut m, None);
        assert_eq!(moved, 1);
        validate(&m).unwrap();
        // the cell at the old adder's position is now a register holding
        // the folded init (70 + 60 wraps to -126 at 8 bits signed)
        let CellKind::Reg { init } = m.cell(sum).kind else {
            panic!("not retimed: {:?}", m.cell(sum).kind)
        };
        let _ = init;
        assert_eq!(
            BitVal::new(130, 8).as_i64(),
            match m.cell(sum).kind {
                CellKind::Reg { init } => init,
                _ => unreachable!(),
            }
        );
        // the comb adder moved before the register, fed by the old data
        let comb = m.cell(sum).inputs[0];
        assert_eq!(m.cell(comb).kind, CellKind::Bin(BinKind::Add));
        // cycle-0 behaviour is unchanged: output reads init1 + init2
        assert_eq!(output_values(&m)[0], BitVal::new(130, 8));
        sweep(&mut m);
        validate(&m).unwrap();
    }

    #[test]
    fn retime_refuses_observed_registers_and_mixed_enables() {
        let build = |mixed: bool, tapped: bool| {
            let mut m = shell();
            let d = m.push(CellKind::Const(5), 8, vec![]);
            let en_a = m.push(CellKind::Const(1), 1, vec![]);
            let en_b = if mixed {
                m.push(CellKind::Const(1), 1, vec![])
            } else {
                en_a
            };
            let r1 = m.push(CellKind::Reg { init: 1 }, 8, vec![d, en_a]);
            let r2 = m.push(CellKind::Reg { init: 2 }, 8, vec![d, en_b]);
            let sum = m.push(CellKind::Bin(BinKind::Add), 8, vec![r1, r2]);
            finish(&mut m, sum);
            if tapped {
                // r1 gains a second observer
                let t = resized(&mut m, r1, 8);
                m.ports.push(Port {
                    name: "t".into(),
                    direction: PortDirection::Output,
                    width: 8,
                });
                m.push(CellKind::Output { port: 1, state: 0 }, 8, vec![t, en_a]);
            }
            m
        };
        let mut ok = build(false, false);
        assert_eq!(retime_registers(&mut ok, None), 1, "the movable shape");
        let mut mixed = build(true, false);
        assert_eq!(retime_registers(&mut mixed, None), 0, "mixed enables");
        let mut tapped = build(false, true);
        assert_eq!(retime_registers(&mut tapped, None), 0, "observed register");
    }

    #[test]
    fn retime_handles_self_loops() {
        // r captures f(r) every cycle (an accumulator): retiming must
        // re-point the moved logic at the new register and keep the module
        // acyclic through it.
        let mut m = shell();
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let one = m.push(CellKind::Const(1), 8, vec![]);
        // placeholder input fixed below: r.data = sum, sum = r + 1
        let r = m.push(CellKind::Reg { init: 7 }, 8, vec![one, en]);
        let sum = m.push(CellKind::Bin(BinKind::Add), 8, vec![r, one]);
        m.cells[r.index()].inputs = vec![sum, en];
        finish(&mut m, sum);
        let moved = retime_registers(&mut m, None);
        assert_eq!(moved, 1);
        validate(&m).unwrap();
        // the retimed register starts at f(init) = 8 and still increments
        let CellKind::Reg { init } = m.cell(sum).kind else {
            panic!("not retimed")
        };
        assert_eq!(init, 8);
        let comb = m.cell(sum).inputs[0];
        assert_eq!(m.cell(comb).kind, CellKind::Bin(BinKind::Add));
        assert!(m.cell(comb).inputs.contains(&sum), "loop closes on the reg");
        sweep(&mut m);
        validate(&m).unwrap();
    }

    #[test]
    fn sweep_drops_orphans_and_compacts() {
        let mut m = shell();
        let live = m.push(CellKind::Const(7), 8, vec![]);
        let _dead = m.push(CellKind::Const(42), 16, vec![]);
        finish(&mut m, live);
        let removed = sweep(&mut m);
        assert_eq!(removed, 1);
        validate(&m).unwrap();
        assert_eq!(m.num_cells(), 3);
    }
}
