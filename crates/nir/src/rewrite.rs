//! Verified rewrite passes over a [`NirModule`].
//!
//! Two families of semantics-preserving rewrites run after lowering:
//!
//! * **normalization** — constant folding plus identity simplification
//!   (mux with constant select, `x*1`, `x+0`, full-range slices, identity
//!   resizes, …). Every replacement produces a cell of the *same width* as
//!   the replaced one, so consumers never change meaning.
//! * **mux-chain rebalancing** — the lowered FU steering chains are linear
//!   priority muxes (depth `n-1` for `n` arms). Because the chain semantics
//!   is *first true condition wins*, an order-preserving split into a
//!   balanced tree with prefix-OR selects computes the same function, at
//!   depth `ceil(log2 n)`.
//!
//! A final mark-and-sweep from the output cells drops everything the
//! rewrites orphaned and compacts the arena. The synthesis driver re-runs
//! the differential harness on the rewritten netlist, so each pass is proven
//! safe on every verified design, not just argued safe.

use crate::model::{BinKind, Cell, CellId, CellKind, NirModule};
use hls_ir::{eval_op, BitVal, OpKind};

/// What the rewrite pipeline did, including the mux-depth movement the
/// rebalance achieved.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RewriteReport {
    /// Cells replaced by normalization (constant folding + identities).
    pub normalized: usize,
    /// Steering chains rebuilt as balanced trees.
    pub rebalanced: usize,
    /// Dead cells removed by the final sweep.
    pub swept: usize,
    /// Maximum mux-chain depth after normalization, before rebalancing.
    pub mux_depth_before: u32,
    /// Maximum mux-chain depth after the full pipeline.
    pub mux_depth_after: u32,
}

/// Runs the full rewrite pipeline in place: normalize to fixpoint, rebalance
/// steering chains, normalize again, sweep dead cells.
pub fn optimize(m: &mut NirModule) -> RewriteReport {
    let mut normalized = normalize(m);
    let mux_depth_before = m.max_mux_depth();
    let rebalanced = rebalance_mux_chains(m);
    normalized += normalize(m);
    let swept = sweep(m);
    RewriteReport {
        normalized,
        rebalanced,
        swept,
        mux_depth_before,
        mux_depth_after: m.max_mux_depth(),
    }
}

fn const_of(m: &NirModule, id: CellId) -> Option<BitVal> {
    match m.cell(id).kind {
        CellKind::Const(v) => Some(BitVal::new(v, m.cell(id).width)),
        _ => None,
    }
}

/// Returns `id` as-is when it already has width `w`, otherwise appends a
/// `Resize` cell. Used by identity rules whose surviving operand has a
/// different width than the replaced cell.
fn resized(m: &mut NirModule, id: CellId, w: u16) -> CellId {
    if m.cell(id).width == w {
        id
    } else {
        m.push(CellKind::Resize, w, vec![id])
    }
}

fn const_cell(m: &mut NirModule, value: i64, w: u16) -> CellId {
    let canon = BitVal::new(value, w).as_i64();
    m.push(CellKind::Const(canon), w, vec![])
}

/// The `OpKind` to constant-fold a pure combinational cell with, if any.
fn fold_kind(kind: &CellKind) -> Option<OpKind> {
    match kind {
        CellKind::Bin(b) => Some(b.op_kind()),
        CellKind::Un(u) => Some(u.op_kind()),
        CellKind::Mux { .. } => Some(OpKind::Mux),
        CellKind::Slice { hi, lo } => Some(OpKind::Slice { hi: *hi, lo: *lo }),
        CellKind::Resize => Some(OpKind::Resize),
        _ => None,
    }
}

/// Constant folding and identity normalization, iterated to fixpoint.
/// Returns the number of cells replaced. Replaced cells are left in place
/// (dead) for [`sweep`] to reclaim; all consumers are re-pointed.
pub fn normalize(m: &mut NirModule) -> usize {
    let mut repl: Vec<Option<CellId>> = vec![None; m.cells.len()];
    let mut replaced = 0usize;

    // Union-find-ish resolution with path compression over the replacement
    // map; replacement chains stay short but compress anyway.
    fn find(repl: &mut Vec<Option<CellId>>, id: CellId) -> CellId {
        match repl.get(id.index()).copied().flatten() {
            None => id,
            Some(next) => {
                let root = find(repl, next);
                repl[id.index()] = Some(root);
                root
            }
        }
    }

    loop {
        let mut changed = false;
        let mut i = 0;
        while i < m.cells.len() {
            let id = CellId::from_raw(i as u32);
            // Keep the map sized for cells appended by `resized`.
            if repl.len() < m.cells.len() {
                repl.resize(m.cells.len(), None);
            }
            // Re-point operands through the replacement map first.
            let n_inputs = m.cells[i].inputs.len();
            for k in 0..n_inputs {
                let cur = m.cells[i].inputs[k];
                let root = find(&mut repl, cur);
                if root != cur {
                    m.cells[i].inputs[k] = root;
                }
            }
            if repl[i].is_none() {
                if let Some(target) = simplify(m, id) {
                    debug_assert_eq!(m.cell(target).width, m.cells[i].width);
                    repl[i] = Some(target);
                    replaced += 1;
                    changed = true;
                }
            }
            i += 1;
        }
        if !changed {
            break;
        }
    }
    replaced
}

/// One normalization step for the cell `id`, or `None` when no rule applies.
/// Every returned cell has the same width as `id`.
fn simplify(m: &mut NirModule, id: CellId) -> Option<CellId> {
    let cell = m.cell(id);
    let w = cell.width;
    let inputs = cell.inputs.clone();
    let kind = cell.kind.clone();

    // Full constant folding via the shared evaluator.
    if let Some(op) = fold_kind(&kind) {
        let consts: Option<Vec<BitVal>> = inputs.iter().map(|&i| const_of(m, i)).collect();
        if let Some(vals) = consts {
            if let Ok(v) = eval_op(&op, w, &vals) {
                return Some(const_cell(m, v.as_i64(), w));
            }
        }
    }

    match kind {
        CellKind::Mux { .. } => {
            if let Some(sel) = const_of(m, inputs[0]) {
                // constant select: forward the chosen arm (arm width == w)
                return Some(if sel.is_true() { inputs[1] } else { inputs[2] });
            }
            if inputs[1] == inputs[2] {
                return Some(inputs[1]);
            }
            None
        }
        CellKind::Bin(b) => {
            let lc = const_of(m, inputs[0]);
            let rc = const_of(m, inputs[1]);
            let fwd = |m: &mut NirModule, keep: CellId| Some(resized(m, keep, w));
            match b {
                BinKind::Add => {
                    if rc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[0]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[1]);
                    }
                    None
                }
                BinKind::Sub => {
                    if rc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[0]);
                    }
                    None
                }
                BinKind::Mul => {
                    if rc.as_ref().is_some_and(|v| v.as_i64() == 1) {
                        return fwd(m, inputs[0]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 1) {
                        return fwd(m, inputs[1]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 0)
                        || rc.as_ref().is_some_and(|v| v.as_i64() == 0)
                    {
                        return Some(const_cell(m, 0, w));
                    }
                    None
                }
                BinKind::And => {
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 0)
                        || rc.as_ref().is_some_and(|v| v.as_i64() == 0)
                    {
                        return Some(const_cell(m, 0, w));
                    }
                    if rc.as_ref().is_some_and(|v| v.as_i64() == -1) {
                        return fwd(m, inputs[0]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == -1) {
                        return fwd(m, inputs[1]);
                    }
                    None
                }
                BinKind::Or | BinKind::Xor => {
                    if rc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[0]);
                    }
                    if lc.as_ref().is_some_and(|v| v.as_i64() == 0) {
                        return fwd(m, inputs[1]);
                    }
                    None
                }
                BinKind::Shl | BinKind::Shr => {
                    if rc.as_ref().is_some_and(|v| v.as_u64() == 0) {
                        return fwd(m, inputs[0]);
                    }
                    None
                }
                _ => None,
            }
        }
        CellKind::Slice { hi, lo } => {
            let iw = m.cell(inputs[0]).width;
            if lo == 0 && hi + 1 == iw && w == iw {
                return Some(inputs[0]);
            }
            None
        }
        CellKind::Resize => {
            if m.cell(inputs[0]).width == w {
                return Some(inputs[0]);
            }
            None
        }
        _ => None,
    }
}

/// Rebuilds `x*1`-free steering chains (onehot mux spines) as balanced
/// trees. The produced tree muxes are *not* marked onehot, so the pass is
/// idempotent: a second run finds no chains. Returns the number of chains
/// rebuilt.
pub fn rebalance_mux_chains(m: &mut NirModule) -> usize {
    let n = m.cells.len();
    let mut use_count = vec![0u32; n];
    for cell in &m.cells {
        for input in &cell.inputs {
            use_count[input.index()] += 1;
        }
    }

    let is_onehot =
        |m: &NirModule, id: CellId| matches!(m.cell(id).kind, CellKind::Mux { onehot: true });

    // A spine interior is a single-use onehot mux consumed as the else-arm of
    // another onehot mux; heads are the onehot muxes that are not interiors.
    let mut interior = vec![false; n];
    for i in 0..n {
        let id = CellId::from_raw(i as u32);
        if is_onehot(m, id) {
            let e = m.cell(id).inputs[2];
            if is_onehot(m, e) && use_count[e.index()] == 1 {
                interior[e.index()] = true;
            }
        }
    }

    let mut rebuilt = 0usize;
    for i in 0..n {
        let head = CellId::from_raw(i as u32);
        if !is_onehot(m, head) || interior[head.index()] {
            continue;
        }
        // Walk the else-spine, collecting (cond, value) arms and the default.
        let mut arms: Vec<(CellId, CellId)> = Vec::new();
        let mut cur = head;
        loop {
            let c = m.cell(cur);
            arms.push((c.inputs[0], c.inputs[1]));
            let e = c.inputs[2];
            if is_onehot(m, e) && use_count[e.index()] == 1 {
                cur = e;
            } else {
                break;
            }
        }
        let default = m.cell(cur).inputs[2];
        if arms.len() < 3 {
            // Depth ≤ 2 already; just clear the marks so the pass is
            // convergent.
            let mut at = head;
            loop {
                m.cells[at.index()].kind = CellKind::Mux { onehot: false };
                let e = m.cells[at.index()].inputs[2];
                if is_onehot(m, e) && use_count[e.index()] == 1 {
                    at = e;
                } else {
                    break;
                }
            }
            continue;
        }
        let w = m.cell(head).width;
        let root = build_tree(m, &arms, default, w);
        // Overwrite the head in place so consumers stay pointed at it; the
        // interior spine cells become dead and are swept.
        let root_cell = m.cell(root).clone();
        m.cells[head.index()].kind = root_cell.kind;
        m.cells[head.index()].inputs = root_cell.inputs;
        rebuilt += 1;
    }
    rebuilt
}

/// Builds a balanced first-true-wins tree over `arms` with `default` as the
/// fall-through. The select of an inner node ORs the conditions of its left
/// half (a prefix-OR), preserving priority order exactly.
fn build_tree(m: &mut NirModule, arms: &[(CellId, CellId)], default: CellId, w: u16) -> CellId {
    if arms.is_empty() {
        return default;
    }
    if arms.len() == 1 {
        let (c, v) = arms[0];
        return m.push(CellKind::Mux { onehot: false }, w, vec![c, v, default]);
    }
    let mid = arms.len().div_ceil(2);
    let (left, right) = arms.split_at(mid);
    // When the left subtree is selected, some left condition is true, so the
    // left half needs no fall-through of its own.
    let left_tree = build_left(m, left, w);
    let right_tree = build_tree(m, right, default, w);
    let sel = or_tree(m, &left.iter().map(|&(c, _)| c).collect::<Vec<_>>());
    m.push(
        CellKind::Mux { onehot: false },
        w,
        vec![sel, left_tree, right_tree],
    )
}

/// Like [`build_tree`], but for a subtree that is only entered when one of
/// its conditions is already known true: the last arm needs no test.
fn build_left(m: &mut NirModule, arms: &[(CellId, CellId)], w: u16) -> CellId {
    if arms.len() == 1 {
        return arms[0].1;
    }
    let mid = arms.len().div_ceil(2);
    let (left, right) = arms.split_at(mid);
    let left_tree = build_left(m, left, w);
    let right_tree = build_left(m, right, w);
    let sel = or_tree(m, &left.iter().map(|&(c, _)| c).collect::<Vec<_>>());
    m.push(
        CellKind::Mux { onehot: false },
        w,
        vec![sel, left_tree, right_tree],
    )
}

/// Balanced OR reduction of 1-bit condition cells.
fn or_tree(m: &mut NirModule, conds: &[CellId]) -> CellId {
    match conds.len() {
        0 => const_cell(m, 0, 1),
        1 => conds[0],
        _ => {
            let mid = conds.len().div_ceil(2);
            let l = or_tree(m, &conds[..mid]);
            let r = or_tree(m, &conds[mid..]);
            let lw = m.cell(l).width.max(m.cell(r).width);
            m.push(CellKind::Bin(BinKind::Or), lw, vec![l, r])
        }
    }
}

/// Mark-and-sweep from the output cells: removes unreachable cells and
/// compacts ids. Returns the number of cells removed. A module without any
/// output cells is left untouched.
pub fn sweep(m: &mut NirModule) -> usize {
    let n = m.cells.len();
    if !m
        .cells
        .iter()
        .any(|c| matches!(c.kind, CellKind::Output { .. }))
    {
        return 0;
    }
    let live = m.live_cells();
    let dead = live.iter().filter(|&&l| !l).count();
    if dead == 0 {
        return 0;
    }
    let mut remap = vec![CellId::from_raw(0); n];
    let mut kept: Vec<Cell> = Vec::with_capacity(n - dead);
    for (i, cell) in m.cells.drain(..).enumerate() {
        if live[i] {
            remap[i] = CellId::from_raw(kept.len() as u32);
            kept.push(cell);
        }
    }
    for cell in &mut kept {
        for input in &mut cell.inputs {
            *input = remap[input.index()];
        }
    }
    m.cells = kept;
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NirModule;
    use crate::validate::validate;
    use hls_ir::{Port, PortDirection};

    fn shell() -> NirModule {
        let mut m = NirModule::new("t");
        m.ports.push(Port {
            name: "o".into(),
            direction: PortDirection::Output,
            width: 8,
        });
        m
    }

    fn finish(m: &mut NirModule, data: CellId) {
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let d8 = resized(m, data, 8);
        m.push(CellKind::Output { port: 0, state: 0 }, 8, vec![d8, en]);
    }

    #[test]
    fn folds_constants_through_the_evaluator() {
        let mut m = shell();
        let a = m.push(CellKind::Const(200), 8, vec![]);
        let b = m.push(CellKind::Const(100), 8, vec![]);
        let s = m.push(CellKind::Bin(BinKind::Add), 8, vec![a, b]);
        finish(&mut m, s);
        let r = optimize(&mut m);
        assert!(r.normalized >= 1);
        validate(&m).unwrap();
        // 200 + 100 wraps to 44 at 8 bits signed
        let out = m
            .iter_cells()
            .find(|(_, c)| matches!(c.kind, CellKind::Output { .. }))
            .unwrap()
            .1
            .inputs[0];
        assert_eq!(m.cell(out).kind, CellKind::Const(44));
    }

    #[test]
    fn forwards_identities_with_width_preserved() {
        let mut m = shell();
        let x = m.push(CellKind::Const(5), 4, vec![]); // opaque? it's const...
        let one = m.push(CellKind::Const(1), 8, vec![]);
        // keep x opaque by running through a register
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let r = m.push(CellKind::Reg { init: 0 }, 4, vec![x, en]);
        let rz = m.push(CellKind::Resize, 8, vec![r]);
        let prod = m.push(CellKind::Bin(BinKind::Mul), 8, vec![rz, one]);
        finish(&mut m, prod);
        let _ = optimize(&mut m);
        validate(&m).unwrap();
        // the multiply by one is gone
        assert_eq!(m.stats().count_bin(BinKind::Mul), 0);
    }

    #[test]
    fn mux_constant_select_forwards_an_arm() {
        let mut m = shell();
        let t = m.push(CellKind::Const(1), 1, vec![]);
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let x = m.push(CellKind::Input { port: 1, state: 0 }, 8, vec![]);
        m.ports.push(Port {
            name: "i".into(),
            direction: PortDirection::Input,
            width: 8,
        });
        let r = m.push(CellKind::Reg { init: 0 }, 8, vec![x, en]);
        let other = m.push(CellKind::Const(9), 8, vec![]);
        let mx = m.push(CellKind::Mux { onehot: false }, 8, vec![t, r, other]);
        finish(&mut m, mx);
        let _ = optimize(&mut m);
        validate(&m).unwrap();
        assert_eq!(m.stats().muxes(), 0);
    }

    #[test]
    fn rebalances_a_long_chain_and_is_idempotent() {
        // 8-arm onehot chain: depth 7 linear, depth 3 balanced.
        let mut m = shell();
        let mut conds = Vec::new();
        let mut vals = Vec::new();
        let en = m.push(CellKind::Const(1), 1, vec![]);
        for k in 0..8i64 {
            // distinct opaque conditions/values via registers
            let cbit = m.push(CellKind::Const(0), 1, vec![]);
            let c = m.push(CellKind::Reg { init: k & 1 }, 1, vec![cbit, en]);
            conds.push(c);
            let vconst = m.push(CellKind::Const(k), 8, vec![]);
            let v = m.push(CellKind::Reg { init: 0 }, 8, vec![vconst, en]);
            vals.push(v);
        }
        let default = m.push(CellKind::Const(-1), 8, vec![]);
        let mut acc = default;
        for k in (0..7).rev() {
            acc = m.push(
                CellKind::Mux { onehot: true },
                8,
                vec![conds[k], vals[k], acc],
            );
        }
        finish(&mut m, acc);
        assert_eq!(m.max_mux_depth(), 7);
        let r1 = optimize(&mut m);
        validate(&m).unwrap();
        assert_eq!(r1.rebalanced, 1);
        // 8 arms + default = 9 leaves → balanced depth ceil(log2 9) = 4
        assert!(r1.mux_depth_after <= 4, "depth {}", r1.mux_depth_after);
        assert!(r1.mux_depth_after < r1.mux_depth_before);
        // Second run: nothing left to do, structure unchanged.
        let before = m.clone();
        let r2 = optimize(&mut m);
        assert_eq!(r2.rebalanced, 0);
        assert_eq!(r2.swept, 0);
        assert_eq!(m, before);
    }

    #[test]
    fn sweep_drops_orphans_and_compacts() {
        let mut m = shell();
        let live = m.push(CellKind::Const(7), 8, vec![]);
        let _dead = m.push(CellKind::Const(42), 16, vec![]);
        finish(&mut m, live);
        let removed = sweep(&mut m);
        assert_eq!(removed, 1);
        validate(&m).unwrap();
        assert_eq!(m.num_cells(), 3);
    }
}
