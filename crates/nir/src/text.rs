//! Round-trippable human-readable text format.
//!
//! One line per port and per cell, in arena order, so `text_parse(&text_emit(m))`
//! reconstructs a module structurally equal to `m`. The format is strict —
//! fixed field order, `%N` ids matching arena indices, quoted strings with
//! `\"`/`\\` escapes — which keeps the parser small and the round-trip exact.
//!
//! ```text
//! module "demo loop" fold=3 states=3 stages=1
//! port "x" in 16
//! port "out" out 16
//! %0 = input port=0 state=0 w16 name="w_0_read"
//! %1 = const 3 w16
//! %2 = mul %0 %1 w16 name="w_1_mul"
//! %3 = fsm w8
//! %4 = eq %3 %5 w1
//! %5 = const 0 w8
//! %6 = reg init=0 %2 %4 w16 name="v_1_mul"
//! %7 = output port=1 state=2 %2 %4 w16
//! endmodule
//! ```

use crate::model::{BinKind, Cell, CellId, CellKind, NirModule, UnKind};
use hls_ir::{CmpKind, Port, PortDirection};
use std::fmt;
use std::fmt::Write as _;

/// A syntax or consistency error while parsing the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes `m` into the line-based text format.
pub fn text_emit(m: &NirModule) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "module {} fold={} states={} stages={}",
        quote(&m.name),
        m.fold_states,
        m.num_states,
        m.stages
    );
    for p in &m.ports {
        let dir = match p.direction {
            PortDirection::Input => "in",
            PortDirection::Output => "out",
        };
        let _ = writeln!(out, "port {} {dir} {}", quote(&p.name), p.width);
    }
    for (id, cell) in m.iter_cells() {
        let _ = write!(out, "{id} = {}", cell.kind.mnemonic());
        match &cell.kind {
            CellKind::Const(v) => {
                let _ = write!(out, " {v}");
            }
            CellKind::Input { port, state } | CellKind::Output { port, state } => {
                let _ = write!(out, " port={port} state={state}");
            }
            CellKind::Slice { hi, lo } => {
                let _ = write!(out, " {hi} {lo}");
            }
            CellKind::Reg { init } => {
                let _ = write!(out, " init={init}");
            }
            CellKind::StageValid { stage } | CellKind::FirstIter { stage } => {
                let _ = write!(out, " {stage}");
            }
            _ => {}
        }
        for input in &cell.inputs {
            let _ = write!(out, " {input}");
        }
        let _ = write!(out, " w{}", cell.width);
        if let CellKind::Mux { onehot: true } = cell.kind {
            let _ = write!(out, " onehot");
        }
        if let Some(name) = &cell.name {
            let _ = write!(out, " name={}", quote(name));
        }
        out.push('\n');
    }
    out.push_str("endmodule\n");
    out
}

/// One lexical token of a line: a bare word or a quoted (unescaped) string.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Word(String),
    Str(String),
}

impl Tok {
    fn word(&self, line: usize) -> Result<&str, ParseError> {
        match self {
            Tok::Word(w) => Ok(w),
            Tok::Str(_) => Err(err(line, "expected a bare word, found a quoted string")),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn lex(line: &str, lineno: usize) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some(e @ ('"' | '\\')) => s.push(e),
                        _ => return Err(err(lineno, "bad escape in string")),
                    },
                    Some(ch) => s.push(ch),
                    None => return Err(err(lineno, "unterminated string")),
                }
            }
            toks.push(Tok::Str(s));
        } else {
            let mut w = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '"' {
                    break;
                }
                w.push(ch);
                chars.next();
            }
            // `name="..."` splits at the quote: keep the `name=` prefix as a
            // word and let the string lex on the next round.
            toks.push(Tok::Word(w));
        }
    }
    Ok(toks)
}

struct Fields<'a> {
    toks: &'a [Tok],
    at: usize,
    line: usize,
}

impl<'a> Fields<'a> {
    fn next(&mut self) -> Result<&'a Tok, ParseError> {
        let t = self
            .toks
            .get(self.at)
            .ok_or_else(|| err(self.line, "unexpected end of line"))?;
        self.at += 1;
        Ok(t)
    }

    fn next_word(&mut self) -> Result<&'a str, ParseError> {
        let line = self.line;
        self.next()?.word(line)
    }

    fn next_str(&mut self) -> Result<&'a str, ParseError> {
        match self.next()? {
            Tok::Str(s) => Ok(s),
            Tok::Word(_) => Err(err(self.line, "expected a quoted string")),
        }
    }

    /// Parses `key=value` where the value is part of the same word.
    fn next_kv(&mut self, key: &str) -> Result<&'a str, ParseError> {
        let line = self.line;
        let w = self.next_word()?;
        w.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| err(line, format!("expected `{key}=<value>`")))
    }

    fn done(&self) -> bool {
        self.at >= self.toks.len()
    }
}

fn int_at<T: std::str::FromStr>(line: usize, s: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| err(line, format!("bad integer `{s}`")))
}

fn parse_cell_id(f: &mut Fields<'_>) -> Result<CellId, ParseError> {
    let line = f.line;
    let w = f.next_word()?;
    let raw = w
        .strip_prefix('%')
        .ok_or_else(|| err(line, format!("expected a %id, found `{w}`")))?;
    Ok(CellId::from_raw(int_at(f.line, raw)?))
}

fn bin_kind(word: &str) -> Option<BinKind> {
    Some(match word {
        "add" => BinKind::Add,
        "sub" => BinKind::Sub,
        "mul" => BinKind::Mul,
        "div" => BinKind::Div,
        "rem" => BinKind::Rem,
        "and" => BinKind::And,
        "or" => BinKind::Or,
        "xor" => BinKind::Xor,
        "shl" => BinKind::Shl,
        "shr" => BinKind::Shr,
        "eq" => BinKind::Cmp(CmpKind::Eq),
        "neq" => BinKind::Cmp(CmpKind::Ne),
        "lt" => BinKind::Cmp(CmpKind::Lt),
        "le" => BinKind::Cmp(CmpKind::Le),
        "gt" => BinKind::Cmp(CmpKind::Gt),
        "ge" => BinKind::Cmp(CmpKind::Ge),
        _ => return None,
    })
}

/// Parses the text format back into a [`NirModule`]; the inverse of
/// [`text_emit`] (structural equality holds for emitted text).
pub fn text_parse(text: &str) -> Result<NirModule, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty());

    let (lineno, header) = lines
        .next()
        .ok_or_else(|| err(1, "empty input, expected `module`"))?;
    let toks = lex(header, lineno)?;
    let mut f = Fields {
        toks: &toks,
        at: 0,
        line: lineno,
    };
    if f.next_word()? != "module" {
        return Err(err(lineno, "expected `module`"));
    }
    let mut m = NirModule::new(f.next_str()?.to_string());
    m.fold_states = int_at(f.line, f.next_kv("fold")?)?;
    m.num_states = int_at(f.line, f.next_kv("states")?)?;
    m.stages = int_at(f.line, f.next_kv("stages")?)?;
    if !f.done() {
        return Err(err(lineno, "trailing tokens after module header"));
    }

    let mut saw_end = false;
    for (lineno, line) in lines {
        if saw_end {
            return Err(err(lineno, "content after `endmodule`"));
        }
        let toks = lex(line, lineno)?;
        let mut f = Fields {
            toks: &toks,
            at: 0,
            line: lineno,
        };
        let head = f.next_word()?;
        match head {
            "endmodule" => {
                saw_end = true;
                continue;
            }
            "port" => {
                if !m.cells.is_empty() {
                    return Err(err(lineno, "ports must precede cells"));
                }
                let name = f.next_str()?.to_string();
                let direction = match f.next_word()? {
                    "in" => PortDirection::Input,
                    "out" => PortDirection::Output,
                    d => return Err(err(lineno, format!("bad port direction `{d}`"))),
                };
                let width: u16 = int_at(f.line, f.next_word()?)?;
                m.ports.push(Port {
                    name,
                    direction,
                    width,
                });
            }
            _ => {
                let raw = head
                    .strip_prefix('%')
                    .ok_or_else(|| err(lineno, format!("expected `%id`, found `{head}`")))?;
                let id: u32 = int_at(f.line, raw)?;
                if id as usize != m.cells.len() {
                    return Err(err(
                        lineno,
                        format!("cell id %{id} out of order (expected %{})", m.cells.len()),
                    ));
                }
                if f.next_word()? != "=" {
                    return Err(err(lineno, "expected `=`"));
                }
                let kw = f.next_word()?.to_string();
                let mut kind = if let Some(b) = bin_kind(&kw) {
                    CellKind::Bin(b)
                } else {
                    match kw.as_str() {
                        "not" => CellKind::Un(UnKind::Not),
                        "neg" => CellKind::Un(UnKind::Neg),
                        "const" => CellKind::Const(int_at(f.line, f.next_word()?)?),
                        "input" => CellKind::Input {
                            port: int_at(f.line, f.next_kv("port")?)?,
                            state: int_at(f.line, f.next_kv("state")?)?,
                        },
                        "output" => CellKind::Output {
                            port: int_at(f.line, f.next_kv("port")?)?,
                            state: int_at(f.line, f.next_kv("state")?)?,
                        },
                        "mux" => CellKind::Mux { onehot: false },
                        "slice" => {
                            let hi: u16 = int_at(f.line, f.next_word()?)?;
                            let lo: u16 = int_at(f.line, f.next_word()?)?;
                            CellKind::Slice { hi, lo }
                        }
                        "resize" => CellKind::Resize,
                        "reg" => CellKind::Reg {
                            init: int_at(f.line, f.next_kv("init")?)?,
                        },
                        "fsm" => CellKind::FsmState,
                        "stagevalid" => CellKind::StageValid {
                            stage: int_at(f.line, f.next_word()?)?,
                        },
                        "firstiter" => CellKind::FirstIter {
                            stage: int_at(f.line, f.next_word()?)?,
                        },
                        other => return Err(err(lineno, format!("unknown cell kind `{other}`"))),
                    }
                };
                let mut inputs = Vec::with_capacity(kind.arity());
                for _ in 0..kind.arity() {
                    inputs.push(parse_cell_id(&mut f)?);
                }
                let w = f.next_word()?;
                let width: u16 = int_at(
                    lineno,
                    w.strip_prefix('w')
                        .ok_or_else(|| err(lineno, format!("expected `w<width>`, found `{w}`")))?,
                )?;
                let mut name = None;
                while !f.done() {
                    let t = f.next()?;
                    match t {
                        Tok::Word(w) if w == "onehot" => {
                            if let CellKind::Mux { onehot } = &mut kind {
                                *onehot = true;
                            } else {
                                return Err(err(lineno, "`onehot` only applies to mux"));
                            }
                        }
                        Tok::Word(w) if w == "name=" => {
                            name = Some(f.next_str()?.to_string());
                        }
                        _ => return Err(err(lineno, "unexpected trailing token")),
                    }
                }
                m.add_cell(Cell {
                    kind,
                    width,
                    inputs,
                    name,
                });
            }
        }
    }
    if !saw_end {
        return Err(err(text.lines().count().max(1), "missing `endmodule`"));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NirModule;

    fn demo() -> NirModule {
        let mut m = NirModule::new("demo loop");
        m.fold_states = 3;
        m.num_states = 3;
        m.stages = 1;
        m.ports.push(Port {
            name: "x".into(),
            direction: PortDirection::Input,
            width: 16,
        });
        m.ports.push(Port {
            name: "out".into(),
            direction: PortDirection::Output,
            width: 16,
        });
        let i = m.add_cell(Cell {
            kind: CellKind::Input { port: 0, state: 0 },
            width: 16,
            inputs: vec![],
            name: Some("w_0_read".into()),
        });
        let c = m.push(CellKind::Const(-3), 16, vec![]);
        let p = m.add_cell(Cell {
            kind: CellKind::Bin(BinKind::Mul),
            width: 16,
            inputs: vec![i, c],
            name: Some("w_1_mul".into()),
        });
        let fsm = m.push(CellKind::FsmState, 8, vec![]);
        let z = m.push(CellKind::Const(0), 8, vec![]);
        let en = m.push(CellKind::Bin(BinKind::Cmp(CmpKind::Eq)), 1, vec![fsm, z]);
        let mx = m.push(CellKind::Mux { onehot: true }, 16, vec![en, p, c]);
        let sl = m.push(CellKind::Slice { hi: 7, lo: 0 }, 8, vec![mx]);
        let rz = m.push(CellKind::Resize, 16, vec![sl]);
        let r = m.add_cell(Cell {
            kind: CellKind::Reg { init: -1 },
            width: 16,
            inputs: vec![rz, en],
            name: Some("v_1_mul".into()),
        });
        m.push(CellKind::Output { port: 1, state: 2 }, 16, vec![r, en]);
        m
    }

    #[test]
    fn round_trips_structurally() {
        let m = demo();
        let text = text_emit(&m);
        let back = text_parse(&text).expect("parses");
        assert_eq!(back, m);
        // and the re-emitted text is byte-identical
        assert_eq!(text_emit(&back), text);
    }

    #[test]
    fn round_trips_quoted_names_with_escapes() {
        let mut m = NirModule::new("weird \"name\" \\ here");
        m.push(CellKind::Const(1), 1, vec![]);
        let back = text_parse(&text_emit(&m)).expect("parses");
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_out_of_order_ids() {
        let text = "module \"t\" fold=1 states=1 stages=1\n%1 = const 0 w8\nendmodule\n";
        let e = text_parse(text).unwrap_err();
        assert!(e.message.contains("out of order"), "{e}");
    }

    #[test]
    fn rejects_unknown_kind_and_missing_end() {
        assert!(
            text_parse("module \"t\" fold=1 states=1 stages=1\n%0 = frob w8\nendmodule\n").is_err()
        );
        assert!(text_parse("module \"t\" fold=1 states=1 stages=1\n").is_err());
    }

    #[test]
    fn controller_bits_round_trip() {
        let mut m = NirModule::new("pipe");
        m.stages = 2;
        m.push(CellKind::StageValid { stage: 1 }, 1, vec![]);
        m.push(CellKind::FirstIter { stage: 0 }, 1, vec![]);
        let back = text_parse(&text_emit(&m)).expect("parses");
        assert_eq!(back, m);
    }
}
