//! Cell-level netlist data model.
//!
//! A [`NirModule`] is a flat arena of [`Cell`]s on dense indices. Every cell
//! carries an explicit bit-width and names its operands by [`CellId`]; there
//! are no nets separate from cells — a cell *is* its output net, exactly the
//! SSA-style representation the rewrite passes want. Sequential elements
//! ([`CellKind::Reg`]) and sinks ([`CellKind::Output`]) make clockedness
//! explicit, and the FSM controller is modelled as first-class source cells
//! ([`CellKind::FsmState`], [`CellKind::StageValid`], [`CellKind::FirstIter`])
//! so the datapath below them is pure structure.

use hls_ir::{CmpKind, OpKind, Port};
use std::collections::BTreeMap;
use std::fmt;

/// Dense index of a cell inside a [`NirModule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(u32);

impl CellId {
    /// Builds an id from a raw arena index.
    pub fn from_raw(raw: u32) -> Self {
        CellId(raw)
    }

    /// The arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Two-input combinational operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinKind {
    /// Wrapping signed addition.
    Add,
    /// Wrapping signed subtraction.
    Sub,
    /// Wrapping signed multiplication.
    Mul,
    /// Signed division; division by zero yields zero.
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift; the amount reads the right operand as unsigned.
    Shl,
    /// Arithmetic right shift; the amount reads the right operand as unsigned.
    Shr,
    /// Signed comparison producing a 1-bit result.
    Cmp(CmpKind),
}

impl BinKind {
    /// The `hls-ir` operation kind with identical evaluation semantics.
    pub fn op_kind(self) -> OpKind {
        match self {
            BinKind::Add => OpKind::Add,
            BinKind::Sub => OpKind::Sub,
            BinKind::Mul => OpKind::Mul,
            BinKind::Div => OpKind::Div,
            BinKind::Rem => OpKind::Rem,
            BinKind::And => OpKind::And,
            BinKind::Or => OpKind::Or,
            BinKind::Xor => OpKind::Xor,
            BinKind::Shl => OpKind::Shl,
            BinKind::Shr => OpKind::Shr,
            BinKind::Cmp(c) => OpKind::Cmp(c),
        }
    }

    /// Text-format keyword (also the key used by [`NetlistStats`]).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinKind::Add => "add",
            BinKind::Sub => "sub",
            BinKind::Mul => "mul",
            BinKind::Div => "div",
            BinKind::Rem => "rem",
            BinKind::And => "and",
            BinKind::Or => "or",
            BinKind::Xor => "xor",
            BinKind::Shl => "shl",
            BinKind::Shr => "shr",
            BinKind::Cmp(CmpKind::Eq) => "eq",
            BinKind::Cmp(CmpKind::Ne) => "neq",
            BinKind::Cmp(CmpKind::Lt) => "lt",
            BinKind::Cmp(CmpKind::Le) => "le",
            BinKind::Cmp(CmpKind::Gt) => "gt",
            BinKind::Cmp(CmpKind::Ge) => "ge",
        }
    }
}

/// One-input combinational operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnKind {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
}

impl UnKind {
    /// The `hls-ir` operation kind with identical evaluation semantics.
    pub fn op_kind(self) -> OpKind {
        match self {
            UnKind::Not => OpKind::Not,
            UnKind::Neg => OpKind::Neg,
        }
    }

    /// Text-format keyword (also the key used by [`NetlistStats`]).
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnKind::Not => "not",
            UnKind::Neg => "neg",
        }
    }
}

/// What a cell computes. The number and meaning of `inputs` is fixed per kind.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A constant; the stored value is interpreted at the cell width.
    Const(i64),
    /// A module input port sampled for the iteration whose read is scheduled
    /// in unfolded state `state`. No inputs.
    Input {
        /// Index into the module's port list.
        port: u32,
        /// Unfolded state of the scheduled read.
        state: u32,
    },
    /// A clocked write to a module output port: inputs `[data, enable]`.
    /// `state` is the unfolded state in which the write fires.
    Output {
        /// Index into the module's port list.
        port: u32,
        /// Unfolded state of the scheduled write.
        state: u32,
    },
    /// Two-input combinational operator: inputs `[lhs, rhs]`.
    Bin(BinKind),
    /// One-input combinational operator: inputs `[value]`.
    Un(UnKind),
    /// Two-way multiplexer: inputs `[sel, then, else]`. `sel` may be any
    /// width; selection tests it for non-zero. `onehot` marks muxes whose
    /// select conditions form a priority steering chain — the rebalance pass
    /// consumes (and clears) the mark.
    Mux {
        /// True for lowered FU steering-chain elements.
        onehot: bool,
    },
    /// Bit-range extraction `[hi:lo]` of a single input; the cell width is
    /// exactly `hi - lo + 1`.
    Slice {
        /// Most-significant extracted bit.
        hi: u16,
        /// Least-significant extracted bit.
        lo: u16,
    },
    /// Sign-aware width change of a single input to the cell width.
    Resize,
    /// Clocked register: inputs `[data, enable]`; captures `data` on clock
    /// edges where `enable` is non-zero, resets to `init`.
    Reg {
        /// Reset value, interpreted at the cell width.
        init: i64,
    },
    /// The folded FSM state counter (width 8), counting `0..fold_states`.
    FsmState,
    /// One bit of the pipeline fill shift register: true once stage `stage`
    /// has valid work. Always true for sequential (single-stage) schedules.
    StageValid {
        /// Pipeline stage index.
        stage: u32,
    },
    /// One bit of the first-iteration one-hot pipe: true while stage `stage`
    /// is processing iteration 0.
    FirstIter {
        /// Pipeline stage index.
        stage: u32,
    },
}

impl CellKind {
    /// Number of inputs this kind requires.
    pub fn arity(&self) -> usize {
        match self {
            CellKind::Const(_)
            | CellKind::Input { .. }
            | CellKind::FsmState
            | CellKind::StageValid { .. }
            | CellKind::FirstIter { .. } => 0,
            CellKind::Un(_) | CellKind::Slice { .. } | CellKind::Resize => 1,
            CellKind::Bin(_) | CellKind::Reg { .. } | CellKind::Output { .. } => 2,
            CellKind::Mux { .. } => 3,
        }
    }

    /// True for clocked cells ([`CellKind::Reg`]); their value does not
    /// combinationally depend on their inputs.
    pub fn is_seq(&self) -> bool {
        matches!(self, CellKind::Reg { .. })
    }

    /// True for cells with no combinational inputs (constants, port reads and
    /// the controller sources).
    pub fn is_source(&self) -> bool {
        matches!(
            self,
            CellKind::Const(_)
                | CellKind::Input { .. }
                | CellKind::FsmState
                | CellKind::StageValid { .. }
                | CellKind::FirstIter { .. }
        )
    }

    /// Stats/text keyword for the kind (parameters stripped).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CellKind::Const(_) => "const",
            CellKind::Input { .. } => "input",
            CellKind::Output { .. } => "output",
            CellKind::Bin(b) => b.mnemonic(),
            CellKind::Un(u) => u.mnemonic(),
            CellKind::Mux { .. } => "mux",
            CellKind::Slice { .. } => "slice",
            CellKind::Resize => "resize",
            CellKind::Reg { .. } => "reg",
            CellKind::FsmState => "fsm",
            CellKind::StageValid { .. } => "stagevalid",
            CellKind::FirstIter { .. } => "firstiter",
        }
    }
}

/// One cell of the netlist: kind, output width, operand ids and an optional
/// display name carried into the printed Verilog.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// What the cell computes.
    pub kind: CellKind,
    /// Output bit-width.
    pub width: u16,
    /// Operand cell ids; length is fixed by [`CellKind::arity`].
    pub inputs: Vec<CellId>,
    /// Optional display name (sanitized into Verilog identifiers).
    pub name: Option<String>,
}

/// A structural netlist: module interface plus a dense cell arena.
#[derive(Clone, Debug, PartialEq)]
pub struct NirModule {
    /// Module name (display form; the printer sanitizes it).
    pub name: String,
    /// Module ports, shared with the behavioural body (same indices).
    pub ports: Vec<Port>,
    /// The cell arena; a [`CellId`] indexes this vector.
    pub cells: Vec<Cell>,
    /// Folded states per iteration (the FSM modulus / cycles-per-iteration).
    pub fold_states: u32,
    /// Unfolded schedule length in states.
    pub num_states: u32,
    /// Number of pipeline stages (1 for sequential schedules).
    pub stages: u32,
}

impl NirModule {
    /// Creates an empty module with a single folded state.
    pub fn new(name: impl Into<String>) -> Self {
        NirModule {
            name: name.into(),
            ports: Vec::new(),
            cells: Vec::new(),
            fold_states: 1,
            num_states: 1,
            stages: 1,
        }
    }

    /// Appends a cell and returns its id.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        id
    }

    /// Appends an unnamed cell and returns its id.
    pub fn push(&mut self, kind: CellKind, width: u16, inputs: Vec<CellId>) -> CellId {
        self.add_cell(Cell {
            kind,
            width,
            inputs,
            name: None,
        })
    }

    /// The cell behind `id`. Panics when out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Number of cells in the arena.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Iterates `(id, cell)` in arena order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Per-cell fan-out: how many times each cell appears as an operand of
    /// any other cell. A count of zero means nothing in the module reads the
    /// cell's value.
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.cells.len()];
        for cell in &self.cells {
            for input in &cell.inputs {
                counts[input.index()] += 1;
            }
        }
        counts
    }

    /// The live cone: `true` for every cell transitively reachable from an
    /// `Output` cell (through both data and enable operands). A module with
    /// no output cells reports everything live.
    pub fn live_cells(&self) -> Vec<bool> {
        let roots: Vec<CellId> = self
            .iter_cells()
            .filter(|(_, c)| matches!(c.kind, CellKind::Output { .. }))
            .map(|(id, _)| id)
            .collect();
        if roots.is_empty() {
            return vec![true; self.cells.len()];
        }
        let mut live = vec![false; self.cells.len()];
        let mut stack = roots;
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            for &input in &self.cell(id).inputs {
                if !live[input.index()] {
                    stack.push(input);
                }
            }
        }
        live
    }

    /// Cells in a combinational topological order: every combinational cell
    /// appears after all of its operands. Sequential cells and sources carry
    /// no incoming combinational edges and appear before any combinational
    /// consumer. Requires combinationally acyclic logic (see
    /// [`crate::validate`]); cells on a cycle are omitted rather than
    /// looping forever.
    pub fn comb_topo_order(&self) -> Vec<CellId> {
        let n = self.cells.len();
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut stack: Vec<(u32, bool)> = Vec::new();
        for root in 0..n as u32 {
            if state[root as usize] != 0 {
                continue;
            }
            stack.push((root, false));
            while let Some((id, expanded)) = stack.pop() {
                if expanded {
                    state[id as usize] = 2;
                    order.push(CellId(id));
                    continue;
                }
                if state[id as usize] != 0 {
                    continue;
                }
                state[id as usize] = 1;
                stack.push((id, true));
                let cell = &self.cells[id as usize];
                if cell.kind.is_seq() || cell.kind.is_source() {
                    continue;
                }
                for &input in &cell.inputs {
                    if state[input.index()] == 0 {
                        stack.push((input.0, false));
                    }
                }
            }
        }
        order
    }

    /// Structural statistics over the arena (cell counts by kind, register
    /// totals and the maximum combinational mux-chain depth).
    pub fn stats(&self) -> NetlistStats {
        let mut kind_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut regs = 0usize;
        let mut reg_bits = 0usize;
        for cell in &self.cells {
            *kind_counts
                .entry(cell.kind.mnemonic().to_string())
                .or_insert(0) += 1;
            if cell.kind.is_seq() {
                regs += 1;
                reg_bits += cell.width as usize;
            }
        }
        NetlistStats {
            cells: self.cells.len(),
            kind_counts,
            regs,
            reg_bits,
            max_mux_depth: self.max_mux_depth(),
        }
    }

    /// Maximum number of 2-way muxes stacked on any register-to-register
    /// combinational path. Registers, sources and sinks contribute depth 0;
    /// a mux contributes `1 + max(depth(then), depth(else))`; every other
    /// combinational cell is transparent (max over its inputs).
    pub fn max_mux_depth(&self) -> u32 {
        // Iterative memoized post-order; chains can be long, so no recursion.
        const UNVISITED: u32 = u32::MAX;
        const ONSTACK: u32 = u32::MAX - 1;
        // A cell still on the DFS stack means a combinational cycle; the
        // validator rejects those, here we just avoid wedging.
        fn depth_of(memo_value: u32) -> u32 {
            if memo_value >= ONSTACK {
                0
            } else {
                memo_value
            }
        }
        let mut memo = vec![UNVISITED; self.cells.len()];
        let mut stack: Vec<(u32, bool)> = Vec::new();
        let mut best = 0u32;
        for root in 0..self.cells.len() as u32 {
            if memo[root as usize] != UNVISITED {
                best = best.max(memo[root as usize]);
                continue;
            }
            stack.push((root, false));
            while let Some((id, expanded)) = stack.pop() {
                let cell = &self.cells[id as usize];
                let comb = !cell.kind.is_seq() && !cell.kind.is_source();
                if !comb {
                    memo[id as usize] = 0;
                    continue;
                }
                if expanded {
                    let depth = match cell.kind {
                        CellKind::Mux { .. } => {
                            let a = memo[cell.inputs[1].index()];
                            let b = memo[cell.inputs[2].index()];
                            1 + depth_of(a).max(depth_of(b))
                        }
                        _ => cell
                            .inputs
                            .iter()
                            .map(|i| depth_of(memo[i.index()]))
                            .max()
                            .unwrap_or(0),
                    };
                    memo[id as usize] = depth;
                } else {
                    if memo[id as usize] != UNVISITED {
                        continue;
                    }
                    memo[id as usize] = ONSTACK;
                    stack.push((id, true));
                    for &input in &cell.inputs {
                        if memo[input.index()] == UNVISITED {
                            stack.push((input.0, false));
                        }
                    }
                }
            }
            best = best.max(depth_of(memo[root as usize]));
        }
        best
    }
}

/// Cell-count and structural statistics for a [`NirModule`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Total number of cells.
    pub cells: usize,
    /// Cell counts keyed by [`CellKind::mnemonic`] (binary operators count
    /// under their own operator keyword, e.g. `"mul"`).
    pub kind_counts: BTreeMap<String, usize>,
    /// Number of register cells.
    pub regs: usize,
    /// Total register bits.
    pub reg_bits: usize,
    /// Maximum combinational mux-chain depth (see
    /// [`NirModule::max_mux_depth`]).
    pub max_mux_depth: u32,
}

impl NetlistStats {
    /// Count of cells with the given mnemonic, zero when absent.
    ///
    /// Prefer the typed accessors ([`NetlistStats::count_kind`],
    /// [`NetlistStats::count_bin`], ...) — a typo'd mnemonic silently reads
    /// as zero, a typo'd enum variant does not compile.
    pub fn count(&self, mnemonic: &str) -> usize {
        self.kind_counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// Count of cells of the given kind (parameters ignored: every
    /// `Mux { .. }` counts as a mux, every `Cmp` under its own flavour).
    pub fn count_kind(&self, kind: &CellKind) -> usize {
        self.count(kind.mnemonic())
    }

    /// Count of binary-operator cells of the given operator.
    pub fn count_bin(&self, op: BinKind) -> usize {
        self.count(op.mnemonic())
    }

    /// Count of unary-operator cells of the given operator.
    pub fn count_un(&self, op: UnKind) -> usize {
        self.count(op.mnemonic())
    }

    /// Count of 2-way multiplexer cells.
    pub fn muxes(&self) -> usize {
        self.count("mux")
    }

    /// Count of `Output` port-write cells.
    pub fn outputs(&self) -> usize {
        self.count("output")
    }

    /// Count of `Input` port-read cells.
    pub fn inputs(&self) -> usize {
        self.count("input")
    }

    /// Count of constant cells.
    pub fn consts(&self) -> usize {
        self.count("const")
    }
}

/// Turns a display name into a safe Verilog identifier: non-alphanumerics
/// become `_`, and an empty or digit-leading result is prefixed with `m`.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'm');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::PortDirection;

    fn port(name: &str, dir: PortDirection, width: u16) -> Port {
        Port {
            name: name.to_string(),
            direction: dir,
            width,
        }
    }

    #[test]
    fn stats_count_kinds_and_registers() {
        let mut m = NirModule::new("t");
        m.ports.push(port("x", PortDirection::Input, 8));
        let c = m.push(CellKind::Const(3), 8, vec![]);
        let i = m.push(CellKind::Input { port: 0, state: 0 }, 8, vec![]);
        let a = m.push(CellKind::Bin(BinKind::Mul), 8, vec![c, i]);
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let _r = m.push(CellKind::Reg { init: 0 }, 8, vec![a, en]);
        let s = m.stats();
        assert_eq!(s.cells, 5);
        assert_eq!(s.count("mul"), 1);
        assert_eq!(s.count("const"), 2);
        assert_eq!(s.count("nonexistent"), 0);
        assert_eq!(s.regs, 1);
        assert_eq!(s.reg_bits, 8);
        assert_eq!(s.max_mux_depth, 0);
    }

    #[test]
    fn mux_depth_counts_stacked_muxes_and_sees_through_arith() {
        let mut m = NirModule::new("t");
        let s0 = m.push(CellKind::Const(1), 1, vec![]);
        let a = m.push(CellKind::Const(4), 8, vec![]);
        let b = m.push(CellKind::Const(5), 8, vec![]);
        // chain: mux(s, a, mux(s, b, mux(s, a, b)))
        let m1 = m.push(CellKind::Mux { onehot: false }, 8, vec![s0, a, b]);
        let m2 = m.push(CellKind::Mux { onehot: false }, 8, vec![s0, b, m1]);
        let m3 = m.push(CellKind::Mux { onehot: false }, 8, vec![s0, a, m2]);
        // an adder on top is transparent
        let add = m.push(CellKind::Bin(BinKind::Add), 8, vec![m3, a]);
        assert_eq!(m.max_mux_depth(), 3);
        // the select input does not add mux depth
        let _ = add;
        // registers cut the path
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let r = m.push(CellKind::Reg { init: 0 }, 8, vec![add, en]);
        let m4 = m.push(CellKind::Mux { onehot: false }, 8, vec![s0, r, a]);
        let _ = m4;
        assert_eq!(m.max_mux_depth(), 3);
    }

    #[test]
    fn use_counts_and_live_cells_agree_with_structure() {
        let mut m = NirModule::new("t");
        m.ports.push(port("y", PortDirection::Output, 8));
        let a = m.push(CellKind::Const(1), 8, vec![]);
        let b = m.push(CellKind::Const(2), 8, vec![]);
        let s = m.push(CellKind::Bin(BinKind::Add), 8, vec![a, b]);
        let dead = m.push(CellKind::Bin(BinKind::Add), 8, vec![a, a]);
        let en = m.push(CellKind::Const(1), 1, vec![]);
        m.push(CellKind::Output { port: 0, state: 0 }, 8, vec![s, en]);
        let uses = m.use_counts();
        assert_eq!(
            uses[a.index()],
            3,
            "a feeds the sum and the dead adder twice"
        );
        assert_eq!(uses[b.index()], 1);
        assert_eq!(uses[s.index()], 1);
        assert_eq!(uses[dead.index()], 0);
        let live = m.live_cells();
        assert!(live[a.index()] && live[b.index()] && live[s.index()] && live[en.index()]);
        assert!(!live[dead.index()], "unreachable from any output");
    }

    #[test]
    fn comb_topo_order_puts_operands_first() {
        let mut m = NirModule::new("t");
        let a = m.push(CellKind::Const(1), 8, vec![]);
        let en = m.push(CellKind::Const(1), 1, vec![]);
        // register feedback: r = reg(add(r, a)) — legal, the topo order must
        // still terminate and place the adder after its register operand
        let r = m.add_cell(Cell {
            kind: CellKind::Reg { init: 0 },
            width: 8,
            inputs: vec![a, en],
            name: None,
        });
        let sum = m.push(CellKind::Bin(BinKind::Add), 8, vec![r, a]);
        m.cells[r.index()].inputs = vec![sum, en];
        let order = m.comb_topo_order();
        assert_eq!(order.len(), m.num_cells());
        let pos = |id: CellId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(r) < pos(sum), "reg launches before the adder consumes");
        assert!(pos(a) < pos(sum));
    }

    #[test]
    fn typed_stat_accessors_match_string_counts() {
        let mut m = NirModule::new("t");
        let c = m.push(CellKind::Const(3), 8, vec![]);
        let d = m.push(CellKind::Const(4), 8, vec![]);
        let p = m.push(CellKind::Bin(BinKind::Mul), 8, vec![c, d]);
        let n = m.push(CellKind::Un(UnKind::Neg), 8, vec![p]);
        let s0 = m.push(CellKind::Const(1), 1, vec![]);
        let _mx = m.push(CellKind::Mux { onehot: false }, 8, vec![s0, p, n]);
        let s = m.stats();
        assert_eq!(s.count_bin(BinKind::Mul), s.count("mul"));
        assert_eq!(s.count_bin(BinKind::Mul), 1);
        assert_eq!(s.count_un(UnKind::Neg), 1);
        assert_eq!(s.muxes(), 1);
        assert_eq!(s.consts(), 3);
        assert_eq!(s.count_kind(&CellKind::Mux { onehot: true }), 1);
        assert_eq!(s.outputs(), 0);
        assert_eq!(s.inputs(), 0);
    }

    #[test]
    fn sanitize_makes_identifiers() {
        assert_eq!(sanitize("demo loop"), "demo_loop");
        assert_eq!(sanitize("3x"), "m3x");
        assert_eq!(sanitize(""), "m");
        assert_eq!(sanitize("a.b-c"), "a_b_c");
    }
}
