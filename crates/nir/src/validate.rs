//! Structural validation of a [`NirModule`].
//!
//! `validate` checks the invariants every consumer (simulator, rewriter,
//! Verilog printer) relies on: operand ids in range, per-kind arity, width
//! agreement, port references consistent with the module interface, every
//! output port driven, and the absence of combinational cycles (registers
//! break cycles). The cycle check uses the same iterative colour-marked DFS
//! idiom as the scheduler's combinational-path walker.

use crate::model::{CellId, CellKind, NirModule};
use hls_ir::PortDirection;
use std::fmt;

/// A structural defect found by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NirError {
    /// An operand id is outside the cell arena.
    BadOperand {
        /// The referencing cell.
        cell: CellId,
        /// Which operand slot held the bad id.
        index: usize,
    },
    /// A cell has the wrong number of operands for its kind.
    BadArity {
        /// The offending cell.
        cell: CellId,
        /// Operand count the kind requires.
        expected: usize,
        /// Operand count the cell has.
        found: usize,
    },
    /// A cell has width zero.
    ZeroWidth {
        /// The offending cell.
        cell: CellId,
    },
    /// Widths disagree between a cell and one of its operands.
    WidthMismatch {
        /// The offending cell.
        cell: CellId,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A port reference is out of range or has the wrong direction.
    BadPort {
        /// The offending cell.
        cell: CellId,
    },
    /// An output port has no `Output` cell driving it.
    UndrivenOutput {
        /// Index of the undriven port.
        port: u32,
    },
    /// A pipeline-stage reference is outside `0..stages`.
    BadStage {
        /// The offending cell.
        cell: CellId,
    },
    /// A combinational cycle passes through this cell.
    CombCycle {
        /// A cell on the cycle.
        cell: CellId,
    },
}

impl fmt::Display for NirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NirError::BadOperand { cell, index } => {
                write!(f, "cell {cell}: operand {index} is out of range")
            }
            NirError::BadArity {
                cell,
                expected,
                found,
            } => write!(
                f,
                "cell {cell}: expected {expected} operand(s), found {found}"
            ),
            NirError::ZeroWidth { cell } => write!(f, "cell {cell}: zero width"),
            NirError::WidthMismatch { cell, detail } => {
                write!(f, "cell {cell}: width mismatch ({detail})")
            }
            NirError::BadPort { cell } => {
                write!(f, "cell {cell}: bad port reference")
            }
            NirError::UndrivenOutput { port } => {
                write!(f, "output port {port} has no driver")
            }
            NirError::BadStage { cell } => {
                write!(f, "cell {cell}: pipeline stage out of range")
            }
            NirError::CombCycle { cell } => {
                write!(f, "combinational cycle through cell {cell}")
            }
        }
    }
}

impl std::error::Error for NirError {}

/// Checks all structural invariants of `m`; `Ok(())` means every consumer may
/// assume widths agree, references resolve and combinational logic is acyclic.
pub fn validate(m: &NirModule) -> Result<(), NirError> {
    let n = m.cells.len();
    for (id, cell) in m.iter_cells() {
        let expected = cell.kind.arity();
        if cell.inputs.len() != expected {
            return Err(NirError::BadArity {
                cell: id,
                expected,
                found: cell.inputs.len(),
            });
        }
        for (index, input) in cell.inputs.iter().enumerate() {
            if input.index() >= n {
                return Err(NirError::BadOperand { cell: id, index });
            }
        }
        if cell.width == 0 {
            return Err(NirError::ZeroWidth { cell: id });
        }
        let in_w = |i: usize| m.cell(cell.inputs[i]).width;
        match &cell.kind {
            CellKind::Const(_) => {}
            CellKind::Input { port, .. } => {
                let Some(p) = m.ports.get(*port as usize) else {
                    return Err(NirError::BadPort { cell: id });
                };
                if p.direction != PortDirection::Input {
                    return Err(NirError::BadPort { cell: id });
                }
                if p.width != cell.width {
                    return Err(NirError::WidthMismatch {
                        cell: id,
                        detail: format!("input cell w{} vs port w{}", cell.width, p.width),
                    });
                }
            }
            CellKind::Output { port, .. } => {
                let Some(p) = m.ports.get(*port as usize) else {
                    return Err(NirError::BadPort { cell: id });
                };
                if p.direction != PortDirection::Output {
                    return Err(NirError::BadPort { cell: id });
                }
                if p.width != cell.width || in_w(0) != cell.width {
                    return Err(NirError::WidthMismatch {
                        cell: id,
                        detail: format!(
                            "output cell w{} data w{} vs port w{}",
                            cell.width,
                            in_w(0),
                            p.width
                        ),
                    });
                }
            }
            CellKind::Bin(b) => {
                if matches!(b, crate::model::BinKind::Cmp(_)) && cell.width != 1 {
                    return Err(NirError::WidthMismatch {
                        cell: id,
                        detail: format!("comparison must be 1 bit, found w{}", cell.width),
                    });
                }
            }
            CellKind::Un(_) => {}
            CellKind::Mux { .. } => {
                if in_w(1) != cell.width || in_w(2) != cell.width {
                    return Err(NirError::WidthMismatch {
                        cell: id,
                        detail: format!(
                            "mux w{} with arms w{} / w{}",
                            cell.width,
                            in_w(1),
                            in_w(2)
                        ),
                    });
                }
            }
            CellKind::Slice { hi, lo } => {
                if hi < lo || cell.width != hi - lo + 1 {
                    return Err(NirError::WidthMismatch {
                        cell: id,
                        detail: format!("slice [{hi}:{lo}] with w{}", cell.width),
                    });
                }
            }
            CellKind::Resize => {}
            CellKind::Reg { .. } => {
                if in_w(0) != cell.width {
                    return Err(NirError::WidthMismatch {
                        cell: id,
                        detail: format!("reg w{} with data w{}", cell.width, in_w(0)),
                    });
                }
            }
            CellKind::FsmState => {
                if cell.width != 8 {
                    return Err(NirError::WidthMismatch {
                        cell: id,
                        detail: format!("fsm state must be 8 bits, found w{}", cell.width),
                    });
                }
            }
            CellKind::StageValid { stage } | CellKind::FirstIter { stage } => {
                if cell.width != 1 {
                    return Err(NirError::WidthMismatch {
                        cell: id,
                        detail: format!("controller bit must be 1 bit, found w{}", cell.width),
                    });
                }
                if *stage >= m.stages {
                    return Err(NirError::BadStage { cell: id });
                }
            }
        }
    }

    // Driver presence: every output port must be written by at least one
    // Output cell.
    for (pi, p) in m.ports.iter().enumerate() {
        if p.direction != PortDirection::Output {
            continue;
        }
        let driven = m
            .cells
            .iter()
            .any(|c| matches!(c.kind, CellKind::Output { port, .. } if port as usize == pi));
        if !driven {
            return Err(NirError::UndrivenOutput { port: pi as u32 });
        }
    }

    comb_cycle_check(m)
}

/// Iterative colour-marked DFS over combinational edges; a register has no
/// outgoing combinational edges (its value is the stored one), so cycles
/// through a register are legal feedback, not errors.
fn comb_cycle_check(m: &NirModule) -> Result<(), NirError> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour = vec![WHITE; m.cells.len()];
    let mut stack: Vec<(u32, bool)> = Vec::new();
    for root in 0..m.cells.len() as u32 {
        if colour[root as usize] != WHITE {
            continue;
        }
        stack.push((root, false));
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                colour[id as usize] = BLACK;
                continue;
            }
            if colour[id as usize] == BLACK {
                continue;
            }
            colour[id as usize] = GREY;
            stack.push((id, true));
            let cell = &m.cells[id as usize];
            if cell.kind.is_seq() {
                // Sequential: inputs are sampled at the clock edge, not
                // combinationally transparent.
                continue;
            }
            for &input in &cell.inputs {
                match colour[input.index()] {
                    WHITE => stack.push((input.index() as u32, false)),
                    GREY => {
                        return Err(NirError::CombCycle { cell: input });
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BinKind, Cell, NirModule};
    use hls_ir::Port;

    fn module_with_out() -> NirModule {
        let mut m = NirModule::new("t");
        m.ports.push(Port {
            name: "x".into(),
            direction: PortDirection::Input,
            width: 8,
        });
        m.ports.push(Port {
            name: "y".into(),
            direction: PortDirection::Output,
            width: 8,
        });
        m
    }

    fn drive_output(m: &mut NirModule, data: CellId) {
        let en = m.push(CellKind::Const(1), 1, vec![]);
        m.push(CellKind::Output { port: 1, state: 0 }, 8, vec![data, en]);
    }

    #[test]
    fn accepts_a_well_formed_module() {
        let mut m = module_with_out();
        let i = m.push(CellKind::Input { port: 0, state: 0 }, 8, vec![]);
        let c = m.push(CellKind::Const(2), 8, vec![]);
        let s = m.push(CellKind::Bin(BinKind::Add), 8, vec![i, c]);
        drive_output(&mut m, s);
        assert_eq!(validate(&m), Ok(()));
    }

    #[test]
    fn rejects_out_of_range_operand() {
        let mut m = module_with_out();
        let bogus = CellId::from_raw(99);
        let id = m.add_cell(Cell {
            kind: CellKind::Resize,
            width: 8,
            inputs: vec![bogus],
            name: None,
        });
        drive_output(&mut m, id);
        assert!(matches!(validate(&m), Err(NirError::BadOperand { .. })));
    }

    #[test]
    fn rejects_mux_arm_width_mismatch() {
        let mut m = module_with_out();
        let s = m.push(CellKind::Const(1), 1, vec![]);
        let a = m.push(CellKind::Const(1), 8, vec![]);
        let b = m.push(CellKind::Const(1), 4, vec![]);
        let mx = m.push(CellKind::Mux { onehot: false }, 8, vec![s, a, b]);
        drive_output(&mut m, mx);
        assert!(matches!(validate(&m), Err(NirError::WidthMismatch { .. })));
    }

    #[test]
    fn rejects_undriven_output_port() {
        let m = module_with_out();
        assert_eq!(validate(&m), Err(NirError::UndrivenOutput { port: 1 }));
    }

    #[test]
    fn rejects_combinational_cycle_but_allows_register_feedback() {
        let mut m = module_with_out();
        // a = add(a, c): direct comb cycle
        let c = m.push(CellKind::Const(1), 8, vec![]);
        let a = m.add_cell(Cell {
            kind: CellKind::Bin(BinKind::Add),
            width: 8,
            inputs: vec![CellId::from_raw(1), c],
            name: None,
        });
        assert_eq!(a.index(), 1);
        drive_output(&mut m, a);
        assert!(matches!(validate(&m), Err(NirError::CombCycle { .. })));

        // feedback through a register is fine: r = reg(add(r, c))
        let mut m = module_with_out();
        let c = m.push(CellKind::Const(1), 8, vec![]);
        let en = m.push(CellKind::Const(1), 1, vec![]);
        // reserve the reg id first
        let r = m.add_cell(Cell {
            kind: CellKind::Reg { init: 0 },
            width: 8,
            inputs: vec![c, en], // placeholder, patched below
            name: None,
        });
        let sum = m.push(CellKind::Bin(BinKind::Add), 8, vec![r, c]);
        m.cells[r.index()].inputs = vec![sum, en];
        drive_output(&mut m, r);
        assert_eq!(validate(&m), Ok(()));
    }

    #[test]
    fn rejects_wrong_direction_port_reference() {
        let mut m = module_with_out();
        // reading the output port
        let i = m.push(CellKind::Input { port: 1, state: 0 }, 8, vec![]);
        drive_output(&mut m, i);
        assert!(matches!(validate(&m), Err(NirError::BadPort { .. })));
    }
}
