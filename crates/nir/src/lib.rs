//! `hls-nir`: the structural netlist IR of the rpp-hls flow.
//!
//! Where the behavioural IR (`hls-ir`) describes *operations over time*, this
//! crate describes the *hardware structure* the flow commits to after
//! scheduling and binding: muxes, registers, arithmetic cells, port
//! reads/writes and the FSM controller, all on dense indices with explicit
//! bit-widths ([`NirModule`]). On top of the data model it provides
//!
//! * [`validate`] — structural well-formedness (widths, arities, port
//!   references, driver presence, combinational-cycle freedom),
//! * [`text_emit`] / [`text_parse`] — a round-trippable text format with
//!   `parse(emit(m)) == m`,
//! * [`optimize`] — verified rewrite passes (constant/identity
//!   normalization and steering-chain rebalancing) plus dead-cell sweep,
//! * mask-gated timing rewrites — [`rebalance_operator_chains`],
//!   [`strength_reduce_shifts`] and [`retime_registers`], run by
//!   `hls_lint::optimize_timed` on negative-slack cones only.
//!
//! The Verilog printer lives in `hls-netlist` and is a thin walk over this
//! model; the lowering from a bound design lives in `hls-bind`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod rewrite;
pub mod text;
pub mod validate;

pub use model::{sanitize, BinKind, Cell, CellId, CellKind, NetlistStats, NirModule, UnKind};
pub use rewrite::{
    normalize, optimize, rebalance_mux_chains, rebalance_operator_chains, retime_registers,
    strength_reduce_shifts, sweep, RewriteReport,
};
pub use text::{text_emit, text_parse, ParseError};
pub use validate::{validate, NirError};
