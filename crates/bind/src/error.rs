//! Errors detected while binding a schedule onto shared hardware.

use hls_ir::OpId;
use hls_tech::ResourceInstanceId;
use std::error::Error;
use std::fmt;

/// Errors the binder reports when a schedule cannot be realized as a shared
/// datapath.
///
/// Every variant names the first offending operation(s) and functional unit,
/// so a failing design can be traced back to the scheduling decision that
/// produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BindError {
    /// An operation that occupies a resource has no schedule entry.
    Unscheduled {
        /// The unscheduled operation.
        op: OpId,
    },
    /// The scheduler assigned an operation to an instance whose type cannot
    /// implement it.
    IncompatibleBinding {
        /// The operation.
        op: OpId,
        /// The assigned instance.
        instance: ResourceInstanceId,
    },
    /// Two operations share a functional unit in the same folded control
    /// step without being steerable apart: they execute in different
    /// (unfolded) control steps of a folded pipeline, or their predicates
    /// are not mutually exclusive.
    SlotConflict {
        /// First operation (lower id).
        a: OpId,
        /// Second operation.
        b: OpId,
        /// The shared instance.
        instance: ResourceInstanceId,
        /// The folded control step both occupy.
        folded_state: u32,
    },
    /// A functional unit is shared under predicates whose condition
    /// operation is scheduled *after* the shared control step — the operand
    /// mux would have to select on a value that does not exist yet.
    UnsteerableSlot {
        /// The predicated operation.
        op: OpId,
        /// The condition operation scheduled too late.
        condition: OpId,
        /// The shared instance.
        instance: ResourceInstanceId,
        /// The control step of the shared slot.
        state: u32,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::Unscheduled { op } => {
                write!(f, "operation {op} occupies a resource but is unscheduled")
            }
            BindError::IncompatibleBinding { op, instance } => write!(
                f,
                "operation {op} is bound to instance {instance}, which cannot implement it"
            ),
            BindError::SlotConflict {
                a,
                b,
                instance,
                folded_state,
            } => write!(
                f,
                "operations {a} and {b} cannot share instance {instance} in folded step {folded_state}"
            ),
            BindError::UnsteerableSlot {
                op,
                condition,
                instance,
                state,
            } => write!(
                f,
                "operation {op} shares instance {instance} in step {state} but its steering \
                 condition {condition} is scheduled later"
            ),
        }
    }
}

impl Error for BindError {}
