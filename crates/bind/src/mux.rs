//! Input-mux derivation: for every port of every shared functional unit,
//! the set of distinct sources the FSM steers onto it.

use crate::fu::BoundFu;
use hls_ir::{LinearBody, Signal};
use hls_tech::ResourceInstanceId;

/// The operand multiplexer of one input port of a shared functional unit.
#[derive(Clone, Debug)]
pub struct InputMux {
    /// The unit.
    pub fu: ResourceInstanceId,
    /// Input-port position (0-based; for mux-class units port 0 is the
    /// select).
    pub port: usize,
    /// Data width of the port (widest steered source).
    pub width: u16,
    /// The distinct signals steered onto the port, in steering-priority
    /// order. Two operations whose port-`port` input is the *same* signal
    /// share one mux input; a physical mux exists only when `len() > 1`.
    ///
    /// Sources are distinct **structural** signals; the RTL emitter, which
    /// inlines free operations (`Pass`/`Resize`/`Slice`) into its operand
    /// expressions, may collapse two structurally distinct sources into one
    /// printed arm, so its `mux_in` headers are a lower bound on this count.
    pub sources: Vec<Signal>,
}

impl InputMux {
    /// Whether a physical multiplexer is needed.
    pub fn is_real(&self) -> bool {
        self.sources.len() > 1
    }
}

/// Derives the per-port input muxes of every functional unit. Ports beyond
/// an operation's input count contribute nothing (e.g. a negate sharing an
/// adder drives only the first port).
pub(crate) fn derive_muxes(body: &LinearBody, fus: &[BoundFu]) -> Vec<InputMux> {
    let mut muxes = Vec::new();
    for fu in fus {
        if fu.ops.is_empty() {
            continue;
        }
        let ports = fu
            .ops
            .iter()
            .map(|s| body.dfg.op(s.op).inputs.len())
            .max()
            .unwrap_or(0);
        for port in 0..ports {
            let mut sources: Vec<Signal> = Vec::new();
            let mut width = 0u16;
            for s in &fu.ops {
                let Some(sig) = body.dfg.op(s.op).inputs.get(port) else {
                    continue;
                };
                width = width.max(sig.width);
                if !sources.contains(sig) {
                    sources.push(*sig);
                }
            }
            muxes.push(InputMux {
                fu: fu.instance,
                port,
                width,
                sources,
            });
        }
    }
    muxes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::FuSlotOp;
    use hls_ir::{Dfg, OpKind, PortDirection};
    use hls_tech::Interner;
    use hls_tech::{ResourceClass, ResourceInstanceId, ResourceType};

    #[test]
    fn shared_port_collects_distinct_sources_only() {
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 16);
        let r = dfg.add_op(OpKind::Read(x), 16, vec![]);
        // both multiplications read the same port value on port 0; their
        // second operands differ
        let m1 = dfg.add_op(
            OpKind::Mul,
            16,
            vec![Signal::op_w(r, 16), Signal::constant(3, 16)],
        );
        let m2 = dfg.add_op(
            OpKind::Mul,
            16,
            vec![Signal::op_w(r, 16), Signal::constant(5, 16)],
        );
        let body = LinearBody::from_dfg("m", dfg);
        let mut interner = Interner::new();
        let ty = ResourceType::binary(ResourceClass::Multiplier, 16, 16, 16);
        let fu = BoundFu {
            instance: ResourceInstanceId(0),
            class: interner.class_id(&ty.class),
            ty: interner.type_id(&ty),
            name: "mul1".into(),
            ops: vec![
                FuSlotOp {
                    op: m1,
                    state: 0,
                    folded_state: 0,
                    stage: 0,
                },
                FuSlotOp {
                    op: m2,
                    state: 1,
                    folded_state: 1,
                    stage: 0,
                },
            ],
        };
        let muxes = derive_muxes(&body, &[fu]);
        assert_eq!(muxes.len(), 2);
        // port 0: both read the same signal → no physical mux
        assert_eq!(muxes[0].sources.len(), 1);
        assert!(!muxes[0].is_real());
        // port 1: two distinct constants → a 2-input mux
        assert_eq!(muxes[1].sources.len(), 2);
        assert!(muxes[1].is_real());
        assert_eq!(muxes[1].width, 16);
    }
}
