//! Register binding by lifetime analysis: values whose live ranges are
//! disjoint (as cyclic intervals over the folded schedule period) share one
//! physical register, allocated with a deterministic left-edge greedy.

use hls_ir::{DenseOpMap, LinearBody, OpId, OpKind};
use hls_netlist::ScheduleDesc;

/// Identifier of one bound register within a
/// [`BoundDesign`](crate::BoundDesign).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u32);

impl RegId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RegId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reg{}", self.0)
    }
}

/// One physical register of the bound datapath.
#[derive(Clone, Debug)]
pub struct BoundRegister {
    /// Identifier within the owning design.
    pub id: RegId,
    /// Bit width.
    pub width: u16,
    /// Pipeline copies: values that must survive more than one initiation
    /// interval need a chain of this many registers (such registers are
    /// never time-shared).
    pub copies: u32,
    /// The values (producing operations) time-multiplexed onto the
    /// register, in allocation order; their cyclic live ranges are disjoint.
    pub values: Vec<OpId>,
}

impl BoundRegister {
    /// Whether more than one value shares the register.
    pub fn is_shared(&self) -> bool {
        self.values.len() > 1
    }

    /// Storage bits the register (chain) occupies.
    pub fn bits(&self) -> u64 {
        u64::from(self.width) * u64::from(self.copies)
    }
}

/// The live range of one registered value.
#[derive(Clone, Debug)]
struct LiveValue {
    op: OpId,
    width: u16,
    def_state: u32,
    /// Cycles the register must hold the value (`last_use - def_state` in
    /// extended, unfolded time; ≥ 1).
    len: u32,
    copies: u32,
}

/// Computes which values need storage and for how long.
///
/// A value needs a register when any consumer samples it after its producing
/// cycle: a distance-0 consumer in a later control step, or a loop-carried
/// consumer (`distance > 0`, sampled `distance` iterations later). Predicate
/// conditions of predicated operations are consumers too — a gated write
/// reads them in its own step, and the steering mux of a contended shared
/// slot reads them in the slot's step. Port writes capture into the output
/// port register itself and free operations are pure wiring, so neither
/// competes for datapath registers.
fn live_values(body: &LinearBody, desc: &ScheduleDesc) -> Vec<LiveValue> {
    let cpi = desc.cycles_per_iteration().max(1);
    let n = body.dfg.num_ops();
    let mut last_use: Vec<Option<u32>> = vec![None; n];
    let mut extend = |producer: OpId, use_state: u32, distance: u32| {
        let slot = &mut last_use[producer.index()];
        let at = use_state + distance * cpi;
        *slot = Some(slot.map_or(at, |prev| prev.max(at)));
    };
    for (id, op) in body.dfg.iter_ops() {
        let Some(cs) = desc.ops.get(&id) else {
            continue;
        };
        for sig in &op.inputs {
            if let Some(p) = sig.producer() {
                if sig.distance > 0 || desc.ops.get(&p).is_some_and(|ps| ps.state < cs.state) {
                    extend(p, cs.state, sig.distance);
                }
            }
        }
        // Predicate conditions are read wherever the predicate is evaluated:
        // by a gated side effect in its own step, or by the steering mux of
        // a contended shared slot. Extend conservatively for *every*
        // predicated operation — slot contention is a binding-time fact this
        // lifetime pass deliberately does not depend on.
        if !op.predicate.is_true() {
            for cond in op.predicate.condition_ops() {
                if desc.ops.get(&cond).is_some_and(|ps| ps.state < cs.state) {
                    extend(cond, cs.state, 0);
                }
            }
        }
    }

    let mut values = Vec::new();
    for (id, op) in body.dfg.iter_ops() {
        if matches!(op.kind, OpKind::Write(_))
            || (op.kind.is_free() && !matches!(op.kind, OpKind::Pass))
        {
            continue;
        }
        let Some(s) = desc.ops.get(&id) else { continue };
        let Some(last) = last_use[id.index()] else {
            continue;
        };
        if last <= s.state {
            continue;
        }
        let len = last - s.state;
        values.push(LiveValue {
            op: id,
            width: op.width,
            def_state: s.state,
            len,
            copies: len.div_ceil(cpi),
        });
    }
    values
}

/// Allocates physical registers for the live values of a schedule.
///
/// Values are considered in left-edge order (definition step, then id).
/// A value whose lifetime fits within one period occupies the cyclic slots
/// `(def + 1 ..= def + len) mod cpi` of the folded schedule and may join the
/// first same-width register whose occupied slots are disjoint. Values that
/// live a full period or longer (loop-carried, or crossing pipeline stages)
/// get a dedicated register chain of `ceil(len / cpi)` copies.
pub(crate) fn bind_registers(
    body: &LinearBody,
    desc: &ScheduleDesc,
) -> (Vec<BoundRegister>, DenseOpMap<Option<RegId>>) {
    let cpi = desc.cycles_per_iteration().max(1) as usize;
    let mut values = live_values(body, desc);
    values.sort_by_key(|v| (v.def_state, v.op));

    let mut registers: Vec<BoundRegister> = Vec::new();
    // occupancy[r][slot]: register r holds some value during folded cycle
    // `slot` (shareable registers only)
    let mut occupancy: Vec<Vec<bool>> = Vec::new();
    let mut reg_of: DenseOpMap<Option<RegId>> = DenseOpMap::new(body.dfg.num_ops());

    for v in &values {
        if (v.len as usize) >= cpi {
            let id = RegId(registers.len() as u32);
            registers.push(BoundRegister {
                id,
                width: v.width,
                copies: v.copies,
                values: vec![v.op],
            });
            occupancy.push(vec![true; cpi]);
            reg_of[v.op] = Some(id);
            continue;
        }
        let slots: Vec<usize> = (1..=v.len as usize)
            .map(|j| (v.def_state as usize + j) % cpi)
            .collect();
        let found = registers.iter().position(|r| {
            r.width == v.width
                && r.copies == 1
                && slots.iter().all(|&s| !occupancy[r.id.index()][s])
        });
        let id = match found {
            Some(i) => RegId(i as u32),
            None => {
                let id = RegId(registers.len() as u32);
                registers.push(BoundRegister {
                    id,
                    width: v.width,
                    copies: 1,
                    values: Vec::new(),
                });
                occupancy.push(vec![false; cpi]);
                id
            }
        };
        registers[id.index()].values.push(v.op);
        for &s in &slots {
            occupancy[id.index()][s] = true;
        }
        reg_of[v.op] = Some(id);
    }
    (registers, reg_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{Dfg, PortDirection, Signal};
    use hls_netlist::ScheduledOp;
    use hls_tech::ResourceSet;
    use std::collections::BTreeMap;

    /// Two independent 2-state producer/consumer chains over 4 states: the
    /// two produced values have disjoint live ranges and must share one
    /// register.
    fn chain_body() -> (LinearBody, ScheduleDesc) {
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 8);
        let y = dfg.add_port("y", PortDirection::Output, 8);
        let r = dfg.add_op(OpKind::Read(x), 8, vec![]);
        let a = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(r, 8), Signal::constant(1, 8)],
        );
        let b = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(a, 8), Signal::constant(2, 8)],
        );
        let c = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(b, 8), Signal::constant(3, 8)],
        );
        let w = dfg.add_op(OpKind::Write(y), 8, vec![Signal::op_w(c, 8)]);
        let body = LinearBody::from_dfg("chain", dfg);
        let mut ops = BTreeMap::new();
        for (id, state) in [(r, 0), (a, 0), (b, 1), (c, 2), (w, 3)] {
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state,
                    resource: None,
                },
            );
        }
        (
            body,
            ScheduleDesc {
                num_states: 4,
                ii: None,
                ops,
                resources: ResourceSet::new(),
            },
        )
    }

    #[test]
    fn disjoint_lifetimes_share_a_register() {
        let (body, desc) = chain_body();
        let (regs, reg_of) = bind_registers(&body, &desc);
        // a lives [1], b lives [2], c lives [3]: all disjoint → one register
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].values.len(), 3);
        assert!(regs[0].is_shared());
        assert_eq!(regs[0].bits(), 8);
        let a = OpId::from_raw(1);
        let c = OpId::from_raw(3);
        assert_eq!(reg_of[a], Some(RegId(0)));
        assert_eq!(reg_of[a], reg_of[c]);
    }

    #[test]
    fn overlapping_lifetimes_get_distinct_registers() {
        // diamond: a (defined s0) is read by both b (s1) and c (s2), so a
        // lives [1, 2]; b (defined s1) is read by c (s2), so b lives [2] —
        // a and b are simultaneously live in step 2 and must not share
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 8);
        let y = dfg.add_port("y", PortDirection::Output, 8);
        let r = dfg.add_op(OpKind::Read(x), 8, vec![]);
        let a = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(r, 8), Signal::constant(1, 8)],
        );
        let b = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(a, 8), Signal::constant(2, 8)],
        );
        let c = dfg.add_op(OpKind::Add, 8, vec![Signal::op_w(a, 8), Signal::op_w(b, 8)]);
        let w = dfg.add_op(OpKind::Write(y), 8, vec![Signal::op_w(c, 8)]);
        let body = LinearBody::from_dfg("diamond", dfg);
        let mut ops = BTreeMap::new();
        for (id, state) in [(r, 0), (a, 0), (b, 1), (c, 2), (w, 3)] {
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state,
                    resource: None,
                },
            );
        }
        let desc = ScheduleDesc {
            num_states: 4,
            ii: None,
            ops,
            resources: ResourceSet::new(),
        };
        let (regs, reg_of) = bind_registers(&body, &desc);
        assert_ne!(reg_of[a], reg_of[b], "{regs:?}");
        // c (lives [3]) can reuse one of them
        assert_eq!(regs.len(), 2, "{regs:?}");
    }

    #[test]
    fn loop_carried_value_gets_a_dedicated_full_period_register() {
        let mut dfg = Dfg::new();
        let y = dfg.add_port("y", PortDirection::Output, 8);
        let acc = dfg.add_op(OpKind::Add, 8, vec![Signal::constant(1, 8)]);
        dfg.op_mut(acc).inputs = vec![Signal::carried(acc, 8, 1), Signal::constant(1, 8)];
        let w = dfg.add_op(OpKind::Write(y), 8, vec![Signal::op_w(acc, 8)]);
        let body = LinearBody::from_dfg("acc", dfg);
        let mut ops = BTreeMap::new();
        for (id, state) in [(acc, 0), (w, 1)] {
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state,
                    resource: None,
                },
            );
        }
        let desc = ScheduleDesc {
            num_states: 2,
            ii: None,
            ops,
            resources: ResourceSet::new(),
        };
        let (regs, reg_of) = bind_registers(&body, &desc);
        assert_eq!(regs.len(), 1);
        assert!(!regs[0].is_shared());
        assert_eq!(regs[0].copies, 1, "one-iteration distance at cpi=2");
        assert_eq!(reg_of[acc], Some(RegId(0)));
    }

    #[test]
    fn widths_do_not_mix_in_one_register() {
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 8);
        let y = dfg.add_port("y", PortDirection::Output, 16);
        let r = dfg.add_op(OpKind::Read(x), 8, vec![]);
        let a = dfg.add_op(
            OpKind::Add,
            8,
            vec![Signal::op_w(r, 8), Signal::constant(1, 8)],
        );
        let b = dfg.add_op(
            OpKind::Mul,
            16,
            vec![Signal::op_w(a, 8), Signal::constant(2, 8)],
        );
        let w = dfg.add_op(OpKind::Write(y), 16, vec![Signal::op_w(b, 16)]);
        let body = LinearBody::from_dfg("mixed", dfg);
        let mut ops = BTreeMap::new();
        for (id, state) in [(r, 0), (a, 0), (b, 1), (w, 2)] {
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state,
                    resource: None,
                },
            );
        }
        let desc = ScheduleDesc {
            num_states: 3,
            ii: None,
            ops,
            resources: ResourceSet::new(),
        };
        let (regs, _) = bind_registers(&body, &desc);
        // a (8 bits, live [1]) and b (16 bits, live [2]) are disjoint but
        // different widths → two registers
        assert_eq!(regs.len(), 2, "{regs:?}");
        let widths: Vec<u16> = regs.iter().map(|r| r.width).collect();
        assert!(widths.contains(&8) && widths.contains(&16));
    }
}
