//! Lowering a scheduled, bound loop body to the structural netlist IR.
//!
//! This is the step that used to live inside the string-building Verilog
//! emitter: it turns a [`LinearBody`] plus its [`ScheduleDesc`] and
//! [`BoundDesign`] into an [`hls_nir::NirModule`] — explicit cells for the
//! shared functional units, their operand steering muxes, the per-value
//! register chains and the predicated output captures. The Verilog printer
//! in `hls-netlist` is then a thin walk over that object, and `hls-sim`
//! executes it directly for differential verification.
//!
//! ## Timing model
//!
//! Iteration `k` is initiated every `cpi = cycles_per_iteration()` cycles
//! and an operation scheduled in unfolded state `s` fires for iteration `k`
//! at cycle `k * cpi + s` (exactly [`ScheduleSim`]'s model). A consumer in
//! state `ctx` reading producer `p` (state `ps`) at iteration distance `d`
//! therefore reads:
//!
//! * the producer's **combinational cell** when `d == 0 && ps == ctx`
//!   (operation chaining within one clock period);
//! * element `j = floor((ctx - ps - 1) / cpi) + d` of the producer's
//!   **register chain** otherwise. Element 0 captures the producer's value
//!   under the producer's state guard; element `j` captures element `j - 1`
//!   under the same guard, so element `j` always holds the value of `j`
//!   capture events ago — which is precisely the iteration the consumer
//!   needs. `j < 0` means the schedule asks for a value before the register
//!   has captured it ([`LowerError::AcausalRead`]).
//!
//! Register chains reset to zero, which reproduces the engines' convention
//! that loop-carried reads reaching before iteration 0 see zero.
//!
//! ## Width model
//!
//! All values are two's-complement signed at explicit widths and every
//! width change is an explicit [`CellKind::Resize`] (sign-extending, like
//! [`hls_ir::BitVal::resize`]). Notably a comparison or first-iteration
//! bit widened beyond 1 bit reads as `-1`, matching the interpreter's
//! 1-bit canonical values — the printed Verilog agrees because every net
//! is declared `signed`.
//!
//! [`ScheduleSim`]: ../hls_sim/cycle/struct.ScheduleSim.html

use crate::BoundDesign;
use hls_ir::dfg::SignalSource;
use hls_ir::{CmpKind, LinearBody, OpId, OpKind, Predicate, Signal};
use hls_netlist::ScheduleDesc;
use hls_nir::{sanitize, BinKind, Cell, CellId, CellKind, NirModule, UnKind};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// How operations map onto hardware operators in the lowered netlist.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RtlStyle {
    /// One combinational operator per operation — the pre-binding layout,
    /// kept for ablation: the resource constraints shape the schedule but
    /// the netlist instantiates no shared units.
    PerOp,
    /// One operator per allocated resource instance, with operand muxes
    /// steered by the FSM state (plus stage-valid bits and predicates for
    /// folded or predicated sharing). This reflects the area the
    /// scheduler's resource set actually implies and is the default.
    #[default]
    SharedFu,
}

/// Why a schedule/binding could not be lowered to a netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// A referenced operation has no scheduled state.
    Unscheduled {
        /// The unscheduled operation.
        op: OpId,
    },
    /// External calls have no structural lowering.
    UnsupportedCall {
        /// The call operation.
        op: OpId,
        /// The callee name.
        name: String,
    },
    /// A consumer samples a value before any register has captured it.
    AcausalRead {
        /// The producing operation.
        producer: OpId,
        /// The consumer's unfolded state.
        consumer_state: u32,
        /// The read's iteration distance.
        distance: u32,
    },
    /// A combinational dependency cycle (through same-state references or a
    /// shared unit's steering) was encountered while lowering.
    CombLoop {
        /// An operation on the cycle.
        op: OpId,
    },
    /// A chain of free (wiring-only) operations exceeded the inlining depth
    /// limit, indicating a free-operation cycle.
    FreeChainTooDeep {
        /// The operation at which the limit was hit.
        op: OpId,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Unscheduled { op } => write!(f, "operation {op:?} is not scheduled"),
            LowerError::UnsupportedCall { op, name } => {
                write!(f, "operation {op:?}: call `{name}` has no netlist lowering")
            }
            LowerError::AcausalRead {
                producer,
                consumer_state,
                distance,
            } => write!(
                f,
                "value of {producer:?} read acausally from state {consumer_state} \
                 at distance {distance}"
            ),
            LowerError::CombLoop { op } => {
                write!(f, "combinational dependency cycle through {op:?}")
            }
            LowerError::FreeChainTooDeep { op } => {
                write!(f, "free-operation chain too deep at {op:?}")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a scheduled, bound body to a structural netlist.
///
/// The produced module passes [`hls_nir::validate`] and, executed by
/// `hls-sim`'s netlist simulator, reproduces the reference interpreter's
/// write sequences bit for bit.
///
/// # Errors
///
/// See [`LowerError`]; all variants indicate an inconsistent schedule or
/// binding (the scheduler and binder never produce them).
pub fn lower(
    body: &LinearBody,
    desc: &ScheduleDesc,
    bound: &BoundDesign,
    style: RtlStyle,
) -> Result<NirModule, LowerError> {
    let mut m = NirModule::new(body.name.clone());
    m.ports = body.dfg.iter_ports().map(|(_, p)| p.clone()).collect();
    m.fold_states = desc.fold_states();
    m.num_states = desc.num_states.max(1);
    m.stages = desc.num_stages();
    let mut lw = Lowerer {
        body,
        desc,
        bound,
        style,
        cpi: desc.cycles_per_iteration(),
        stages: m.stages,
        m,
        cons: HashMap::new(),
        op_cell: HashMap::new(),
        chains: HashMap::new(),
        guards: HashMap::new(),
        fu_out: HashMap::new(),
        building: HashSet::new(),
        fu_building: HashSet::new(),
        dedicated: HashMap::new(),
        dedicated_building: HashSet::new(),
    };
    // Every scheduled, non-free computation gets a cell (dead ones are
    // removed by the rewrite engine's sweep, mirroring the old emitter
    // which printed a wire per operation).
    for id in desc.ops.keys() {
        let op = body.dfg.op(*id);
        if op.kind.is_free() || matches!(op.kind, OpKind::Write(_)) {
            continue;
        }
        lw.op_value(*id)?;
    }
    lw.emit_writes()?;
    lw.fill_chains()?;
    Ok(lw.m)
}

/// Incremental netlist builder with hash-consing of combinational cells.
struct Lowerer<'a> {
    body: &'a LinearBody,
    desc: &'a ScheduleDesc,
    bound: &'a BoundDesign,
    style: RtlStyle,
    cpi: u32,
    stages: u32,
    m: NirModule,
    /// Structural hash-consing of combinational/source cells (never `Reg`
    /// or `Output`): identical (kind, width, operands) share one cell.
    cons: HashMap<(CellKind, u16, Vec<CellId>), CellId>,
    /// The combinational value cell of each lowered operation.
    op_cell: HashMap<OpId, CellId>,
    /// Register chains per producer; element `j` is `j + 1` captures deep.
    chains: HashMap<OpId, Vec<CellId>>,
    /// Per unfolded state: the 1-bit capture enable.
    guards: HashMap<u32, CellId>,
    /// Output cell of each built functional unit, by instance index.
    fu_out: HashMap<usize, CellId>,
    building: HashSet<OpId>,
    fu_building: HashSet<usize>,
    /// Dedicated (duplicated) operator cells that break sharing-induced
    /// false combinational loops; see [`Lowerer::dedicated_value`].
    dedicated: HashMap<OpId, CellId>,
    dedicated_building: HashSet<OpId>,
}

impl Lowerer<'_> {
    fn cons(
        &mut self,
        kind: CellKind,
        width: u16,
        inputs: Vec<CellId>,
        name: Option<String>,
    ) -> CellId {
        let key = (kind.clone(), width, inputs.clone());
        if let Some(&id) = self.cons.get(&key) {
            return id;
        }
        let id = self.m.add_cell(Cell {
            kind,
            width,
            inputs,
            name,
        });
        self.cons.insert(key, id);
        id
    }

    fn resized(&mut self, id: CellId, width: u16) -> CellId {
        if self.m.cell(id).width == width {
            id
        } else {
            self.cons(CellKind::Resize, width, vec![id], None)
        }
    }

    fn state_of(&self, op: OpId) -> Result<u32, LowerError> {
        self.desc
            .ops
            .get(&op)
            .map(|s| s.state)
            .ok_or(LowerError::Unscheduled { op })
    }

    /// 1-bit conjunction; an empty part list is constant true.
    fn and_fold(&mut self, parts: &[CellId]) -> CellId {
        let Some((&first, rest)) = parts.split_first() else {
            return self.cons(CellKind::Const(1), 1, vec![], None);
        };
        let mut acc = first;
        for &p in rest {
            acc = self.cons(CellKind::Bin(BinKind::And), 1, vec![acc, p], None);
        }
        acc
    }

    /// The capture enable of unfolded state `s`: `state == s % cpi`
    /// conjoined with the stage-valid bit of `s / cpi` where applicable.
    fn guard(&mut self, s: u32) -> CellId {
        if let Some(&g) = self.guards.get(&s) {
            return g;
        }
        let mut parts = Vec::new();
        if self.cpi > 1 {
            let fsm = self.cons(CellKind::FsmState, 8, vec![], None);
            let c = self.cons(CellKind::Const(i64::from(s % self.cpi)), 8, vec![], None);
            parts.push(self.cons(
                CellKind::Bin(BinKind::Cmp(CmpKind::Eq)),
                1,
                vec![fsm, c],
                None,
            ));
        }
        if self.stages > 1 {
            parts.push(self.cons(
                CellKind::StageValid {
                    stage: s / self.cpi,
                },
                1,
                vec![],
                None,
            ));
        }
        let g = self.and_fold(&parts);
        self.guards.insert(s, g);
        g
    }

    /// Resolves a signal as sampled by a consumer in state `ctx`, with
    /// `extra_d` iteration distance accumulated through inlined free ops.
    fn resolve(&mut self, sig: &Signal, extra_d: u32, ctx: u32) -> Result<CellId, LowerError> {
        self.resolve_depth(sig, extra_d, ctx, 0)
    }

    fn resolve_depth(
        &mut self,
        sig: &Signal,
        extra_d: u32,
        ctx: u32,
        depth: u32,
    ) -> Result<CellId, LowerError> {
        match sig.source {
            SignalSource::Const(v) => Ok(self.cons(CellKind::Const(v), sig.width, vec![], None)),
            SignalSource::Op(p) => {
                let c = self.producer_ref(p, extra_d + sig.distance, ctx, depth)?;
                Ok(self.resized(c, sig.width))
            }
        }
    }

    /// A cell holding operation `p`'s value (at `p`'s width) as observed by
    /// a consumer in state `ctx` at iteration distance `d`.
    fn producer_ref(
        &mut self,
        p: OpId,
        d: u32,
        ctx: u32,
        depth: u32,
    ) -> Result<CellId, LowerError> {
        if depth > 64 {
            return Err(LowerError::FreeChainTooDeep { op: p });
        }
        let body = self.body;
        let o = body.dfg.op(p);
        if o.kind.is_free() {
            if let Some(c) = self.inline_free(p, d, ctx, depth)? {
                return Ok(c);
            }
        }
        let ps = self.state_of(p)?;
        if d == 0 && ps == ctx {
            return self.op_value(p);
        }
        let j = (i64::from(ctx) - i64::from(ps) - 1).div_euclid(i64::from(self.cpi.max(1)))
            + i64::from(d);
        if j < 0 {
            return Err(LowerError::AcausalRead {
                producer: p,
                consumer_state: ctx,
                distance: d,
            });
        }
        Ok(self.chain_cell(p, j as usize))
    }

    /// Free operations are pure wiring and inline straight through to their
    /// sources. Returns `None` only for a first-iteration anchor whose bit
    /// would lie beyond the one-hot pipe — that read falls back to the
    /// registered-chain path.
    fn inline_free(
        &mut self,
        p: OpId,
        d: u32,
        ctx: u32,
        depth: u32,
    ) -> Result<Option<CellId>, LowerError> {
        let body = self.body;
        let o = body.dfg.op(p);
        let c = match &o.kind {
            OpKind::Const(v) => self.cons(CellKind::Const(*v), o.width, vec![], None),
            OpKind::Slice { hi, lo } => {
                let inner = self.resolve_depth(&o.inputs[0], d, ctx, depth + 1)?;
                let take = hi.saturating_sub(*lo) + 1;
                let s = self.cons(
                    CellKind::Slice { hi: *hi, lo: *lo },
                    take,
                    vec![inner],
                    None,
                );
                self.resized(s, o.width)
            }
            OpKind::Resize => {
                let inner = self.resolve_depth(&o.inputs[0], d, ctx, depth + 1)?;
                self.resized(inner, o.width)
            }
            OpKind::Pass => match o.inputs.first() {
                Some(inner) => {
                    let inner = *inner;
                    let c = self.resolve_depth(&inner, d, ctx, depth + 1)?;
                    self.resized(c, o.width)
                }
                // The anchor's value is a property of the *iteration*: read
                // the one-hot bit of the stage that will be processing the
                // consumer's iteration minus `d` — `ctx/cpi + d` — when the
                // consumer samples.
                None if o.is_first_iter_anchor() => {
                    let g = ctx / self.cpi.max(1) + d;
                    if g >= self.stages {
                        return Ok(None);
                    }
                    let bit = self.cons(CellKind::FirstIter { stage: g }, 1, vec![], None);
                    self.resized(bit, o.width)
                }
                // input-less passes (neutralized ops, live-ins) read as zero
                None => self.cons(CellKind::Const(0), o.width, vec![], None),
            },
            _ => unreachable!("is_free covers Const/Pass/Slice/Resize only"),
        };
        Ok(Some(c))
    }

    /// Element `j` of `p`'s register chain, creating placeholder registers
    /// on demand; inputs are patched by [`Lowerer::fill_chains`].
    fn chain_cell(&mut self, p: OpId, j: usize) -> CellId {
        let body = self.body;
        let w = body.dfg.op(p).width.max(1);
        let base = format!(
            "v_{}_{}",
            p.index(),
            sanitize(&body.dfg.op(p).display_name())
        );
        while self.chains.get(&p).map_or(0, Vec::len) <= j {
            let k = self.chains.get(&p).map_or(0, Vec::len);
            let name = if k == 0 {
                base.clone()
            } else {
                format!("{base}_d{k}")
            };
            let reg = self.m.add_cell(Cell {
                kind: CellKind::Reg { init: 0 },
                width: w,
                inputs: Vec::new(),
                name: Some(name),
            });
            self.chains.entry(p).or_default().push(reg);
        }
        self.chains[&p][j]
    }

    /// The combinational cell computing operation `id`'s value in its own
    /// scheduled state (at the operation's width).
    fn op_value(&mut self, id: OpId) -> Result<CellId, LowerError> {
        if let Some(&c) = self.op_cell.get(&id) {
            return Ok(c);
        }
        // Sharing can induce *false* combinational loops: a unit's steered
        // port mixes arms of several states, so a state-s source may reach
        // back (through other shared units) into a unit still being built.
        // The path is never dynamically sensitized, but it is a structural
        // cycle the validator (and synthesis) would reject — break it by
        // duplicating the operator for this consumer instead.
        let on_busy_fu = self.style == RtlStyle::SharedFu
            && self.bound.fu_of[id].is_some_and(|r| self.fu_building.contains(&r.index()));
        if self.building.contains(&id) || on_busy_fu {
            return self.dedicated_value(id);
        }
        self.building.insert(id);
        let body = self.body;
        let o = body.dfg.op(id);
        let cell = if self.style == RtlStyle::SharedFu && self.bound.fu_of[id].is_some() {
            let r = self.bound.fu_of[id].expect("checked").index();
            let out = self.build_fu(r)?;
            self.resized(out, o.width)
        } else {
            let ps = self.state_of(id)?;
            let mut ins = Vec::with_capacity(o.inputs.len());
            for sig in &o.inputs {
                ins.push(self.resolve(sig, 0, ps)?);
            }
            let name = format!("w_{}_{}", id.index(), sanitize(&o.display_name()));
            self.kind_cell(id, &ins, Some(name))?
        };
        self.building.remove(&id);
        self.op_cell.insert(id, cell);
        Ok(cell)
    }

    /// A dedicated (per-op, unshared) operator cell for `id`, used to break
    /// a false combinational loop through a shared unit. The duplicate
    /// computes the same value in the op's own state — the only state in
    /// which any guarded capture or write observes it — so the substitution
    /// is exact; it costs one extra operator, the classic price of breaking
    /// a sharing-induced false path.
    fn dedicated_value(&mut self, id: OpId) -> Result<CellId, LowerError> {
        if let Some(&c) = self.dedicated.get(&id) {
            return Ok(c);
        }
        if !self.dedicated_building.insert(id) {
            // a genuine same-cycle dependency cycle, not a sharing artifact
            return Err(LowerError::CombLoop { op: id });
        }
        let body = self.body;
        let o = body.dfg.op(id);
        let ps = self.state_of(id)?;
        let mut ins = Vec::with_capacity(o.inputs.len());
        for sig in &o.inputs {
            ins.push(self.resolve(sig, 0, ps)?);
        }
        let name = format!("w_{}_{}_dup", id.index(), sanitize(&o.display_name()));
        let cell = self.kind_cell(id, &ins, Some(name))?;
        self.dedicated_building.remove(&id);
        self.dedicated.insert(id, cell);
        Ok(cell)
    }

    /// Builds the computing cell for `id`'s kind over already-resolved
    /// operand cells (one per input signal, at the signal widths); the
    /// result is at the operation's width.
    fn kind_cell(
        &mut self,
        id: OpId,
        ins: &[CellId],
        name: Option<String>,
    ) -> Result<CellId, LowerError> {
        let body = self.body;
        let o = body.dfg.op(id);
        let w = o.width.max(1);
        let bin = |b: BinKind| (b, ins.first().copied(), ins.get(1).copied());
        let cell = match &o.kind {
            OpKind::Add => self.bin_cell(bin(BinKind::Add), w, name),
            OpKind::Sub => self.bin_cell(bin(BinKind::Sub), w, name),
            OpKind::Mul => self.bin_cell(bin(BinKind::Mul), w, name),
            OpKind::Div => self.bin_cell(bin(BinKind::Div), w, name),
            OpKind::Rem => self.bin_cell(bin(BinKind::Rem), w, name),
            OpKind::And => self.bin_cell(bin(BinKind::And), w, name),
            OpKind::Or => self.bin_cell(bin(BinKind::Or), w, name),
            OpKind::Xor => self.bin_cell(bin(BinKind::Xor), w, name),
            OpKind::Shl => self.bin_cell(bin(BinKind::Shl), w, name),
            OpKind::Shr => self.bin_cell(bin(BinKind::Shr), w, name),
            OpKind::Cmp(c) => {
                let c1 = self.bin_cell(bin(BinKind::Cmp(*c)), 1, name);
                self.resized(c1, w)
            }
            OpKind::Not => self.cons(CellKind::Un(UnKind::Not), w, vec![ins[0]], name),
            OpKind::Neg => self.cons(CellKind::Un(UnKind::Neg), w, vec![ins[0]], name),
            OpKind::Mux => {
                let a = self.resized(ins[1], w);
                let b = self.resized(ins[2], w);
                self.cons(CellKind::Mux { onehot: false }, w, vec![ins[0], a, b], name)
            }
            OpKind::Slice { hi, lo } => {
                let take = hi.saturating_sub(*lo) + 1;
                let s = self.cons(
                    CellKind::Slice { hi: *hi, lo: *lo },
                    take,
                    vec![ins[0]],
                    name,
                );
                self.resized(s, w)
            }
            OpKind::Resize | OpKind::Write(_) => self.resized(ins[0], w),
            OpKind::Const(v) => self.cons(CellKind::Const(*v), w, vec![], name),
            OpKind::Read(p) => {
                let ps = self.state_of(id)?;
                let pw = body.dfg.port(*p).width.max(1);
                let i = self.cons(
                    CellKind::Input {
                        port: p.index() as u32,
                        state: ps,
                    },
                    pw,
                    vec![],
                    name,
                );
                self.resized(i, w)
            }
            OpKind::Pass => match ins.first() {
                Some(&i) => self.resized(i, w),
                None if o.is_first_iter_anchor() => {
                    let ps = self.state_of(id)?;
                    let bit = self.cons(
                        CellKind::FirstIter {
                            stage: ps / self.cpi.max(1),
                        },
                        1,
                        vec![],
                        name,
                    );
                    self.resized(bit, w)
                }
                None => self.cons(CellKind::Const(0), w, vec![], name),
            },
            OpKind::Call { name: callee, .. } => {
                return Err(LowerError::UnsupportedCall {
                    op: id,
                    name: callee.clone(),
                })
            }
        };
        Ok(cell)
    }

    fn bin_cell(
        &mut self,
        (b, lhs, rhs): (BinKind, Option<CellId>, Option<CellId>),
        w: u16,
        name: Option<String>,
    ) -> CellId {
        let lhs = lhs.expect("binary op has two inputs");
        let rhs = rhs.expect("binary op has two inputs");
        self.cons(CellKind::Bin(b), w, vec![lhs, rhs], name)
    }

    /// Builds (once) the shared unit for resource instance `r`: one steered
    /// operand mux chain per port, one kind arm per bound operation and a
    /// steered output chain. Returns the output cell (at the unit's widest
    /// operation width).
    fn build_fu(&mut self, r: usize) -> Result<CellId, LowerError> {
        if let Some(&out) = self.fu_out.get(&r) {
            return Ok(out);
        }
        let body = self.body;
        let ops = self.bound.fus[r].ops.clone();
        if !self.fu_building.insert(r) {
            return Err(LowerError::CombLoop {
                op: ops.first().map(|s| s.op).unwrap_or(OpId::from_raw(0)),
            });
        }
        let prefix = format!("fu_{}_{}", r, sanitize(&self.bound.fus[r].name));
        let nports = ops
            .iter()
            .map(|s| body.dfg.op(s.op).inputs.len())
            .max()
            .unwrap_or(0);
        let out_w = ops
            .iter()
            .map(|s| body.dfg.op(s.op).width)
            .max()
            .unwrap_or(1)
            .max(1);

        // Steering conditions, in the shared priority order (ascending
        // folded state, then op id); the last arm is the unconditional
        // default. Predicates join only where a folded slot is contended,
        // and never on the slot's last candidate — it is the fallback the
        // bound simulator's owner resolution also picks.
        let slot_count = |fs: u32| ops.iter().filter(|s| s.folded_state == fs).count();
        let last_in_slot = |fs: u32| {
            ops.iter()
                .filter(|s| s.folded_state == fs)
                .map(|s| s.op)
                .max()
        };
        let mut conds: Vec<Option<CellId>> = Vec::new();
        for (i, s) in ops.iter().enumerate() {
            if i + 1 == ops.len() {
                conds.push(None);
                continue;
            }
            let mut parts = Vec::new();
            if self.cpi > 1 {
                let fsm = self.cons(CellKind::FsmState, 8, vec![], None);
                let c = self.cons(CellKind::Const(i64::from(s.folded_state)), 8, vec![], None);
                parts.push(self.cons(
                    CellKind::Bin(BinKind::Cmp(CmpKind::Eq)),
                    1,
                    vec![fsm, c],
                    None,
                ));
            }
            if self.stages > 1 {
                parts.push(self.cons(CellKind::StageValid { stage: s.stage }, 1, vec![], None));
            }
            let pred = &body.dfg.op(s.op).predicate;
            if slot_count(s.folded_state) > 1
                && last_in_slot(s.folded_state) != Some(s.op)
                && !pred.is_true()
            {
                parts.push(self.pred_cell(pred, s.state)?);
            }
            conds.push(Some(self.and_fold(&parts)));
        }

        // Operand ports: each a priority chain over the bound operations'
        // resolved sources, resized to the port width (the widest source).
        let mut nets = Vec::with_capacity(nports);
        for q in 0..nports {
            let pw = ops
                .iter()
                .filter_map(|s| body.dfg.op(s.op).inputs.get(q).map(|g| g.width))
                .max()
                .unwrap_or(1)
                .max(1);
            let mut arms = Vec::with_capacity(ops.len());
            for s in &ops {
                let arm = match body.dfg.op(s.op).inputs.get(q) {
                    Some(sig) => {
                        let c = self.resolve(sig, 0, s.state)?;
                        self.resized(c, pw)
                    }
                    None => self.cons(CellKind::Const(0), pw, vec![], None),
                };
                arms.push(arm);
            }
            nets.push(self.priority_chain(&conds, &arms, pw, format!("{prefix}_in{q}")));
        }

        // The unit's output: the steered operation kind over the port nets.
        // Each arm carries its operation's display name (first name sticks
        // when sharing collapses the arms onto one consed cell), so source
        // variable names survive into the netlist even for unshared units.
        let mut arms = Vec::with_capacity(ops.len());
        for s in &ops {
            let widths: Vec<u16> = body.dfg.op(s.op).inputs.iter().map(|g| g.width).collect();
            let ins: Vec<CellId> = widths
                .iter()
                .enumerate()
                .map(|(q, &gw)| self.resized(nets[q], gw))
                .collect();
            let name = format!(
                "w_{}_{}",
                s.op.index(),
                sanitize(&body.dfg.op(s.op).display_name())
            );
            let cell = self.kind_cell(s.op, &ins, Some(name))?;
            arms.push(self.resized(cell, out_w));
        }
        let out = self.priority_chain(&conds, &arms, out_w, prefix);
        self.fu_building.remove(&r);
        self.fu_out.insert(r, out);
        Ok(out)
    }

    /// Right-associated mux priority chain; the last arm is the
    /// unconditional default, and the head mux carries the display name.
    /// The muxes are marked `onehot` for the rebalancing rewrite.
    fn priority_chain(
        &mut self,
        conds: &[Option<CellId>],
        arms: &[CellId],
        w: u16,
        name: String,
    ) -> CellId {
        let mut acc = *arms.last().expect("at least one bound operation");
        if arms.len() == 1 {
            // Degenerate chain (unshared unit): no mux to carry the display
            // name, so attach it to the arm itself when still unnamed.
            if self.m.cell(acc).name.is_none() {
                self.m.cells[acc.index()].name = Some(name);
            }
            return acc;
        }
        for i in (0..arms.len() - 1).rev() {
            let c = conds[i].expect("non-last arms carry a steering condition");
            let head = if i == 0 { Some(name.clone()) } else { None };
            acc = self.cons(
                CellKind::Mux { onehot: true },
                w,
                vec![c, arms[i], acc],
                head,
            );
        }
        acc
    }

    /// A 1-bit cell evaluating a predicate as sampled in state `ctx`.
    fn pred_cell(&mut self, p: &Predicate, ctx: u32) -> Result<CellId, LowerError> {
        match p {
            Predicate::True => Ok(self.cons(CellKind::Const(1), 1, vec![], None)),
            Predicate::Cond(c) => self.cond_bit(*c, ctx),
            Predicate::NotCond(c) => {
                let b = self.cond_bit(*c, ctx)?;
                Ok(self.cons(CellKind::Un(UnKind::Not), 1, vec![b], None))
            }
            Predicate::And(ps) => {
                let mut parts = Vec::with_capacity(ps.len());
                for q in ps {
                    parts.push(self.pred_cell(q, ctx)?);
                }
                Ok(self.and_fold(&parts))
            }
        }
    }

    /// The truth bit of a condition operation: the value itself when 1 bit
    /// wide, a non-zero test otherwise (`is_true` semantics).
    fn cond_bit(&mut self, c: OpId, ctx: u32) -> Result<CellId, LowerError> {
        let v = self.producer_ref(c, 0, ctx, 0)?;
        let w = self.m.cell(v).width;
        if w == 1 {
            return Ok(v);
        }
        let z = self.cons(CellKind::Const(0), w, vec![], None);
        Ok(self.cons(
            CellKind::Bin(BinKind::Cmp(CmpKind::Ne)),
            1,
            vec![v, z],
            None,
        ))
    }

    /// One `Output` cell per scheduled write, enabled by the write state's
    /// guard conjoined with the write's predicate.
    fn emit_writes(&mut self) -> Result<(), LowerError> {
        let body = self.body;
        for (id, so) in &self.desc.ops {
            let o = body.dfg.op(*id);
            let OpKind::Write(pid) = o.kind else { continue };
            let ws = so.state;
            let c = self.resolve(&o.inputs[0], 0, ws)?;
            let v = self.resized(c, o.width.max(1));
            let pw = body.dfg.port(pid).width.max(1);
            let v = self.resized(v, pw);
            let mut en = self.guard(ws);
            if !o.predicate.is_true() {
                let pc = self.pred_cell(&o.predicate, ws)?;
                en = self.and_fold(&[en, pc]);
            }
            self.m.add_cell(Cell {
                kind: CellKind::Output {
                    port: pid.index() as u32,
                    state: ws,
                },
                width: pw,
                inputs: vec![v, en],
                name: None,
            });
        }
        Ok(())
    }

    /// Patches every chain register's inputs: element 0 captures the
    /// producer's combinational value under the producer's state guard,
    /// element `k` captures element `k - 1` under the same guard.
    fn fill_chains(&mut self) -> Result<(), LowerError> {
        // Building a producer's value can create further chains (and grow
        // existing ones); iterate until every chained producer has a value.
        let mut done: HashSet<OpId> = HashSet::new();
        loop {
            let mut todo: Vec<OpId> = self
                .chains
                .keys()
                .copied()
                .filter(|p| !done.contains(p))
                .collect();
            if todo.is_empty() {
                break;
            }
            todo.sort();
            for p in todo {
                self.op_value(p)?;
                done.insert(p);
            }
        }
        let mut keys: Vec<OpId> = self.chains.keys().copied().collect();
        keys.sort();
        for p in keys {
            let ps = self.state_of(p)?;
            let en = self.guard(ps);
            let value = self.op_value(p)?;
            let chain = self.chains[&p].clone();
            let w = self.m.cell(chain[0]).width;
            let head = self.resized(value, w);
            for (k, reg) in chain.iter().enumerate() {
                let d = if k == 0 { head } else { chain[k - 1] };
                self.m.cells[reg.index()].inputs = vec![d, en];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind;
    use hls_ir::{Dfg, PortDirection};
    use hls_netlist::ScheduledOp;
    use hls_nir::validate;
    use hls_tech::{ResourceClass, ResourceSet, ResourceType};
    use std::collections::BTreeMap;

    /// read x -> mul by 3 (on a multiplier) -> write y, over two states.
    fn demo() -> (LinearBody, ScheduleDesc) {
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 16);
        let y = dfg.add_port("pixel out", PortDirection::Output, 16);
        let r = dfg.add_op(OpKind::Read(x), 16, vec![]);
        let m = dfg.add_op(
            OpKind::Mul,
            16,
            vec![Signal::op_w(r, 16), Signal::constant(3, 16)],
        );
        let w = dfg.add_op(OpKind::Write(y), 16, vec![Signal::op_w(m, 16)]);
        let body = LinearBody::from_dfg("demo loop", dfg);
        let mut resources = ResourceSet::new();
        let mul = resources.add(ResourceType::binary(ResourceClass::Multiplier, 16, 16, 16));
        let mut ops = BTreeMap::new();
        for (id, state, res) in [(r, 0, None), (m, 0, Some(mul)), (w, 1, None)] {
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state,
                    resource: res,
                },
            );
        }
        (
            body,
            ScheduleDesc {
                num_states: 2,
                ii: None,
                ops,
                resources,
            },
        )
    }

    #[test]
    fn lowers_a_tiny_schedule_to_a_valid_netlist() {
        let (body, desc) = demo();
        let bound = bind(&body, &desc).expect("bindable");
        for style in [RtlStyle::SharedFu, RtlStyle::PerOp] {
            let m = lower(&body, &desc, &bound, style).expect("lowerable");
            validate(&m).expect("valid netlist");
            assert_eq!(m.ports.len(), 2);
            assert_eq!(m.fold_states, 2);
            let stats = m.stats();
            assert_eq!(stats.count_bin(BinKind::Mul), 1, "one multiplier cell");
            assert_eq!(stats.outputs(), 1);
            // the write (state 1) reads the mul (state 0) through one
            // chain register
            assert!(stats.regs >= 1);
        }
    }

    #[test]
    fn shared_unit_names_land_in_the_netlist() {
        let (body, desc) = demo();
        let bound = bind(&body, &desc).expect("bindable");
        let m = lower(&body, &desc, &bound, RtlStyle::SharedFu).expect("lowerable");
        let names: Vec<&str> = m.cells.iter().filter_map(|c| c.name.as_deref()).collect();
        assert!(
            names.iter().any(|n| n.starts_with("v_")),
            "chain registers are named: {names:?}"
        );
    }

    #[test]
    fn acausal_reads_are_rejected() {
        let (body, mut desc) = demo();
        let bound = bind(&body, &desc).expect("bindable");
        // sabotage: move the write before the multiplication feeding it
        // (same-state sampling would be legal chaining, so push the
        // producer strictly later)
        let write = body
            .dfg
            .iter_ops()
            .find(|(_, op)| matches!(op.kind, OpKind::Write(_)))
            .map(|(id, _)| id)
            .unwrap();
        let mul = body
            .dfg
            .iter_ops()
            .find(|(_, op)| matches!(op.kind, OpKind::Mul))
            .map(|(id, _)| id)
            .unwrap();
        desc.ops.get_mut(&write).unwrap().state = 0;
        desc.ops.get_mut(&mul).unwrap().state = 1;
        let err = lower(&body, &desc, &bound, RtlStyle::PerOp).unwrap_err();
        assert!(matches!(err, LowerError::AcausalRead { .. }), "{err}");
    }

    #[test]
    fn unscheduled_references_are_rejected() {
        let (body, mut desc) = demo();
        let bound = bind(&body, &desc).expect("bindable");
        let read = body
            .dfg
            .iter_ops()
            .find(|(_, op)| matches!(op.kind, OpKind::Read(_)))
            .map(|(id, _)| id)
            .unwrap();
        desc.ops.remove(&read);
        let err = lower(&body, &desc, &bound, RtlStyle::PerOp).unwrap_err();
        assert!(matches!(err, LowerError::Unscheduled { .. }), "{err}");
    }
}
