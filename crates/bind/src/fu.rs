//! Functional-unit binding: grouping the scheduler's per-operation instance
//! assignments into shared units with a validated steering order.

use crate::error::BindError;
use hls_ir::{LinearBody, OpId};
use hls_netlist::ScheduleDesc;
use hls_tech::{Interner, ResourceClassId, ResourceInstanceId, ResourceTypeId};

/// One operation executing on a shared functional unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuSlotOp {
    /// The operation.
    pub op: OpId,
    /// Its (unfolded) control step.
    pub state: u32,
    /// Its folded control step — the FSM state that steers the unit's
    /// operand muxes towards this operation.
    pub folded_state: u32,
    /// Its pipeline stage (`state / II`; 0 when sequential).
    pub stage: u32,
}

/// A shared functional unit: one allocated resource instance plus every
/// operation the scheduler bound onto it.
#[derive(Clone, Debug)]
pub struct BoundFu {
    /// The backing resource instance.
    pub instance: ResourceInstanceId,
    /// Interned class of the instance's type.
    pub class: ResourceClassId,
    /// Interned type of the instance.
    pub ty: ResourceTypeId,
    /// Instance name (`mul1`, `add2`, ... as in the paper's tables).
    pub name: String,
    /// The operations executing on the unit, in **steering-priority order**:
    /// ascending `(folded_state, op)`. This order is shared verbatim by the
    /// RTL operand-mux priority chain and the bound simulator's owner
    /// resolution — the last entry is the chain's unconditional default arm.
    pub ops: Vec<FuSlotOp>,
}

impl BoundFu {
    /// Whether more than one operation shares the unit.
    pub fn is_shared(&self) -> bool {
        self.ops.len() > 1
    }

    /// The operations steered onto the unit in the given folded control
    /// step, in priority order. More than one candidate means the slot is
    /// discriminated by (mutually exclusive) predicates.
    pub fn candidates(&self, folded_state: u32) -> impl Iterator<Item = &FuSlotOp> {
        self.ops
            .iter()
            .filter(move |s| s.folded_state == folded_state)
    }
}

/// Groups the schedule's instance assignments into [`BoundFu`]s, validating
/// that every sharing decision is realizable as steered hardware:
///
/// * the instance's type can implement the operation;
/// * two operations occupying the same folded slot execute in the **same**
///   control step (a folded pipeline evaluates every stage's predicate for a
///   *different* iteration, so cross-stage "mutual exclusion" would not hold
///   in hardware) under mutually exclusive predicates;
/// * every predicate discriminating a shared slot has its condition
///   operations scheduled no later than the slot's step, so the operand mux
///   select is a computed value.
pub(crate) fn bind_fus(
    body: &LinearBody,
    desc: &ScheduleDesc,
    interner: &mut Interner,
) -> Result<Vec<BoundFu>, BindError> {
    let ii = desc.cycles_per_iteration().max(1);
    let fold = desc.fold_states().max(1);
    let mut fus: Vec<BoundFu> = desc
        .resources
        .iter()
        .map(|inst| BoundFu {
            instance: inst.id,
            class: interner.class_id(&inst.ty.class),
            ty: interner.type_id(&inst.ty),
            name: inst.name.clone(),
            ops: Vec::new(),
        })
        .collect();

    // deterministic: desc.ops iterates in ascending op id
    for (id, s) in &desc.ops {
        let Some(r) = s.resource else { continue };
        let op = body.dfg.op(*id);
        let inst = desc.resources.instance(r);
        if !inst.ty.can_implement(op) {
            return Err(BindError::IncompatibleBinding {
                op: *id,
                instance: r,
            });
        }
        fus[r.index()].ops.push(FuSlotOp {
            op: *id,
            state: s.state,
            folded_state: s.state % fold,
            stage: s.state / ii,
        });
    }

    for fu in &mut fus {
        fu.ops.sort_by_key(|s| (s.folded_state, s.op));
        // validate every shared folded slot (pairwise: mutual exclusion is
        // not transitive)
        let mut i = 0;
        while i < fu.ops.len() {
            let slot = fu.ops[i].folded_state;
            let mut j = i;
            while j < fu.ops.len() && fu.ops[j].folded_state == slot {
                j += 1;
            }
            if j - i > 1 {
                for (k, a) in fu.ops[i..j].iter().enumerate() {
                    for b in &fu.ops[i + k + 1..j] {
                        let pa = &body.dfg.op(a.op).predicate;
                        let pb = &body.dfg.op(b.op).predicate;
                        if a.state != b.state || !pa.mutually_exclusive(pb) {
                            return Err(BindError::SlotConflict {
                                a: a.op,
                                b: b.op,
                                instance: fu.instance,
                                folded_state: slot,
                            });
                        }
                    }
                }
                // steering conditions must be available in time
                for s in &fu.ops[i..j] {
                    for cond in body.dfg.op(s.op).predicate.condition_ops() {
                        let cond_state = desc
                            .ops
                            .get(&cond)
                            .map(|c| c.state)
                            .ok_or(BindError::Unscheduled { op: cond })?;
                        if cond_state > s.state {
                            return Err(BindError::UnsteerableSlot {
                                op: s.op,
                                condition: cond,
                                instance: fu.instance,
                                state: s.state,
                            });
                        }
                    }
                }
            }
            i = j;
        }
    }
    Ok(fus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{Dfg, OpKind, PortDirection, Predicate, Signal};
    use hls_netlist::ScheduledOp;
    use hls_tech::{ResourceClass, ResourceSet, ResourceType};
    use std::collections::BTreeMap;

    fn two_muls_on_one_fu(
        states: (u32, u32),
        ii: Option<u32>,
        preds: Option<(Predicate, Predicate)>,
    ) -> (LinearBody, ScheduleDesc) {
        let mut dfg = Dfg::new();
        let x = dfg.add_port("x", PortDirection::Input, 16);
        let y = dfg.add_port("y", PortDirection::Output, 16);
        let r = dfg.add_op(OpKind::Read(x), 16, vec![]);
        let c = dfg.add_op(
            OpKind::Cmp(hls_ir::CmpKind::Gt),
            1,
            vec![Signal::op_w(r, 16), Signal::constant(0, 16)],
        );
        let m1 = dfg.add_op(
            OpKind::Mul,
            16,
            vec![Signal::op_w(r, 16), Signal::constant(3, 16)],
        );
        let m2 = dfg.add_op(
            OpKind::Mul,
            16,
            vec![Signal::op_w(r, 16), Signal::constant(5, 16)],
        );
        if let Some((p1, p2)) = preds {
            dfg.op_mut(m1).predicate = p1;
            dfg.op_mut(m2).predicate = p2;
        }
        let w = dfg.add_op(OpKind::Write(y), 16, vec![Signal::op_w(m1, 16)]);
        let body = LinearBody::from_dfg("twomul", dfg);
        let mut resources = ResourceSet::new();
        let mul = resources.add(ResourceType::binary(ResourceClass::Multiplier, 16, 16, 16));
        let mut ops = BTreeMap::new();
        for (id, state, res) in [
            (r, 0, None),
            (c, 0, None),
            (m1, states.0, Some(mul)),
            (m2, states.1, Some(mul)),
            (w, 3, None),
        ] {
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state,
                    resource: res,
                },
            );
        }
        (
            body,
            ScheduleDesc {
                num_states: 4,
                ii,
                ops,
                resources,
            },
        )
    }

    #[test]
    fn disjoint_states_share_one_unit() {
        let (body, desc) = two_muls_on_one_fu((1, 2), None, None);
        let mut interner = Interner::new();
        let fus = bind_fus(&body, &desc, &mut interner).expect("bindable");
        assert_eq!(fus.len(), 1);
        assert!(fus[0].is_shared());
        assert_eq!(fus[0].ops.len(), 2);
        assert_eq!(fus[0].candidates(1).count(), 1);
        assert_eq!(interner.class(fus[0].class), &ResourceClass::Multiplier);
    }

    #[test]
    fn same_state_without_exclusive_predicates_conflicts() {
        let (body, desc) = two_muls_on_one_fu((1, 1), None, None);
        let mut interner = Interner::new();
        let err = bind_fus(&body, &desc, &mut interner).unwrap_err();
        assert!(matches!(err, BindError::SlotConflict { .. }), "{err}");
    }

    #[test]
    fn same_state_with_exclusive_predicates_is_steerable() {
        let cond = OpId::from_raw(1);
        let (body, desc) = two_muls_on_one_fu(
            (1, 1),
            None,
            Some((Predicate::Cond(cond), Predicate::NotCond(cond))),
        );
        let mut interner = Interner::new();
        let fus = bind_fus(&body, &desc, &mut interner).expect("steerable");
        assert_eq!(fus[0].candidates(1).count(), 2);
    }

    #[test]
    fn cross_stage_predicate_sharing_is_rejected() {
        // II=2: states 1 and 3 fold onto the same slot but belong to
        // different stages — their predicates guard *different iterations*,
        // so mutual exclusion does not make the sharing steerable.
        let cond = OpId::from_raw(1);
        let (body, desc) = two_muls_on_one_fu(
            (1, 3),
            Some(2),
            Some((Predicate::Cond(cond), Predicate::NotCond(cond))),
        );
        let mut interner = Interner::new();
        let err = bind_fus(&body, &desc, &mut interner).unwrap_err();
        assert!(matches!(err, BindError::SlotConflict { .. }), "{err}");
    }

    #[test]
    fn late_steering_condition_is_rejected() {
        // the discriminating condition lands *after* the shared slot
        let cond = OpId::from_raw(1);
        let (body, mut desc) = two_muls_on_one_fu(
            (1, 1),
            None,
            Some((Predicate::Cond(cond), Predicate::NotCond(cond))),
        );
        desc.ops.get_mut(&cond).unwrap().state = 2;
        let mut interner = Interner::new();
        let err = bind_fus(&body, &desc, &mut interner).unwrap_err();
        assert!(matches!(err, BindError::UnsteerableSlot { .. }), "{err}");
    }
}
