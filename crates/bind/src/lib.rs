//! # hls-bind — the binding subsystem: schedules onto shared hardware
//!
//! The scheduler of the paper performs *simultaneous scheduling and binding*:
//! it assigns every operation both a control step and a resource instance.
//! This crate turns that per-operation assignment into a first-class
//! description of the shared datapath — the missing box between the
//! scheduler and the output generator of the paper's Figure 2 flow:
//!
//! * **functional-unit binding** ([`BoundFu`]) — the operations sharing each
//!   allocated instance, validated as *steerable* hardware (same-step
//!   sharing only under mutually exclusive predicates whose conditions are
//!   computed in time; never across pipeline stages, where per-iteration
//!   predicates cannot discriminate);
//! * **register binding** ([`BoundRegister`]) — lifetime analysis over the
//!   folded schedule period assigns values with disjoint cyclic live ranges
//!   to shared physical registers (left-edge allocation), with dedicated
//!   register chains for values crossing stages or iterations;
//! * **input-mux derivation** ([`InputMux`]) — per FU port, the distinct
//!   sources the FSM steers onto it, which is what the sharing muxes of the
//!   emitted RTL implement and what the area model charges.
//!
//! Everything is expressed over **interned ids** ([`hls_tech::Interner`],
//! [`ResourceClassId`] / [`ResourceTypeId`], dense [`RegId`]s and
//! [`hls_ir::DenseOpMap`]): the `BoundDesign` owns the interner that gives
//! its ids meaning, and every per-op table is a flat vector indexed by
//! `OpId`.
//!
//! The bound design is executable: `hls-sim` replays it cycle by cycle with
//! one value per functional unit per cycle (operand steering included), so
//! differential verification proves the sharing correct by execution rather
//! than by construction.
//!
//! [`ResourceClassId`]: hls_tech::ResourceClassId
//! [`ResourceTypeId`]: hls_tech::ResourceTypeId

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fu;
pub mod lower;
pub mod mux;
pub mod regs;

pub use error::BindError;
pub use fu::{BoundFu, FuSlotOp};
pub use lower::{lower, LowerError, RtlStyle};
pub use mux::InputMux;
pub use regs::{BoundRegister, RegId};

use hls_ir::{DenseOpMap, LinearBody, OpId};
use hls_netlist::ScheduleDesc;
use hls_tech::{Interner, ResourceInstanceId};

/// Binding statistics: the concrete hardware a schedule costs, as counted
/// from the bound design (not estimated). These are the area proxies the
/// exploration drivers trade against latency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BindStats {
    /// Functional units with at least one operation bound.
    pub fu_count: usize,
    /// Instances the scheduler allocated (`fu_count` never exceeds this).
    pub allocated_fus: usize,
    /// Functional units shared by more than one operation.
    pub shared_fu_count: usize,
    /// Operations bound onto functional units.
    pub bound_ops: usize,
    /// Physical datapath registers (register chains count once).
    pub register_count: usize,
    /// Total storage bits over all datapath registers and their copies.
    pub register_bits: u64,
    /// Values that obtained a register.
    pub registered_values: usize,
    /// Physical input muxes (ports steered between ≥ 2 distinct sources).
    pub mux_count: usize,
    /// Total data inputs over all physical muxes.
    pub mux_inputs: usize,
}

/// The bound design: the canonical description of the shared datapath a
/// schedule implies, expressed over interned ids.
///
/// ## Data layout
///
/// * `fus[i]` describes resource instance `ResourceInstanceId(i)` — the
///   vector is indexed by the instance id, including allocated-but-unused
///   instances (empty `ops`);
/// * `fu_of` / `reg_of` are dense per-operation maps (`OpId`-indexed flat
///   vectors);
/// * `registers[r]` is `RegId(r)`;
/// * `interner` resolves every [`ResourceClassId`] / `ResourceTypeId`
///   carried by the units; ids are meaningful only relative to it.
#[derive(Clone, Debug)]
pub struct BoundDesign {
    /// Interner resolving the class/type ids carried by the units.
    pub interner: Interner,
    /// One entry per allocated resource instance, indexed by
    /// [`ResourceInstanceId`].
    pub fus: Vec<BoundFu>,
    /// The functional unit of each operation (`None` for free and I/O
    /// operations).
    pub fu_of: DenseOpMap<Option<ResourceInstanceId>>,
    /// The input muxes of the shared units (including degenerate
    /// single-source "muxes"; see [`InputMux::is_real`]).
    pub muxes: Vec<InputMux>,
    /// The physical registers, indexed by [`RegId`].
    pub registers: Vec<BoundRegister>,
    /// The register holding each operation's value (`None` for values
    /// consumed purely combinationally).
    pub reg_of: DenseOpMap<Option<RegId>>,
    /// Counted hardware statistics.
    pub stats: BindStats,
}

impl BoundDesign {
    /// The unit an operation executes on.
    pub fn fu_of(&self, op: OpId) -> Option<&BoundFu> {
        self.fu_of[op].map(|r| &self.fus[r.index()])
    }

    /// Functional-unit count per interned class, indexed by
    /// [`ResourceClassId`] (only units with bound operations count).
    pub fn fu_count_per_class(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.interner.num_classes()];
        for fu in &self.fus {
            if !fu.ops.is_empty() {
                counts[fu.class.index()] += 1;
            }
        }
        counts
    }

    /// Steering fan-in of every functional unit, indexed by
    /// [`ResourceInstanceId`]: how many operations the FSM steers onto the
    /// instance — the `n` of the paper's `mux_n` sharing-delay model, and
    /// the fan-in the static timing analyzer charges on the unit's operand
    /// trees. 0 for allocated-but-unused instances, 1 for unshared units.
    pub fn steering_fanins(&self) -> Vec<usize> {
        self.fus.iter().map(|f| f.ops.len()).collect()
    }

    /// The widest *physical* operand-mux fan-in of every unit, indexed by
    /// [`ResourceInstanceId`]: distinct structural sources steered onto any
    /// one port (1 when no port needs a mux). Never exceeds the unit's
    /// steering fan-in.
    pub fn port_fanins(&self) -> Vec<usize> {
        let mut fanins = vec![1usize; self.fus.len()];
        for m in &self.muxes {
            let slot = &mut fanins[m.fu.index()];
            *slot = (*slot).max(m.sources.len().max(1));
        }
        fanins
    }

    /// The largest sharing-mux fan-in anywhere in the design (0 when no
    /// operation is bound) — the figure the fan-in lint compares against its
    /// configured bound.
    pub fn max_steering_fanin(&self) -> usize {
        self.steering_fanins().into_iter().max().unwrap_or(0)
    }

    /// One-line summary (`3 FUs (1 shared), 4 regs (40 bits), 2 muxes (6 inputs)`).
    pub fn summary(&self) -> String {
        format!(
            "{} FUs ({} shared), {} regs ({} bits), {} muxes ({} inputs)",
            self.stats.fu_count,
            self.stats.shared_fu_count,
            self.stats.register_count,
            self.stats.register_bits,
            self.stats.mux_count,
            self.stats.mux_inputs
        )
    }
}

/// Binds a schedule: functional units (honoring the scheduler's instance
/// assignments and fold-state reservations), registers (lifetime analysis)
/// and input muxes.
///
/// # Errors
///
/// Returns a [`BindError`] when the schedule cannot be realized as steered
/// shared hardware — an incompatible or conflicting instance assignment, or
/// sharing whose discriminating predicate is not available in time.
pub fn bind(body: &LinearBody, desc: &ScheduleDesc) -> Result<BoundDesign, BindError> {
    let mut interner = Interner::new();
    let fus = fu::bind_fus(body, desc, &mut interner)?;
    let mut fu_of: DenseOpMap<Option<ResourceInstanceId>> = DenseOpMap::new(body.dfg.num_ops());
    for fu in &fus {
        for s in &fu.ops {
            fu_of[s.op] = Some(fu.instance);
        }
    }
    let muxes = mux::derive_muxes(body, &fus);
    let (registers, reg_of) = regs::bind_registers(body, desc);

    let stats = BindStats {
        fu_count: fus.iter().filter(|f| !f.ops.is_empty()).count(),
        allocated_fus: fus.len(),
        shared_fu_count: fus.iter().filter(|f| f.is_shared()).count(),
        bound_ops: fus.iter().map(|f| f.ops.len()).sum(),
        register_count: registers.len(),
        register_bits: registers.iter().map(BoundRegister::bits).sum(),
        registered_values: registers.iter().map(|r| r.values.len()).sum(),
        mux_count: muxes.iter().filter(|m| m.is_real()).count(),
        mux_inputs: muxes
            .iter()
            .filter(|m| m.is_real())
            .map(|m| m.sources.len())
            .sum(),
    };
    Ok(BoundDesign {
        interner,
        fus,
        fu_of,
        muxes,
        registers,
        reg_of,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;
    use hls_sched::{Scheduler, SchedulerConfig};
    use hls_tech::{ClockConstraint, ResourceClass, TechLibrary};

    fn example1() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    fn schedule(body: &LinearBody, config: SchedulerConfig) -> ScheduleDesc {
        let lib = TechLibrary::artisan_90nm_typical();
        Scheduler::new(body, &lib, config)
            .run()
            .expect("schedulable")
            .desc
    }

    fn clk() -> ClockConstraint {
        ClockConstraint::from_period_ps(1600.0)
    }

    #[test]
    fn example1_sequential_shares_one_multiplier_across_three_steps() {
        let body = example1();
        let desc = schedule(&body, SchedulerConfig::sequential(clk(), 1, 3));
        let bound = bind(&body, &desc).expect("bindable");
        // Table 2: one multiplier runs all three multiplications
        let mul_fus: Vec<&BoundFu> = bound
            .fus
            .iter()
            .filter(|f| bound.interner.class(f.class) == &ResourceClass::Multiplier)
            .collect();
        assert_eq!(mul_fus.len(), 1);
        assert_eq!(mul_fus[0].ops.len(), 3, "{:?}", mul_fus[0]);
        assert!(mul_fus[0].is_shared());
        // the shared multiplier needs real operand muxes
        let mul_muxes: Vec<&InputMux> = bound
            .muxes
            .iter()
            .filter(|m| m.fu == mul_fus[0].instance && m.is_real())
            .collect();
        assert!(!mul_muxes.is_empty());
        // binding never invents hardware
        assert!(bound.stats.fu_count <= desc.resources.len());
        assert!(bound.stats.register_count > 0);
        assert!(bound.summary().contains("FUs"));
    }

    #[test]
    fn example1_pipelined_ii1_needs_no_multiplier_sharing() {
        let body = example1();
        let desc = schedule(&body, SchedulerConfig::pipelined(clk(), 1, 6));
        let bound = bind(&body, &desc).expect("bindable");
        // II=1 allocates one multiplier per multiplication: no shared muls
        for fu in &bound.fus {
            if bound.interner.class(fu.class) == &ResourceClass::Multiplier {
                assert!(fu.ops.len() <= 1, "{fu:?}");
            }
        }
        assert_eq!(bound.stats.fu_count, bound.stats.bound_ops);
    }

    #[test]
    fn steering_fanins_expose_the_sharing_structure() {
        let body = example1();
        let desc = schedule(&body, SchedulerConfig::sequential(clk(), 1, 3));
        let bound = bind(&body, &desc).expect("bindable");
        let fanins = bound.steering_fanins();
        assert_eq!(fanins.len(), bound.fus.len());
        // Table 2: the multiplier runs three multiplications
        let mul_fanin = bound
            .fus
            .iter()
            .zip(&fanins)
            .filter(|(f, _)| bound.interner.class(f.class) == &ResourceClass::Multiplier)
            .map(|(_, &n)| n)
            .max()
            .unwrap();
        assert_eq!(mul_fanin, 3);
        assert_eq!(
            bound.max_steering_fanin(),
            fanins.iter().copied().max().unwrap()
        );
        // physical port fan-in never exceeds steering fan-in
        let ports = bound.port_fanins();
        for (i, &p) in ports.iter().enumerate() {
            assert!(
                p <= fanins[i].max(1),
                "port fan-in {p} > steering {}",
                fanins[i]
            );
        }
    }

    #[test]
    fn fu_count_per_class_matches_resources() {
        let body = example1();
        let desc = schedule(&body, SchedulerConfig::pipelined(clk(), 2, 6));
        let bound = bind(&body, &desc).expect("bindable");
        let per_class = bound.fu_count_per_class();
        let total: usize = per_class.iter().sum();
        assert_eq!(total, bound.stats.fu_count);
        assert!(bound.stats.fu_count <= desc.resources.len());
    }

    #[test]
    fn every_bound_op_maps_back_to_its_unit() {
        let body = example1();
        let desc = schedule(&body, SchedulerConfig::sequential(clk(), 1, 3));
        let bound = bind(&body, &desc).expect("bindable");
        for (id, s) in &desc.ops {
            assert_eq!(bound.fu_of[*id], s.resource);
            if s.resource.is_some() {
                let fu = bound.fu_of(*id).expect("bound");
                assert!(fu.ops.iter().any(|o| o.op == *id));
            }
        }
    }
}
