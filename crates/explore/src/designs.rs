//! Synthetic design generation.
//!
//! The paper's Figure 9 profiles about 40 industrial designs (filters, FFTs,
//! image processing) between 100 and over 6000 operations. Those designs are
//! proprietary, so this module generates synthetic loop bodies with the same
//! structural characteristics: layered arithmetic data flow, a configurable
//! multiplier density, I/O at the boundaries, predicated regions, and
//! loop-carried accumulators that create the SCCs pipelining must respect.
//!
//! [`idct8_design`] builds a genuine 8-point inverse DCT (even/odd
//! decomposition) processing one row per loop iteration — the same algorithm
//! class as the paper's video-decoding IDCT of Figures 10/11.

use hls_ir::{CmpKind, Dfg, LinearBody, OpKind, PortDirection, Signal};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The flavour of synthetic design to generate, mirroring the application
/// classes the paper lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DesignClass {
    /// Multiply-accumulate dominated (FIR/IIR filters).
    Filter,
    /// Butterfly-structured (FFT-like): adds/subs with twiddle multiplies.
    Fft,
    /// Image kernel: window arithmetic with predicated clamping.
    ImageKernel,
}

impl DesignClass {
    /// All classes, used to round-robin design generation.
    pub fn all() -> [DesignClass; 3] {
        [
            DesignClass::Filter,
            DesignClass::Fft,
            DesignClass::ImageKernel,
        ]
    }
}

/// Above this op count [`synthetic_design`] splits the body into several
/// independent kernels, the way large industrial designs aggregate many
/// loosely coupled filter/transform blocks. Each kernel has its own I/O and
/// no data edges to the others, so region decomposition can schedule them
/// concurrently.
const MULTI_KERNEL_THRESHOLD: usize = 2400;

/// Rough op count of one kernel in a multi-kernel design.
const KERNEL_OPS: usize = 600;

/// Generates a synthetic loop body with roughly `target_ops` operations.
///
/// The generator is deterministic for a given `(class, target_ops, seed)`
/// triple. Above [`MULTI_KERNEL_THRESHOLD`] ops the body is a union of
/// independent ~[`KERNEL_OPS`]-op kernels (ports prefixed `k{j}_`); at or
/// below it, a single kernel identical to what earlier versions generated.
pub fn synthetic_design(class: DesignClass, target_ops: usize, seed: u64) -> LinearBody {
    let mut dfg = Dfg::new();
    if target_ops > MULTI_KERNEL_THRESHOLD {
        let kernels = target_ops.div_ceil(KERNEL_OPS);
        let per = target_ops / kernels;
        for j in 0..kernels {
            let mut rng = SmallRng::seed_from_u64(
                seed ^ ((per as u64) << 8) ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            grow_kernel(&mut dfg, &mut rng, class, per, &format!("k{j}_"));
        }
    } else {
        let mut rng = SmallRng::seed_from_u64(seed ^ (target_ops as u64) << 8);
        grow_kernel(&mut dfg, &mut rng, class, target_ops, "");
    }
    let mut body = LinearBody::from_dfg(format!("{class:?}_{target_ops}"), dfg);
    body.source_states = 1;
    body
}

/// Grows one kernel of roughly `target_ops` operations into `dfg`, with its
/// ports prefixed by `prefix`.
fn grow_kernel(
    dfg: &mut Dfg,
    rng: &mut SmallRng,
    class: DesignClass,
    target_ops: usize,
    prefix: &str,
) {
    let width: u16 = 16;
    let base_ops = dfg.num_ops();

    let n_inputs = (target_ops / 24).clamp(2, 32);
    let in_ports: Vec<_> = (0..n_inputs)
        .map(|i| dfg.add_port(format!("{prefix}in{i}"), PortDirection::Input, width))
        .collect();
    let out_port = dfg.add_port(format!("{prefix}out"), PortDirection::Output, 2 * width);

    // layer 0: port reads
    let mut frontier: Vec<Signal> = in_ports
        .iter()
        .map(|&p| Signal::op_w(dfg.add_op(OpKind::Read(p), width, vec![]), width))
        .collect();

    let mul_prob = match class {
        DesignClass::Filter => 0.45,
        DesignClass::Fft => 0.30,
        DesignClass::ImageKernel => 0.20,
    };

    // a couple of loop-carried accumulators (SCCs)
    let n_accs = (target_ops / 200).clamp(1, 4);
    let mut accumulators = Vec::new();
    for _ in 0..n_accs {
        let src = frontier[rng.gen_range(0..frontier.len())];
        let acc = dfg.add_op(
            OpKind::Add,
            2 * width,
            vec![src, Signal::constant(0, 2 * width)],
        );
        dfg.op_mut(acc).inputs[1] = Signal::carried(acc, 2 * width, 1);
        accumulators.push(acc);
        frontier.push(Signal::op_w(acc, 2 * width));
    }

    while dfg.num_ops() - base_ops < target_ops.saturating_sub(2) {
        let a = frontier[rng.gen_range(0..frontier.len())];
        let b = frontier[rng.gen_range(0..frontier.len())];
        let roll: f64 = rng.gen();
        let (kind, w) = if roll < mul_prob {
            (OpKind::Mul, 2 * width)
        } else if roll < mul_prob + 0.35 {
            (if rng.gen() { OpKind::Add } else { OpKind::Sub }, width)
        } else if roll < mul_prob + 0.45 {
            (OpKind::Shr, width)
        } else if roll < mul_prob + 0.55 {
            (if rng.gen() { OpKind::And } else { OpKind::Xor }, width)
        } else if roll < mul_prob + 0.62 && matches!(class, DesignClass::ImageKernel) {
            // predicated clamp: cmp + mux
            let cmp = dfg.add_op(OpKind::Cmp(CmpKind::Gt), 1, vec![a, b]);
            let mux = dfg.add_op(OpKind::Mux, width, vec![Signal::op_w(cmp, 1), a, b]);
            frontier.push(Signal::op_w(mux, width));
            continue;
        } else {
            (OpKind::Add, width)
        };
        let op = dfg.add_op(kind, w, vec![a, b]);
        frontier.push(Signal::op_w(op, w));
        // keep the frontier from growing without bound: drop old entries
        if frontier.len() > 48 {
            let idx = rng.gen_range(0..frontier.len() / 2);
            frontier.remove(idx);
        }
    }

    // sink: reduce a few frontier values into the output write
    let mut acc = frontier[0];
    for sig in frontier.iter().skip(1).take(3) {
        let add = dfg.add_op(OpKind::Add, 2 * width, vec![acc, *sig]);
        acc = Signal::op_w(add, 2 * width);
    }
    dfg.add_op(OpKind::Write(out_port), 2 * width, vec![acc]);
}

/// Builds an 8-point 1-D inverse DCT loop body (even/odd decomposition, 11
/// constant multiplications), processing one row of a block per iteration.
///
/// The constants are the usual scaled cosine coefficients; their exact values
/// do not affect scheduling, only the operation mix (which matches a real
/// IDCT: ~11 multiplications, ~29 additions/subtractions per 8-point
/// transform).
pub fn idct8_design() -> LinearBody {
    let mut dfg = Dfg::new();
    let w: u16 = 16;
    let ww: u16 = 32;
    let inputs: Vec<_> = (0..8)
        .map(|i| dfg.add_port(format!("x{i}"), PortDirection::Input, w))
        .collect();
    let outputs: Vec<_> = (0..8)
        .map(|i| dfg.add_port(format!("y{i}"), PortDirection::Output, w))
        .collect();
    let x: Vec<Signal> = inputs
        .iter()
        .map(|&p| Signal::op_w(dfg.add_op(OpKind::Read(p), w, vec![]), w))
        .collect();

    // cosine coefficients (scaled by 2^11, as in common fixed-point IDCTs)
    const C1: i64 = 2841;
    const C2: i64 = 2676;
    const C3: i64 = 2408;
    const C5: i64 = 1609;
    const C6: i64 = 1108;
    const C7: i64 = 565;
    const SQRT2: i64 = 181;

    let mul = |dfg: &mut Dfg, a: Signal, c: i64| -> Signal {
        let m = dfg.add_op(OpKind::Mul, ww, vec![a, Signal::constant(c, 13)]);
        Signal::op_w(m, ww)
    };
    let add = |dfg: &mut Dfg, a: Signal, b: Signal| -> Signal {
        Signal::op_w(dfg.add_op(OpKind::Add, ww, vec![a, b]), ww)
    };
    let sub = |dfg: &mut Dfg, a: Signal, b: Signal| -> Signal {
        Signal::op_w(dfg.add_op(OpKind::Sub, ww, vec![a, b]), ww)
    };
    let shr = |dfg: &mut Dfg, a: Signal, k: i64| -> Signal {
        Signal::op_w(
            dfg.add_op(OpKind::Shr, ww, vec![a, Signal::constant(k, 5)]),
            ww,
        )
    };

    // even part
    let x0 = shr(&mut dfg, x[0], 0);
    let x2 = x[2];
    let x4 = x[4];
    let x6 = x[6];
    let s04a = add(&mut dfg, x0, x4);
    let s04s = sub(&mut dfg, x0, x4);
    let m2 = mul(&mut dfg, x2, C2);
    let m6 = mul(&mut dfg, x6, C6);
    let m2b = mul(&mut dfg, x2, C6);
    let m6b = mul(&mut dfg, x6, C2);
    let even_hi = add(&mut dfg, m2, m6);
    let even_lo = sub(&mut dfg, m2b, m6b);
    let e0 = add(&mut dfg, s04a, even_hi);
    let e1 = add(&mut dfg, s04s, even_lo);
    let e2 = sub(&mut dfg, s04s, even_lo);
    let e3 = sub(&mut dfg, s04a, even_hi);

    // odd part
    let m1 = mul(&mut dfg, x[1], C1);
    let m7 = mul(&mut dfg, x[7], C7);
    let m5 = mul(&mut dfg, x[5], C5);
    let m3 = mul(&mut dfg, x[3], C3);
    let o0 = add(&mut dfg, m1, m7);
    let o1 = add(&mut dfg, m5, m3);
    let o2 = sub(&mut dfg, m1, m7);
    let o3 = sub(&mut dfg, m5, m3);
    let o_sum = add(&mut dfg, o0, o1);
    let o_diff = sub(&mut dfg, o2, o3);
    let o_rot = mul(&mut dfg, o_diff, SQRT2);
    let o_rot = shr(&mut dfg, o_rot, 8);
    let o_mid0 = add(&mut dfg, o2, o_rot);
    let o_mid1 = sub(&mut dfg, o3, o_rot);

    // butterfly outputs
    let o_last = sub(&mut dfg, o0, o1);
    let pairs = [(e0, o_sum), (e1, o_mid0), (e2, o_mid1), (e3, o_last)];
    for (i, (e, o)) in pairs.iter().enumerate() {
        let hi = add(&mut dfg, *e, *o);
        let lo = sub(&mut dfg, *e, *o);
        let hi = shr(&mut dfg, hi, 11);
        let lo = shr(&mut dfg, lo, 11);
        dfg.add_op(OpKind::Write(outputs[i]), w, vec![hi]);
        dfg.add_op(OpKind::Write(outputs[7 - i]), w, vec![lo]);
    }

    let mut body = LinearBody::from_dfg("idct8", dfg);
    body.source_states = 1;
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::analysis::sccs;

    #[test]
    fn synthetic_design_hits_target_size() {
        for class in DesignClass::all() {
            let body = synthetic_design(class, 300, 7);
            assert!(body.validate().is_ok());
            let n = body.dfg.num_ops();
            assert!((250..=360).contains(&n), "{class:?} produced {n} ops");
        }
    }

    #[test]
    fn large_designs_split_into_independent_kernels() {
        let body = synthetic_design(DesignClass::Fft, 5000, 3);
        assert!(body.validate().is_ok());
        let n = body.dfg.num_ops();
        assert!((4000..=6000).contains(&n), "got {n} ops");
        // 5000 ops → ceil(5000/2000) = 3 kernels, each with its own output
        let ports: Vec<String> = body.dfg.iter_ports().map(|(_, p)| p.name.clone()).collect();
        for j in 0..3 {
            assert!(
                ports.iter().any(|name| name == &format!("k{j}_out")),
                "missing kernel {j} output in {ports:?}"
            );
        }
    }

    #[test]
    fn small_designs_keep_the_single_kernel_shape() {
        let body = synthetic_design(DesignClass::Filter, 300, 7);
        let ports: Vec<String> = body.dfg.iter_ports().map(|(_, p)| p.name.clone()).collect();
        assert!(ports.iter().any(|n| n == "out"), "{ports:?}");
        assert!(ports.iter().all(|n| !n.starts_with("k0_")), "{ports:?}");
    }

    #[test]
    fn synthetic_design_is_deterministic() {
        let a = synthetic_design(DesignClass::Filter, 200, 3);
        let b = synthetic_design(DesignClass::Filter, 200, 3);
        assert_eq!(a.dfg.num_ops(), b.dfg.num_ops());
        assert_eq!(a.dfg.kind_histogram(), b.dfg.kind_histogram());
    }

    #[test]
    fn synthetic_design_has_accumulator_sccs() {
        let body = synthetic_design(DesignClass::Filter, 400, 11);
        assert!(!sccs(&body.dfg).is_empty());
    }

    #[test]
    fn filter_designs_are_multiplier_rich() {
        let filt = synthetic_design(DesignClass::Filter, 500, 5);
        let img = synthetic_design(DesignClass::ImageKernel, 500, 5);
        let muls = |b: &LinearBody| b.dfg.kind_histogram().get("mul").copied().unwrap_or(0);
        assert!(muls(&filt) > muls(&img));
    }

    #[test]
    fn idct_has_expected_operation_mix() {
        let body = idct8_design();
        assert!(body.validate().is_ok());
        let hist = body.dfg.kind_histogram();
        // even/odd decomposition: 9 constant multiplications, a few dozen
        // add/sub butterflies (a Loeffler-class operation mix)
        assert_eq!(hist.get("mul").copied().unwrap_or(0), 9, "{hist:?}");
        assert!(hist.get("add").copied().unwrap_or(0) >= 10);
        assert!(hist.get("sub").copied().unwrap_or(0) >= 10);
        let reads = body
            .dfg
            .iter_ops()
            .filter(|(_, o)| matches!(o.kind, OpKind::Read(_)))
            .count();
        let writes = body
            .dfg
            .iter_ops()
            .filter(|(_, o)| matches!(o.kind, OpKind::Write(_)))
            .count();
        assert_eq!(reads, 8);
        assert_eq!(writes, 8);
        // purely feed-forward: no SCC, so any II is reachable with enough hw
        assert!(sccs(&body.dfg).is_empty());
    }
}
