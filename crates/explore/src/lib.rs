//! # hls-explore — design generators, experiments and design-space exploration
//!
//! This crate regenerates the evaluation section of the paper:
//!
//! * [`designs`] — synthetic "industrial" designs (filters, FFT-like
//!   butterflies, image kernels) spanning the 100–6000 operation range of the
//!   paper's Figure 9, and an 8-point IDCT used for the area/power exploration
//!   of Figures 10/11;
//! * [`experiments`] — one driver per table/figure (Table 1–4, Figure 9–11)
//!   returning structured, serializable results plus text renderings that
//!   mirror the paper's rows;
//! * [`pareto`] — Pareto-front extraction over (delay, area, power) points.
//!
//! The substitutions relative to the paper's proprietary setup (industrial
//! designs, commercial logic synthesis) are documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
pub mod experiments;
pub mod pareto;
pub mod verify;

/// Deterministic order-stable parallel map (re-exported from `hls-sched`,
/// which also uses it for intra-design region parallelism).
pub use hls_sched::parallel;

pub use designs::{idct8_design, synthetic_design, DesignClass};
pub use experiments::{
    figure10_idct_area_delay, figure11_idct_power_delay, figure9_scheduling_time, table1_library,
    table2_example1_schedule, table3_microarchitectures, table4_scc_move_ablation,
};
pub use parallel::map_indexed;
pub use pareto::{pareto_front, ExplorationPoint};
pub use verify::{verify_schedule, VerifyOptions};
