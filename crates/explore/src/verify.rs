//! Differential verification hook for experiment drivers.
//!
//! Design-space exploration emits many schedules; this module lets a driver
//! validate **every point it emits** by executing it: the cycle-accurate
//! simulation of the schedule (`hls-sim`) must agree bit-exactly with the
//! reference interpreter on random input vectors. A Pareto front built from
//! verified points is a set of *working* micro-architectures, not just
//! plausible numbers.

use hls_ir::LinearBody;
use hls_netlist::ScheduleDesc;
use hls_sim::{differential, DifferentialReport, SimError};

/// How a driver should verify the points it emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Random input vectors (loop iterations) per point.
    pub vectors: usize,
    /// Stimulus seed; points of one sweep share it so runs are reproducible.
    pub seed: u64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            vectors: 100,
            seed: 0xD1FF,
        }
    }
}

impl VerifyOptions {
    /// Options with the given vector count and the default seed.
    pub fn vectors(vectors: usize) -> Self {
        VerifyOptions {
            vectors,
            ..Self::default()
        }
    }
}

/// Differentially verifies one scheduled design point.
///
/// # Errors
/// Propagates the [`SimError`] describing the first disagreement or
/// execution failure.
pub fn verify_schedule(
    body: &LinearBody,
    desc: &ScheduleDesc,
    options: &VerifyOptions,
) -> Result<DifferentialReport, SimError> {
    differential::random_check(body, desc, options.vectors, options.seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::idct8_design;
    use hls_sched::{Scheduler, SchedulerConfig};
    use hls_tech::{ClockConstraint, TechLibrary};

    #[test]
    fn idct_point_verifies() {
        let body = idct8_design();
        let lib = TechLibrary::artisan_90nm_typical();
        let config = SchedulerConfig::sequential(ClockConstraint::from_period_ps(2600.0), 1, 16);
        let schedule = Scheduler::new(&body, &lib, config)
            .run()
            .expect("schedules");
        let report =
            verify_schedule(&body, &schedule.desc, &VerifyOptions::vectors(25)).expect("bit-exact");
        assert_eq!(report.iterations, 25);
        assert_eq!(report.ports, 8, "all eight IDCT outputs compared");
    }
}
