//! Experiment drivers: one function per table / figure of the paper.
//!
//! Every driver returns a structured, serializable result and can render the
//! same rows the paper prints. The benchmark crate calls these functions; the
//! integration tests run reduced-size versions as smoke tests; EXPERIMENTS.md
//! records paper-reported vs measured values.

use crate::designs::{idct8_design, synthetic_design, DesignClass};
use crate::pareto::ExplorationPoint;
use hls_frontend::designs as paper_designs;
use hls_ir::LinearBody;
use hls_netlist::Datapath;
use hls_opt::linearize::prepare_innermost_loop;
use hls_sched::{Schedule, Scheduler, SchedulerConfig};
use hls_tech::{ClockConstraint, ResourceClass, TechLibrary};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The paper's reference clock for the running example (1600 ps).
pub const EXAMPLE_CLOCK_PS: f64 = 1600.0;

fn example1_body() -> LinearBody {
    let mut cdfg = paper_designs::paper_example1_cdfg().expect("paper example elaborates");
    prepare_innermost_loop(&mut cdfg).expect("paper example linearizes")
}

fn schedule_and_estimate(
    body: &LinearBody,
    lib: &TechLibrary,
    config: SchedulerConfig,
) -> Option<(Schedule, Datapath)> {
    let clock = config.clock;
    let schedule = Scheduler::new(body, lib, config).run().ok()?;
    let slack_fraction = (schedule.min_slack_ps / clock.period_ps()).clamp(0.0, 0.9);
    let dp = Datapath::from_schedule(body, &schedule.desc, lib, clock, slack_fraction);
    Some((schedule, dp))
}

/// Binds a schedule and returns the counted hardware statistics; every
/// schedule the drivers emit must be realizable as steered shared hardware,
/// so a binder rejection here is a bug worth failing loudly on.
fn bind_stats(body: &LinearBody, schedule: &Schedule) -> hls_bind::BindStats {
    hls_bind::bind(body, &schedule.desc)
        .expect("emitted schedule must be bindable")
        .stats
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: the fastest-implementation delays of the example's resources.
pub fn table1_library() -> Vec<(String, f64)> {
    TechLibrary::artisan_90nm_typical().table1_rows()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// Result of the Table 2 experiment (sequential schedule of Example 1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Result {
    /// Achieved latency in states.
    pub latency: u32,
    /// Scheduling passes used.
    pub passes: u32,
    /// Number of multipliers allocated.
    pub multipliers: usize,
    /// State (1-based) of each of the named multiplications.
    pub mul_states: Vec<(String, u32)>,
    /// The rendered state × resource table.
    pub table: String,
}

/// Table 2: schedule of the paper's Example 1 with the minimum resource set.
pub fn table2_example1_schedule() -> Table2Result {
    let body = example1_body();
    let lib = TechLibrary::artisan_90nm_typical();
    let config =
        SchedulerConfig::sequential(ClockConstraint::from_period_ps(EXAMPLE_CLOCK_PS), 1, 3);
    let schedule = Scheduler::new(&body, &lib, config)
        .run()
        .expect("example 1 schedules");
    let mut mul_states = Vec::new();
    for (id, op) in body.dfg.iter_ops() {
        let name = op.display_name();
        if name.starts_with("mul") {
            mul_states.push((name, schedule.desc.state_of(id) + 1));
        }
    }
    mul_states.sort();
    Table2Result {
        latency: schedule.latency,
        passes: schedule.passes,
        multipliers: schedule
            .desc
            .resources
            .count_of_class(&ResourceClass::Multiplier),
        mul_states,
        table: schedule.table(&body),
    }
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// One row of Table 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3Row {
    /// Micro-architecture name (`Sequential`, `Pipe II=2`, `Pipe II=1`).
    pub name: String,
    /// Cycles per iteration.
    pub cycles_per_iteration: u32,
    /// Estimated area in library units.
    pub area: f64,
    /// Number of multipliers allocated.
    pub multipliers: usize,
}

/// Table 3: comparing the sequential, II=2 and II=1 micro-architectures of
/// Example 1 by throughput and area.
pub fn table3_microarchitectures() -> Vec<Table3Row> {
    let body = example1_body();
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(EXAMPLE_CLOCK_PS);
    let configs = vec![
        (
            "Sequential".to_string(),
            SchedulerConfig::sequential(clock, 1, 3),
        ),
        (
            "Pipe II=2".to_string(),
            SchedulerConfig::pipelined(clock, 2, 6),
        ),
        (
            "Pipe II=1".to_string(),
            SchedulerConfig::pipelined(clock, 1, 6),
        ),
    ];
    let mut rows = Vec::new();
    for (name, config) in configs {
        if let Some((schedule, dp)) = schedule_and_estimate(&body, &lib, config) {
            rows.push(Table3Row {
                name,
                cycles_per_iteration: schedule.cycles_per_iteration(),
                area: dp.total_area(),
                multipliers: schedule
                    .desc
                    .resources
                    .count_of_class(&ResourceClass::Multiplier),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

/// Result of the Table 4 ablation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table4Result {
    /// Per-design percentage area penalty when the SCC-move action is
    /// disabled (the seven most timing-critical designs).
    pub penalties_percent: Vec<f64>,
    /// Average penalty.
    pub average_percent: f64,
}

/// Table 4: impact of the timing-driven SCC placement. Pipelines a set of
/// recurrence-heavy synthetic designs with and without the `MoveScc`
/// relaxation action and reports the area penalty of disabling it on the
/// seven most timing-critical designs (smallest baseline slack).
pub fn table4_scc_move_ablation(num_designs: usize, ops_per_design: usize) -> Table4Result {
    let lib = TechLibrary::artisan_90nm_typical();
    let clock = ClockConstraint::from_period_ps(1500.0);
    let mut measured: Vec<(f64, f64)> = Vec::new(); // (baseline slack, penalty %)
    for i in 0..num_designs.max(1) {
        let class = DesignClass::all()[i % 3];
        let body = synthetic_design(class, ops_per_design, 1000 + i as u64);
        let with_move = SchedulerConfig::pipelined(clock, 2, 24);
        let without_move = SchedulerConfig::pipelined(clock, 2, 24).without_scc_move();
        let Some((sched_with, dp_with)) = schedule_and_estimate(&body, &lib, with_move) else {
            continue;
        };
        let Some((_, dp_without)) = schedule_and_estimate(&body, &lib, without_move) else {
            continue;
        };
        let penalty =
            (dp_without.total_area() - dp_with.total_area()) / dp_with.total_area() * 100.0;
        measured.push((sched_with.min_slack_ps, penalty.max(0.0)));
    }
    // the paper examines the most timing-critical designs
    measured.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let penalties: Vec<f64> = measured.iter().take(7).map(|(_, p)| *p).collect();
    let average = if penalties.is_empty() {
        0.0
    } else {
        penalties.iter().sum::<f64>() / penalties.len() as f64
    };
    Table4Result {
        penalties_percent: penalties,
        average_percent: average,
    }
}

// ---------------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------------

/// One point of Figure 9.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure9Point {
    /// Number of DFG operations in the design.
    pub ops: usize,
    /// Scheduling (plus estimation) wall-clock time in seconds.
    pub seconds: f64,
    /// Achieved latency.
    pub latency: u32,
    /// Scheduling passes executed by the run that produced the point.
    pub passes: u32,
    /// Design class.
    pub class: String,
    /// Bound functional units (binder statistic; binding runs outside the
    /// timed scheduling window).
    pub fus: usize,
    /// Bound datapath registers.
    pub regs: usize,
    /// Total data inputs over the binding's physical operand muxes.
    pub mux_inputs: usize,
}

/// Sizes at or above this schedule with region decomposition: the DFG is
/// condensed into independently scheduled regions and only dirty regions
/// re-pass during relaxation (see `hls_sched::region`).
const FIGURE9_REGION_THRESHOLD: usize = 2500;

/// Region size target for large Figure 9 points.
const FIGURE9_REGION_TARGET: usize = 600;

/// Schedules one Figure 9 point (class, clock, and micro-architecture keyed
/// off the point index, as the sweep has always done). Sizes at or above
/// [`FIGURE9_REGION_THRESHOLD`] turn on region decomposition and a larger
/// pass budget; smaller sizes run the exact historical configuration.
fn figure9_point(i: usize, target: usize, lib: &TechLibrary) -> Option<Figure9Point> {
    let class = DesignClass::all()[i % 3];
    let body = synthetic_design(class, target, 42 + i as u64);
    let regions = target >= FIGURE9_REGION_THRESHOLD;
    let start = Instant::now();
    let result = if regions {
        // Multi-kernel points: one sequential region-decomposed
        // configuration for every size. The relaxed clock keeps the deep
        // 32-bit multiply chains of the synthetic kernels feasible, and the
        // wide latency window covers the deepest kernel the generator
        // produces; the relaxer's batched resource additions converge in a
        // bounded number of passes regardless of the op count.
        let clock = ClockConstraint::from_period_ps(2200.0);
        let mut config = SchedulerConfig::sequential(clock, 48, 192)
            .with_region_decomposition(FIGURE9_REGION_TARGET);
        config.max_passes = 4096;
        Scheduler::new(&body, lib, config).run()
    } else {
        let clock = ClockConstraint::from_period_ps(if i % 2 == 0 { 1600.0 } else { 2200.0 });
        let mut config = if i % 2 == 0 {
            SchedulerConfig::sequential(clock, 1, 24)
        } else {
            SchedulerConfig::pipelined(clock, 2, 24)
        };
        config.max_passes = 256;
        Scheduler::new(&body, lib, config).run().or_else(|_| {
            // Fall back to a sequential schedule (mirroring what a designer
            // would do when a pipelining request proves over-constrained);
            // the point still contributes a (size, time) sample.
            let mut fallback = SchedulerConfig::sequential(clock, 1, 48);
            fallback.max_passes = 256;
            Scheduler::new(&body, lib, fallback).run()
        })
    };
    let seconds = start.elapsed().as_secs_f64();
    result.ok().map(|schedule| {
        let stats = bind_stats(&body, &schedule);
        Figure9Point {
            ops: body.dfg.num_ops(),
            seconds,
            latency: schedule.latency,
            passes: schedule.passes,
            class: format!("{class:?}"),
            fus: stats.fu_count,
            regs: stats.register_count,
            mux_inputs: stats.mux_inputs,
        }
    })
}

/// Figure 9: scheduling time vs design size over a population of synthetic
/// "industrial" designs. `sizes` controls the op-count sweep.
///
/// The designs are independent, so they are scheduled across
/// [`crate::parallel::map_indexed`] workers; results come back in size
/// order and are identical to a sequential run (set `HLS_EXPLORE_THREADS=1`
/// for single-threaded per-point timings).
pub fn figure9_scheduling_time(sizes: &[usize]) -> Vec<Figure9Point> {
    let lib = TechLibrary::artisan_90nm_typical();
    let points = crate::parallel::map_indexed(sizes, |i, &target| figure9_point(i, target, &lib));
    points.into_iter().flatten().collect()
}

/// The default Figure 9 sweep: 12 designs spanning the 100..2000 op range
/// (a scaled-down version of the paper's 40-design population; sizes grow
/// roughly geometrically).
pub fn figure9_default_sizes() -> Vec<usize> {
    vec![
        100, 150, 220, 320, 450, 600, 800, 1000, 1250, 1500, 1750, 2000,
    ]
}

/// The large region-decomposed sizes: multi-kernel designs an order of
/// magnitude (and more) past the paper's biggest, schedulable in seconds
/// thanks to per-region scheduling with incremental re-passes.
pub fn figure9_large_sizes() -> Vec<usize> {
    vec![10_000, 30_000, 100_000]
}

/// A measured Figure 9 sweep: the points plus the end-to-end wall-clock.
#[derive(Clone, Debug)]
pub struct Figure9Sweep {
    /// One point per successfully scheduled size.
    pub points: Vec<Figure9Point>,
    /// End-to-end wall-clock of the whole sweep, seconds.
    pub total_seconds: f64,
    /// Number of sizes requested (points may be fewer: unschedulable sizes
    /// contribute time but no point).
    pub requested: usize,
}

impl Figure9Sweep {
    /// Renders the paper-style table plus the end-to-end total — the shared
    /// output of the bench target and the `figure9_perf` example.
    pub fn table(&self) -> String {
        let mut out = String::from("FIGURE 9 — scheduling time vs design size:\n");
        out.push_str(&format!(
            "  {:>6} {:>10} {:>8} {:>7} {:>12} {:>6} {:>6} {:>8}\n",
            "ops", "seconds", "latency", "passes", "class", "fus", "regs", "mux_in"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:>6} {:>10.3} {:>8} {:>7} {:>12} {:>6} {:>6} {:>8}\n",
                p.ops, p.seconds, p.latency, p.passes, p.class, p.fus, p.regs, p.mux_inputs
            ));
        }
        out.push_str(&format!(
            "total: {:.3}s end-to-end ({} of {} sizes scheduled)\n",
            self.total_seconds,
            self.points.len(),
            self.requested
        ));
        out
    }

    /// Writes the sweep as `BENCH_sched.json` (see [`figure9_json`]).
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_figure9_json(path, &self.points, self.total_seconds)
    }
}

/// Runs [`figure9_scheduling_time`] and measures the end-to-end wall-clock
/// of the whole sweep — the headline perf-trajectory number.
pub fn figure9_sweep(sizes: &[usize]) -> Figure9Sweep {
    figure9_sweep_with_budget(sizes, None)
}

/// [`figure9_sweep`] with an optional wall-clock budget: once the budget is
/// spent, points that have not started yet are skipped instead of scheduled
/// (the first point always runs, so a sweep returns at least one sample).
/// Skipped sizes count toward `requested` but contribute no point.
pub fn figure9_sweep_with_budget(
    sizes: &[usize],
    budget: Option<std::time::Duration>,
) -> Figure9Sweep {
    let lib = TechLibrary::artisan_90nm_typical();
    let start = Instant::now();
    let points = crate::parallel::map_indexed(sizes, |i, &target| {
        if i > 0 && budget.is_some_and(|b| start.elapsed() >= b) {
            return None;
        }
        figure9_point(i, target, &lib)
    });
    Figure9Sweep {
        points: points.into_iter().flatten().collect(),
        total_seconds: start.elapsed().as_secs_f64(),
        requested: sizes.len(),
    }
}

/// Serializes Figure 9 points as the machine-readable perf-trajectory record
/// `BENCH_sched.json` (one `{ops, seconds, latency, passes, fus, regs,
/// mux_inputs}` object per size, plus the end-to-end wall-clock of the whole
/// driver). The binder statistics record the counted hardware each point's
/// schedule costs, so the trajectory tracks area proxies next to time.
pub fn figure9_json(points: &[Figure9Point], total_seconds: f64) -> String {
    let mut out = String::from("{\n  \"bench\": \"figure9_scheduling_time\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"ops\": {}, \"seconds\": {:.6}, \"latency\": {}, \"passes\": {}, \"class\": \"{}\", \"fus\": {}, \"regs\": {}, \"mux_inputs\": {}}}{}\n",
            p.ops,
            p.seconds,
            p.latency,
            p.passes,
            p.class,
            p.fus,
            p.regs,
            p.mux_inputs,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"total_seconds\": {total_seconds:.6}\n}}\n"
    ));
    out
}

/// Writes [`figure9_json`] to the given path (the repo root by convention).
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn write_figure9_json(
    path: &std::path::Path,
    points: &[Figure9Point],
    total_seconds: f64,
) -> std::io::Result<()> {
    std::fs::write(path, figure9_json(points, total_seconds))
}

// ---------------------------------------------------------------------------
// Figures 10 and 11
// ---------------------------------------------------------------------------

/// The IDCT micro-architecture sweep shared by Figures 10 and 11: latencies
/// 8/16/32 cycles, pipelined (II = latency/2) and non-pipelined, over a range
/// of clock periods. Returns one exploration point per successful run.
pub fn idct_exploration(clock_periods_ps: &[f64]) -> Vec<ExplorationPoint> {
    idct_exploration_with(clock_periods_ps, None)
        .expect("exploration without verification cannot fail")
}

/// [`idct_exploration`] with an optional differential-verification hook:
/// when `verify` is given, **every** emitted point's schedule is executed
/// cycle-accurately against the reference interpreter on random input
/// vectors and the sweep fails on the first disagreement — so a Pareto front
/// built from the result contains only demonstrably working designs.
///
/// # Errors
/// Propagates the first [`hls_sim::SimError`] when verification is enabled.
pub fn idct_exploration_with(
    clock_periods_ps: &[f64],
    verify: Option<&crate::verify::VerifyOptions>,
) -> Result<Vec<ExplorationPoint>, hls_sim::SimError> {
    let lib = TechLibrary::artisan_90nm_typical();
    let body = idct8_design();
    // Every (latency, pipelining, clock) micro-architecture candidate is an
    // independent schedule-estimate-verify problem: fan them out across
    // workers and collect in sweep order, propagating the first error in
    // that (deterministic) order.
    let mut combos: Vec<(u32, bool, f64)> = Vec::new();
    for &latency in &[8u32, 16, 32] {
        for &pipelined in &[false, true] {
            for &period in clock_periods_ps {
                combos.push((latency, pipelined, period));
            }
        }
    }
    type PointResult = Result<Option<ExplorationPoint>, hls_sim::SimError>;
    let results =
        crate::parallel::map_indexed(&combos, |_, &(latency, pipelined, period)| -> PointResult {
            let clock = ClockConstraint::from_period_ps(period);
            let (family, config) = if pipelined {
                (
                    format!("Pipelined {latency}"),
                    SchedulerConfig::pipelined(clock, (latency / 2).max(1), latency),
                )
            } else {
                (
                    format!("Non-Pipelined {latency}"),
                    SchedulerConfig::sequential(clock, 1, latency),
                )
            };
            let Some((schedule, dp)) = schedule_and_estimate(&body, &lib, config) else {
                return Ok(None);
            };
            if let Some(options) = verify {
                crate::verify::verify_schedule(&body, &schedule.desc, options)?;
            }
            let stats = bind_stats(&body, &schedule);
            let ii = schedule.cycles_per_iteration();
            Ok(Some(ExplorationPoint {
                label: format!("{family} @ {:.1} ns", period / 1000.0),
                family,
                delay_ns: f64::from(ii) * period / 1000.0,
                area: dp.total_area(),
                power_uw: dp.total_power_uw(),
                clock_ps: period,
                latency_cycles: schedule.latency,
                ii_cycles: ii,
                fu_count: stats.fu_count,
                register_count: stats.register_count,
                mux_inputs: stats.mux_inputs,
            }))
        });
    let mut points = Vec::new();
    for r in results {
        if let Some(p) = r? {
            points.push(p);
        }
    }
    Ok(points)
}

/// Figure 10: area vs delay for the IDCT micro-architectures.
pub fn figure10_idct_area_delay() -> Vec<ExplorationPoint> {
    idct_exploration(&[1000.0, 1300.0, 1600.0, 2100.0, 2600.0, 3200.0])
}

/// Figure 11: power vs delay for the same sweep (the same points, read for
/// their power coordinate).
pub fn figure11_idct_power_delay() -> Vec<ExplorationPoint> {
    figure10_idct_area_delay()
}

/// Renders exploration points as a CSV-like text block (one row per point).
pub fn render_points(points: &[ExplorationPoint]) -> String {
    let mut out = String::from("family,label,delay_ns,area,power_uw,clock_ps,latency,ii\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{:.2},{:.0},{:.1},{:.0},{},{}\n",
            p.family,
            p.label,
            p.delay_ns,
            p.area,
            p.power_uw,
            p.clock_ps,
            p.latency_cycles,
            p.ii_cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::pareto_front;

    #[test]
    fn table1_matches_paper_delays() {
        let rows = table1_library();
        let get = |n: &str| rows.iter().find(|(k, _)| k == n).unwrap().1;
        assert_eq!(get("mul").round() as i64, 930);
        assert_eq!(get("add").round() as i64, 350);
        assert_eq!(get("gt").round() as i64, 220);
        assert_eq!(get("neq").round() as i64, 60);
    }

    #[test]
    fn table2_reproduces_three_state_schedule() {
        let t2 = table2_example1_schedule();
        assert_eq!(t2.latency, 3);
        assert_eq!(t2.multipliers, 1);
        // one multiplication per state, in order
        let states: Vec<u32> = t2.mul_states.iter().map(|(_, s)| *s).collect();
        assert_eq!(states, vec![1, 2, 3]);
        assert!(t2.table.contains("mul1_op"));
    }

    #[test]
    fn table3_area_grows_with_throughput() {
        let rows = table3_microarchitectures();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].cycles_per_iteration, 3);
        assert_eq!(rows[1].cycles_per_iteration, 2);
        assert_eq!(rows[2].cycles_per_iteration, 1);
        assert!(rows[0].area < rows[1].area, "{rows:?}");
        assert!(rows[1].area < rows[2].area, "{rows:?}");
        assert_eq!(rows[0].multipliers, 1);
        assert_eq!(rows[1].multipliers, 2);
        assert_eq!(rows[2].multipliers, 3);
    }

    #[test]
    fn figure9_produces_points_without_size_time_blowup() {
        let points = figure9_scheduling_time(&[120, 240, 400]);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(
                p.seconds < 60.0,
                "scheduling {} ops took {}s",
                p.ops,
                p.seconds
            );
        }
    }

    #[test]
    fn figure9_budget_skips_later_points() {
        let sweep = figure9_sweep_with_budget(&[120, 240, 400], Some(std::time::Duration::ZERO));
        assert_eq!(sweep.requested, 3);
        assert_eq!(
            sweep.points.len(),
            1,
            "only the first point runs on a zero budget"
        );
        assert!(sweep.points[0].ops >= 100);
    }

    #[test]
    fn figure9_region_path_schedules_a_multi_kernel_point() {
        let points = figure9_scheduling_time(&[2600]);
        assert_eq!(points.len(), 1, "the region-decomposed point schedules");
        assert!(points[0].ops >= 2000, "{:?}", points[0]);
    }

    #[test]
    fn idct_exploration_pipelining_extends_the_pareto_front() {
        let points = idct_exploration(&[1600.0, 2600.0]);
        assert!(
            points.len() >= 8,
            "expected a populated sweep, got {}",
            points.len()
        );
        let front = pareto_front(&points);
        assert!(
            front.iter().any(|p| p.family.starts_with("Pipelined")),
            "at least one Pareto point must be pipelined: {front:?}"
        );
        // delay of a pipelined point equals II × clock
        for p in &points {
            assert!((p.delay_ns - f64::from(p.ii_cycles) * p.clock_ps / 1000.0).abs() < 1e-6);
        }
        let csv = render_points(&points);
        assert!(csv.lines().count() == points.len() + 1);
    }

    #[test]
    fn exploration_points_carry_binding_statistics() {
        let points = idct_exploration(&[2600.0]);
        assert!(!points.is_empty());
        for p in &points {
            assert!(p.fu_count > 0, "{p:?}");
            assert!(p.register_count > 0, "{p:?}");
        }
        // tighter initiation intervals buy throughput with more functional
        // units: the fastest point must not be the cheapest one
        let fastest = points
            .iter()
            .min_by(|a, b| a.delay_ns.partial_cmp(&b.delay_ns).unwrap())
            .unwrap();
        let slowest = points
            .iter()
            .max_by(|a, b| a.delay_ns.partial_cmp(&b.delay_ns).unwrap())
            .unwrap();
        assert!(
            fastest.fu_count >= slowest.fu_count,
            "fastest {fastest:?} vs slowest {slowest:?}"
        );
    }

    #[test]
    fn verified_exploration_accepts_every_emitted_point() {
        let verify = crate::verify::VerifyOptions {
            vectors: 20,
            seed: 3,
        };
        let points = idct_exploration_with(&[2600.0], Some(&verify)).expect("all points bit-exact");
        assert!(!points.is_empty());
    }

    #[test]
    fn table4_reports_nonnegative_penalties() {
        let t4 = table4_scc_move_ablation(4, 160);
        assert!(!t4.penalties_percent.is_empty());
        assert!(t4.penalties_percent.iter().all(|p| *p >= 0.0));
        assert!(t4.average_percent >= 0.0);
    }
}
