//! Pareto-front extraction over exploration points.

use serde::{Deserialize, Serialize};

/// One implementation point of a design-space exploration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExplorationPoint {
    /// Human-readable label, e.g. `"Pipelined 32 @ 3.2ns"`.
    pub label: String,
    /// Micro-architecture family (one curve of Figure 10/11).
    pub family: String,
    /// Delay: the inverse of throughput, `II × Tclk`, in nanoseconds.
    pub delay_ns: f64,
    /// Area in library units.
    pub area: f64,
    /// Power in microwatts.
    pub power_uw: f64,
    /// Clock period used, ps.
    pub clock_ps: f64,
    /// Loop latency (LI) in cycles.
    pub latency_cycles: u32,
    /// Initiation interval in cycles (equals the latency when sequential).
    pub ii_cycles: u32,
    /// Bound functional units (counted from the binding, not estimated).
    pub fu_count: usize,
    /// Bound datapath registers.
    pub register_count: usize,
    /// Total data inputs over the binding's physical operand muxes.
    pub mux_inputs: usize,
}

/// Returns the subset of points that are Pareto-optimal in (delay, area):
/// no other point is at least as good in both and strictly better in one.
pub fn pareto_front(points: &[ExplorationPoint]) -> Vec<ExplorationPoint> {
    let mut front: Vec<ExplorationPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.delay_ns <= p.delay_ns && q.area <= p.area)
                && (q.delay_ns < p.delay_ns || q.area < p.area)
        });
        if !dominated {
            front.push(p.clone());
        }
    }
    front.sort_by(|a, b| {
        a.delay_ns
            .partial_cmp(&b.delay_ns)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front.dedup_by(|a, b| a.delay_ns == b.delay_ns && a.area == b.area);
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(label: &str, delay: f64, area: f64) -> ExplorationPoint {
        ExplorationPoint {
            label: label.into(),
            family: "t".into(),
            delay_ns: delay,
            area,
            power_uw: 1.0,
            clock_ps: 1000.0,
            latency_cycles: 1,
            ii_cycles: 1,
            fu_count: 1,
            register_count: 1,
            mux_inputs: 0,
        }
    }

    #[test]
    fn dominated_points_are_removed() {
        let points = vec![
            pt("a", 1.0, 10.0),
            pt("b", 2.0, 5.0),
            pt("c", 2.0, 12.0),
            pt("d", 3.0, 20.0),
        ];
        let front = pareto_front(&points);
        let labels: Vec<_> = front.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["a", "b"]);
    }

    #[test]
    fn single_point_is_its_own_front() {
        let points = vec![pt("only", 1.0, 1.0)];
        assert_eq!(pareto_front(&points).len(), 1);
    }

    #[test]
    fn duplicate_points_collapse_to_one_front_entry() {
        // Exact duplicates do not dominate each other (neither is strictly
        // better), so both survive dominance filtering; the front must still
        // report the (delay, area) coordinate only once.
        let points = vec![
            pt("a", 1.0, 10.0),
            pt("a_dup", 1.0, 10.0),
            pt("b", 2.0, 5.0),
        ];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 2);
        let coords: Vec<_> = front.iter().map(|p| (p.delay_ns, p.area)).collect();
        assert_eq!(coords, vec![(1.0, 10.0), (2.0, 5.0)]);
    }

    #[test]
    fn all_identical_points_yield_a_single_entry() {
        let points = vec![pt("x", 3.0, 3.0), pt("y", 3.0, 3.0), pt("z", 3.0, 3.0)];
        assert_eq!(pareto_front(&points).len(), 1);
    }

    #[test]
    fn equal_coordinate_dominance_is_strict() {
        // Same delay, worse area: dominated. Same delay, same area: kept.
        let points = vec![pt("good", 1.0, 5.0), pt("worse_area", 1.0, 7.0)];
        let front = pareto_front(&points);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].label, "good");
    }

    #[test]
    fn empty_input_gives_empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn front_is_sorted_by_delay() {
        let points = vec![
            pt("slow", 9.0, 1.0),
            pt("fast", 1.0, 9.0),
            pt("mid", 5.0, 5.0),
        ];
        let front = pareto_front(&points);
        assert!(front.windows(2).all(|w| w[0].delay_ns <= w[1].delay_ns));
        assert_eq!(front.len(), 3);
    }
}
