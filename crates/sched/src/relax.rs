//! Restraints and the relaxation expert system (Section IV.B, last part).
//!
//! Every time a binding of an operation to an edge and/or a resource fails,
//! the pass scheduler issues a [`Restraint`]. When the whole pass fails, the
//! restraints are analyzed and weighted, every applicable [`RelaxAction`] is
//! scored by how many restraints it addresses minus its estimated cost, and
//! the best action is applied before the next pass.

use crate::config::SchedulerConfig;
use hls_ir::OpId;
use hls_tech::{ResourceInstanceId, ResourceSet, ResourceType, TechLibrary};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// A reason recorded when a binding attempt fails.
#[derive(Clone, Debug, PartialEq)]
pub enum Restraint {
    /// The operation cannot meet the clock on any available (or hypothetical
    /// fresh) resource in the states it is allowed to use.
    NegativeSlack {
        /// The failing operation.
        op: OpId,
        /// The best (least negative) slack observed, in picoseconds.
        slack_ps: f64,
    },
    /// Every compatible resource instance is busy in the allowed states.
    ResourceContention {
        /// The failing operation.
        op: OpId,
        /// The resource type that ran out of instances.
        ty: ResourceType,
    },
    /// Binding the operation would create a combinational cycle.
    CombCycle {
        /// The failing operation.
        op: OpId,
        /// The resource whose sharing would close the cycle.
        resource: ResourceInstanceId,
    },
    /// The operation belongs to a strongly connected component whose
    /// II-state window does not allow any feasible state.
    SccWindow {
        /// Index of the SCC (into the scheduler's SCC list).
        scc_index: usize,
        /// The failing operation.
        op: OpId,
    },
    /// The operation consumes a region-boundary value registered in the
    /// schedule's final state; the cut rule makes it ready only in a
    /// strictly later state, so only adding a state can help.
    StateExhausted {
        /// The failing operation.
        op: OpId,
    },
}

impl Restraint {
    /// The operation this restraint is attached to.
    pub fn op(&self) -> OpId {
        match self {
            Restraint::NegativeSlack { op, .. }
            | Restraint::ResourceContention { op, .. }
            | Restraint::CombCycle { op, .. }
            | Restraint::SccWindow { op, .. }
            | Restraint::StateExhausted { op } => *op,
        }
    }
}

/// The most negative per-operation slack among `restraints`, or `0.0` when
/// none of them is slack-driven. This is the clock stretch that would make
/// the worst failing operation fit.
pub fn worst_negative_slack(restraints: &[Restraint]) -> f64 {
    restraints
        .iter()
        .filter_map(|r| match r {
            Restraint::NegativeSlack { slack_ps, .. } => Some(*slack_ps),
            _ => None,
        })
        .fold(0.0, f64::min)
}

impl fmt::Display for Restraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Restraint::NegativeSlack { op, slack_ps } => {
                write!(f, "negative slack of {slack_ps:.0} ps on {op}")
            }
            Restraint::ResourceContention { op, ty } => {
                write!(f, "no free {ty} instance for {op}")
            }
            Restraint::CombCycle { op, resource } => {
                write!(
                    f,
                    "binding {op} to {resource} would create a combinational cycle"
                )
            }
            Restraint::SccWindow { scc_index, op } => {
                write!(
                    f,
                    "operation {op} of SCC #{scc_index} cannot fit its pipeline stage window"
                )
            }
            Restraint::StateExhausted { op } => {
                write!(
                    f,
                    "{op} waits on a region-boundary value registered in the final state"
                )
            }
        }
    }
}

/// A corrective action applied between scheduling passes.
#[derive(Clone, Debug, PartialEq)]
pub enum RelaxAction {
    /// Add one state to the loop body (increase the latency / LI).
    AddState,
    /// Allocate one more instance of the given resource type.
    AddResource(ResourceType),
    /// Allocate several instances of the given resource type in one pass —
    /// one per operation currently failing on contention for it. Emitted by
    /// the contention-with-timing deadlock escape so large designs converge
    /// in a handful of relaxation passes instead of one pass per operation.
    AddResourceBatch {
        /// The type to add instances of.
        ty: ResourceType,
        /// How many instances to add (one per distinct contended operation).
        count: usize,
    },
    /// Move a whole SCC to the next pipeline stage (timing-driven kernel
    /// selection — the paper's key pipelining action).
    MoveScc {
        /// Index of the SCC to move.
        scc_index: usize,
    },
    /// Forbid a specific operation-to-resource binding (used to break
    /// combinational cycles).
    ForbidBinding {
        /// The operation.
        op: OpId,
        /// The resource it must not use.
        resource: ResourceInstanceId,
    },
}

impl fmt::Display for RelaxAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelaxAction::AddState => write!(f, "add state"),
            RelaxAction::AddResource(ty) => write!(f, "add resource {ty}"),
            RelaxAction::AddResourceBatch { ty, count } => {
                write!(f, "add {count} instances of resource {ty}")
            }
            RelaxAction::MoveScc { scc_index } => {
                write!(f, "move SCC #{scc_index} to the next stage")
            }
            RelaxAction::ForbidBinding { op, resource } => {
                write!(f, "forbid binding {op} → {resource}")
            }
        }
    }
}

/// Above this many distinct contended operations for one resource type, the
/// expert system stops one-at-a-time instance refinement and proposes a
/// demand-sized [`RelaxAction::AddResourceBatch`] instead. Small enough that
/// the hand-sized paper examples always stay on the historical single-add
/// path.
const BATCH_THRESHOLD: usize = 8;

/// Chooses the best relaxation action for a set of restraints.
///
/// Returns `None` when no applicable action addresses any restraint — the
/// specification is over-constrained.
#[allow(clippy::too_many_arguments)]
pub fn choose_action(
    restraints: &[Restraint],
    config: &SchedulerConfig,
    lib: &TechLibrary,
    latency: u32,
    num_sccs: usize,
    scc_stage: &[u32],
    resources: &ResourceSet,
    failed_ops: &[OpId],
) -> Option<RelaxAction> {
    // Hashed lookups keep a pass over N restraints linear; the scores they
    // produce are identical to the historical nested rescans.
    let failed: HashSet<OpId> = failed_ops.iter().copied().collect();
    let weight = |r: &Restraint| {
        if failed.contains(&r.op()) {
            2.0
        } else {
            1.0
        }
    };
    let slack_ops: HashSet<OpId> = restraints
        .iter()
        .filter_map(|r| match r {
            Restraint::NegativeSlack { op, .. } => Some(*op),
            _ => None,
        })
        .collect();

    let mut candidates: Vec<(RelaxAction, f64)> = Vec::new();

    // Add a state.
    if latency < config.max_latency {
        let gain: f64 = restraints
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Restraint::NegativeSlack { .. }
                        | Restraint::ResourceContention { .. }
                        | Restraint::StateExhausted { .. }
                )
            })
            .map(weight)
            .sum();
        if gain > 0.0 {
            candidates.push((RelaxAction::AddState, gain - 1.0));
        }
    }

    // Add resources, one candidate per contended type whose ops do not also
    // fail on timing (adding hardware cannot fix negative slack). Types are
    // merged at `name()` granularity (class + operand widths), as the
    // original expert system did; the ordered map makes the candidate order
    // — which breaks score ties — deterministic. When contention is systemic
    // (more than [`BATCH_THRESHOLD`] distinct starving ops) the candidate
    // becomes a batch sized by demand — each instance offers one slot per
    // state, so `distinct / slots` instances cover the backlog — instead of
    // the one-at-a-time endgame refinement, which would need a pass per op.
    if config.allow_add_resources {
        let mut by_type: BTreeMap<String, (ResourceType, usize, f64)> = BTreeMap::new();
        let mut seen: HashSet<(String, OpId)> = HashSet::new();
        for r in restraints {
            if let Restraint::ResourceContention { op, ty } = r {
                if slack_ops.contains(op) {
                    continue;
                }
                let name = ty.name();
                let entry = by_type
                    .entry(name.clone())
                    .or_insert_with(|| (ty.clone(), 0, 0.0));
                if seen.insert((name, *op)) {
                    entry.1 += 1;
                }
                entry.2 += weight(r);
            }
        }
        let slots = config.ii_or(latency).max(1) as usize;
        for (_, (ty, distinct, gain)) in by_type {
            let cost = lib.area(&ty) / 5000.0;
            let action = if distinct <= BATCH_THRESHOLD {
                RelaxAction::AddResource(ty)
            } else {
                RelaxAction::AddResourceBatch {
                    ty,
                    count: distinct.div_ceil(slots).max(1),
                }
            };
            candidates.push((action, gain - cost));
        }
    }

    // Move an SCC to the next stage (pipelined only). Deterministic
    // candidate order for the same reason as above.
    if config.pipeline.is_some() && config.allow_scc_move && num_sccs > 0 {
        let ii = config.ii_or(latency);
        let num_stages = latency.div_ceil(ii).max(1);
        // SCC indices with a recorded window failure per op, deduped in
        // first-appearance order: one linear sweep replaces the historical
        // restraints × SCCs × restraints rescan, with bit-identical sums
        // (each accumulator still receives the same terms in restraint
        // order).
        let mut window_sccs: HashMap<OpId, Vec<usize>> = HashMap::new();
        for r in restraints {
            if let Restraint::SccWindow { scc_index, op } = r {
                if *scc_index < num_sccs {
                    let list = window_sccs.entry(*op).or_default();
                    if !list.contains(scc_index) {
                        list.push(*scc_index);
                    }
                }
            }
        }
        let mut by_scc: BTreeMap<usize, f64> = BTreeMap::new();
        for r in restraints {
            match r {
                Restraint::SccWindow { scc_index, .. } => {
                    *by_scc.entry(*scc_index).or_insert(0.0) += weight(r) + 0.5;
                }
                Restraint::NegativeSlack { op, .. } => {
                    // negative slack on an op that belongs to an SCC also
                    // suggests moving that SCC
                    if let Some(list) = window_sccs.get(op) {
                        for &idx in list {
                            *by_scc.entry(idx).or_insert(0.0) += weight(r) * 0.5;
                        }
                    }
                }
                _ => {}
            }
        }
        for (scc_index, gain) in by_scc {
            let current = scc_stage.get(scc_index).copied().unwrap_or(0);
            if current + 1 < num_stages {
                candidates.push((RelaxAction::MoveScc { scc_index }, gain - 0.4));
            }
        }
    }

    // Forbid bindings that close combinational cycles.
    for r in restraints {
        if let Restraint::CombCycle { op, resource } = r {
            candidates.push((
                RelaxAction::ForbidBinding {
                    op: *op,
                    resource: *resource,
                },
                weight(r) - 0.2,
            ));
        }
    }

    // Deadlock escape: an operation can fail on contention *and* timing at
    // once when the sharing-induced input-mux delay eats the clock. The
    // contention/slack suppression above assumes hardware cannot fix
    // negative slack, but adding an instance lowers the share factor — and
    // with it the mux delay — so when no other action at all is applicable,
    // propose the hardware anyway instead of declaring the specification
    // over-constrained. Only reached when the normal candidate set is empty,
    // so no previously-succeeding relaxation sequence changes.
    if candidates.is_empty() && config.allow_add_resources {
        let mut by_type: BTreeMap<String, (ResourceType, usize, f64)> = BTreeMap::new();
        let mut seen: HashSet<(String, OpId)> = HashSet::new();
        for r in restraints {
            if let Restraint::ResourceContention { op, ty } = r {
                let name = ty.name();
                let entry = by_type
                    .entry(name.clone())
                    .or_insert_with(|| (ty.clone(), 0, 0.0));
                if seen.insert((name, *op)) {
                    entry.1 += 1;
                }
                entry.2 += weight(r);
            }
        }
        for (_, (ty, count, gain)) in by_type {
            let cost = lib.area(&ty) / 5000.0;
            candidates.push((RelaxAction::AddResourceBatch { ty, count }, gain - cost));
        }
    }

    let _ = resources; // reserved for smarter cost models
    candidates
        .into_iter()
        .filter(|(_, score)| *score > f64::NEG_INFINITY)
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(action, _)| action)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_tech::{ClockConstraint, ResourceClass};

    fn cfg_seq() -> SchedulerConfig {
        SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 3)
    }

    fn mul32() -> ResourceType {
        ResourceType::binary(ResourceClass::Multiplier, 32, 32, 32)
    }

    #[test]
    fn slack_plus_contention_prefers_adding_a_state() {
        // Mirrors the paper's first relaxation in Example 1: mul contention
        // and gt negative slack → add a state rather than a multiplier.
        let lib = TechLibrary::artisan_90nm_typical();
        let op1 = OpId::from_raw(1);
        let op2 = OpId::from_raw(2);
        let restraints = vec![
            Restraint::ResourceContention {
                op: op1,
                ty: mul32(),
            },
            Restraint::NegativeSlack {
                op: op1,
                slack_ps: -200.0,
            },
            Restraint::NegativeSlack {
                op: op2,
                slack_ps: -200.0,
            },
        ];
        let action = choose_action(
            &restraints,
            &cfg_seq(),
            &lib,
            1,
            0,
            &[],
            &ResourceSet::new(),
            &[op1, op2],
        )
        .expect("an action");
        assert_eq!(action, RelaxAction::AddState);
    }

    #[test]
    fn pure_contention_adds_a_resource_when_states_exhausted() {
        let lib = TechLibrary::artisan_90nm_typical();
        let op1 = OpId::from_raw(1);
        let restraints = vec![Restraint::ResourceContention {
            op: op1,
            ty: mul32(),
        }];
        // latency already at max → AddState unavailable
        let action = choose_action(
            &restraints,
            &cfg_seq(),
            &lib,
            3,
            0,
            &[],
            &ResourceSet::new(),
            &[op1],
        )
        .expect("an action");
        assert!(
            matches!(action, RelaxAction::AddResource(ty) if ty.class == ResourceClass::Multiplier)
        );
    }

    #[test]
    fn contention_with_slack_deadlock_escapes_with_a_batched_add() {
        let lib = TechLibrary::artisan_90nm_typical();
        let op1 = OpId::from_raw(1);
        let op2 = OpId::from_raw(2);
        // Both ops fail on contention *and* timing: the normal AddResource
        // source suppresses them and latency is at max, so without the
        // escape the specification would be declared over-constrained. The
        // escape proposes one instance per contended op in a single action.
        let restraints = vec![
            Restraint::ResourceContention {
                op: op1,
                ty: mul32(),
            },
            Restraint::NegativeSlack {
                op: op1,
                slack_ps: -120.0,
            },
            Restraint::ResourceContention {
                op: op2,
                ty: mul32(),
            },
            Restraint::NegativeSlack {
                op: op2,
                slack_ps: -120.0,
            },
        ];
        let action = choose_action(
            &restraints,
            &cfg_seq(),
            &lib,
            3,
            0,
            &[],
            &ResourceSet::new(),
            &[op1, op2],
        )
        .expect("an action");
        assert!(
            matches!(
                &action,
                RelaxAction::AddResourceBatch { ty, count: 2 }
                    if ty.class == ResourceClass::Multiplier
            ),
            "expected a 2-instance batch, got {action}"
        );
    }

    #[test]
    fn scc_window_failure_moves_the_scc_when_pipelined() {
        let lib = TechLibrary::artisan_90nm_typical();
        let cfg = SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), 1, 4);
        let op = OpId::from_raw(3);
        let restraints = vec![
            Restraint::SccWindow { scc_index: 0, op },
            Restraint::NegativeSlack {
                op,
                slack_ps: -300.0,
            },
        ];
        let action = choose_action(
            &restraints,
            &cfg,
            &lib,
            3,
            1,
            &[],
            &ResourceSet::new(),
            &[op],
        )
        .expect("an action");
        assert_eq!(action, RelaxAction::MoveScc { scc_index: 0 });
    }

    #[test]
    fn scc_move_is_disabled_by_the_ablation_flag() {
        let lib = TechLibrary::artisan_90nm_typical();
        let cfg = SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), 1, 4)
            .without_scc_move();
        let op = OpId::from_raw(3);
        let restraints = vec![Restraint::SccWindow { scc_index: 0, op }];
        let action = choose_action(
            &restraints,
            &cfg,
            &lib,
            3,
            1,
            &[],
            &ResourceSet::new(),
            &[op],
        );
        assert!(!matches!(action, Some(RelaxAction::MoveScc { .. })));
    }

    #[test]
    fn comb_cycle_forbids_the_binding() {
        let lib = TechLibrary::artisan_90nm_typical();
        let op = OpId::from_raw(5);
        let res = ResourceInstanceId(0);
        let restraints = vec![Restraint::CombCycle { op, resource: res }];
        let action = choose_action(
            &restraints,
            &cfg_seq(),
            &lib,
            3,
            0,
            &[],
            &ResourceSet::new(),
            &[op],
        )
        .expect("an action");
        assert_eq!(action, RelaxAction::ForbidBinding { op, resource: res });
    }

    #[test]
    fn no_action_when_nothing_applies() {
        let lib = TechLibrary::artisan_90nm_typical();
        let action = choose_action(&[], &cfg_seq(), &lib, 3, 0, &[], &ResourceSet::new(), &[]);
        assert!(action.is_none());
    }

    #[test]
    fn restraint_display_and_op() {
        let r = Restraint::NegativeSlack {
            op: OpId::from_raw(2),
            slack_ps: -150.0,
        };
        assert!(r.to_string().contains("-150"));
        assert_eq!(r.op(), OpId::from_raw(2));
        let a = RelaxAction::AddState;
        assert_eq!(a.to_string(), "add state");
    }
}
