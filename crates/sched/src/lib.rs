//! # hls-sched — simultaneous scheduling and binding
//!
//! The core contribution of the paper: an iterative, timing- and
//! resource-constrained **pass scheduler** that binds each operation to a
//! control step *and* a resource instance at the same time (Section IV), and
//! a restraint-driven **relaxation expert system** that reacts to failed
//! passes by adding states, adding resources, forbidding bindings or — the
//! pipelining-specific action of Section V — moving a whole strongly
//! connected component to a later pipeline stage.
//!
//! Pipelining is handled exactly the way the paper describes: the same pass
//! scheduler runs with two extra rules (edge-equivalence resource exclusion
//! and SCC-within-a-stage windows) enabled by a [`PipelineRequest`], so the
//! sequential and pipelined flows share all their machinery.
//!
//! ```
//! use hls_frontend::designs;
//! use hls_opt::linearize::prepare_innermost_loop;
//! use hls_sched::{Scheduler, SchedulerConfig};
//! use hls_tech::{ClockConstraint, TechLibrary};
//!
//! let mut cdfg = designs::paper_example1_cdfg()?;
//! let body = prepare_innermost_loop(&mut cdfg)?;
//! let lib = TechLibrary::artisan_90nm_typical();
//! let config = SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 3);
//! let schedule = Scheduler::new(&body, &lib, config).run()?;
//! assert_eq!(schedule.latency, 3); // the paper's Table 2
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod engine;
pub mod error;
pub mod parallel;
pub mod pass;
pub mod region;
pub mod relax;
pub mod resources;
pub mod scheduler;

pub use config::{PipelineRequest, RegionOptions, SchedulerConfig};
pub use error::SchedError;
pub use pass::{
    schedule_pass, schedule_pass_reference, schedule_pass_reference_with_regions, PassFailure,
    PassInput, PassOutcome, PassRegions,
};
pub use region::RegionPlan;
pub use relax::{RelaxAction, Restraint};
pub use resources::{initial_resource_set, initial_resource_set_for_ops};
pub use scheduler::{schedule_separated, Schedule, Scheduler};
