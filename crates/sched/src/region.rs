//! Region decomposition: condensing the DFG's SCC graph into independently
//! schedulable regions.
//!
//! Large designs make whole-body re-passes the scalability bottleneck: a
//! relaxation action that touches one operation forces the pass scheduler to
//! revisit every op from the resume state onward. This module condenses the
//! dependence graph — Tarjan SCCs as atomic nodes, a greedy feedback-arc-set
//! heuristic linearizing the ops *inside* each cyclic SCC — and chunks the
//! condensation, component by component in topological order, into regions of
//! roughly `target_ops` operations.
//!
//! Regions communicate only through **registered cut values**: a value whose
//! producer and consumer live in different regions is launched from a
//! register, so the consumer can only be scheduled in a *strictly later*
//! control step than the producer. This makes a region's schedule a pure
//! function of (a) its own ops/pool and (b) the *states* of its upstream
//! boundary ops — no same-state chaining crosses a cut, so scheduling regions
//! one after the other (or independent region groups in parallel) reproduces
//! exactly what a single state-major pass over the whole body would produce
//! under the same cut rule. The scheduler exploits that for bounded
//! invalidation: an action re-passes only the regions whose inputs it
//! changed, and downstream regions replay only if a boundary state actually
//! moved.
//!
//! Each region also owns a private resource pool (computed by
//! [`initial_resource_set_for_ops`](crate::resources::initial_resource_set_for_ops)
//! over its members) so binding never contends across regions. With a single
//! region the plan degenerates to the monolithic problem: full pool, no cuts,
//! byte-identical behavior to a run without region decomposition.

use crate::relax::Restraint;
use crate::resources::initial_resource_set_for_ops;
use hls_ir::analysis::Scc;
use hls_ir::{LinearBody, OpId};
use hls_tech::{ResourceSet, ResourceType};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// One schedulable region of the decomposition.
#[derive(Clone, Debug)]
pub struct RegionInfo {
    /// Member operations (global op indices) in dataflow order: topological
    /// across condensation nodes, greedy-FAS (feedback-minimal) inside each
    /// cyclic SCC. This order fixes the region-local index layout; it does
    /// not affect scheduling decisions.
    pub ops: Vec<u32>,
    /// Member ops whose value crosses into another region (ascending ids).
    pub boundary: Vec<u32>,
    /// For each boundary entry, the regions consuming it (ascending, dedup).
    pub consumers: Vec<Vec<u32>>,
}

/// A full region decomposition of one loop body.
#[derive(Clone, Debug)]
pub struct RegionPlan {
    /// The regions, in topological order (all dependence edges point from a
    /// lower region index to a higher one within a component).
    pub regions: Vec<RegionInfo>,
    /// Region index of every op.
    pub region_of: Vec<u32>,
    /// Region-local index of every op (position in its region's `ops`).
    pub local_of: Vec<u32>,
    /// Weakly connected component ranges as `[start, end)` region index
    /// pairs. Regions in different components share no dependence edges and
    /// can be scheduled concurrently.
    pub components: Vec<(u32, u32)>,
}

impl RegionPlan {
    /// The monolithic plan: one region containing every op in id order.
    pub fn trivial(num_ops: usize) -> Self {
        RegionPlan {
            regions: vec![RegionInfo {
                ops: (0..num_ops as u32).collect(),
                boundary: Vec::new(),
                consumers: Vec::new(),
            }],
            region_of: vec![0; num_ops],
            local_of: (0..num_ops as u32).collect(),
            components: vec![(0, 1)],
        }
    }

    /// Whether the plan is a single region (no cuts, no decomposition
    /// overhead — the scheduler behaves exactly as without a plan).
    pub fn is_trivial(&self) -> bool {
        self.regions.len() <= 1
    }

    /// Builds a decomposition targeting `target_ops` operations per region.
    ///
    /// `sccs` must be the body's non-trivial SCCs (from
    /// [`hls_ir::analysis::sccs`]); each SCC is kept atomic — its dynamic
    /// pipeline-stage pinning is per-SCC state that cannot span regions — so
    /// one SCC larger than the target becomes a region of its own, and a body
    /// that is a single giant SCC collapses to the trivial plan.
    pub fn build(body: &LinearBody, sccs: &[Scc], target_ops: usize) -> Self {
        let n = body.dfg.num_ops();
        if n == 0 {
            return Self::trivial(0);
        }
        let target = target_ops.max(1);

        // Dependence edges the pass scheduler reads across ops: same-iteration
        // data inputs, io ordering deps, and predicate condition values of
        // side-effecting ops. Loop-carried edges are excluded — a carried
        // value is launched from a register regardless of regions, so it
        // imposes no region precedence.
        let preds = intra_iteration_preds(body);

        // Condensation nodes: the non-trivial SCCs (greedy-FAS-linearized),
        // then every remaining op as a singleton node.
        let mut node_of = vec![u32::MAX; n];
        let mut nodes: Vec<Vec<u32>> = Vec::with_capacity(sccs.len());
        for (si, scc) in sccs.iter().enumerate() {
            for op in &scc.ops {
                node_of[op.index()] = si as u32;
            }
            nodes.push(scc_linearization(body, scc, &preds));
        }
        for (i, slot) in node_of.iter_mut().enumerate() {
            if *slot == u32::MAX {
                *slot = nodes.len() as u32;
                nodes.push(vec![i as u32]);
            }
        }
        let m = nodes.len();

        // Node-level edges (dedup) and weak components via union-find.
        let mut parent: Vec<u32> = (0..m as u32).collect();
        let mut node_preds: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (b, ps) in preds.iter().enumerate() {
            for &p in ps {
                let (np, nb) = (node_of[p as usize], node_of[b]);
                if np != nb {
                    node_preds[nb as usize].push(np);
                    union(&mut parent, np, nb);
                }
            }
        }
        let mut node_succs: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut indeg: Vec<u32> = vec![0; m];
        for b in 0..m {
            node_preds[b].sort_unstable();
            node_preds[b].dedup();
            indeg[b] = node_preds[b].len() as u32;
            for &p in &node_preds[b] {
                node_succs[p as usize].push(b as u32);
            }
        }

        // Components ordered by their smallest member op id, for determinism.
        let mut comps: BTreeMap<u32, (u32, Vec<u32>)> = BTreeMap::new();
        for v in 0..m as u32 {
            let root = find(&mut parent, v);
            let min_op = nodes[v as usize].iter().copied().min().unwrap_or(u32::MAX);
            let entry = comps.entry(root).or_insert((u32::MAX, Vec::new()));
            entry.0 = entry.0.min(min_op);
            entry.1.push(v);
        }
        let mut ordered: Vec<(u32, Vec<u32>)> = comps.into_values().collect();
        ordered.sort_unstable_by_key(|(key, _)| *key);

        // Per component: Kahn topological order over its nodes (smallest node
        // id first among ready nodes), chunked greedily up to the target.
        let mut regions_ops: Vec<Vec<u32>> = Vec::new();
        let mut components: Vec<(u32, u32)> = Vec::new();
        for (_, comp) in ordered {
            let start = regions_ops.len() as u32;
            let mut heap: BinaryHeap<std::cmp::Reverse<u32>> = comp
                .iter()
                .copied()
                .filter(|&v| indeg[v as usize] == 0)
                .map(std::cmp::Reverse)
                .collect();
            let mut cur: Vec<u32> = Vec::new();
            while let Some(std::cmp::Reverse(v)) = heap.pop() {
                let members = &nodes[v as usize];
                if !cur.is_empty() && cur.len() + members.len() > target {
                    regions_ops.push(std::mem::take(&mut cur));
                }
                cur.extend_from_slice(members);
                for &s in &node_succs[v as usize] {
                    indeg[s as usize] -= 1;
                    if indeg[s as usize] == 0 {
                        heap.push(std::cmp::Reverse(s));
                    }
                }
            }
            if !cur.is_empty() {
                regions_ops.push(cur);
            }
            components.push((start, regions_ops.len() as u32));
        }

        // Index maps and boundary interfaces.
        let mut region_of = vec![0u32; n];
        let mut local_of = vec![0u32; n];
        for (ri, ops) in regions_ops.iter().enumerate() {
            for (l, &g) in ops.iter().enumerate() {
                region_of[g as usize] = ri as u32;
                local_of[g as usize] = l as u32;
            }
        }
        let mut bmaps: Vec<BTreeMap<u32, BTreeSet<u32>>> = vec![BTreeMap::new(); regions_ops.len()];
        for (b, ps) in preds.iter().enumerate() {
            for &p in ps {
                let (rp, rb) = (region_of[p as usize], region_of[b]);
                if rp != rb {
                    bmaps[rp as usize].entry(p).or_default().insert(rb);
                }
            }
        }
        let regions = regions_ops
            .into_iter()
            .zip(bmaps)
            .map(|(ops, bmap)| {
                let boundary: Vec<u32> = bmap.keys().copied().collect();
                let consumers: Vec<Vec<u32>> = bmap
                    .into_values()
                    .map(|s| s.into_iter().collect())
                    .collect();
                RegionInfo {
                    ops,
                    boundary,
                    consumers,
                }
            })
            .collect();
        RegionPlan {
            regions,
            region_of,
            local_of,
            components,
        }
    }
}

fn find(parent: &mut [u32], v: u32) -> u32 {
    let mut root = v;
    while parent[root as usize] != root {
        root = parent[root as usize];
    }
    let mut cur = v;
    while parent[cur as usize] != root {
        let next = parent[cur as usize];
        parent[cur as usize] = root;
        cur = next;
    }
    root
}

fn union(parent: &mut [u32], a: u32, b: u32) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        parent[ra.max(rb) as usize] = ra.min(rb);
    }
}

/// Same-iteration predecessor lists over op indices: distance-0 data inputs,
/// io ordering deps and (for side-effecting ops) predicate condition values —
/// exactly the cross-op reads the pass scheduler performs.
fn intra_iteration_preds(body: &LinearBody) -> Vec<Vec<u32>> {
    let n = body.dfg.num_ops();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, op) in body.dfg.iter_ops() {
        let b = id.index();
        for sig in &op.inputs {
            if sig.distance == 0 {
                if let Some(p) = sig.producer() {
                    preds[b].push(p.index() as u32);
                }
            }
        }
        if op.kind.has_side_effects() {
            for c in op.predicate.condition_ops() {
                preds[b].push(c.index() as u32);
            }
        }
    }
    for (a, b) in body.io_order_deps() {
        preds[b.index()].push(a.index() as u32);
    }
    preds
}

/// Linearizes one SCC's members with the greedy feedback-arc-set heuristic:
/// repeatedly peel sinks to the right and sources to the left, and when only
/// cyclic structure remains pick the node with the largest out−in degree
/// delta. The resulting order puts intra-iteration producers before
/// consumers wherever possible, so region listings read in dataflow order
/// even inside a cycle. Ties break on the smallest op id — the order is
/// deterministic.
fn scc_linearization(body: &LinearBody, scc: &Scc, preds: &[Vec<u32>]) -> Vec<u32> {
    let mut ids: Vec<u32> = scc.ops.iter().map(|o| o.index() as u32).collect();
    ids.sort_unstable();
    if ids.len() <= 1 {
        return ids;
    }
    // Local edges: every dependence between members, including loop-carried
    // data edges (they are what closes the cycle).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (lb, &g) in ids.iter().enumerate() {
        for (p, _distance) in body.dfg.preds_with_carried(OpId::from_raw(g)) {
            if let Ok(lp) = ids.binary_search(&(p.index() as u32)) {
                edges.push((lp, lb));
            }
        }
        for &p in &preds[g as usize] {
            if let Ok(lp) = ids.binary_search(&p) {
                edges.push((lp, lb));
            }
        }
    }
    greedy_fas_order(ids.len(), &edges)
        .into_iter()
        .map(|l| ids[l])
        .collect()
}

/// Greedy feedback-arc-set ordering of a (possibly cyclic) graph over nodes
/// `0..n`: returns a permutation in which the number of edges pointing
/// "backwards" is heuristically minimized. Self-loops and duplicate edges
/// are ignored; ties break on the smallest node index.
pub fn greedy_fas_order(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut uniq: Vec<(usize, usize)> = edges.iter().copied().filter(|(a, b)| a != b).collect();
    uniq.sort_unstable();
    uniq.dedup();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &uniq {
        succ[a].push(b);
        pred[b].push(a);
    }
    let mut outdeg: Vec<isize> = succ.iter().map(|v| v.len() as isize).collect();
    let mut indeg: Vec<isize> = pred.iter().map(|v| v.len() as isize).collect();
    let mut removed = vec![false; n];
    let mut remaining = n;
    let mut left: Vec<usize> = Vec::new();
    let mut right: Vec<usize> = Vec::new();
    let remove =
        |v: usize, removed: &mut Vec<bool>, outdeg: &mut Vec<isize>, indeg: &mut Vec<isize>| {
            removed[v] = true;
            for &s in &succ[v] {
                if !removed[s] {
                    indeg[s] -= 1;
                }
            }
            for &p in &pred[v] {
                if !removed[p] {
                    outdeg[p] -= 1;
                }
            }
        };
    while remaining > 0 {
        // Peel sinks (to the right) and sources (to the left) until neither
        // exists, then break one cycle by ejecting the best spreader.
        let mut progressed = true;
        while progressed {
            progressed = false;
            while let Some(v) = (0..n).find(|&v| !removed[v] && outdeg[v] == 0) {
                remove(v, &mut removed, &mut outdeg, &mut indeg);
                right.push(v);
                remaining -= 1;
                progressed = true;
            }
            while let Some(v) = (0..n).find(|&v| !removed[v] && indeg[v] == 0) {
                remove(v, &mut removed, &mut outdeg, &mut indeg);
                left.push(v);
                remaining -= 1;
                progressed = true;
            }
        }
        if remaining > 0 {
            let v = (0..n)
                .filter(|&v| !removed[v])
                .max_by_key(|&v| (outdeg[v] - indeg[v], std::cmp::Reverse(v)))
                .expect("remaining nodes exist");
            remove(v, &mut removed, &mut outdeg, &mut indeg);
            left.push(v);
            remaining -= 1;
        }
    }
    right.reverse();
    left.extend(right);
    left
}

/// Per-region initial resource pools: each region gets the lower-bound set
/// its own ops demand. Region pools are what makes binding region-local —
/// both the incremental engine and the reference driver build their global
/// resource set by concatenating these pools in region order (see
/// [`concat_pools`]), so they solve the identical problem.
pub fn region_pools(
    body: &LinearBody,
    plan: &RegionPlan,
    slots_per_instance: u32,
) -> Vec<ResourceSet> {
    plan.regions
        .iter()
        .map(|r| {
            let ops: Vec<OpId> = r.ops.iter().map(|&g| OpId::from_raw(g)).collect();
            initial_resource_set_for_ops(body, &ops, slots_per_instance)
        })
        .collect()
}

/// Concatenates per-region pools into one global [`ResourceSet`] (instance
/// ids allocated in region order) and returns, per instance, the region that
/// owns it.
pub fn concat_pools(pools: &[ResourceSet]) -> (ResourceSet, Vec<u32>) {
    let mut set = ResourceSet::new();
    let mut inst_region = Vec::new();
    for (r, pool) in pools.iter().enumerate() {
        for inst in pool.iter() {
            set.add(inst.ty.clone());
            inst_region.push(r as u32);
        }
    }
    (set, inst_region)
}

/// The region that receives a new instance of `ty` after an `AddResource`
/// action: the region of the first resource-contention restraint naming the
/// type, skipping ops that also have negative slack — the same filter
/// [`choose_action`](crate::relax::choose_action) applied when it proposed
/// the action, so the owner is the op the action was created for. Both
/// scheduling drivers derive the owner from the same restraint list and
/// therefore agree.
pub(crate) fn owner_region(restraints: &[Restraint], ty: &ResourceType, region_of: &[u32]) -> u32 {
    let name = ty.name();
    for r in restraints {
        if let Restraint::ResourceContention { op, ty: rty } = r {
            if rty.name() == name {
                let also_slack = restraints
                    .iter()
                    .any(|o| matches!(o, Restraint::NegativeSlack { op: o2, .. } if o2 == op));
                if also_slack {
                    continue;
                }
                return region_of.get(op.index()).copied().unwrap_or(0);
            }
        }
    }
    0
}

/// The regions that receive the instances of an `AddResourceBatch` action:
/// one per distinct operation with a contention restraint naming the type, in
/// restraint order, padded with region 0 if the restraint list yields fewer
/// than `count` owners. Both scheduling drivers derive the owners from the
/// same restraint list and therefore agree.
pub(crate) fn batch_owner_regions(
    restraints: &[Restraint],
    ty: &ResourceType,
    count: usize,
    region_of: &[u32],
) -> Vec<u32> {
    let name = ty.name();
    let slack_ops: std::collections::HashSet<OpId> = restraints
        .iter()
        .filter_map(|r| match r {
            Restraint::NegativeSlack { op, .. } => Some(*op),
            _ => None,
        })
        .collect();
    let mut seen: std::collections::HashSet<OpId> = std::collections::HashSet::new();
    let mut owners = Vec::with_capacity(count);
    // Two rounds: pure-contention ops first — the ops the normal candidate
    // source counted — then contention-with-timing ops, which only the
    // deadlock escape proposes hardware for.
    for round in 0..2 {
        for r in restraints {
            if owners.len() >= count {
                break;
            }
            if let Restraint::ResourceContention { op, ty: rty } = r {
                if (round == 1) != slack_ops.contains(op) {
                    continue;
                }
                if rty.name() == name && seen.insert(*op) {
                    owners.push(region_of.get(op.index()).copied().unwrap_or(0));
                }
            }
        }
    }
    owners.resize(count, 0);
    owners
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::analysis::sccs;
    use hls_ir::{Dfg, LinearBody, OpKind, PortDirection, Signal};

    /// in → a → b → c → out : a pure chain.
    fn chain_body() -> LinearBody {
        let mut dfg = Dfg::new();
        let pin = dfg.add_port("in", PortDirection::Input, 16);
        let pout = dfg.add_port("out", PortDirection::Output, 16);
        let r = dfg.add_op(OpKind::Read(pin), 16, vec![]);
        let a = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(r, 16), Signal::constant(1, 16)],
        );
        let b = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(a, 16), Signal::constant(2, 16)],
        );
        let c = dfg.add_op(
            OpKind::Add,
            16,
            vec![Signal::op_w(b, 16), Signal::constant(3, 16)],
        );
        dfg.add_op(OpKind::Write(pout), 16, vec![Signal::op_w(c, 16)]);
        LinearBody::from_dfg("chain", dfg)
    }

    #[test]
    fn trivial_plan_shape() {
        let p = RegionPlan::trivial(4);
        assert!(p.is_trivial());
        assert_eq!(p.regions[0].ops, vec![0, 1, 2, 3]);
        assert_eq!(p.components, vec![(0, 1)]);
        assert!(p.regions[0].boundary.is_empty());
    }

    #[test]
    fn chain_with_target_one_puts_every_op_in_its_own_region() {
        let body = chain_body();
        let comps = sccs(&body.dfg);
        let plan = RegionPlan::build(&body, &comps, 1);
        assert_eq!(plan.regions.len(), body.dfg.num_ops());
        // Topological: every region's boundary consumers point forward.
        for (ri, r) in plan.regions.iter().enumerate() {
            for cons in &r.consumers {
                for &c in cons {
                    assert!(c as usize > ri, "consumers must be downstream");
                }
            }
        }
        // The chain's cut values are exactly the four producer→consumer arcs.
        let cuts: usize = plan.regions.iter().map(|r| r.boundary.len()).sum();
        assert_eq!(cuts, 4);
    }

    #[test]
    fn large_target_collapses_to_one_region() {
        let body = chain_body();
        let comps = sccs(&body.dfg);
        let plan = RegionPlan::build(&body, &comps, 1000);
        assert!(plan.is_trivial());
        assert!(plan.regions[0].boundary.is_empty());
    }

    #[test]
    fn greedy_fas_is_topological_on_dags() {
        // 0→1→2→3 plus 0→2: any feedback-free order is 0,1,2,3.
        let order = greedy_fas_order(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn greedy_fas_breaks_cycles_with_minimal_feedback() {
        // A 3-cycle with an extra forward chain hanging off node 1:
        // 0→1→2→0 and 1→3→4. One feedback edge is unavoidable; all chain
        // edges must stay forward.
        let edges = [(0, 1), (1, 2), (2, 0), (1, 3), (3, 4)];
        let order = greedy_fas_order(5, &edges);
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        let feedback = edges.iter().filter(|&&(a, b)| pos[a] > pos[b]).count();
        assert_eq!(
            feedback, 1,
            "exactly one cycle edge goes backwards: {order:?}"
        );
    }

    #[test]
    fn carried_accumulator_scc_stays_atomic() {
        // acc = acc@-1 + in : a self-loop SCC; with target 1 the SCC op is
        // still a single region (atomic), and the carried edge imposes no
        // region precedence.
        let mut dfg = Dfg::new();
        let pin = dfg.add_port("in", PortDirection::Input, 16);
        let pout = dfg.add_port("out", PortDirection::Output, 16);
        let r = dfg.add_op(OpKind::Read(pin), 16, vec![]);
        let acc = dfg.add_op(OpKind::Add, 16, vec![Signal::op_w(r, 16)]);
        let acc_self = Signal::carried(acc, 16, 1);
        dfg.op_mut(acc).inputs.push(acc_self);
        dfg.add_op(OpKind::Write(pout), 16, vec![Signal::op_w(acc, 16)]);
        let body = LinearBody::from_dfg("acc", dfg);
        let comps = sccs(&body.dfg);
        assert_eq!(comps.len(), 1, "the accumulator forms one SCC");
        let plan = RegionPlan::build(&body, &comps, 1);
        assert_eq!(plan.regions.len(), 3);
        let acc_region = plan.region_of[acc.index()] as usize;
        assert_eq!(plan.regions[acc_region].ops, vec![acc.index() as u32]);
    }

    #[test]
    fn pool_concatenation_tracks_owning_region() {
        let body = chain_body();
        let comps = sccs(&body.dfg);
        let plan = RegionPlan::build(&body, &comps, 2);
        let pools = region_pools(&body, &plan, 4);
        let (set, inst_region) = concat_pools(&pools);
        assert_eq!(set.len(), inst_region.len());
        let total: usize = pools.iter().map(|p| p.len()).sum();
        assert_eq!(set.len(), total);
        assert!(inst_region.windows(2).all(|w| w[0] <= w[1]));
    }
}
