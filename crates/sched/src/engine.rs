//! The dense, incremental scheduling engine behind both [`schedule_pass`]
//! (one-shot, from scratch) and the multi-pass [`Scheduler`] driver
//! (incremental across relaxation actions).
//!
//! [`schedule_pass`]: crate::pass::schedule_pass
//! [`Scheduler`]: crate::scheduler::Scheduler
//!
//! # Arena layout
//!
//! Every hot table is a flat `Vec` indexed by dense ids: per-operation state
//! lives in [`DenseOpMap`]-style vectors (`placed`, `first_considered`,
//! `last_reasons`), resource classes are interned to [`ResourceClassId`]s,
//! the busy table is one `Vec` indexed by
//! `instance * fold_states + folded_state`, and the combinational-cycle
//! graph is an adjacency `Vec` over resource indices with epoch-marked DFS.
//! Nothing on the placement path hashes a key or allocates.
//!
//! # Incremental re-passes
//!
//! The greedy pass is deterministic: given (latency, resources, forbidden
//! bindings, SCC stages) it always makes the same decisions in the same
//! order. The engine snapshots the mutable pass state at the start of every
//! control step. When a relaxation action changes one of the inputs, the
//! next pass resumes from the earliest state whose decisions could possibly
//! observe the change, replaying only the invalidated cone:
//!
//! * `AddState` — nothing before the old latency can observe the new state
//!   (the priority order is compared explicitly; if mobility saturation
//!   reordered ops the pass falls back to a full re-run), so the pass
//!   *continues* from the previous final state;
//! * `AddResource(ty)` — only operations of `ty`'s class observe the new
//!   instance (compatibility lists and sharing factors are per class), so
//!   the pass resumes from the first state where any such operation was
//!   considered;
//! * `MoveScc` — only members of the moved SCC observe their stage window,
//!   so the pass resumes from the first state where one was considered;
//! * `ForbidBinding` — only the forbidden operation observes the set, so
//!   the pass resumes from the first state where it was considered.
//!
//! Everything before the resume point is restored from the snapshot in
//! O(ops); the busy table and combinational graph are pure functions of the
//! placement and are rebuilt from it. The replayed suffix makes exactly the
//! decisions a from-scratch pass would make, which is what the
//! schedule-equivalence regression suite (`tests/schedule_equivalence.rs`)
//! asserts against [`Scheduler::run_reference`].
//!
//! [`Scheduler::run_reference`]: crate::scheduler::Scheduler::run_reference

use crate::config::SchedulerConfig;
use crate::pass::PassFailure;
use crate::relax::{RelaxAction, Restraint};
use hls_ir::analysis::Scc;
use hls_ir::{LinearBody, OpId, OpKind, PinnedState};
use hls_netlist::ChainTiming;
use hls_netlist::{ScheduleDesc, ScheduledOp};
use hls_tech::{
    Interner, ResourceClass, ResourceClassId, ResourceInstanceId, ResourceSet, ResourceType,
    ResourceTypeId, TechLibrary,
};

/// Cached predicate literals for the allocation-free mutual-exclusivity
/// test. `lits` is sorted by condition op (the order `Predicate::literals`
/// produces); each entry records whether the condition occurs with positive
/// and/or negative polarity.
#[derive(Clone, Debug, Default)]
struct PredLits {
    is_true: bool,
    lits: Vec<(OpId, bool, bool)>,
}

impl PredLits {
    fn of(pred: &hls_ir::Predicate) -> Self {
        let lits = pred
            .literals()
            .into_iter()
            .map(|(cond, pols)| (cond, pols.contains(&true), pols.contains(&false)))
            .collect();
        PredLits {
            is_true: pred.is_true(),
            lits,
        }
    }

    /// Mirrors `Predicate::mutually_exclusive` over the cached literals.
    fn mutually_exclusive(&self, other: &PredLits) -> bool {
        if self.is_true || other.is_true {
            return false;
        }
        for &(cond, a_true, a_false) in &self.lits {
            if let Ok(pos) = other.lits.binary_search_by_key(&cond, |l| l.0) {
                let (_, b_true, b_false) = other.lits[pos];
                if (a_true && b_false && !a_false && !b_true)
                    || (a_false && b_true && !a_true && !b_false)
                {
                    return true;
                }
            }
        }
        false
    }
}

/// Immutable per-run precomputation: everything about the body that no
/// relaxation action can change, computed once per `Scheduler::run` instead
/// of once per pass (or worse, once per placement attempt).
struct PassStatics {
    n: usize,
    /// Distance-0 producers per op (duplicates preserved, as in `Dfg::preds`).
    preds: Vec<Vec<OpId>>,
    /// Extra precedence edges from I/O ordering, keyed by the later op.
    extra_preds: Vec<Vec<OpId>>,
    pin: Vec<Option<PinnedState>>,
    /// The op's required resource type (including `IoPort` interface types).
    required_ty: Vec<Option<ResourceType>>,
    /// Whether the op occupies a datapath resource (non-`IoPort`).
    needs_resource: Vec<bool>,
    /// Interned class of datapath ops.
    class_id: Vec<Option<ResourceClassId>>,
    /// Interned required type of datapath ops.
    required_type_id: Vec<Option<ResourceTypeId>>,
    /// Combinational delay per interned type (indexed by `ResourceTypeId`);
    /// replaces the per-attempt `ResourceType` hash of the delay cache.
    type_delay: Vec<f64>,
    /// Widest operand/result width per interned type (mux sizing).
    type_width: Vec<u16>,
    complexity: Vec<f64>,
    asap: Vec<u32>,
    /// Longest distance-0 successor chain below each op.
    below: Vec<u32>,
    fanout: Vec<usize>,
    /// Predicate condition ops, filled only for side-effecting ops.
    cond_ops: Vec<Vec<OpId>>,
    has_side_effects: Vec<bool>,
    pred_lits: Vec<PredLits>,
    scc_of: Vec<Option<u32>>,
    /// Datapath operations per interned class (sharing-factor numerator).
    ops_per_class: Vec<usize>,
    /// Whether the op is a free/IO op whose arrival is a register launch.
    launches_from_register: Vec<bool>,
}

impl PassStatics {
    fn build(body: &LinearBody, lib: &TechLibrary, sccs: &[Scc], interner: &mut Interner) -> Self {
        let n = body.dfg.num_ops();
        let mut preds: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, op) in body.dfg.iter_ops() {
            for sig in &op.inputs {
                if sig.distance == 0 {
                    if let Some(p) = sig.producer() {
                        preds[id.index()].push(p);
                        succs[p.index()].push(id.index());
                    }
                }
            }
        }
        let mut extra_preds: Vec<Vec<OpId>> = vec![Vec::new(); n];
        for (a, b) in body.io_order_deps() {
            extra_preds[b.index()].push(a);
        }

        // ASAP levels and below-heights over the distance-0 dependence graph,
        // via one topological sweep each (same values as
        // `analysis::asap_levels` / the height pass of `alap_levels`).
        let order = body
            .dfg
            .topo_order()
            .expect("scheduling requires an acyclic intra-iteration dependence graph");
        let mut asap = vec![0u32; n];
        for &id in &order {
            let l = preds[id.index()]
                .iter()
                .map(|p| asap[p.index()] + 1)
                .max()
                .unwrap_or(0);
            asap[id.index()] = l;
        }
        let mut below = vec![0u32; n];
        for &id in order.iter().rev() {
            let l = succs[id.index()]
                .iter()
                .map(|&s| below[s] + 1)
                .max()
                .unwrap_or(0);
            below[id.index()] = l;
        }

        // Transitive fanout cone sizes (distinct distance-0 consumers), with
        // a shared adjacency and an epoch-marked visited set.
        let mut fanout = vec![0usize; n];
        let mut mark = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        for (root, cone) in fanout.iter_mut().enumerate() {
            let mut count = 0usize;
            stack.clear();
            stack.push(root);
            // the root itself is not part of its cone unless reached again
            while let Some(v) = stack.pop() {
                for &s in &succs[v] {
                    if mark[s] != root {
                        mark[s] = root;
                        count += 1;
                        stack.push(s);
                    }
                }
            }
            *cone = count;
        }

        let mut required_ty = vec![None; n];
        let mut needs_resource = vec![false; n];
        let mut class_id = vec![None; n];
        let mut required_type_id = vec![None; n];
        let mut type_delay: Vec<f64> = Vec::new();
        let mut type_width: Vec<u16> = Vec::new();
        let mut complexity = vec![0.0f64; n];
        let mut cond_ops: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut has_side_effects = vec![false; n];
        let mut pred_lits = vec![PredLits::default(); n];
        let mut launches_from_register = vec![false; n];
        let mut ops_per_class: Vec<usize> = Vec::new();
        for (id, op) in body.dfg.iter_ops() {
            let i = id.index();
            let ty = ResourceType::for_op(op);
            if let Some(ty) = &ty {
                if !matches!(ty.class, ResourceClass::IoPort) {
                    needs_resource[i] = true;
                    complexity[i] = lib.delay_ps(ty);
                    let cid = interner.class_id(&ty.class);
                    if cid.index() >= ops_per_class.len() {
                        ops_per_class.resize(cid.index() + 1, 0);
                    }
                    ops_per_class[cid.index()] += 1;
                    class_id[i] = Some(cid);
                    let tid = interner.type_id(ty);
                    if tid.index() >= type_delay.len() {
                        type_delay.push(lib.delay_ps(ty));
                        type_width.push(ty.max_width());
                    }
                    required_type_id[i] = Some(tid);
                }
            }
            required_ty[i] = ty;
            has_side_effects[i] = op.kind.has_side_effects();
            if has_side_effects[i] {
                cond_ops[i] = op.predicate.condition_ops();
            }
            pred_lits[i] = PredLits::of(&op.predicate);
            launches_from_register[i] = matches!(op.kind, OpKind::Read(_) | OpKind::Pass);
        }

        let mut scc_of = vec![None; n];
        for (si, scc) in sccs.iter().enumerate() {
            for &op in &scc.ops {
                scc_of[op.index()] = Some(si as u32);
            }
        }

        let pin = (0..n)
            .map(|i| body.pin_of(OpId::from_raw(i as u32)))
            .collect();

        PassStatics {
            n,
            preds,
            extra_preds,
            pin,
            required_ty,
            needs_resource,
            class_id,
            required_type_id,
            type_delay,
            type_width,
            complexity,
            asap,
            below,
            fanout,
            cond_ops,
            has_side_effects,
            pred_lits,
            scc_of,
            ops_per_class,
            launches_from_register,
        }
    }
}

/// One placed operation: its control step, binding and output arrival time.
#[derive(Clone, Copy, Debug, PartialEq)]
struct PlacedOp {
    state: u32,
    resource: Option<ResourceInstanceId>,
    arrival: f64,
}

/// The mutable pass state — everything a control step's decisions can read
/// or write. Cloning it (one `Vec` clone per field) is what a per-state
/// snapshot costs; the busy table and combinational graph are derived from
/// `placed` and deliberately excluded.
#[derive(Clone)]
struct Frame {
    placed: Vec<Option<PlacedOp>>,
    num_placed: usize,
    scc_dyn_stage: Vec<Option<u32>>,
    /// Reasons recorded by the op's latest failed binding attempt; `None`
    /// means the op was never attempted (the failure report treats an
    /// attempted-but-reasonless op differently from a never-attempted one).
    last_reasons: Vec<Option<Vec<Restraint>>>,
    first_considered: Vec<Option<u32>>,
    min_slack: f64,
}

impl Frame {
    fn fresh(n: usize, scc_stage_input: &[Option<u32>]) -> Self {
        Frame {
            placed: vec![None; n],
            num_placed: 0,
            scc_dyn_stage: scc_stage_input.to_vec(),
            last_reasons: vec![None; n],
            first_considered: vec![None; n],
            min_slack: f64::INFINITY,
        }
    }
}

/// Outcome of one engine pass (the schedule itself stays inside the engine
/// until the driver extracts it, so success allocates nothing).
pub(crate) enum EngineOutcome {
    Success { min_slack_ps: f64 },
    Failure(PassFailure),
}

/// The incremental scheduling engine. Owns the allocated resources, the
/// relaxation inputs and the persisted pass state; `run_pass(resume_from)`
/// executes one (possibly partial) pass and `apply` folds a relaxation
/// action in, returning the resume point for the next pass.
pub(crate) struct Engine<'a> {
    body: &'a LinearBody,
    lib: &'a TechLibrary,
    config: &'a SchedulerConfig,
    statics: PassStatics,
    interner: Interner,
    timing: ChainTiming<'a>,
    sccs: &'a [Scc],

    // relaxation inputs
    pub(crate) resources: ResourceSet,
    forbidden: Vec<Vec<ResourceInstanceId>>,
    scc_stage_input: Vec<Option<u32>>,
    pub(crate) latency: u32,

    // derived, maintained across passes
    insts_per_class: Vec<usize>,
    /// Interned type per resource instance, in instance-id order.
    inst_type_ids: Vec<ResourceTypeId>,
    compat: Vec<Vec<ResourceInstanceId>>,
    order: Vec<OpId>,

    // persisted pass state
    frame: Frame,
    snapshots: Vec<Frame>,

    // scratch reused across passes
    busy: Vec<Vec<OpId>>,
    comb_succ: Vec<Vec<u32>>,
    comb_mark: Vec<u32>,
    comb_epoch: u32,
    ready: Vec<OpId>,
    in_arrivals: Vec<f64>,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        body: &'a LinearBody,
        lib: &'a TechLibrary,
        config: &'a SchedulerConfig,
        sccs: &'a [Scc],
        resources: ResourceSet,
        latency: u32,
    ) -> Self {
        let mut interner = Interner::new();
        let statics = PassStatics::build(body, lib, sccs, &mut interner);
        let n = statics.n;
        let num_classes = interner.num_classes();
        let mut engine = Engine {
            body,
            lib,
            config,
            statics,
            interner,
            timing: ChainTiming::new(lib, config.clock),
            sccs,
            resources: ResourceSet::new(),
            forbidden: vec![Vec::new(); n],
            scc_stage_input: vec![None; sccs.len()],
            latency: latency.max(1),
            insts_per_class: vec![0; num_classes],
            inst_type_ids: Vec::new(),
            compat: vec![Vec::new(); n],
            order: Vec::new(),
            frame: Frame::fresh(n, &[]),
            snapshots: Vec::new(),
            busy: Vec::new(),
            comb_succ: Vec::new(),
            comb_mark: Vec::new(),
            comb_epoch: 0,
            ready: Vec::with_capacity(n),
            in_arrivals: Vec::with_capacity(8),
        };
        engine.frame = Frame::fresh(n, &engine.scc_stage_input);
        for inst in resources.iter() {
            engine.note_instance(&inst.ty);
        }
        engine.resources = resources;
        engine.rebuild_compat();
        engine.order = engine.order_for(engine.latency);
        engine
    }

    /// Seeds the relaxation inputs (used by the one-shot `schedule_pass`
    /// wrapper to honour an explicit `PassInput`).
    pub(crate) fn seed_inputs(
        &mut self,
        forbidden: impl IntoIterator<Item = (OpId, ResourceInstanceId)>,
        scc_stage: impl IntoIterator<Item = (usize, u32)>,
    ) {
        for (op, res) in forbidden {
            if op.index() < self.forbidden.len() {
                self.forbidden[op.index()].push(res);
            }
        }
        for (scc, stage) in scc_stage {
            if scc < self.scc_stage_input.len() {
                self.scc_stage_input[scc] = Some(stage);
            }
        }
        self.frame = Frame::fresh(self.statics.n, &self.scc_stage_input);
    }

    /// The SCC stage inputs in the `HashMap`-like shape `choose_action` uses.
    pub(crate) fn scc_stage(&self) -> &[Option<u32>] {
        &self.scc_stage_input
    }

    fn note_instance(&mut self, ty: &ResourceType) {
        let cid = self.interner.class_id(&ty.class);
        if cid.index() >= self.insts_per_class.len() {
            self.insts_per_class.resize(cid.index() + 1, 0);
        }
        if cid.index() >= self.statics.ops_per_class.len() {
            self.statics.ops_per_class.resize(cid.index() + 1, 0);
        }
        self.insts_per_class[cid.index()] += 1;
        let tid = self.interner.type_id(ty);
        if tid.index() >= self.statics.type_delay.len() {
            self.statics.type_delay.push(self.lib.delay_ps(ty));
            self.statics.type_width.push(ty.max_width());
        }
        self.inst_type_ids.push(tid);
    }

    /// Mirrors `ResourceType::can_implement` given the op's precomputed
    /// required type (avoids re-deriving it per check).
    fn type_can_implement(required: &ResourceType, have: &ResourceType) -> bool {
        required.class == have.class
            && required.out_width <= have.out_width
            && required.in_widths.len() <= have.in_widths.len()
            && required
                .in_widths
                .iter()
                .zip(have.in_widths.iter())
                .all(|(need, h)| need <= h)
    }

    fn rebuild_compat(&mut self) {
        for c in &mut self.compat {
            c.clear();
        }
        for i in 0..self.statics.n {
            if let Some(req) = &self.statics.required_ty[i] {
                for inst in self.resources.iter() {
                    if Self::type_can_implement(req, &inst.ty) {
                        self.compat[i].push(inst.id);
                    }
                }
            }
        }
    }

    /// Priority order for a given latency: complexity (delay) descending,
    /// then mobility ascending, then fanout cone descending, then id —
    /// exactly the comparator of the original per-round `ready.sort_by`.
    fn order_for(&self, latency: u32) -> Vec<OpId> {
        let latency = latency.max(1);
        let depth = latency.saturating_sub(1);
        let s = &self.statics;
        let mobility = |i: usize| -> u32 {
            let alap = depth.saturating_sub(s.below[i]);
            alap.saturating_sub(s.asap[i])
        };
        let mut order: Vec<OpId> = (0..s.n as u32).map(OpId::from_raw).collect();
        order.sort_by(|&a, &b| {
            let (ia, ib) = (a.index(), b.index());
            s.complexity[ib]
                .partial_cmp(&s.complexity[ia])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| mobility(ia).cmp(&mobility(ib)))
                .then_with(|| s.fanout[ib].cmp(&s.fanout[ia]))
                .then_with(|| a.cmp(&b))
        });
        order
    }

    /// Applies a relaxation action and returns the state the next pass must
    /// resume from to stay bit-exact with a from-scratch pass.
    pub(crate) fn apply(&mut self, action: &RelaxAction) -> u32 {
        match action {
            RelaxAction::AddState => {
                let old_latency = self.latency;
                self.latency += 1;
                let new_order = self.order_for(self.latency);
                if new_order == self.order {
                    old_latency
                } else {
                    // mobility saturation reordered the priorities; a
                    // truncated-latency prefix is no longer reusable
                    self.order = new_order;
                    0
                }
            }
            RelaxAction::AddResource(ty) => {
                let inst_id = self.resources.add(ty.clone());
                self.note_instance(ty);
                let cid = self.interner.class_id(&ty.class);
                let new_ty = &self.resources.instance(inst_id).ty;
                let mut resume = None;
                for i in 0..self.statics.n {
                    if self.statics.class_id[i] != Some(cid) {
                        continue;
                    }
                    if let Some(req) = &self.statics.required_ty[i] {
                        if Self::type_can_implement(req, new_ty) {
                            self.compat[i].push(inst_id);
                        }
                    }
                    resume = min_opt(resume, self.frame.first_considered[i]);
                }
                resume.unwrap_or(0)
            }
            RelaxAction::MoveScc { scc_index } => {
                let cur = self
                    .scc_stage_input
                    .get(*scc_index)
                    .copied()
                    .flatten()
                    .unwrap_or(0);
                if *scc_index < self.scc_stage_input.len() {
                    self.scc_stage_input[*scc_index] = Some(cur + 1);
                }
                let mut resume = None;
                if let Some(scc) = self.sccs.get(*scc_index) {
                    for &op in &scc.ops {
                        resume = min_opt(resume, self.frame.first_considered[op.index()]);
                    }
                }
                resume.unwrap_or(0)
            }
            RelaxAction::ForbidBinding { op, resource } => {
                self.forbidden[op.index()].push(*resource);
                self.frame.first_considered[op.index()].unwrap_or(0)
            }
        }
    }

    fn fold(&self, state: u32, ii: u32) -> u32 {
        if self.config.pipeline.is_some() {
            state % ii
        } else {
            state
        }
    }

    fn scc_window(&self, idx: usize, dyn_stage: &[Option<u32>], ii: u32) -> Option<(u32, u32)> {
        dyn_stage[idx].map(|stage| (stage * ii, (stage * ii + ii - 1).min(self.latency - 1)))
    }

    /// Rebuilds the busy table and combinational graph from the current
    /// placement (they are pure functions of it).
    fn rebuild_derived(&mut self, fold_states: u32, ii: u32) {
        let slots = self.resources.len() * fold_states as usize;
        for b in &mut self.busy {
            b.clear();
        }
        if self.busy.len() < slots {
            self.busy.resize_with(slots, Vec::new);
        }
        for c in &mut self.comb_succ {
            c.clear();
        }
        if self.comb_succ.len() < self.resources.len() {
            self.comb_succ.resize_with(self.resources.len(), Vec::new);
            self.comb_mark.resize(self.resources.len(), 0);
        }
        for i in 0..self.statics.n {
            let Some(p) = &self.frame.placed[i] else {
                continue;
            };
            if let Some(r) = p.resource {
                let slot = r.index() * fold_states as usize + self.fold(p.state, ii) as usize;
                self.busy[slot].push(OpId::from_raw(i as u32));
            }
        }
        for i in 0..self.statics.n {
            let Some(pc) = self.frame.placed[i] else {
                continue;
            };
            let Some(rc) = pc.resource else { continue };
            for sig in &self.body.dfg.op(OpId::from_raw(i as u32)).inputs {
                if sig.distance > 0 {
                    continue;
                }
                let Some(prod) = sig.producer() else { continue };
                let Some(pp) = self.frame.placed[prod.index()] else {
                    continue;
                };
                if pp.state == pc.state {
                    if let Some(rp) = pp.resource {
                        comb_add_edge(&mut self.comb_succ, rp.0, rc.0);
                    }
                }
            }
        }
    }

    /// Mirrors `CombGraph::would_create_cycle`: adding `from → to` closes a
    /// cycle iff `from == to` or a path `to → … → from` already exists.
    fn comb_would_create_cycle(&mut self, from: u32, to: u32) -> bool {
        if from == to {
            return true;
        }
        self.comb_epoch += 1;
        let epoch = self.comb_epoch;
        let mut dfs: Vec<u32> = vec![to];
        while let Some(v) = dfs.pop() {
            if self.comb_mark[v as usize] == epoch {
                continue;
            }
            self.comb_mark[v as usize] = epoch;
            for &s in &self.comb_succ[v as usize] {
                if s == from {
                    return true;
                }
                dfs.push(s);
            }
        }
        false
    }

    /// Runs one pass from `resume_from`, restoring the snapshot when
    /// resuming mid-schedule. `resume_from = 0` is a full, from-scratch pass.
    pub(crate) fn run_pass(&mut self, resume_from: u32) -> EngineOutcome {
        let latency = self.latency.max(1);
        let config = self.config;
        let ii = config.ii_or(latency);
        let pipelined = config.pipeline.is_some();
        let sharing = config.sharing_possible();
        let n = self.statics.n;

        // --- restore ---------------------------------------------------------
        let resume_from = resume_from.min(latency);
        if resume_from == 0 {
            self.frame = Frame::fresh(n, &self.scc_stage_input);
            self.snapshots.clear();
        } else if (resume_from as usize) < self.snapshots.len() {
            self.frame = self.snapshots[resume_from as usize].clone();
            self.snapshots.truncate(resume_from as usize);
            // re-apply the (possibly updated) input stage pins; for sccs
            // whose input is unchanged this is a no-op
            for (i, stage) in self.scc_stage_input.iter().enumerate() {
                if let Some(v) = stage {
                    self.frame.scc_dyn_stage[i] = Some(*v);
                }
            }
        } else {
            // continue from the live frame (AddState append); snapshots for
            // the existing states remain valid
            self.snapshots.truncate(resume_from as usize);
        }
        let fold_states = if pipelined { ii } else { latency };
        self.rebuild_derived(fold_states, ii);

        // --- control steps ---------------------------------------------------
        for state in resume_from..latency {
            debug_assert_eq!(self.snapshots.len(), state as usize);
            self.snapshots.push(self.frame.clone());
            loop {
                // ready operations, already in priority order
                self.ready.clear();
                let mut ready = std::mem::take(&mut self.ready);
                for idx in 0..self.order.len() {
                    let op_id = self.order[idx];
                    let i = op_id.index();
                    if self.frame.placed[i].is_some() {
                        continue;
                    }
                    let preds_ok = self.statics.preds[i].iter().all(|p| {
                        self.frame.placed[p.index()]
                            .map(|s| s.state <= state)
                            .unwrap_or(false)
                    }) && self.statics.extra_preds[i].iter().all(|p| {
                        self.frame.placed[p.index()]
                            .map(|s| s.state <= state)
                            .unwrap_or(false)
                    });
                    if !preds_ok {
                        continue;
                    }
                    if let Some(pin) = self.statics.pin[i] {
                        if !pin.allows(hls_ir::StateIdx::new(state)) {
                            continue;
                        }
                    }
                    if self.frame.first_considered[i].is_none() {
                        self.frame.first_considered[i] = Some(state);
                    }
                    if let Some(scc) = self.statics.scc_of[i] {
                        if let Some((lo, hi)) =
                            self.scc_window(scc as usize, &self.frame.scc_dyn_stage, ii)
                        {
                            if state < lo || state > hi {
                                continue;
                            }
                        }
                    }
                    ready.push(op_id);
                }
                if ready.is_empty() {
                    self.ready = ready;
                    break;
                }

                let mut placed_any = false;
                for &op_id in &ready {
                    if self.try_place(op_id, state, ii, fold_states, sharing) {
                        placed_any = true;
                    }
                }
                self.ready = ready;
                if !placed_any {
                    break;
                }
            }
        }

        // --- outcome ---------------------------------------------------------
        if self.frame.num_placed == n {
            let min_slack_ps = if self.frame.min_slack.is_finite() {
                self.frame.min_slack
            } else {
                config.clock.period_ps()
            };
            EngineOutcome::Success { min_slack_ps }
        } else {
            let mut failure = PassFailure {
                scheduled: self.frame.num_placed,
                ..PassFailure::default()
            };
            for i in 0..n {
                if self.frame.placed[i].is_some() {
                    continue;
                }
                let preds_ok = self.statics.preds[i]
                    .iter()
                    .all(|p| self.frame.placed[p.index()].is_some());
                if !preds_ok {
                    continue;
                }
                let id = OpId::from_raw(i as u32);
                failure.failed_ops.push(id);
                if let Some(rs) = &self.frame.last_reasons[i] {
                    failure.restraints.extend(rs.iter().cloned());
                } else if let Some(ty) = &self.statics.required_ty[i] {
                    failure.restraints.push(Restraint::ResourceContention {
                        op: id,
                        ty: ty.clone(),
                    });
                }
            }
            EngineOutcome::Failure(failure)
        }
    }

    /// Attempts to place one ready operation in `state`. Returns whether a
    /// placement happened. Mirrors the original pass body exactly.
    #[allow(clippy::too_many_lines)]
    fn try_place(
        &mut self,
        op_id: OpId,
        state: u32,
        ii: u32,
        fold_states: u32,
        sharing: bool,
    ) -> bool {
        let i = op_id.index();
        let op = self.body.dfg.op(op_id);

        // input arrival times
        let mut inputs_ready = true;
        self.in_arrivals.clear();
        let mut in_arrivals = std::mem::take(&mut self.in_arrivals);
        for sig in &op.inputs {
            let a = match sig.producer() {
                None => 0.0,
                Some(_) if sig.distance > 0 => self.timing.register_arrival_ps(),
                Some(p) => match self.frame.placed[p.index()] {
                    Some(sp) if sp.state < state => self.timing.register_arrival_ps(),
                    Some(sp) if sp.state == state => sp.arrival,
                    _ => {
                        inputs_ready = false;
                        0.0
                    }
                },
            };
            in_arrivals.push(a);
        }
        if self.statics.has_side_effects[i] {
            for cond in &self.statics.cond_ops[i] {
                match self.frame.placed[cond.index()] {
                    Some(sp) if sp.state < state => {
                        in_arrivals.push(self.timing.register_arrival_ps());
                    }
                    Some(sp) if sp.state == state => {
                        in_arrivals.push(sp.arrival);
                    }
                    _ => inputs_ready = false,
                }
            }
        }
        if !inputs_ready {
            self.in_arrivals = in_arrivals;
            return false;
        }

        if !self.statics.needs_resource[i] {
            let a = if self.statics.launches_from_register[i] {
                self.timing.register_arrival_ps()
            } else {
                in_arrivals.iter().copied().fold(0.0f64, f64::max)
            };
            self.frame.placed[i] = Some(PlacedOp {
                state,
                resource: None,
                arrival: a,
            });
            self.frame.num_placed += 1;
            self.in_arrivals = in_arrivals;
            return true;
        }

        let class = self.statics.class_id[i].expect("datapath op has a class");
        let share = {
            let ops = self.statics.ops_per_class[class.index()].max(1);
            let insts = self.insts_per_class[class.index()].max(1);
            ops.div_ceil(insts)
        };

        let mut reasons: Vec<Restraint> = Vec::new();
        let mut bound = false;
        let compat = std::mem::take(&mut self.compat[i]);
        for &res_id in &compat {
            if self.forbidden[i].contains(&res_id) {
                continue;
            }
            // busy check in this folded state: mutually exclusive predicated
            // ops may share, but only within the *same* control step — in a
            // folded pipeline equivalent states belong to different stages,
            // whose predicates guard different iterations, so cross-stage
            // "mutual exclusion" would not hold in hardware (the binder
            // rejects such slots as unsteerable)
            let slot = res_id.index() * fold_states as usize + self.fold(state, ii) as usize;
            let conflict = self.busy[slot].iter().any(|other| {
                !self.frame.placed[other.index()].is_some_and(|p| p.state == state)
                    || !self.statics.pred_lits[other.index()]
                        .mutually_exclusive(&self.statics.pred_lits[i])
            });
            if conflict {
                reasons.push(Restraint::ResourceContention {
                    op: op_id,
                    ty: self.resources.instance(res_id).ty.clone(),
                });
                continue;
            }
            // timing check (mirrors `ChainTiming::op_arrival_ps` over the
            // interned per-type delay/width tables — no type hashing)
            let tid = self.inst_type_ids[res_id.index()];
            let base = in_arrivals.iter().copied().fold(0.0f64, f64::max);
            let a = base
                + self
                    .timing
                    .input_mux_delay_ps(share, self.statics.type_width[tid.index()])
                + self.statics.type_delay[tid.index()];
            let slack = self.timing.slack_shared_ps(a, op.width, sharing);
            if slack < 0.0 {
                reasons.push(Restraint::NegativeSlack {
                    op: op_id,
                    slack_ps: slack,
                });
                continue;
            }
            // combinational cycle check
            if self.config.avoid_comb_cycles {
                let mut creates_cycle = false;
                for sig in &op.inputs {
                    if sig.distance > 0 {
                        continue;
                    }
                    if let Some(p) = sig.producer() {
                        if let Some(sp) = self.frame.placed[p.index()] {
                            if sp.state == state {
                                if let Some(rp) = sp.resource {
                                    if self.comb_would_create_cycle(rp.0, res_id.0) {
                                        creates_cycle = true;
                                    }
                                }
                            }
                        }
                    }
                }
                if creates_cycle {
                    reasons.push(Restraint::CombCycle {
                        op: op_id,
                        resource: res_id,
                    });
                    continue;
                }
            }
            // accept the binding
            for sig in &op.inputs {
                if sig.distance > 0 {
                    continue;
                }
                if let Some(p) = sig.producer() {
                    if let Some(sp) = self.frame.placed[p.index()] {
                        if sp.state == state {
                            if let Some(rp) = sp.resource {
                                comb_add_edge(&mut self.comb_succ, rp.0, res_id.0);
                            }
                        }
                    }
                }
            }
            self.busy[slot].push(op_id);
            self.frame.placed[i] = Some(PlacedOp {
                state,
                resource: Some(res_id),
                arrival: a,
            });
            self.frame.num_placed += 1;
            self.frame.min_slack = self.frame.min_slack.min(slack);
            // pin the SCC stage on first placement
            if let Some(scc) = self.statics.scc_of[i] {
                let entry = &mut self.frame.scc_dyn_stage[scc as usize];
                if entry.is_none() {
                    *entry = Some(state / ii);
                }
            }
            bound = true;
            break;
        }
        if !bound {
            // If every instance was busy, also check whether a brand new
            // instance would have met timing; if not, the real problem is
            // slack, not hardware.
            if reasons
                .iter()
                .all(|r| matches!(r, Restraint::ResourceContention { .. }))
            {
                if let Some(tid) = self.statics.required_type_id[i] {
                    let base = in_arrivals.iter().copied().fold(0.0f64, f64::max);
                    let a = base
                        + self
                            .timing
                            .input_mux_delay_ps(share, self.statics.type_width[tid.index()])
                        + self.statics.type_delay[tid.index()];
                    let slack = self.timing.slack_shared_ps(a, op.width, sharing);
                    if slack < 0.0 {
                        reasons.push(Restraint::NegativeSlack {
                            op: op_id,
                            slack_ps: slack,
                        });
                    }
                }
            }
            if compat.is_empty() {
                if let Some(ty) = self.statics.required_ty[i].clone() {
                    reasons.push(Restraint::ResourceContention { op: op_id, ty });
                }
            }
            if let Some(scc) = self.statics.scc_of[i] {
                if self
                    .scc_window(scc as usize, &self.frame.scc_dyn_stage, ii)
                    .map(|(_, hi)| state >= hi)
                    .unwrap_or(false)
                {
                    reasons.push(Restraint::SccWindow {
                        scc_index: scc as usize,
                        op: op_id,
                    });
                }
            }
            self.frame.last_reasons[i] = Some(reasons);
        }
        self.compat[i] = compat;
        self.in_arrivals = in_arrivals;
        bound
    }

    /// Extracts the schedule after a successful pass, consuming the engine
    /// (the resource set is moved, not cloned).
    pub(crate) fn into_desc(self) -> ScheduleDesc {
        let mut ops = std::collections::BTreeMap::new();
        for (i, p) in self.frame.placed.iter().enumerate() {
            let p = p.as_ref().expect("into_desc requires a complete schedule");
            let id = OpId::from_raw(i as u32);
            ops.insert(
                id,
                ScheduledOp {
                    op: id,
                    state: p.state,
                    resource: p.resource,
                },
            );
        }
        ScheduleDesc {
            num_states: self.latency,
            ii: self.config.pipeline.map(|p| p.ii),
            ops,
            resources: self.resources,
        }
    }
}

fn comb_add_edge(succ: &mut [Vec<u32>], from: u32, to: u32) {
    let entry = &mut succ[from as usize];
    if !entry.contains(&to) {
        entry.push(to);
    }
}

fn min_opt(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}
