//! The dense, incremental, region-aware scheduling engine behind both
//! [`schedule_pass`] (one-shot, from scratch) and the multi-pass
//! [`Scheduler`] driver (incremental across relaxation actions).
//!
//! [`schedule_pass`]: crate::pass::schedule_pass
//! [`Scheduler`]: crate::scheduler::Scheduler
//!
//! # Arena layout
//!
//! Every hot table is a flat `Vec` indexed by dense ids: per-operation state
//! lives in region-local vectors (`placed`, `first_considered`,
//! `last_reasons`), resource classes are interned to [`ResourceClassId`]s,
//! the busy table is one `Vec` per region indexed by
//! `local_instance * fold_states + folded_state`, and the
//! combinational-cycle graph is an adjacency `Vec` over region-local
//! resource indices with epoch-marked DFS. Nothing on the placement path
//! hashes a key or allocates.
//!
//! # Regions
//!
//! The engine always schedules through a [`RegionPlan`]. The default plan is
//! trivial — one region holding every op, which reproduces the historical
//! monolithic behavior exactly. A non-trivial plan (built by
//! [`RegionPlan::build`] from the SCC condensation) splits the body into
//! topologically ordered regions with **registered cut-value interfaces**: a
//! consumer in another region becomes ready only in a *strictly later* state
//! than its producer and always sees a register-launch arrival. Because
//! cross-region readiness depends only on strictly earlier states, the
//! global state-major fixpoint decomposes into independent per-region
//! fixpoints, and scheduling the regions one after the other (or independent
//! weakly-connected groups in parallel via
//! [`map_indexed`](crate::parallel::map_indexed)) produces exactly the
//! schedule one monolithic pass under the same cut rule would.
//!
//! # Incremental re-passes
//!
//! The greedy pass is deterministic: given (latency, resources, forbidden
//! bindings, SCC stages, upstream interface states) a region always makes
//! the same decisions in the same order. Each region snapshots its mutable
//! state at the start of every control step and carries a private `resume`
//! watermark; a relaxation action dirties only the regions that can observe
//! it:
//!
//! * `AddState` — every region continues from the previous final state
//!   (or replays fully if mobility saturation reordered its priorities);
//! * `AddResource(ty)` — the instance is added to the pool of the region
//!   owning the restraint that provoked it; only that region re-passes,
//!   from the first state where a member of `ty`'s class was considered;
//! * `MoveScc` — only the region containing the SCC re-passes;
//! * `ForbidBinding` — only the region containing the op re-passes.
//!
//! After a region re-runs, its boundary interface (the states of its
//! cut-value producers) is diffed against the last published one; consumer
//! regions replay only if an interface state actually moved, and only from
//! the earliest state that can observe the move. Everything else keeps its
//! cached result — including its failure-report fragment, so a failed
//! pass's restraints are assembled without touching clean regions.
//!
//! The replayed work makes exactly the decisions a from-scratch pass would
//! make, which is what the schedule-equivalence regression suite
//! (`tests/schedule_equivalence.rs`) asserts against
//! [`Scheduler::run_reference`].
//!
//! [`Scheduler::run_reference`]: crate::scheduler::Scheduler::run_reference

use crate::config::SchedulerConfig;
use crate::pass::PassFailure;
use crate::region::RegionPlan;
use crate::relax::{RelaxAction, Restraint};
use hls_ir::analysis::Scc;
use hls_ir::{LinearBody, OpId, OpKind, PinnedState};
use hls_netlist::ChainTiming;
use hls_netlist::{ScheduleDesc, ScheduledOp};
use hls_tech::{
    Interner, ResourceClass, ResourceClassId, ResourceInstanceId, ResourceSet, ResourceType,
    ResourceTypeId, TechLibrary,
};
use std::sync::{Arc, Mutex};

/// Resume watermark marking a region that does not need to re-pass.
const CLEAN: u32 = u32::MAX;

/// Cap on the transitive-fanout cone count used as a scheduling-priority
/// tie-breaker. Counting the exact cone is O(V·E) over the whole body, which
/// dominates setup on 100k-op designs; cones at or above the cap all compare
/// equal, and the remaining tie-breaker (op id) keeps the order
/// deterministic. The cap exceeds every design the equivalence suite runs
/// uncapped comparisons on, and both the engine and the reference pass use
/// the same capped helper, so the two drivers stay bit-identical.
pub(crate) const FANOUT_CONE_CAP: usize = 4096;

/// Transitive distance-0 fanout cone size per op, counting at most `cap`
/// distinct consumers (the DFS stops early once the cap is hit).
pub(crate) fn fanout_cone_sizes(body: &LinearBody, cap: usize) -> Vec<usize> {
    let n = body.dfg.num_ops();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, op) in body.dfg.iter_ops() {
        for sig in &op.inputs {
            if sig.distance == 0 {
                if let Some(p) = sig.producer() {
                    succs[p.index()].push(id.index());
                }
            }
        }
    }
    let mut fanout = vec![0usize; n];
    let mut mark = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    for (root, cone) in fanout.iter_mut().enumerate() {
        let mut count = 0usize;
        stack.clear();
        stack.push(root);
        // the root itself is not part of its cone unless reached again
        'dfs: while let Some(v) = stack.pop() {
            for &s in &succs[v] {
                if mark[s] != root {
                    mark[s] = root;
                    count += 1;
                    if count >= cap {
                        break 'dfs;
                    }
                    stack.push(s);
                }
            }
        }
        *cone = count;
    }
    fanout
}

/// Cached predicate literals for the allocation-free mutual-exclusivity
/// test. `lits` is sorted by condition op (the order `Predicate::literals`
/// produces); each entry records whether the condition occurs with positive
/// and/or negative polarity.
#[derive(Clone, Debug, Default)]
struct PredLits {
    is_true: bool,
    lits: Vec<(OpId, bool, bool)>,
}

impl PredLits {
    fn of(pred: &hls_ir::Predicate) -> Self {
        let lits = pred
            .literals()
            .into_iter()
            .map(|(cond, pols)| (cond, pols.contains(&true), pols.contains(&false)))
            .collect();
        PredLits {
            is_true: pred.is_true(),
            lits,
        }
    }

    /// Mirrors `Predicate::mutually_exclusive` over the cached literals.
    fn mutually_exclusive(&self, other: &PredLits) -> bool {
        if self.is_true || other.is_true {
            return false;
        }
        for &(cond, a_true, a_false) in &self.lits {
            if let Ok(pos) = other.lits.binary_search_by_key(&cond, |l| l.0) {
                let (_, b_true, b_false) = other.lits[pos];
                if (a_true && b_false && !a_false && !b_true)
                    || (a_false && b_true && !a_true && !b_false)
                {
                    return true;
                }
            }
        }
        false
    }
}

/// Immutable per-run precomputation: everything about the body that no
/// relaxation action can change, computed once per `Scheduler::run` instead
/// of once per pass (or worse, once per placement attempt).
struct PassStatics {
    n: usize,
    /// Distance-0 producers per op (duplicates preserved, as in `Dfg::preds`).
    preds: Vec<Vec<OpId>>,
    /// Extra precedence edges from I/O ordering, keyed by the later op.
    extra_preds: Vec<Vec<OpId>>,
    pin: Vec<Option<PinnedState>>,
    /// The op's required resource type (including `IoPort` interface types).
    required_ty: Vec<Option<ResourceType>>,
    /// Whether the op occupies a datapath resource (non-`IoPort`).
    needs_resource: Vec<bool>,
    /// Interned class of datapath ops.
    class_id: Vec<Option<ResourceClassId>>,
    /// Interned required type of datapath ops.
    required_type_id: Vec<Option<ResourceTypeId>>,
    /// Combinational delay per interned type (indexed by `ResourceTypeId`);
    /// replaces the per-attempt `ResourceType` hash of the delay cache.
    type_delay: Vec<f64>,
    /// Widest operand/result width per interned type (mux sizing).
    type_width: Vec<u16>,
    complexity: Vec<f64>,
    asap: Vec<u32>,
    /// Longest distance-0 successor chain below each op.
    below: Vec<u32>,
    fanout: Vec<usize>,
    /// Predicate condition ops, filled only for side-effecting ops.
    cond_ops: Vec<Vec<OpId>>,
    has_side_effects: Vec<bool>,
    pred_lits: Vec<PredLits>,
    scc_of: Vec<Option<u32>>,
    /// Whether the op is a free/IO op whose arrival is a register launch.
    launches_from_register: Vec<bool>,
}

impl PassStatics {
    fn build(body: &LinearBody, lib: &TechLibrary, sccs: &[Scc], interner: &mut Interner) -> Self {
        let n = body.dfg.num_ops();
        let mut preds: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, op) in body.dfg.iter_ops() {
            for sig in &op.inputs {
                if sig.distance == 0 {
                    if let Some(p) = sig.producer() {
                        preds[id.index()].push(p);
                        succs[p.index()].push(id.index());
                    }
                }
            }
        }
        let mut extra_preds: Vec<Vec<OpId>> = vec![Vec::new(); n];
        for (a, b) in body.io_order_deps() {
            extra_preds[b.index()].push(a);
        }

        // ASAP levels and below-heights over the distance-0 dependence graph,
        // via one topological sweep each (same values as
        // `analysis::asap_levels` / the height pass of `alap_levels`).
        let order = body
            .dfg
            .topo_order()
            .expect("scheduling requires an acyclic intra-iteration dependence graph");
        let mut asap = vec![0u32; n];
        for &id in &order {
            let l = preds[id.index()]
                .iter()
                .map(|p| asap[p.index()] + 1)
                .max()
                .unwrap_or(0);
            asap[id.index()] = l;
        }
        let mut below = vec![0u32; n];
        for &id in order.iter().rev() {
            let l = succs[id.index()]
                .iter()
                .map(|&s| below[s] + 1)
                .max()
                .unwrap_or(0);
            below[id.index()] = l;
        }

        let fanout = fanout_cone_sizes(body, FANOUT_CONE_CAP);

        let mut required_ty = vec![None; n];
        let mut needs_resource = vec![false; n];
        let mut class_id = vec![None; n];
        let mut required_type_id = vec![None; n];
        let mut type_delay: Vec<f64> = Vec::new();
        let mut type_width: Vec<u16> = Vec::new();
        let mut complexity = vec![0.0f64; n];
        let mut cond_ops: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut has_side_effects = vec![false; n];
        let mut pred_lits = vec![PredLits::default(); n];
        let mut launches_from_register = vec![false; n];
        for (id, op) in body.dfg.iter_ops() {
            let i = id.index();
            let ty = ResourceType::for_op(op);
            if let Some(ty) = &ty {
                if !matches!(ty.class, ResourceClass::IoPort) {
                    needs_resource[i] = true;
                    complexity[i] = lib.delay_ps(ty);
                    let cid = interner.class_id(&ty.class);
                    class_id[i] = Some(cid);
                    let tid = interner.type_id(ty);
                    if tid.index() >= type_delay.len() {
                        type_delay.push(lib.delay_ps(ty));
                        type_width.push(ty.max_width());
                    }
                    required_type_id[i] = Some(tid);
                }
            }
            required_ty[i] = ty;
            has_side_effects[i] = op.kind.has_side_effects();
            if has_side_effects[i] {
                cond_ops[i] = op.predicate.condition_ops();
            }
            pred_lits[i] = PredLits::of(&op.predicate);
            launches_from_register[i] = matches!(op.kind, OpKind::Read(_) | OpKind::Pass);
        }

        let mut scc_of = vec![None; n];
        for (si, scc) in sccs.iter().enumerate() {
            for &op in &scc.ops {
                scc_of[op.index()] = Some(si as u32);
            }
        }

        let pin = (0..n)
            .map(|i| body.pin_of(OpId::from_raw(i as u32)))
            .collect();

        PassStatics {
            n,
            preds,
            extra_preds,
            pin,
            required_ty,
            needs_resource,
            class_id,
            required_type_id,
            type_delay,
            type_width,
            complexity,
            asap,
            below,
            fanout,
            cond_ops,
            has_side_effects,
            pred_lits,
            scc_of,
            launches_from_register,
        }
    }
}

/// Priority order for a given latency: complexity (delay) descending,
/// then mobility ascending, then fanout cone descending, then id —
/// exactly the comparator of the original per-round `ready.sort_by`.
fn order_for(s: &PassStatics, latency: u32) -> Vec<OpId> {
    let latency = latency.max(1);
    let depth = latency.saturating_sub(1);
    let mobility = |i: usize| -> u32 {
        let alap = depth.saturating_sub(s.below[i]);
        alap.saturating_sub(s.asap[i])
    };
    let mut order: Vec<OpId> = (0..s.n as u32).map(OpId::from_raw).collect();
    order.sort_by(|&a, &b| {
        let (ia, ib) = (a.index(), b.index());
        s.complexity[ib]
            .partial_cmp(&s.complexity[ia])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| mobility(ia).cmp(&mobility(ib)))
            .then_with(|| s.fanout[ib].cmp(&s.fanout[ia]))
            .then_with(|| a.cmp(&b))
    });
    order
}

/// One placed operation: its control step, binding and output arrival time.
#[derive(Clone, Copy, Debug, PartialEq)]
struct PlacedOp {
    state: u32,
    resource: Option<ResourceInstanceId>,
    arrival: f64,
}

/// The mutable per-region pass state — everything a control step's decisions
/// inside one region can read or write. Cloning it (one `Vec` clone per
/// field) is what a per-state snapshot costs; the busy table and
/// combinational graph are derived from `placed` and deliberately excluded.
/// All vectors are indexed by the *region-local* op index except
/// `scc_dyn_stage`, which stays global-SCC-indexed (an SCC is always wholly
/// inside one region, so only its owner ever reads or writes its entry).
#[derive(Clone)]
struct RegionFrame {
    placed: Vec<Option<PlacedOp>>,
    num_placed: usize,
    scc_dyn_stage: Vec<Option<u32>>,
    /// Reasons recorded by the op's latest failed binding attempt; `None`
    /// means the op was never attempted (the failure report treats an
    /// attempted-but-reasonless op differently from a never-attempted one).
    /// `Arc` so per-state snapshots clone a pointer, not the restraint list.
    last_reasons: Vec<Option<Arc<Vec<Restraint>>>>,
    first_considered: Vec<Option<u32>>,
    min_slack: f64,
}

impl RegionFrame {
    fn fresh(n_local: usize, scc_stage_input: &[Option<u32>]) -> Self {
        RegionFrame {
            placed: vec![None; n_local],
            num_placed: 0,
            scc_dyn_stage: scc_stage_input.to_vec(),
            last_reasons: vec![None; n_local],
            first_considered: vec![None; n_local],
            min_slack: f64::INFINITY,
        }
    }
}

/// Per-region runtime: the region's slice of the problem (members, priority
/// order, resource pool), its persisted pass state, its scratch tables and
/// its incremental bookkeeping (resume watermark, published interface,
/// cached failure fragment).
struct RegionRt {
    /// Member ops (global indices) in plan order — the local index layout.
    members: Vec<u32>,
    /// Global priority order filtered to this region's members.
    order: Vec<OpId>,
    /// The region's resource instances (ascending global instance ids).
    insts: Vec<ResourceInstanceId>,
    /// Datapath members per interned class (sharing-factor numerator).
    ops_per_class: Vec<usize>,
    /// Pool instances per interned class (sharing-factor denominator).
    insts_per_class: Vec<usize>,

    frame: RegionFrame,
    snapshots: Vec<RegionFrame>,
    /// Earliest state the next pass must replay from; [`CLEAN`] = skip.
    resume: u32,
    /// Last published boundary interface: the state of each boundary op
    /// (`plan.regions[r].boundary` order), `None` while unplaced.
    iface: Vec<Option<u32>>,
    /// Cached failure-report fragment from the region's last run.
    fail: Vec<(OpId, Vec<Restraint>)>,

    // scratch reused across passes
    busy: Vec<Vec<OpId>>,
    comb_succ: Vec<Vec<u32>>,
    comb_mark: Vec<u32>,
    comb_epoch: u32,
    ready: Vec<OpId>,
    in_arrivals: Vec<f64>,
}

/// Outcome of one engine pass (the schedule itself stays inside the engine
/// until the driver extracts it, so success allocates nothing).
pub(crate) enum EngineOutcome {
    Success { min_slack_ps: f64 },
    Failure(PassFailure),
}

/// The incremental scheduling engine. Owns the allocated resources, the
/// relaxation inputs and the persisted per-region pass state; `run_pass()`
/// executes one (possibly partial, possibly parallel) pass over the dirty
/// regions and `apply` folds a relaxation action in, dirtying exactly the
/// regions that can observe it.
pub(crate) struct Engine<'a> {
    body: &'a LinearBody,
    lib: &'a TechLibrary,
    config: &'a SchedulerConfig,
    statics: PassStatics,
    interner: Interner,
    timing: ChainTiming<'a>,
    sccs: &'a [Scc],
    plan: RegionPlan,

    // relaxation inputs
    pub(crate) resources: ResourceSet,
    forbidden: Vec<Vec<ResourceInstanceId>>,
    scc_stage_input: Vec<Option<u32>>,
    pub(crate) latency: u32,

    // derived per-instance tables, maintained across passes
    /// Interned type per resource instance, in instance-id order.
    inst_type_ids: Vec<ResourceTypeId>,
    /// Region-local index per resource instance (the owning region is
    /// implied: an instance only ever appears in its own region's tables).
    inst_local: Vec<u32>,
    /// Compatible instances per op, restricted to the op's region pool.
    compat: Vec<Vec<ResourceInstanceId>>,
    /// Global priority order (regions filter it to their members).
    order: Vec<OpId>,

    regions: Vec<RegionRt>,
}

impl<'a> Engine<'a> {
    /// Monolithic construction: the trivial single-region plan over the
    /// caller-provided resource set — the historical engine behavior.
    pub(crate) fn new(
        body: &'a LinearBody,
        lib: &'a TechLibrary,
        config: &'a SchedulerConfig,
        sccs: &'a [Scc],
        resources: ResourceSet,
        latency: u32,
    ) -> Self {
        let plan = RegionPlan::trivial(body.dfg.num_ops());
        let inst_region = vec![0u32; resources.len()];
        Self::init(
            body,
            lib,
            config,
            sccs,
            plan,
            resources,
            inst_region,
            latency,
        )
    }

    /// Region-decomposed construction: the global resource set is the
    /// concatenation of per-region lower-bound pools (so binding never
    /// contends across regions, and the single-region fallback is
    /// byte-identical to [`Engine::new`] over `initial_resource_set`).
    pub(crate) fn new_with_plan(
        body: &'a LinearBody,
        lib: &'a TechLibrary,
        config: &'a SchedulerConfig,
        sccs: &'a [Scc],
        plan: RegionPlan,
        slots_per_instance: u32,
        latency: u32,
    ) -> Self {
        let pools = crate::region::region_pools(body, &plan, slots_per_instance);
        let (resources, inst_region) = crate::region::concat_pools(&pools);
        Self::init(
            body,
            lib,
            config,
            sccs,
            plan,
            resources,
            inst_region,
            latency,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn init(
        body: &'a LinearBody,
        lib: &'a TechLibrary,
        config: &'a SchedulerConfig,
        sccs: &'a [Scc],
        plan: RegionPlan,
        resources: ResourceSet,
        inst_region: Vec<u32>,
        latency: u32,
    ) -> Self {
        let mut interner = Interner::new();
        let mut statics = PassStatics::build(body, lib, sccs, &mut interner);
        let n = statics.n;
        let num_regions = plan.regions.len();
        debug_assert_eq!(inst_region.len(), resources.len());

        // Per-instance tables, in instance-id order (the interning order the
        // monolithic engine used: class first, then type, per instance).
        let mut inst_type_ids: Vec<ResourceTypeId> = Vec::with_capacity(resources.len());
        let mut inst_local: Vec<u32> = Vec::with_capacity(resources.len());
        let mut insts_by_region: Vec<Vec<ResourceInstanceId>> = vec![Vec::new(); num_regions];
        let mut insts_per_class_by_region: Vec<Vec<usize>> = vec![Vec::new(); num_regions];
        for inst in resources.iter() {
            let cid = interner.class_id(&inst.ty.class);
            let tid = interner.type_id(&inst.ty);
            if tid.index() >= statics.type_delay.len() {
                statics.type_delay.push(lib.delay_ps(&inst.ty));
                statics.type_width.push(inst.ty.max_width());
            }
            inst_type_ids.push(tid);
            let r = inst_region[inst.id.index()] as usize;
            inst_local.push(insts_by_region[r].len() as u32);
            insts_by_region[r].push(inst.id);
            let per_class = &mut insts_per_class_by_region[r];
            if cid.index() >= per_class.len() {
                per_class.resize(cid.index() + 1, 0);
            }
            per_class[cid.index()] += 1;
        }

        let scc_stage_input: Vec<Option<u32>> = vec![None; sccs.len()];
        let latency = latency.max(1);
        let order = order_for(&statics, latency);
        let mut region_orders: Vec<Vec<OpId>> = vec![Vec::new(); num_regions];
        for &op in &order {
            region_orders[plan.region_of[op.index()] as usize].push(op);
        }

        let mut regions: Vec<RegionRt> = Vec::with_capacity(num_regions);
        for (ri, info) in plan.regions.iter().enumerate() {
            let members = info.ops.clone();
            let mut ops_per_class: Vec<usize> = Vec::new();
            for &g in &members {
                if let Some(cid) = statics.class_id[g as usize] {
                    if cid.index() >= ops_per_class.len() {
                        ops_per_class.resize(cid.index() + 1, 0);
                    }
                    ops_per_class[cid.index()] += 1;
                }
            }
            regions.push(RegionRt {
                frame: RegionFrame::fresh(members.len(), &scc_stage_input),
                members,
                order: std::mem::take(&mut region_orders[ri]),
                insts: std::mem::take(&mut insts_by_region[ri]),
                ops_per_class,
                insts_per_class: std::mem::take(&mut insts_per_class_by_region[ri]),
                snapshots: Vec::new(),
                resume: 0,
                iface: vec![None; info.boundary.len()],
                fail: Vec::new(),
                busy: Vec::new(),
                comb_succ: Vec::new(),
                comb_mark: Vec::new(),
                comb_epoch: 0,
                ready: Vec::with_capacity(regions_capacity_hint(n, num_regions)),
                in_arrivals: Vec::with_capacity(8),
            });
        }

        let mut compat: Vec<Vec<ResourceInstanceId>> = vec![Vec::new(); n];
        for (i, slot) in compat.iter_mut().enumerate() {
            if let Some(req) = &statics.required_ty[i] {
                let ri = plan.region_of[i] as usize;
                for &res_id in &regions[ri].insts {
                    if Self::type_can_implement(req, &resources.instance(res_id).ty) {
                        slot.push(res_id);
                    }
                }
            }
        }

        Engine {
            body,
            lib,
            config,
            statics,
            interner,
            timing: ChainTiming::new(lib, config.clock),
            sccs,
            plan,
            resources,
            forbidden: vec![Vec::new(); n],
            scc_stage_input,
            latency,
            inst_type_ids,
            inst_local,
            compat,
            order,
            regions,
        }
    }

    /// Seeds the relaxation inputs (used by the one-shot `schedule_pass`
    /// wrapper to honour an explicit `PassInput`).
    pub(crate) fn seed_inputs(
        &mut self,
        forbidden: impl IntoIterator<Item = (OpId, ResourceInstanceId)>,
        scc_stage: impl IntoIterator<Item = (usize, u32)>,
    ) {
        for (op, res) in forbidden {
            if op.index() < self.forbidden.len() {
                self.forbidden[op.index()].push(res);
            }
        }
        for (scc, stage) in scc_stage {
            if scc < self.scc_stage_input.len() {
                self.scc_stage_input[scc] = Some(stage);
            }
        }
        let pins = &self.scc_stage_input;
        for rt in &mut self.regions {
            rt.frame = RegionFrame::fresh(rt.members.len(), pins);
            rt.snapshots.clear();
            rt.resume = 0;
            rt.iface = vec![None; rt.iface.len()];
            rt.fail.clear();
        }
    }

    /// The SCC stage inputs, dense over SCC index.
    pub(crate) fn scc_stage(&self) -> &[Option<u32>] {
        &self.scc_stage_input
    }

    /// Mirrors `ResourceType::can_implement` given the op's precomputed
    /// required type (avoids re-deriving it per check).
    fn type_can_implement(required: &ResourceType, have: &ResourceType) -> bool {
        required.class == have.class
            && required.out_width <= have.out_width
            && required.in_widths.len() <= have.in_widths.len()
            && required
                .in_widths
                .iter()
                .zip(have.in_widths.iter())
                .all(|(need, h)| need <= h)
    }

    /// Applies a relaxation action, dirtying exactly the regions whose next
    /// pass can observe it (each region tracks its own resume watermark).
    /// `restraints` is the failed pass's restraint list — `AddResource`
    /// derives the owning region from the restraint that provoked it.
    pub(crate) fn apply(&mut self, action: &RelaxAction, restraints: &[Restraint]) {
        match action {
            RelaxAction::AddState => {
                let old_latency = self.latency;
                self.latency += 1;
                let new_order = order_for(&self.statics, self.latency);
                if new_order == self.order {
                    // nothing before the old latency can observe the new
                    // state: every region continues from its final state
                    for rt in &mut self.regions {
                        rt.resume = rt.resume.min(old_latency);
                    }
                } else {
                    // mobility saturation reordered the priorities; regions
                    // whose filtered order survived still only append, the
                    // rest replay from scratch
                    self.order = new_order;
                    let mut region_orders: Vec<Vec<OpId>> = vec![Vec::new(); self.regions.len()];
                    for &op in &self.order {
                        region_orders[self.plan.region_of[op.index()] as usize].push(op);
                    }
                    for (rt, new_ord) in self.regions.iter_mut().zip(region_orders) {
                        let resume = if new_ord == rt.order {
                            old_latency
                        } else {
                            rt.order = new_ord;
                            0
                        };
                        rt.resume = rt.resume.min(resume);
                    }
                }
            }
            RelaxAction::AddResource(ty) => {
                let owner = crate::region::owner_region(restraints, ty, &self.plan.region_of);
                self.add_instance(ty, owner);
            }
            RelaxAction::AddResourceBatch { ty, count } => {
                let owners = crate::region::batch_owner_regions(
                    restraints,
                    ty,
                    *count,
                    &self.plan.region_of,
                );
                for owner in owners {
                    self.add_instance(ty, owner);
                }
            }
            RelaxAction::MoveScc { scc_index } => {
                let cur = self
                    .scc_stage_input
                    .get(*scc_index)
                    .copied()
                    .flatten()
                    .unwrap_or(0);
                if *scc_index < self.scc_stage_input.len() {
                    self.scc_stage_input[*scc_index] = Some(cur + 1);
                }
                if let Some(scc) = self.sccs.get(*scc_index) {
                    let owner = self.plan.region_of[scc.ops[0].index()];
                    let local_of = &self.plan.local_of;
                    let rt = &mut self.regions[owner as usize];
                    let mut resume = None;
                    for &op in &scc.ops {
                        resume = min_opt(
                            resume,
                            rt.frame.first_considered[local_of[op.index()] as usize],
                        );
                    }
                    rt.resume = rt.resume.min(resume.unwrap_or(0));
                }
            }
            RelaxAction::ForbidBinding { op, resource } => {
                self.forbidden[op.index()].push(*resource);
                let owner = self.plan.region_of[op.index()];
                let local = self.plan.local_of[op.index()] as usize;
                let rt = &mut self.regions[owner as usize];
                let fc = rt.frame.first_considered[local];
                rt.resume = rt.resume.min(fc.unwrap_or(0));
            }
        }
    }

    /// Adds one fresh instance of `ty` to `owner`'s pool, extending the
    /// interner tables, the compatibility lists of the region's members, and
    /// rewinding the region's resume watermark to the first state where a
    /// member of the matching class was considered.
    fn add_instance(&mut self, ty: &ResourceType, owner: u32) {
        let inst_id = self.resources.add(ty.clone());
        let cid = self.interner.class_id(&ty.class);
        let tid = self.interner.type_id(ty);
        if tid.index() >= self.statics.type_delay.len() {
            self.statics.type_delay.push(self.lib.delay_ps(ty));
            self.statics.type_width.push(ty.max_width());
        }
        self.inst_type_ids.push(tid);
        let local_of = &self.plan.local_of;
        let rt = &mut self.regions[owner as usize];
        self.inst_local.push(rt.insts.len() as u32);
        rt.insts.push(inst_id);
        if cid.index() >= rt.insts_per_class.len() {
            rt.insts_per_class.resize(cid.index() + 1, 0);
        }
        rt.insts_per_class[cid.index()] += 1;
        let new_ty = &self.resources.instance(inst_id).ty;
        let mut resume = None;
        for &g in &rt.members {
            let i = g as usize;
            if self.statics.class_id[i] != Some(cid) {
                continue;
            }
            if let Some(req) = &self.statics.required_ty[i] {
                if Self::type_can_implement(req, new_ty) {
                    self.compat[i].push(inst_id);
                }
            }
            resume = min_opt(resume, rt.frame.first_considered[local_of[i] as usize]);
        }
        rt.resume = rt.resume.min(resume.unwrap_or(0));
    }

    fn fold(&self, state: u32, ii: u32) -> u32 {
        if self.config.pipeline.is_some() {
            state % ii
        } else {
            state
        }
    }

    fn scc_window(&self, idx: usize, dyn_stage: &[Option<u32>], ii: u32) -> Option<(u32, u32)> {
        dyn_stage[idx].map(|stage| (stage * ii, (stage * ii + ii - 1).min(self.latency - 1)))
    }

    /// Rebuilds one region's busy table and combinational graph from its
    /// current placement (they are pure functions of it). Only same-region
    /// producer/consumer pairs can chain combinationally: a cross-region
    /// value is registered by the cut rule, so it never shares a state.
    fn rebuild_derived(&self, cur: &mut RegionRt, fold_states: u32, ii: u32) {
        let slots = cur.insts.len() * fold_states as usize;
        for b in &mut cur.busy {
            b.clear();
        }
        if cur.busy.len() < slots {
            cur.busy.resize_with(slots, Vec::new);
        }
        for c in &mut cur.comb_succ {
            c.clear();
        }
        if cur.comb_succ.len() < cur.insts.len() {
            cur.comb_succ.resize_with(cur.insts.len(), Vec::new);
            cur.comb_mark.resize(cur.insts.len(), 0);
        }
        for (l, &g) in cur.members.iter().enumerate() {
            let Some(p) = &cur.frame.placed[l] else {
                continue;
            };
            if let Some(r) = p.resource {
                let slot = self.inst_local[r.index()] as usize * fold_states as usize
                    + self.fold(p.state, ii) as usize;
                cur.busy[slot].push(OpId::from_raw(g));
            }
        }
        for (l, &g) in cur.members.iter().enumerate() {
            let Some(pc) = cur.frame.placed[l] else {
                continue;
            };
            let Some(rc) = pc.resource else { continue };
            for sig in &self.body.dfg.op(OpId::from_raw(g)).inputs {
                if sig.distance > 0 {
                    continue;
                }
                let Some(prod) = sig.producer() else { continue };
                if self.plan.region_of[prod.index()] != self.plan.region_of[g as usize] {
                    continue;
                }
                let pl = self.plan.local_of[prod.index()] as usize;
                let Some(pp) = cur.frame.placed[pl] else {
                    continue;
                };
                if pp.state == pc.state {
                    if let Some(rp) = pp.resource {
                        comb_add_edge(
                            &mut cur.comb_succ,
                            self.inst_local[rp.index()],
                            self.inst_local[rc.index()],
                        );
                    }
                }
            }
        }
    }

    /// Whether predecessor `p` permits scheduling its consumer in `state`:
    /// same region — placed no later than `state` (same-state chaining
    /// allowed); other region — placed *strictly earlier* (the registered
    /// cut rule, which is what makes cross-region readiness invariant during
    /// a state's placement rounds).
    fn pred_sched_ok(
        &self,
        base: u32,
        ridx: u32,
        cur: &RegionRt,
        done: &[RegionRt],
        p: OpId,
        state: u32,
    ) -> bool {
        let pr = self.plan.region_of[p.index()];
        let pl = self.plan.local_of[p.index()] as usize;
        if pr == ridx {
            cur.frame.placed[pl]
                .map(|s| s.state <= state)
                .unwrap_or(false)
        } else {
            done[(pr - base) as usize].frame.placed[pl]
                .map(|s| s.state < state)
                .unwrap_or(false)
        }
    }

    /// The placement of `p` as visible from region `ridx` (any state).
    fn placed_of(
        &self,
        base: u32,
        ridx: u32,
        cur: &RegionRt,
        done: &[RegionRt],
        p: OpId,
    ) -> Option<PlacedOp> {
        let pr = self.plan.region_of[p.index()];
        let pl = self.plan.local_of[p.index()] as usize;
        if pr == ridx {
            cur.frame.placed[pl]
        } else {
            done[(pr - base) as usize].frame.placed[pl]
        }
    }

    /// Arrival of producer `p`'s value at a consumer scheduled in `state`,
    /// `None` while the producer does not yet permit that state. Same-region
    /// same-state values chain combinationally; everything else (earlier
    /// state, or any cross-region value) launches from a register.
    fn input_arrival(
        &self,
        base: u32,
        ridx: u32,
        cur: &RegionRt,
        done: &[RegionRt],
        p: OpId,
        state: u32,
    ) -> Option<f64> {
        let pr = self.plan.region_of[p.index()];
        let pl = self.plan.local_of[p.index()] as usize;
        if pr == ridx {
            match cur.frame.placed[pl] {
                Some(sp) if sp.state < state => Some(self.timing.register_arrival_ps()),
                Some(sp) if sp.state == state => Some(sp.arrival),
                _ => None,
            }
        } else {
            match done[(pr - base) as usize].frame.placed[pl] {
                Some(sp) if sp.state < state => Some(self.timing.register_arrival_ps()),
                _ => None,
            }
        }
    }

    /// Runs one pass over every dirty region and assembles the global
    /// outcome. Independent weakly-connected component groups run in
    /// parallel when more than one of them is dirty.
    pub(crate) fn run_pass(&mut self) -> EngineOutcome {
        let latency = self.latency.max(1);
        let ii = self.config.ii_or(latency);
        let pipelined = self.config.pipeline.is_some();
        let sharing = self.config.sharing_possible();
        let fold_states = if pipelined { ii } else { latency };

        let mut regions = std::mem::take(&mut self.regions);
        let outcome;
        {
            let this: &Engine = &*self;
            let dirty_components = this
                .plan
                .components
                .iter()
                .filter(|&&(lo, hi)| {
                    regions[lo as usize..hi as usize]
                        .iter()
                        .any(|r| r.resume != CLEAN)
                })
                .count();
            if dirty_components > 1 && crate::parallel::worker_count() > 1 {
                // Hand each component its contiguous chunk of regions. The
                // Mutex<Option<..>> wrapper moves the &mut chunk through the
                // shared-reference closure `map_indexed` requires.
                type ComponentCell<'a> = Mutex<Option<(u32, &'a mut [RegionRt])>>;
                let mut items: Vec<ComponentCell<'_>> =
                    Vec::with_capacity(this.plan.components.len());
                let mut rest: &mut [RegionRt] = &mut regions;
                let mut consumed = 0u32;
                for &(lo, hi) in &this.plan.components {
                    debug_assert_eq!(lo, consumed, "component ranges must be contiguous");
                    let (chunk, tail) = rest.split_at_mut((hi - lo) as usize);
                    items.push(Mutex::new(Some((lo, chunk))));
                    rest = tail;
                    consumed = hi;
                }
                crate::parallel::map_indexed(&items, |_, cell| {
                    let (base, chunk) = cell.lock().unwrap().take().unwrap();
                    this.run_component(base, chunk, latency, ii, fold_states, sharing);
                });
            } else {
                for &(lo, hi) in &this.plan.components {
                    this.run_component(
                        lo,
                        &mut regions[lo as usize..hi as usize],
                        latency,
                        ii,
                        fold_states,
                        sharing,
                    );
                }
            }
            outcome = this.assemble_outcome(&regions);
        }
        self.regions = regions;
        outcome
    }

    /// Runs the dirty regions of one weakly-connected component in
    /// topological order, propagating boundary-interface changes downstream.
    fn run_component(
        &self,
        base: u32,
        comp: &mut [RegionRt],
        latency: u32,
        ii: u32,
        fold_states: u32,
        sharing: bool,
    ) {
        for k in 0..comp.len() {
            if comp[k].resume == CLEAN {
                continue;
            }
            let (done, rest) = comp.split_at_mut(k);
            let cur = &mut rest[0];
            let ridx = base + k as u32;
            self.run_region(base, ridx, cur, done, latency, ii, fold_states, sharing);

            // Diff the boundary interface: a consumer region must replay only
            // if a cut value's state actually moved, and only from the
            // earliest state that can observe the move.
            let info = &self.plan.regions[ridx as usize];
            let mut dirties: Vec<(u32, u32)> = Vec::new();
            for (bi, &gop) in info.boundary.iter().enumerate() {
                let l = self.plan.local_of[gop as usize] as usize;
                let new = cur.frame.placed[l].map(|p| p.state);
                if new != cur.iface[bi] {
                    let resume = match (cur.iface[bi], new) {
                        (Some(a), Some(b)) => a.min(b),
                        (Some(a), None) => a,
                        (None, Some(b)) => b,
                        (None, None) => unreachable!("diff of equal interfaces"),
                    };
                    cur.iface[bi] = new;
                    for &rc in &info.consumers[bi] {
                        dirties.push((rc, resume));
                    }
                }
            }
            cur.resume = CLEAN;
            for (rc, resume) in dirties {
                debug_assert!(rc > ridx, "consumers are always downstream");
                let slot = &mut comp[(rc - base) as usize].resume;
                *slot = (*slot).min(resume);
            }
        }
    }

    /// Runs one region's pass from its resume watermark, restoring the
    /// snapshot when resuming mid-schedule, and refreshes its cached
    /// failure-report fragment.
    #[allow(clippy::too_many_arguments)]
    fn run_region(
        &self,
        base: u32,
        ridx: u32,
        cur: &mut RegionRt,
        done: &[RegionRt],
        latency: u32,
        ii: u32,
        fold_states: u32,
        sharing: bool,
    ) {
        let n_local = cur.members.len();

        // --- restore ---------------------------------------------------------
        let resume = cur.resume.min(latency);
        if resume == 0 {
            cur.frame = RegionFrame::fresh(n_local, &self.scc_stage_input);
            cur.snapshots.clear();
        } else if (resume as usize) < cur.snapshots.len() {
            cur.frame = cur.snapshots[resume as usize].clone();
            cur.snapshots.truncate(resume as usize);
            // re-apply the (possibly updated) input stage pins; for sccs
            // whose input is unchanged this is a no-op
            for (i, stage) in self.scc_stage_input.iter().enumerate() {
                if let Some(v) = stage {
                    cur.frame.scc_dyn_stage[i] = Some(*v);
                }
            }
        } else {
            // continue from the live frame (AddState append); snapshots for
            // the existing states remain valid
            cur.snapshots.truncate(resume as usize);
        }
        self.rebuild_derived(cur, fold_states, ii);

        // --- control steps ---------------------------------------------------
        let order = std::mem::take(&mut cur.order);
        for state in resume..latency {
            debug_assert_eq!(cur.snapshots.len(), state as usize);
            cur.snapshots.push(cur.frame.clone());
            loop {
                // ready operations, already in priority order
                let mut ready = std::mem::take(&mut cur.ready);
                ready.clear();
                for &op_id in &order {
                    let i = op_id.index();
                    let l = self.plan.local_of[i] as usize;
                    if cur.frame.placed[l].is_some() {
                        continue;
                    }
                    let preds_ok = self.statics.preds[i]
                        .iter()
                        .all(|&p| self.pred_sched_ok(base, ridx, cur, done, p, state))
                        && self.statics.extra_preds[i]
                            .iter()
                            .all(|&p| self.pred_sched_ok(base, ridx, cur, done, p, state));
                    if !preds_ok {
                        continue;
                    }
                    if let Some(pin) = self.statics.pin[i] {
                        if !pin.allows(hls_ir::StateIdx::new(state)) {
                            continue;
                        }
                    }
                    if cur.frame.first_considered[l].is_none() {
                        cur.frame.first_considered[l] = Some(state);
                    }
                    if let Some(scc) = self.statics.scc_of[i] {
                        if let Some((lo, hi)) =
                            self.scc_window(scc as usize, &cur.frame.scc_dyn_stage, ii)
                        {
                            if state < lo || state > hi {
                                continue;
                            }
                        }
                    }
                    ready.push(op_id);
                }
                if ready.is_empty() {
                    cur.ready = ready;
                    break;
                }

                let mut placed_any = false;
                for &op_id in &ready {
                    if self.try_place(
                        base,
                        ridx,
                        cur,
                        done,
                        op_id,
                        state,
                        ii,
                        fold_states,
                        sharing,
                    ) {
                        placed_any = true;
                    }
                }
                cur.ready = ready;
                if !placed_any {
                    break;
                }
            }
        }
        cur.order = order;

        // --- cache the failure-report fragment -------------------------------
        cur.fail.clear();
        if cur.frame.num_placed < n_local {
            for (l, &g) in cur.members.iter().enumerate() {
                if cur.frame.placed[l].is_some() {
                    continue;
                }
                let i = g as usize;
                // only report ops whose predecessors were all placed (root
                // causes) — mirrors the monolithic failure scan, which checks
                // data preds only
                let preds_ok = self.statics.preds[i]
                    .iter()
                    .all(|&p| self.placed_of(base, ridx, cur, done, p).is_some());
                if !preds_ok {
                    continue;
                }
                let id = OpId::from_raw(g);
                if let Some(rs) = &cur.frame.last_reasons[l] {
                    cur.fail.push((id, rs.as_ref().clone()));
                } else {
                    // never attempted: distinguish "a region-crossing value
                    // is registered in the final state, so readiness needs a
                    // state that does not exist" from plain starvation
                    let blocked = {
                        let last = self.latency.saturating_sub(1);
                        let cut_blocked = |p: &OpId| {
                            self.plan.region_of[p.index()] != ridx
                                && self
                                    .placed_of(base, ridx, cur, done, *p)
                                    .is_some_and(|pl| pl.state >= last)
                        };
                        self.statics.preds[i].iter().any(cut_blocked)
                            || self.statics.extra_preds[i].iter().any(cut_blocked)
                            || (self.statics.has_side_effects[i]
                                && self.statics.cond_ops[i].iter().any(cut_blocked))
                    };
                    if blocked {
                        cur.fail
                            .push((id, vec![Restraint::StateExhausted { op: id }]));
                    } else if let Some(ty) = &self.statics.required_ty[i] {
                        cur.fail.push((
                            id,
                            vec![Restraint::ResourceContention {
                                op: id,
                                ty: ty.clone(),
                            }],
                        ));
                    } else {
                        cur.fail.push((id, Vec::new()));
                    }
                }
            }
        }
    }

    /// Attempts to place one ready operation in `state`. Returns whether a
    /// placement happened. Mirrors the original pass body exactly, with the
    /// registered cut rule applied to cross-region inputs.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn try_place(
        &self,
        base: u32,
        ridx: u32,
        cur: &mut RegionRt,
        done: &[RegionRt],
        op_id: OpId,
        state: u32,
        ii: u32,
        fold_states: u32,
        sharing: bool,
    ) -> bool {
        let i = op_id.index();
        let l = self.plan.local_of[i] as usize;
        let op = self.body.dfg.op(op_id);

        // input arrival times
        let mut inputs_ready = true;
        cur.in_arrivals.clear();
        let mut in_arrivals = std::mem::take(&mut cur.in_arrivals);
        for sig in &op.inputs {
            let a = match sig.producer() {
                None => 0.0,
                Some(_) if sig.distance > 0 => self.timing.register_arrival_ps(),
                Some(p) => match self.input_arrival(base, ridx, cur, done, p, state) {
                    Some(a) => a,
                    None => {
                        inputs_ready = false;
                        0.0
                    }
                },
            };
            in_arrivals.push(a);
        }
        if self.statics.has_side_effects[i] {
            for &cond in &self.statics.cond_ops[i] {
                match self.input_arrival(base, ridx, cur, done, cond, state) {
                    Some(a) => in_arrivals.push(a),
                    None => inputs_ready = false,
                }
            }
        }
        if !inputs_ready {
            cur.in_arrivals = in_arrivals;
            return false;
        }

        if !self.statics.needs_resource[i] {
            let a = if self.statics.launches_from_register[i] {
                self.timing.register_arrival_ps()
            } else {
                in_arrivals.iter().copied().fold(0.0f64, f64::max)
            };
            cur.frame.placed[l] = Some(PlacedOp {
                state,
                resource: None,
                arrival: a,
            });
            cur.frame.num_placed += 1;
            cur.in_arrivals = in_arrivals;
            return true;
        }

        let class = self.statics.class_id[i].expect("datapath op has a class");
        let share = {
            let ops = cur
                .ops_per_class
                .get(class.index())
                .copied()
                .unwrap_or(0)
                .max(1);
            let insts = cur
                .insts_per_class
                .get(class.index())
                .copied()
                .unwrap_or(0)
                .max(1);
            ops.div_ceil(insts)
        };

        let mut reasons: Vec<Restraint> = Vec::new();
        let mut bound = false;
        for &res_id in &self.compat[i] {
            if self.forbidden[i].contains(&res_id) {
                continue;
            }
            // busy check in this folded state: mutually exclusive predicated
            // ops may share, but only within the *same* control step — in a
            // folded pipeline equivalent states belong to different stages,
            // whose predicates guard different iterations, so cross-stage
            // "mutual exclusion" would not hold in hardware (the binder
            // rejects such slots as unsteerable)
            let slot = self.inst_local[res_id.index()] as usize * fold_states as usize
                + self.fold(state, ii) as usize;
            let conflict = cur.busy[slot].iter().any(|other| {
                let ol = self.plan.local_of[other.index()] as usize;
                !cur.frame.placed[ol].is_some_and(|p| p.state == state)
                    || !self.statics.pred_lits[other.index()]
                        .mutually_exclusive(&self.statics.pred_lits[i])
            });
            if conflict {
                reasons.push(Restraint::ResourceContention {
                    op: op_id,
                    ty: self.resources.instance(res_id).ty.clone(),
                });
                continue;
            }
            // timing check (mirrors `ChainTiming::op_arrival_ps` over the
            // interned per-type delay/width tables — no type hashing)
            let tid = self.inst_type_ids[res_id.index()];
            let base_a = in_arrivals.iter().copied().fold(0.0f64, f64::max);
            let a = base_a
                + self
                    .timing
                    .input_mux_delay_ps(share, self.statics.type_width[tid.index()])
                + self.statics.type_delay[tid.index()];
            let slack = self.timing.slack_shared_ps(a, op.width, sharing);
            if slack < 0.0 {
                reasons.push(Restraint::NegativeSlack {
                    op: op_id,
                    slack_ps: slack,
                });
                continue;
            }
            // combinational cycle check (only same-region producers can
            // chain in the same state — cross-region values are registered)
            if self.config.avoid_comb_cycles {
                let mut creates_cycle = false;
                for sig in &op.inputs {
                    if sig.distance > 0 {
                        continue;
                    }
                    let Some(p) = sig.producer() else { continue };
                    if self.plan.region_of[p.index()] != ridx {
                        continue;
                    }
                    if let Some(sp) = cur.frame.placed[self.plan.local_of[p.index()] as usize] {
                        if sp.state == state {
                            if let Some(rp) = sp.resource {
                                if comb_would_create_cycle(
                                    &cur.comb_succ,
                                    &mut cur.comb_mark,
                                    &mut cur.comb_epoch,
                                    self.inst_local[rp.index()],
                                    self.inst_local[res_id.index()],
                                ) {
                                    creates_cycle = true;
                                }
                            }
                        }
                    }
                }
                if creates_cycle {
                    reasons.push(Restraint::CombCycle {
                        op: op_id,
                        resource: res_id,
                    });
                    continue;
                }
            }
            // accept the binding
            for sig in &op.inputs {
                if sig.distance > 0 {
                    continue;
                }
                let Some(p) = sig.producer() else { continue };
                if self.plan.region_of[p.index()] != ridx {
                    continue;
                }
                if let Some(sp) = cur.frame.placed[self.plan.local_of[p.index()] as usize] {
                    if sp.state == state {
                        if let Some(rp) = sp.resource {
                            comb_add_edge(
                                &mut cur.comb_succ,
                                self.inst_local[rp.index()],
                                self.inst_local[res_id.index()],
                            );
                        }
                    }
                }
            }
            cur.busy[slot].push(op_id);
            cur.frame.placed[l] = Some(PlacedOp {
                state,
                resource: Some(res_id),
                arrival: a,
            });
            cur.frame.num_placed += 1;
            cur.frame.min_slack = cur.frame.min_slack.min(slack);
            // pin the SCC stage on first placement
            if let Some(scc) = self.statics.scc_of[i] {
                let entry = &mut cur.frame.scc_dyn_stage[scc as usize];
                if entry.is_none() {
                    *entry = Some(state / ii);
                }
            }
            bound = true;
            break;
        }
        if !bound {
            // If every instance was busy, also check whether a brand new
            // instance would have met timing; if not, the real problem is
            // slack, not hardware.
            if reasons
                .iter()
                .all(|r| matches!(r, Restraint::ResourceContention { .. }))
            {
                if let Some(tid) = self.statics.required_type_id[i] {
                    let base_a = in_arrivals.iter().copied().fold(0.0f64, f64::max);
                    let a = base_a
                        + self
                            .timing
                            .input_mux_delay_ps(share, self.statics.type_width[tid.index()])
                        + self.statics.type_delay[tid.index()];
                    let slack = self.timing.slack_shared_ps(a, op.width, sharing);
                    if slack < 0.0 {
                        reasons.push(Restraint::NegativeSlack {
                            op: op_id,
                            slack_ps: slack,
                        });
                    }
                }
            }
            if self.compat[i].is_empty() {
                if let Some(ty) = self.statics.required_ty[i].clone() {
                    reasons.push(Restraint::ResourceContention { op: op_id, ty });
                }
            }
            if let Some(scc) = self.statics.scc_of[i] {
                if self
                    .scc_window(scc as usize, &cur.frame.scc_dyn_stage, ii)
                    .map(|(_, hi)| state >= hi)
                    .unwrap_or(false)
                {
                    reasons.push(Restraint::SccWindow {
                        scc_index: scc as usize,
                        op: op_id,
                    });
                }
            }
            cur.frame.last_reasons[l] = Some(Arc::new(reasons));
        }
        cur.in_arrivals = in_arrivals;
        bound
    }

    /// Assembles the global outcome from the per-region results, matching
    /// the monolithic engine's report exactly: failed ops in ascending op-id
    /// order with their restraints, min-slack folded over every region.
    fn assemble_outcome(&self, regions: &[RegionRt]) -> EngineOutcome {
        let n = self.statics.n;
        let total: usize = regions.iter().map(|r| r.frame.num_placed).sum();
        if total == n {
            let min_slack = regions
                .iter()
                .map(|r| r.frame.min_slack)
                .fold(f64::INFINITY, f64::min);
            let min_slack_ps = if min_slack.is_finite() {
                min_slack
            } else {
                self.config.clock.period_ps()
            };
            EngineOutcome::Success { min_slack_ps }
        } else {
            let mut failure = PassFailure {
                scheduled: total,
                ..PassFailure::default()
            };
            let mut frags: Vec<&(OpId, Vec<Restraint>)> =
                regions.iter().flat_map(|r| r.fail.iter()).collect();
            frags.sort_by_key(|(op, _)| *op);
            for (op, rs) in frags {
                failure.failed_ops.push(*op);
                failure.restraints.extend(rs.iter().cloned());
            }
            EngineOutcome::Failure(failure)
        }
    }

    /// Extracts the schedule after a successful pass, consuming the engine
    /// (the resource set is moved, not cloned).
    pub(crate) fn into_desc(self) -> ScheduleDesc {
        let mut ops = std::collections::BTreeMap::new();
        for rt in &self.regions {
            for (l, &g) in rt.members.iter().enumerate() {
                let p = rt.frame.placed[l].expect("into_desc requires a complete schedule");
                let id = OpId::from_raw(g);
                ops.insert(
                    id,
                    ScheduledOp {
                        op: id,
                        state: p.state,
                        resource: p.resource,
                    },
                );
            }
        }
        ScheduleDesc {
            num_states: self.latency,
            ii: self.config.pipeline.map(|p| p.ii),
            ops,
            resources: self.resources,
        }
    }
}

/// Mirrors `CombGraph::would_create_cycle` over one region's local comb
/// graph: adding `from → to` closes a cycle iff `from == to` or a path
/// `to → … → from` already exists.
fn comb_would_create_cycle(
    succ: &[Vec<u32>],
    mark: &mut [u32],
    epoch: &mut u32,
    from: u32,
    to: u32,
) -> bool {
    if from == to {
        return true;
    }
    *epoch += 1;
    let epoch = *epoch;
    let mut dfs: Vec<u32> = vec![to];
    while let Some(v) = dfs.pop() {
        if mark[v as usize] == epoch {
            continue;
        }
        mark[v as usize] = epoch;
        for &s in &succ[v as usize] {
            if s == from {
                return true;
            }
            dfs.push(s);
        }
    }
    false
}

fn comb_add_edge(succ: &mut [Vec<u32>], from: u32, to: u32) {
    let entry = &mut succ[from as usize];
    if !entry.contains(&to) {
        entry.push(to);
    }
}

fn min_opt(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Ready-list capacity hint: an even split of the ops over the regions.
fn regions_capacity_hint(n: usize, num_regions: usize) -> usize {
    n / num_regions.max(1) + 1
}
