//! Error type of the scheduler.

use std::error::Error;
use std::fmt;

/// Errors reported by the scheduler.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// The specification is over-constrained: no sequence of relaxation
    /// actions within the configured bounds produced a feasible schedule.
    Overconstrained {
        /// Latency reached when the scheduler gave up.
        latency: u32,
        /// Number of scheduling passes executed.
        passes: u32,
        /// Human-readable diagnostics (outstanding restraints).
        details: String,
    },
    /// The loop body failed validation before scheduling.
    InvalidBody {
        /// The underlying error rendering.
        message: String,
    },
    /// The requested initiation interval is infeasible for the loop's
    /// recurrences (structural lower bound violated).
    InfeasibleIi {
        /// Requested initiation interval.
        requested: u32,
        /// Structural minimum implied by the DFG recurrences.
        minimum: u32,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Overconstrained { latency, passes, details } => write!(
                f,
                "specification is overconstrained (gave up at latency {latency} after {passes} passes): {details}"
            ),
            SchedError::InvalidBody { message } => write!(f, "invalid loop body: {message}"),
            SchedError::InfeasibleIi { requested, minimum } => write!(
                f,
                "initiation interval {requested} is below the recurrence-imposed minimum {minimum}"
            ),
        }
    }
}

impl Error for SchedError {}

impl From<hls_ir::IrError> for SchedError {
    fn from(e: hls_ir::IrError) -> Self {
        SchedError::InvalidBody {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = SchedError::Overconstrained {
            latency: 3,
            passes: 7,
            details: "x".into(),
        };
        assert!(e.to_string().contains("overconstrained"));
        let e = SchedError::InfeasibleIi {
            requested: 1,
            minimum: 3,
        };
        assert!(e.to_string().contains("minimum 3"));
    }
}
