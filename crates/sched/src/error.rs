//! Error type of the scheduler.

use std::error::Error;
use std::fmt;

/// Errors reported by the scheduler.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// The specification is over-constrained: no sequence of relaxation
    /// actions within the configured bounds produced a feasible schedule.
    Overconstrained {
        /// Latency reached when the scheduler gave up.
        latency: u32,
        /// Number of scheduling passes executed.
        passes: u32,
        /// Human-readable diagnostics (outstanding restraints).
        details: String,
        /// The most negative per-operation slack among the outstanding
        /// restraints, in picoseconds — how far the worst operation missed
        /// the clock. `0.0` when the failure is not slack-driven (resource
        /// contention, SCC windows). A caller that wants to *degrade*
        /// instead of fail can re-run with the clock stretched by this
        /// amount.
        worst_slack_ps: f64,
    },
    /// The loop body failed validation before scheduling.
    InvalidBody {
        /// The underlying error rendering.
        message: String,
    },
    /// The requested initiation interval is infeasible for the loop's
    /// recurrences (structural lower bound violated).
    InfeasibleIi {
        /// Requested initiation interval.
        requested: u32,
        /// Structural minimum implied by the DFG recurrences.
        minimum: u32,
    },
    /// A scheduling budget (pass count or wall-clock deadline) ran out while
    /// the relaxation loop still had applicable actions. Unlike
    /// [`SchedError::Overconstrained`] this is not a verdict on the spec —
    /// it is a guard against unbounded iteration, and it carries the partial
    /// diagnostics of the last failed pass so the caller can see where the
    /// search stood when it was cut off.
    BudgetExhausted {
        /// Which budget ran out (e.g. `"64 scheduling passes"` or
        /// `"deadline of 10 ms"`).
        budget: String,
        /// Latency reached when the budget ran out.
        latency: u32,
        /// Number of scheduling passes executed.
        passes: u32,
        /// Outstanding restraints of the last failed pass, rendered.
        restraints: Vec<String>,
        /// Relaxation actions applied before the budget ran out, rendered.
        actions: Vec<String>,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Overconstrained { latency, passes, details, .. } => write!(
                f,
                "specification is overconstrained (gave up at latency {latency} after {passes} passes): {details}"
            ),
            SchedError::InvalidBody { message } => write!(f, "invalid loop body: {message}"),
            SchedError::InfeasibleIi { requested, minimum } => write!(
                f,
                "initiation interval {requested} is below the recurrence-imposed minimum {minimum}"
            ),
            SchedError::BudgetExhausted {
                budget,
                latency,
                passes,
                restraints,
                actions,
            } => {
                write!(
                    f,
                    "scheduling budget exhausted ({budget}) at latency {latency} after {passes} pass(es)"
                )?;
                if !restraints.is_empty() {
                    write!(f, "; outstanding: {}", restraints.join("; "))?;
                }
                if !actions.is_empty() {
                    write!(f, "; applied: {}", actions.join(", "))?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SchedError {}

impl From<hls_ir::IrError> for SchedError {
    fn from(e: hls_ir::IrError) -> Self {
        SchedError::InvalidBody {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = SchedError::Overconstrained {
            latency: 3,
            passes: 7,
            details: "x".into(),
            worst_slack_ps: -45.0,
        };
        assert!(e.to_string().contains("overconstrained"));
        let e = SchedError::InfeasibleIi {
            requested: 1,
            minimum: 3,
        };
        assert!(e.to_string().contains("minimum 3"));
    }

    #[test]
    fn budget_exhausted_renders_partial_diagnostics() {
        let e = SchedError::BudgetExhausted {
            budget: "2 scheduling passes".into(),
            latency: 4,
            passes: 2,
            restraints: vec!["negative slack on op mul1".into()],
            actions: vec!["add state".into()],
        };
        let s = e.to_string();
        assert!(s.contains("budget exhausted"), "{s}");
        assert!(s.contains("negative slack on op mul1"), "{s}");
        assert!(s.contains("add state"), "{s}");
    }
}
