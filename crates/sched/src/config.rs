//! Scheduler configuration.

use hls_tech::ClockConstraint;

/// Pipelining request: the designer-specified initiation interval.
///
/// Following the paper (Section V, condition 1) the II is always given by the
/// designer; the latency interval LI is chosen by the tool within the latency
/// bounds of the configuration, starting from `II + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineRequest {
    /// Initiation interval in clock cycles (must be ≥ 1).
    pub ii: u32,
}

impl PipelineRequest {
    /// Creates a request with the given initiation interval.
    ///
    /// # Panics
    /// Panics if `ii` is zero.
    pub fn new(ii: u32) -> Self {
        assert!(ii >= 1, "initiation interval must be at least 1");
        PipelineRequest { ii }
    }
}

/// Region decomposition options (see [`crate::region`]).
///
/// When enabled, the scheduler condenses the DFG's SCC graph into regions of
/// roughly `target_ops` operations each, schedules them separately with
/// registered cut-value interfaces, and re-passes only dirty regions after a
/// relaxation action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionOptions {
    /// Rough number of operations per region. Regions never split an SCC, so
    /// a single SCC larger than the target becomes a region of its own.
    pub target_ops: usize,
}

impl RegionOptions {
    /// Creates region options with the given target region size (clamped to
    /// at least one operation per region).
    pub fn new(target_ops: usize) -> Self {
        RegionOptions {
            target_ops: target_ops.max(1),
        }
    }
}

/// Full configuration of a scheduling run.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulerConfig {
    /// Target clock.
    pub clock: ClockConstraint,
    /// Minimum loop latency (states) the designer allows.
    pub min_latency: u32,
    /// Maximum loop latency (states) the designer allows.
    pub max_latency: u32,
    /// Pipelining request, if any.
    pub pipeline: Option<PipelineRequest>,
    /// Maximum number of scheduling passes before giving up.
    pub max_passes: u32,
    /// Optional wall-clock budget for the whole relaxation loop. When it
    /// runs out between passes the scheduler stops with
    /// [`SchedError::BudgetExhausted`](crate::SchedError::BudgetExhausted)
    /// carrying the last pass's diagnostics. `None` (the default) keeps the
    /// scheduler fully deterministic — the pass-count budget is the only
    /// guard.
    pub deadline: Option<std::time::Duration>,
    /// Whether the relaxation engine may move whole SCCs to later pipeline
    /// stages when facing negative slack (the paper's Table 4 ablates this).
    pub allow_scc_move: bool,
    /// Whether bindings that would create combinational cycles are rejected
    /// (Section IV.B.3). Disabling this is only useful for ablation studies.
    pub avoid_comb_cycles: bool,
    /// Whether the relaxation engine may add resources beyond the initial
    /// lower-bound set.
    pub allow_add_resources: bool,
    /// Region decomposition: `None` (the default) schedules the body as one
    /// monolithic region; `Some` splits it along SCC-condensation cuts so
    /// large designs re-pass only dirty regions (and independent region
    /// groups run on multiple cores).
    pub region_decomposition: Option<RegionOptions>,
}

impl SchedulerConfig {
    /// Configuration for a sequential (non-pipelined) loop.
    pub fn sequential(clock: ClockConstraint, min_latency: u32, max_latency: u32) -> Self {
        SchedulerConfig {
            clock,
            min_latency: min_latency.max(1),
            max_latency: max_latency.max(min_latency.max(1)),
            pipeline: None,
            max_passes: 64,
            deadline: None,
            allow_scc_move: true,
            avoid_comb_cycles: true,
            allow_add_resources: true,
            region_decomposition: None,
        }
    }

    /// Configuration for a pipelined loop with the given initiation interval.
    /// The latency interval explored starts at `II + 1` (the minimum for
    /// pipelined execution) and may grow up to `max_latency`.
    pub fn pipelined(clock: ClockConstraint, ii: u32, max_latency: u32) -> Self {
        let min = ii + 1;
        SchedulerConfig {
            clock,
            min_latency: min,
            max_latency: max_latency.max(min),
            pipeline: Some(PipelineRequest::new(ii)),
            max_passes: 64,
            deadline: None,
            allow_scc_move: true,
            avoid_comb_cycles: true,
            allow_add_resources: true,
            region_decomposition: None,
        }
    }

    /// Enables region-decomposed scheduling with the given target region
    /// size (see [`RegionOptions`] and [`crate::region`]).
    pub fn with_region_decomposition(mut self, target_ops: usize) -> Self {
        self.region_decomposition = Some(RegionOptions::new(target_ops));
        self
    }

    /// Disables the timing-driven SCC move action (used by the Table 4
    /// ablation experiment).
    pub fn without_scc_move(mut self) -> Self {
        self.allow_scc_move = false;
        self
    }

    /// Caps the relaxation loop's wall-clock time. The deadline is checked
    /// between passes, so a single pass always runs to completion.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The initiation interval in force: the requested II for pipelined
    /// loops, otherwise the latency (a sequential loop starts a new iteration
    /// only when the previous one finished).
    pub fn ii_or(&self, latency: u32) -> u32 {
        self.pipeline.map(|p| p.ii).unwrap_or(latency).max(1)
    }

    /// Whether any sharing of resources/registers is possible. With `II = 1`
    /// every control step is equivalent to every other, so nothing can be
    /// shared.
    pub fn sharing_possible(&self) -> bool {
        self.pipeline.map(|p| p.ii > 1).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clk() -> ClockConstraint {
        ClockConstraint::from_period_ps(1600.0)
    }

    #[test]
    fn sequential_defaults() {
        let c = SchedulerConfig::sequential(clk(), 1, 3);
        assert_eq!(c.min_latency, 1);
        assert_eq!(c.max_latency, 3);
        assert!(c.pipeline.is_none());
        assert!(c.sharing_possible());
        assert_eq!(c.ii_or(3), 3);
    }

    #[test]
    fn pipelined_latency_starts_above_ii() {
        let c = SchedulerConfig::pipelined(clk(), 2, 6);
        assert_eq!(c.min_latency, 3);
        assert_eq!(c.ii_or(4), 2);
        assert!(c.sharing_possible());
        let c1 = SchedulerConfig::pipelined(clk(), 1, 4);
        assert_eq!(c1.min_latency, 2);
        assert!(!c1.sharing_possible(), "II=1 makes all edges equivalent");
    }

    #[test]
    fn without_scc_move_flag() {
        let c = SchedulerConfig::pipelined(clk(), 2, 6).without_scc_move();
        assert!(!c.allow_scc_move);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_panics() {
        let _ = PipelineRequest::new(0);
    }

    #[test]
    fn max_latency_clamped_to_min() {
        let c = SchedulerConfig::sequential(clk(), 5, 2);
        assert!(c.max_latency >= c.min_latency);
    }
}
