//! A single scheduling pass: simultaneous scheduling and binding over the
//! control steps of the loop body (Figure 7 of the paper).
//!
//! The pass algorithm itself lives in the dense [`engine`](crate::engine)
//! module, which the multi-pass [`Scheduler`](crate::scheduler::Scheduler)
//! drives *incrementally*; the functions here run one pass from scratch and
//! are the reference the incremental driver is validated against.

use crate::config::SchedulerConfig;
use crate::engine::{Engine, EngineOutcome};
use crate::relax::Restraint;
use hls_ir::analysis::{alap_levels, asap_levels, Scc};
use hls_ir::{LinearBody, OpId, OpKind};
use hls_netlist::{ChainTiming, CombGraph};
use hls_netlist::{ScheduleDesc, ScheduledOp};
use hls_tech::{
    Interner, ResourceClass, ResourceInstanceId, ResourceSet, ResourceType, TechLibrary,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Everything a pass needs, borrowed from the multi-pass driver.
pub struct PassInput<'a> {
    /// The loop body to schedule.
    pub body: &'a LinearBody,
    /// Technology library.
    pub lib: &'a TechLibrary,
    /// Scheduler configuration.
    pub config: &'a SchedulerConfig,
    /// Latency (number of states) to schedule into.
    pub latency: u32,
    /// Allocated resources.
    pub resources: &'a ResourceSet,
    /// Bindings forbidden by earlier relaxation actions.
    pub forbidden: &'a HashSet<(OpId, ResourceInstanceId)>,
    /// Stage overrides per SCC index (from `MoveScc` actions).
    pub scc_stage: &'a HashMap<usize, u32>,
    /// The strongly connected components of the body's DFG.
    pub sccs: &'a [Scc],
}

/// The failure report of a pass.
#[derive(Clone, Debug, Default)]
pub struct PassFailure {
    /// Restraints recorded for the operations that could not be placed.
    pub restraints: Vec<Restraint>,
    /// Operations that could not be placed.
    pub failed_ops: Vec<OpId>,
    /// Number of operations that were successfully placed.
    pub scheduled: usize,
}

/// Result of one pass.
#[derive(Clone, Debug)]
pub enum PassOutcome {
    /// The pass placed every operation.
    Success {
        /// The resulting schedule.
        desc: ScheduleDesc,
        /// Worst register-to-register slack over all bound paths, ps.
        min_slack_ps: f64,
    },
    /// The pass failed; the restraints drive relaxation.
    Failure(PassFailure),
}

/// Runs one scheduling pass, from scratch.
pub fn schedule_pass(input: &PassInput<'_>) -> PassOutcome {
    let mut engine = Engine::new(
        input.body,
        input.lib,
        input.config,
        input.sccs,
        input.resources.clone(),
        input.latency,
    );
    engine.seed_inputs(
        input.forbidden.iter().copied(),
        input.scc_stage.iter().map(|(&scc, &stage)| (scc, stage)),
    );
    match engine.run_pass() {
        EngineOutcome::Success { min_slack_ps } => PassOutcome::Success {
            desc: engine.into_desc(),
            min_slack_ps,
        },
        EngineOutcome::Failure(failure) => PassOutcome::Failure(failure),
    }
}

/// Region assignment for the reference pass: which region owns each
/// operation and each resource instance. Mirrors the decomposition the
/// incremental engine derives from a [`RegionPlan`](crate::RegionPlan), in
/// the simplest possible encoding so the reference stays obviously correct.
pub struct PassRegions<'a> {
    /// Owning region per operation, dense by op index.
    pub op_region: &'a [u32],
    /// Owning region per resource instance, dense by instance index.
    pub inst_region: &'a [u32],
}

/// The retained reference pass: the original `HashMap`-based implementation,
/// kept verbatim. The schedule-equivalence regression suite re-schedules
/// every design through a driver built on this function
/// ([`Scheduler::run_reference`](crate::scheduler::Scheduler::run_reference))
/// and asserts the incremental arena-backed scheduler produces the identical
/// `ScheduleDesc`, pass count and action sequence.
pub fn schedule_pass_reference(input: &PassInput<'_>) -> PassOutcome {
    schedule_pass_reference_with_regions(input, None)
}

/// The reference pass with an optional region decomposition. With regions,
/// the state-major loop applies the **registered cut-value rule**: a value
/// crossing a region boundary is always registered, so its consumers become
/// ready only in a strictly later state and always see a register-launch
/// arrival; bindings are confined to the consumer's own region pool and
/// sharing factors are computed per (region, class). This is the semantics
/// the region-decomposed incremental engine must reproduce bit-identically.
pub fn schedule_pass_reference_with_regions(
    input: &PassInput<'_>,
    regions: Option<&PassRegions<'_>>,
) -> PassOutcome {
    let body = input.body;
    let config = input.config;
    let latency = input.latency.max(1);
    let ii = config.ii_or(latency);
    let pipelined = config.pipeline.is_some();
    let sharing = config.sharing_possible();

    let mut timing = ChainTiming::new(input.lib, config.clock);
    let mut comb = CombGraph::new();

    // --- static pre-computation ------------------------------------------------
    let asap = asap_levels(&body.dfg);
    let alap = alap_levels(&body.dfg, latency.saturating_sub(1));
    let scc_of: HashMap<OpId, usize> = input
        .sccs
        .iter()
        .enumerate()
        .flat_map(|(i, scc)| scc.ops.iter().map(move |&op| (op, i)))
        .collect();

    // Extra precedence edges from I/O ordering.
    let mut extra_preds: HashMap<OpId, Vec<OpId>> = HashMap::new();
    for (a, b) in body.io_order_deps() {
        extra_preds.entry(b).or_default().push(a);
    }

    // Region lookups: without regions everything lives in region 0 and the
    // cut rule never fires (every pair is same-region).
    let region_of_op = |id: OpId| -> u32 { regions.map(|r| r.op_region[id.index()]).unwrap_or(0) };
    let cross = |a: OpId, b: OpId| region_of_op(a) != region_of_op(b);
    let num_regions = regions
        .map(|r| {
            r.op_region
                .iter()
                .max()
                .map(|&m| m as usize + 1)
                .unwrap_or(1)
        })
        .unwrap_or(1);

    // Expected sharing factor per (region, resource class) — the sharing
    // pressure an instance sees is confined to its own region's pool. Over
    // interned class ids: a zero count means the class was only interned by
    // the other table and reads as "absent" (factor contribution 1), exactly
    // like the historical string-keyed maps.
    let mut interner = Interner::new();
    let mut ops_per_class: Vec<Vec<usize>> = vec![Vec::new(); num_regions];
    for (id, op) in body.dfg.iter_ops() {
        if let Some(ty) = ResourceType::for_op(op) {
            if !matches!(ty.class, ResourceClass::IoPort) {
                let cid = interner.class_id(&ty.class);
                let per = &mut ops_per_class[region_of_op(id) as usize];
                if cid.index() >= per.len() {
                    per.resize(cid.index() + 1, 0);
                }
                per[cid.index()] += 1;
            }
        }
    }
    let mut insts_per_class: Vec<Vec<usize>> = vec![Vec::new(); num_regions];
    for inst in input.resources.iter() {
        let cid = interner.class_id(&inst.ty.class);
        let r = regions.map(|r| r.inst_region[inst.id.index()]).unwrap_or(0) as usize;
        let per = &mut insts_per_class[r];
        if cid.index() >= per.len() {
            per.resize(cid.index() + 1, 0);
        }
        per[cid.index()] += 1;
    }
    let interner = interner;
    let share_factor = |class: &ResourceClass, region: usize| -> usize {
        let id = interner.lookup_class(class);
        let ops = id
            .and_then(|i| ops_per_class[region].get(i.index()).copied())
            .filter(|&n| n > 0)
            .unwrap_or(1);
        let insts = id
            .and_then(|i| insts_per_class[region].get(i.index()).copied())
            .filter(|&n| n > 0)
            .unwrap_or(1);
        ops.div_ceil(insts)
    };

    // --- pass state ---------------------------------------------------------------
    let mut placed: BTreeMap<OpId, ScheduledOp> = BTreeMap::new();
    let mut arrival: HashMap<OpId, f64> = HashMap::new();
    // busy[(resource, folded_state)] → ops bound there
    let mut busy: HashMap<(ResourceInstanceId, u32), Vec<OpId>> = HashMap::new();
    // dynamic SCC stage assignment (first placed member pins the stage)
    let mut scc_dyn_stage: HashMap<usize, u32> = input.scc_stage.clone();
    let mut last_reasons: HashMap<OpId, Vec<Restraint>> = HashMap::new();
    let mut min_slack = f64::INFINITY;

    let fold = |state: u32| if pipelined { state % ii } else { state };

    let scc_window = |idx: usize, dyn_stage: &HashMap<usize, u32>| -> Option<(u32, u32)> {
        dyn_stage
            .get(&idx)
            .map(|&stage| (stage * ii, (stage * ii + ii - 1).min(latency - 1)))
    };

    // priority function: complexity (delay) first, then low mobility, then
    // large fanout cone, then id for determinism.
    let complexity: HashMap<OpId, f64> = body
        .dfg
        .iter_ops()
        .map(|(id, op)| {
            let d = ResourceType::for_op(op)
                .filter(|ty| !matches!(ty.class, ResourceClass::IoPort))
                .map(|ty| input.lib.delay_ps(&ty))
                .unwrap_or(0.0);
            (id, d)
        })
        .collect();
    // capped fanout cones, shared with the engine so the priority orders of
    // the two drivers stay identical even on cap-sized designs
    let fanout = crate::engine::fanout_cone_sizes(body, crate::engine::FANOUT_CONE_CAP);

    for state in 0..latency {
        loop {
            // ready operations
            let mut ready: Vec<OpId> = body
                .dfg
                .op_ids()
                .filter(|id| !placed.contains_key(id))
                .filter(|&id| {
                    // same-region predecessors permit same-state chaining;
                    // a region-crossing value is registered (cut rule), so
                    // its consumers wait for a strictly later state
                    let pred_ok = |p: &OpId| {
                        placed
                            .get(p)
                            .map(|s| {
                                if cross(id, *p) {
                                    s.state < state
                                } else {
                                    s.state <= state
                                }
                            })
                            .unwrap_or(false)
                    };
                    body.dfg.preds(id).iter().all(pred_ok)
                        && extra_preds
                            .get(&id)
                            .map(|ps| ps.iter().all(pred_ok))
                            .unwrap_or(true)
                })
                .filter(|&id| {
                    // pin constraints
                    body.pin_of(id)
                        .map(|p| p.allows(hls_ir::StateIdx::new(state)))
                        .unwrap_or(true)
                })
                .filter(|&id| {
                    // SCC stage window (only a lower/upper bound once pinned)
                    match scc_of.get(&id).and_then(|&i| scc_window(i, &scc_dyn_stage)) {
                        Some((lo, hi)) => state >= lo && state <= hi,
                        None => true,
                    }
                })
                .collect();
            if ready.is_empty() {
                break;
            }
            ready.sort_by(|&a, &b| {
                let ca = complexity[&a];
                let cb = complexity[&b];
                cb.partial_cmp(&ca)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        let ma = alap[&a].saturating_sub(asap[&a]);
                        let mb = alap[&b].saturating_sub(asap[&b]);
                        ma.cmp(&mb)
                    })
                    .then_with(|| fanout[b.index()].cmp(&fanout[a.index()]))
                    .then_with(|| a.cmp(&b))
            });

            let mut placed_any = false;
            for &op_id in &ready {
                let op = body.dfg.op(op_id);

                // input arrival times
                let mut inputs_ready = true;
                let mut in_arrivals: Vec<f64> = Vec::with_capacity(op.inputs.len());
                for sig in &op.inputs {
                    let a = match sig.producer() {
                        None => 0.0,
                        Some(p) if sig.distance > 0 => {
                            let _ = p;
                            timing.register_arrival_ps()
                        }
                        Some(p) => match placed.get(&p) {
                            Some(sp) if sp.state < state => timing.register_arrival_ps(),
                            Some(sp) if sp.state == state => {
                                arrival.get(&p).copied().unwrap_or(0.0)
                            }
                            _ => {
                                inputs_ready = false;
                                0.0
                            }
                        },
                    };
                    in_arrivals.push(a);
                }
                // For side-effecting operations (port writes, IP calls) the
                // predicate decides an externally observable action, so its
                // condition operations must be available no later than this
                // state, exactly like data inputs. Pure predicated values
                // need no such edge: they are captured unconditionally and
                // the muxes inserted by predicate conversion select the
                // correct one downstream.
                if op.kind.has_side_effects() {
                    for cond in op.predicate.condition_ops() {
                        match placed.get(&cond) {
                            Some(sp) if sp.state < state => {
                                in_arrivals.push(timing.register_arrival_ps());
                            }
                            Some(sp) if sp.state == state && !cross(op_id, cond) => {
                                in_arrivals.push(arrival.get(&cond).copied().unwrap_or(0.0));
                            }
                            _ => inputs_ready = false,
                        }
                    }
                }
                if !inputs_ready {
                    continue;
                }

                let required_ty = ResourceType::for_op(op);
                let needs_resource = required_ty
                    .as_ref()
                    .map(|ty| !matches!(ty.class, ResourceClass::IoPort))
                    .unwrap_or(false);

                if !needs_resource {
                    // Free / IO operation: arrival is the max input arrival for
                    // frees, the register launch for reads and live-ins.
                    let a = match op.kind {
                        OpKind::Read(_) | OpKind::Pass => timing.register_arrival_ps(),
                        _ => in_arrivals.iter().copied().fold(0.0f64, f64::max),
                    };
                    placed.insert(
                        op_id,
                        ScheduledOp {
                            op: op_id,
                            state,
                            resource: None,
                        },
                    );
                    arrival.insert(op_id, a);
                    placed_any = true;
                    continue;
                }

                // try every compatible, non-forbidden resource instance
                // from the op's own region pool
                let mut compatible = input.resources.compatible_with(op);
                if let Some(r) = regions {
                    let my = r.op_region[op_id.index()];
                    compatible.retain(|res| r.inst_region[res.index()] == my);
                }
                let mut reasons: Vec<Restraint> = Vec::new();
                let mut bound = false;
                let mut best_slack = f64::NEG_INFINITY;
                for res_id in compatible.iter().copied() {
                    if input.forbidden.contains(&(op_id, res_id)) {
                        continue;
                    }
                    let inst = input.resources.instance(res_id);
                    // busy check in this folded state: mutually exclusive
                    // predicated ops may share, but only within the *same*
                    // control step — equivalent states of a folded pipeline
                    // guard different iterations (mirrors the engine)
                    let slot = (res_id, fold(state));
                    let conflict = busy.get(&slot).map(|ops| {
                        ops.iter().any(|other| {
                            !placed.get(other).is_some_and(|p| p.state == state)
                                || !body
                                    .dfg
                                    .op(*other)
                                    .predicate
                                    .mutually_exclusive(&op.predicate)
                        })
                    });
                    if conflict == Some(true) {
                        reasons.push(Restraint::ResourceContention {
                            op: op_id,
                            ty: inst.ty.clone(),
                        });
                        continue;
                    }
                    // timing check
                    let share = share_factor(&inst.ty.class, region_of_op(op_id) as usize);
                    let a = timing.op_arrival_ps(&in_arrivals, share, &inst.ty);
                    let slack = timing.slack_shared_ps(a, op.width, sharing);
                    best_slack = best_slack.max(slack);
                    if slack < 0.0 {
                        reasons.push(Restraint::NegativeSlack {
                            op: op_id,
                            slack_ps: slack,
                        });
                        continue;
                    }
                    // combinational cycle check
                    if config.avoid_comb_cycles {
                        let mut creates_cycle = false;
                        for (i, sig) in op.inputs.iter().enumerate() {
                            let _ = i;
                            if sig.distance > 0 {
                                continue;
                            }
                            if let Some(p) = sig.producer() {
                                if let Some(sp) = placed.get(&p) {
                                    if sp.state == state {
                                        if let Some(rp) = sp.resource {
                                            if comb.would_create_cycle(rp.0, res_id.0) {
                                                creates_cycle = true;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        if creates_cycle {
                            reasons.push(Restraint::CombCycle {
                                op: op_id,
                                resource: res_id,
                            });
                            continue;
                        }
                    }
                    // accept the binding
                    for sig in &op.inputs {
                        if sig.distance > 0 {
                            continue;
                        }
                        if let Some(p) = sig.producer() {
                            if let Some(sp) = placed.get(&p) {
                                if sp.state == state {
                                    if let Some(rp) = sp.resource {
                                        comb.add_edge(rp.0, res_id.0);
                                    }
                                }
                            }
                        }
                    }
                    busy.entry(slot).or_default().push(op_id);
                    placed.insert(
                        op_id,
                        ScheduledOp {
                            op: op_id,
                            state,
                            resource: Some(res_id),
                        },
                    );
                    arrival.insert(op_id, a);
                    min_slack = min_slack.min(slack);
                    // pin the SCC stage on first placement
                    if let Some(&scc_idx) = scc_of.get(&op_id) {
                        scc_dyn_stage.entry(scc_idx).or_insert(state / ii);
                    }
                    bound = true;
                    placed_any = true;
                    break;
                }
                if !bound {
                    // If every instance was busy, also check whether a brand
                    // new instance would have met timing; if not, the real
                    // problem is slack, not hardware.
                    if reasons
                        .iter()
                        .all(|r| matches!(r, Restraint::ResourceContention { .. }))
                    {
                        if let Some(ty) = &required_ty {
                            let share = share_factor(&ty.class, region_of_op(op_id) as usize);
                            let a = timing.op_arrival_ps(&in_arrivals, share, ty);
                            let slack = timing.slack_shared_ps(a, op.width, sharing);
                            if slack < 0.0 {
                                reasons.push(Restraint::NegativeSlack {
                                    op: op_id,
                                    slack_ps: slack,
                                });
                            }
                        }
                    }
                    if compatible.is_empty() {
                        if let Some(ty) = required_ty.clone() {
                            reasons.push(Restraint::ResourceContention { op: op_id, ty });
                        }
                    }
                    if let Some(&scc_idx) = scc_of.get(&op_id) {
                        if scc_window(scc_idx, &scc_dyn_stage)
                            .map(|(_, hi)| state >= hi)
                            .unwrap_or(false)
                        {
                            reasons.push(Restraint::SccWindow {
                                scc_index: scc_idx,
                                op: op_id,
                            });
                        }
                    }
                    let _ = best_slack;
                    last_reasons.insert(op_id, reasons);
                }
            }
            if !placed_any {
                break;
            }
        }
    }

    if placed.len() == body.dfg.num_ops() {
        let desc = ScheduleDesc {
            num_states: latency,
            ii: config.pipeline.map(|p| p.ii),
            ops: placed,
            resources: input.resources.clone(),
        };
        let min_slack_ps = if min_slack.is_finite() {
            min_slack
        } else {
            config.clock.period_ps()
        };
        PassOutcome::Success { desc, min_slack_ps }
    } else {
        let mut failure = PassFailure {
            scheduled: placed.len(),
            ..PassFailure::default()
        };
        for id in body.dfg.op_ids() {
            if placed.contains_key(&id) {
                continue;
            }
            // only report ops whose predecessors were all placed (root causes)
            let preds_ok = body.dfg.preds(id).iter().all(|p| placed.contains_key(p));
            if !preds_ok {
                continue;
            }
            failure.failed_ops.push(id);
            if let Some(rs) = last_reasons.get(&id) {
                failure.restraints.extend(rs.clone());
            } else {
                // never attempted: distinguish "a region-crossing value is
                // registered in the final state, so readiness needs a state
                // that does not exist" from plain starvation
                let op = body.dfg.op(id);
                let last = latency.saturating_sub(1);
                let cut_blocked =
                    |p: &OpId| cross(id, *p) && placed.get(p).is_some_and(|s| s.state >= last);
                let blocked = body.dfg.preds(id).iter().any(cut_blocked)
                    || extra_preds
                        .get(&id)
                        .map(|ps| ps.iter().any(cut_blocked))
                        .unwrap_or(false)
                    || (op.kind.has_side_effects()
                        && op.predicate.condition_ops().iter().any(cut_blocked));
                if blocked {
                    failure
                        .restraints
                        .push(Restraint::StateExhausted { op: id });
                } else if let Some(ty) = ResourceType::for_op(op) {
                    failure
                        .restraints
                        .push(Restraint::ResourceContention { op: id, ty });
                }
            }
        }
        PassOutcome::Failure(failure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::initial_resource_set;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;
    use hls_tech::ClockConstraint;

    fn example1() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    fn run_pass(
        body: &LinearBody,
        latency: u32,
        config: &SchedulerConfig,
        resources: &ResourceSet,
    ) -> PassOutcome {
        let lib = TechLibrary::artisan_90nm_typical();
        let sccs = hls_ir::analysis::sccs(&body.dfg);
        let input = PassInput {
            body,
            lib: &lib,
            config,
            latency,
            resources,
            forbidden: &HashSet::new(),
            scc_stage: &HashMap::new(),
            sccs: &sccs,
        };
        schedule_pass(&input)
    }

    #[test]
    fn example1_fails_at_latency_one() {
        // The paper: with one state and one multiplier the pass fails on
        // resource contention and the gt negative slack.
        let body = example1();
        let config = SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 3);
        let resources = initial_resource_set(&body, 3);
        match run_pass(&body, 1, &config, &resources) {
            PassOutcome::Failure(f) => {
                assert!(!f.restraints.is_empty());
                let has_contention = f
                    .restraints
                    .iter()
                    .any(|r| matches!(r, Restraint::ResourceContention { .. }));
                let has_slack = f
                    .restraints
                    .iter()
                    .any(|r| matches!(r, Restraint::NegativeSlack { .. }));
                assert!(has_contention, "{:?}", f.restraints);
                assert!(has_slack, "{:?}", f.restraints);
            }
            PassOutcome::Success { .. } => panic!("latency 1 must not be schedulable"),
        }
    }

    #[test]
    fn example1_succeeds_at_latency_three() {
        let body = example1();
        let config = SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 3);
        let resources = initial_resource_set(&body, 3);
        match run_pass(&body, 3, &config, &resources) {
            PassOutcome::Success { desc, min_slack_ps } => {
                assert_eq!(desc.num_states, 3);
                assert!(min_slack_ps >= 0.0);
                // the three multiplications land in three different states
                let mut mul_states: Vec<u32> = body
                    .dfg
                    .iter_ops()
                    .filter(|(_, op)| matches!(op.kind, OpKind::Mul))
                    .map(|(id, _)| desc.state_of(id))
                    .collect();
                mul_states.sort_unstable();
                assert_eq!(
                    mul_states,
                    vec![0, 1, 2],
                    "one multiplication per state (Table 2)"
                );
            }
            PassOutcome::Failure(f) => panic!("latency 3 must schedule: {:?}", f.restraints),
        }
    }

    #[test]
    fn dependencies_are_respected() {
        let body = example1();
        let config = SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 3);
        let resources = initial_resource_set(&body, 3);
        if let PassOutcome::Success { desc, .. } = run_pass(&body, 3, &config, &resources) {
            for dep in body.dfg.data_deps() {
                if dep.distance == 0 {
                    assert!(
                        desc.state_of(dep.from) <= desc.state_of(dep.to),
                        "dependence {dep:?} violated"
                    );
                }
            }
        } else {
            panic!("expected success");
        }
    }

    #[test]
    fn no_resource_is_double_booked_in_a_state() {
        let body = example1();
        let config = SchedulerConfig::sequential(ClockConstraint::from_period_ps(1600.0), 1, 3);
        let resources = initial_resource_set(&body, 3);
        if let PassOutcome::Success { desc, .. } = run_pass(&body, 3, &config, &resources) {
            let mut seen: HashMap<(u32, u32), OpId> = HashMap::new();
            for (id, s) in &desc.ops {
                if let Some(r) = s.resource {
                    if let Some(prev) = seen.insert((r.0, s.state), *id) {
                        let p1 = &body.dfg.op(prev).predicate;
                        let p2 = &body.dfg.op(*id).predicate;
                        assert!(
                            p1.mutually_exclusive(p2),
                            "{prev} and {id} share {r:?} in state {}",
                            s.state
                        );
                    }
                }
            }
        } else {
            panic!("expected success");
        }
    }

    #[test]
    fn pipelined_ii2_respects_edge_equivalence() {
        let body = example1();
        let config = SchedulerConfig::pipelined(ClockConstraint::from_period_ps(1600.0), 2, 6);
        let resources = initial_resource_set(&body, 2);
        if let PassOutcome::Success { desc, .. } = run_pass(&body, 3, &config, &resources) {
            // equivalent states are s1 and s3 (II=2): no resource may appear in both
            let mut folded: HashMap<(u32, u32), Vec<OpId>> = HashMap::new();
            for (id, s) in &desc.ops {
                if let Some(r) = s.resource {
                    folded.entry((r.0, s.state % 2)).or_default().push(*id);
                }
            }
            for ((_, _), ops) in folded {
                for i in 0..ops.len() {
                    for j in (i + 1)..ops.len() {
                        let a = &body.dfg.op(ops[i]).predicate;
                        let b = &body.dfg.op(ops[j]).predicate;
                        assert!(
                            a.mutually_exclusive(b),
                            "ops {:?} share a folded slot",
                            (ops[i], ops[j])
                        );
                    }
                }
            }
        } else {
            panic!("II=2 LI=3 must schedule (paper Example 2)");
        }
    }
}
