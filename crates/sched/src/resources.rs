//! Initial resource set estimation (the lower bound of Section IV.A).
//!
//! Operations are mapped to width-compatible resource types (merging types
//! whose widths are close, never "very different" widths), and the demand of
//! each type is bounded from below by the number of operations that must
//! execute divided by the number of control-step slots a single instance can
//! serve per iteration — the full latency for a sequential loop, the
//! initiation interval for a pipelined one (edge equivalence makes states
//! `II` apart unable to share an instance). Mutually exclusive predicated
//! operations (the two arms of a converted conditional) are counted once.

use hls_ir::LinearBody;
use hls_tech::{ResourceClass, ResourceSet, ResourceType};
use std::collections::BTreeMap;

/// Computes the initial (lower bound) resource set for a loop body.
///
/// `slots_per_instance` is the number of distinct control steps one instance
/// can serve per loop iteration: the latency for sequential schedules, the II
/// for pipelined ones.
pub fn initial_resource_set(body: &LinearBody, slots_per_instance: u32) -> ResourceSet {
    let ops: Vec<hls_ir::OpId> = body.dfg.op_ids().collect();
    initial_resource_set_for_ops(body, &ops, slots_per_instance)
}

/// Computes the initial resource set for a *subset* of a body's operations —
/// the per-region resource pools of the region decomposition layer
/// ([`crate::region`]). Ops are always processed in ascending id order
/// regardless of the order of `ops`, so the result is independent of how the
/// caller linearized the subset, and a subset covering the whole body yields
/// exactly [`initial_resource_set`].
pub fn initial_resource_set_for_ops(
    body: &LinearBody,
    ops: &[hls_ir::OpId],
    slots_per_instance: u32,
) -> ResourceSet {
    let slots = slots_per_instance.max(1) as usize;
    let mut ids: Vec<hls_ir::OpId> = ops.to_vec();
    ids.sort_unstable();

    // Group operations by a merged resource type per class/width bucket.
    let mut groups: BTreeMap<String, (ResourceType, Vec<hls_ir::OpId>)> = BTreeMap::new();
    for (id, op) in ids.iter().map(|&id| (id, body.dfg.op(id))) {
        let Some(ty) = ResourceType::for_op(op) else {
            continue;
        };
        if matches!(ty.class, ResourceClass::IoPort) {
            continue; // port interfaces are not datapath resources
        }
        // Find an existing group this type can merge with.
        let mut merged_into = None;
        for (key, (gty, ops)) in groups.iter_mut() {
            if gty.can_merge(&ty) {
                *gty = gty.merge(&ty);
                ops.push(id);
                merged_into = Some(key.clone());
                break;
            }
        }
        if merged_into.is_none() {
            groups.insert(format!("{}#{}", ty.name(), groups.len()), (ty, vec![id]));
        }
    }

    let mut set = ResourceSet::new();
    for (_, (ty, ops)) in groups {
        // Mutually exclusive operations can share an execution slot: pair them
        // greedily and count each pair once. Unconditional operations can
        // never be exclusive with anything, so they skip the pairing scan —
        // on large synthetic designs (mostly unpredicated) this keeps the
        // estimate linear instead of quadratic.
        let mut counted: Vec<hls_ir::OpId> = Vec::new();
        let mut effective = 0usize;
        for &op in &ops {
            let pred = &body.dfg.op(op).predicate;
            let exclusive_partner = if pred.is_true() {
                None
            } else {
                counted
                    .iter()
                    .position(|&other| body.dfg.op(other).predicate.mutually_exclusive(pred))
            };
            if let Some(pos) = exclusive_partner {
                counted.remove(pos);
            } else {
                counted.push(op);
                effective += 1;
            }
        }
        let demand = effective.div_ceil(slots).max(1);
        set.add_many(ty, demand);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;

    fn example1_body() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elaborate");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    #[test]
    fn example1_sequential_needs_one_multiplier() {
        // 3 multiplications in at most 3 states → 1 multiplier (paper,
        // Example 1: "a single multiplier suffices").
        let body = example1_body();
        let set = initial_resource_set(&body, 3);
        assert_eq!(set.count_of_class(&ResourceClass::Multiplier), 1, "{set}");
        assert_eq!(set.count_of_class(&ResourceClass::Adder), 1);
        assert_eq!(set.count_of_class(&ResourceClass::Comparator), 1);
        assert_eq!(set.count_of_class(&ResourceClass::EqualityComparator), 1);
    }

    #[test]
    fn example1_ii2_needs_two_multipliers() {
        // Paper, Example 2: with II = 2 "two mul resources must be created".
        let body = example1_body();
        let set = initial_resource_set(&body, 2);
        assert_eq!(set.count_of_class(&ResourceClass::Multiplier), 2, "{set}");
    }

    #[test]
    fn example1_ii1_needs_three_multipliers() {
        // Paper, Example 3: with II = 1 "3 multipliers are created".
        let body = example1_body();
        let set = initial_resource_set(&body, 1);
        assert_eq!(set.count_of_class(&ResourceClass::Multiplier), 3, "{set}");
    }

    #[test]
    fn mutually_exclusive_branch_arms_share_a_slot() {
        use hls_frontend::{BehaviorBuilder, Expr};
        use hls_ir::CmpKind;
        let mut b = BehaviorBuilder::new("branchy");
        b.port_in("x", 32);
        b.port_out("y", 32);
        let v = b.var("v", 32, 0);
        let body_stmts = vec![
            b.assign(v, b.read_port("x")),
            b.if_then_else(
                Expr::cmp(CmpKind::Gt, b.read_var(v), Expr::Const(7)),
                vec![b.assign(v, Expr::mul(b.read_var(v), Expr::Const(3)))],
                vec![b.assign(v, Expr::mul(b.read_var(v), Expr::Const(5)))],
            ),
            b.write_port("y", b.read_var(v)),
            b.wait(),
        ];
        let l = b.do_while(
            "main",
            body_stmts,
            Expr::cmp(CmpKind::Ne, b.read_var(v), Expr::Const(0)),
        );
        b.push(l);
        let mut cdfg = hls_frontend::elaborate(&b.build()).expect("elab");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        // Two multiplications, but they are mutually exclusive → one multiplier
        // even with a single slot.
        let set = initial_resource_set(&body, 1);
        assert_eq!(set.count_of_class(&ResourceClass::Multiplier), 1, "{set}");
    }

    #[test]
    fn io_ports_are_not_allocated_as_resources() {
        let body = example1_body();
        let set = initial_resource_set(&body, 3);
        assert_eq!(set.count_of_class(&ResourceClass::IoPort), 0);
    }
}
