//! The multi-pass scheduling driver: run a pass, and when it fails let the
//! relaxation expert system pick a corrective action and try again.
//!
//! [`Scheduler::run`] drives the dense engine *incrementally*: the pass
//! state persists across relaxation actions and each re-pass resumes from
//! the earliest control step the action can influence instead of
//! rescheduling every operation. [`Scheduler::run_reference`] retains the
//! original schedule-everything-every-pass driver over
//! [`schedule_pass_reference`](crate::pass::schedule_pass_reference); the
//! two are asserted bit-identical by the schedule-equivalence suite.

use crate::config::SchedulerConfig;
use crate::engine::{Engine, EngineOutcome};
use crate::error::SchedError;
use crate::pass::{
    schedule_pass, schedule_pass_reference_with_regions, PassInput, PassOutcome, PassRegions,
};
use crate::region::{batch_owner_regions, concat_pools, owner_region, region_pools, RegionPlan};
use crate::relax::{choose_action, worst_negative_slack, RelaxAction};
use crate::resources::initial_resource_set;
use hls_ir::analysis::{sccs, Scc};
use hls_ir::{LinearBody, OpId};
use hls_netlist::ScheduleDesc;
use hls_tech::{ResourceInstanceId, ResourceSet, TechLibrary};
use std::collections::{HashMap, HashSet};

/// A successful scheduling result.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The schedule: states, bindings, resources, II.
    pub desc: ScheduleDesc,
    /// Achieved latency (LI for pipelined loops).
    pub latency: u32,
    /// Worst slack over all bound register-to-register paths, ps.
    pub min_slack_ps: f64,
    /// Number of scheduling passes executed.
    pub passes: u32,
    /// Relaxation actions applied, in order.
    pub actions: Vec<RelaxAction>,
}

impl Schedule {
    /// Effective cycles per iteration (II if pipelined, latency otherwise).
    pub fn cycles_per_iteration(&self) -> u32 {
        self.desc.cycles_per_iteration()
    }

    /// Clock cycle at which `op` fires for the given iteration, assuming
    /// back-to-back iterations — the replay contract the cycle-accurate
    /// simulator in `hls-sim` executes.
    pub fn fire_cycle(&self, op: OpId, iteration: u64) -> Option<u64> {
        self.desc.fire_cycle(op, iteration)
    }

    /// Renders the paper-style state × resource table (Table 2).
    pub fn table(&self, body: &LinearBody) -> String {
        self.desc.to_table(body)
    }
}

/// The multi-pass scheduler.
pub struct Scheduler<'a> {
    body: &'a LinearBody,
    lib: &'a TechLibrary,
    config: SchedulerConfig,
}

impl<'a> Scheduler<'a> {
    /// Creates a scheduler for the given body, library and configuration.
    pub fn new(body: &'a LinearBody, lib: &'a TechLibrary, config: SchedulerConfig) -> Self {
        Scheduler { body, lib, config }
    }

    /// Runs scheduling passes until success or until no relaxation action is
    /// applicable.
    ///
    /// Re-passes are incremental: the engine persists the pass state, each
    /// relaxation action reports the earliest control step it can influence,
    /// and the next pass resumes there — producing the identical schedule a
    /// from-scratch re-pass would (see [`Scheduler::run_reference`]).
    ///
    /// # Errors
    /// Returns [`SchedError::InvalidBody`] if the body fails validation,
    /// [`SchedError::Overconstrained`] if the latency/resource bounds cannot
    /// accommodate the design at the requested clock, or
    /// [`SchedError::BudgetExhausted`] when the pass-count or wall-clock
    /// budget runs out with relaxation actions still applicable.
    pub fn run(&self) -> Result<Schedule, SchedError> {
        self.body.validate()?;
        let start = std::time::Instant::now();
        let components: Vec<Scc> = sccs(&self.body.dfg);

        let latency = self.config.min_latency.max(1);
        // The lower-bound resource estimate uses the *most generous* latency
        // the designer allows (the paper sizes Example 1 with "3 multiplies in
        // at most 3 states"), or the II for pipelined loops.
        let slots = self.config.ii_or(self.config.max_latency);
        let mut engine = match self.config.region_decomposition {
            Some(opts) => {
                let plan = RegionPlan::build(self.body, &components, opts.target_ops);
                Engine::new_with_plan(
                    self.body,
                    self.lib,
                    &self.config,
                    &components,
                    plan,
                    slots,
                    latency,
                )
            }
            None => {
                let resources: ResourceSet = initial_resource_set(self.body, slots);
                Engine::new(
                    self.body,
                    self.lib,
                    &self.config,
                    &components,
                    resources,
                    latency,
                )
            }
        };
        let mut actions: Vec<RelaxAction> = Vec::new();
        let mut last_restraints: Vec<String> = Vec::new();

        for pass_no in 1..=self.config.max_passes {
            if let Some(deadline) = self.config.deadline {
                if pass_no > 1 && start.elapsed() >= deadline {
                    return Err(budget_exhausted(
                        format!("deadline of {deadline:?}"),
                        engine.latency,
                        pass_no - 1,
                        last_restraints,
                        &actions,
                    ));
                }
            }
            match engine.run_pass() {
                EngineOutcome::Success { min_slack_ps } => {
                    let latency = engine.latency;
                    return Ok(Schedule {
                        desc: engine.into_desc(),
                        latency,
                        min_slack_ps,
                        passes: pass_no,
                        actions,
                    });
                }
                EngineOutcome::Failure(failure) => {
                    last_restraints = failure.restraints.iter().map(|r| r.to_string()).collect();
                    let scc_stage: Vec<u32> =
                        engine.scc_stage().iter().map(|s| s.unwrap_or(0)).collect();
                    let action = choose_action(
                        &failure.restraints,
                        &self.config,
                        self.lib,
                        engine.latency,
                        components.len(),
                        &scc_stage,
                        &engine.resources,
                        &failure.failed_ops,
                    );
                    let Some(action) = action else {
                        return Err(SchedError::Overconstrained {
                            latency: engine.latency,
                            passes: pass_no,
                            details: last_restraints.join("; "),
                            worst_slack_ps: worst_negative_slack(&failure.restraints),
                        });
                    };
                    engine.apply(&action, &failure.restraints);
                    actions.push(action);
                }
            }
        }
        Err(budget_exhausted(
            format!("{} scheduling passes", self.config.max_passes),
            engine.latency,
            self.config.max_passes,
            last_restraints,
            &actions,
        ))
    }

    /// The retained reference driver: re-runs the original from-scratch
    /// [`schedule_pass_reference`] after every relaxation action, exactly as
    /// the pre-incremental scheduler did. Quadratically slower than
    /// [`Scheduler::run`] on large designs but definitionally correct; the
    /// schedule-equivalence regression suite asserts `run()` matches it
    /// bit-for-bit (latency, per-op state and binding, pass count, actions).
    ///
    /// # Errors
    /// Same contract as [`Scheduler::run`].
    pub fn run_reference(&self) -> Result<Schedule, SchedError> {
        self.body.validate()?;
        let start = std::time::Instant::now();
        let components: Vec<Scc> = sccs(&self.body.dfg);

        let mut latency = self.config.min_latency.max(1);
        let slots = self.config.ii_or(self.config.max_latency);
        // Region mode builds the same plan and concatenated per-region pools
        // the incremental engine uses, so the two drivers stay comparable
        // bit for bit.
        let region_plan = self
            .config
            .region_decomposition
            .map(|opts| RegionPlan::build(self.body, &components, opts.target_ops));
        let (mut resources, mut inst_region): (ResourceSet, Vec<u32>) = match &region_plan {
            Some(plan) => concat_pools(&region_pools(self.body, plan, slots)),
            None => (initial_resource_set(self.body, slots), Vec::new()),
        };
        let mut forbidden: HashSet<(OpId, ResourceInstanceId)> = HashSet::new();
        let mut scc_stage: HashMap<usize, u32> = HashMap::new();
        let mut actions: Vec<RelaxAction> = Vec::new();
        let mut last_restraints: Vec<String> = Vec::new();

        for pass_no in 1..=self.config.max_passes {
            if let Some(deadline) = self.config.deadline {
                if pass_no > 1 && start.elapsed() >= deadline {
                    return Err(budget_exhausted(
                        format!("deadline of {deadline:?}"),
                        latency,
                        pass_no - 1,
                        last_restraints,
                        &actions,
                    ));
                }
            }
            let input = PassInput {
                body: self.body,
                lib: self.lib,
                config: &self.config,
                latency,
                resources: &resources,
                forbidden: &forbidden,
                scc_stage: &scc_stage,
                sccs: &components,
            };
            let pass_regions = region_plan.as_ref().map(|plan| PassRegions {
                op_region: &plan.region_of,
                inst_region: &inst_region,
            });
            match schedule_pass_reference_with_regions(&input, pass_regions.as_ref()) {
                PassOutcome::Success { desc, min_slack_ps } => {
                    return Ok(Schedule {
                        desc,
                        latency,
                        min_slack_ps,
                        passes: pass_no,
                        actions,
                    });
                }
                PassOutcome::Failure(failure) => {
                    last_restraints = failure.restraints.iter().map(|r| r.to_string()).collect();
                    let scc_stage_dense: Vec<u32> = (0..components.len())
                        .map(|i| scc_stage.get(&i).copied().unwrap_or(0))
                        .collect();
                    let action = choose_action(
                        &failure.restraints,
                        &self.config,
                        self.lib,
                        latency,
                        components.len(),
                        &scc_stage_dense,
                        &resources,
                        &failure.failed_ops,
                    );
                    let Some(action) = action else {
                        return Err(SchedError::Overconstrained {
                            latency,
                            passes: pass_no,
                            details: last_restraints.join("; "),
                            worst_slack_ps: worst_negative_slack(&failure.restraints),
                        });
                    };
                    match &action {
                        RelaxAction::AddState => latency += 1,
                        RelaxAction::AddResource(ty) => {
                            resources.add(ty.clone());
                            if let Some(plan) = &region_plan {
                                inst_region.push(owner_region(
                                    &failure.restraints,
                                    ty,
                                    &plan.region_of,
                                ));
                            }
                        }
                        RelaxAction::AddResourceBatch { ty, count } => {
                            if let Some(plan) = &region_plan {
                                for owner in batch_owner_regions(
                                    &failure.restraints,
                                    ty,
                                    *count,
                                    &plan.region_of,
                                ) {
                                    resources.add(ty.clone());
                                    inst_region.push(owner);
                                }
                            } else {
                                for _ in 0..*count {
                                    resources.add(ty.clone());
                                }
                            }
                        }
                        RelaxAction::MoveScc { scc_index } => {
                            *scc_stage.entry(*scc_index).or_insert(0) += 1;
                        }
                        RelaxAction::ForbidBinding { op, resource } => {
                            forbidden.insert((*op, *resource));
                        }
                    }
                    actions.push(action);
                }
            }
        }
        Err(budget_exhausted(
            format!("{} scheduling passes", self.config.max_passes),
            latency,
            self.config.max_passes,
            last_restraints,
            &actions,
        ))
    }
}

/// Builds the [`SchedError::BudgetExhausted`] partial-diagnostics payload
/// shared by both drivers: the last failed pass's restraints plus every
/// relaxation action applied so far, rendered.
fn budget_exhausted(
    budget: String,
    latency: u32,
    passes: u32,
    restraints: Vec<String>,
    actions: &[RelaxAction],
) -> SchedError {
    SchedError::BudgetExhausted {
        budget,
        latency,
        passes,
        restraints,
        actions: actions.iter().map(|a| a.to_string()).collect(),
    }
}

/// Schedules first with unlimited mobility and *then* assigns resources — the
/// classical separated flow the paper argues against. Used only by the
/// ablation benchmark to quantify the benefit of simultaneous scheduling and
/// binding; the separated flow ignores sharing-mux delays while placing
/// operations, so its schedules systematically over-estimate the available
/// slack.
///
/// # Errors
/// Propagates the same errors as [`Scheduler::run`].
pub fn schedule_separated(
    body: &LinearBody,
    lib: &TechLibrary,
    config: SchedulerConfig,
) -> Result<Schedule, SchedError> {
    // Phase 1: pretend every operation class has as many instances as
    // operations (no contention, no sharing muxes) to fix states quickly.
    let mut generous = config.clone();
    generous.allow_add_resources = true;
    let unlimited = initial_resource_set(body, 1);
    let components = sccs(&body.dfg);
    let mut latency = generous.min_latency.max(1);
    let schedule_states;
    loop {
        let input = PassInput {
            body,
            lib,
            config: &generous,
            latency,
            resources: &unlimited,
            forbidden: &HashSet::new(),
            scc_stage: &HashMap::new(),
            sccs: &components,
        };
        match schedule_pass(&input) {
            PassOutcome::Success { desc, .. } => {
                schedule_states = desc;
                break;
            }
            PassOutcome::Failure(_) if latency < generous.max_latency => latency += 1,
            PassOutcome::Failure(f) => {
                return Err(SchedError::Overconstrained {
                    latency,
                    passes: 1,
                    details: format!("separated flow failed: {} restraints", f.restraints.len()),
                    worst_slack_ps: worst_negative_slack(&f.restraints),
                })
            }
        }
    }
    // Phase 2: bind onto the lower-bound resource set state by state; this is
    // where the separated flow pays for ignoring mux delays: we simply keep
    // the state assignment and recompute the worst slack with sharing muxes,
    // reporting it (possibly negative — the post-synthesis surprise).
    let shared = initial_resource_set(body, config.ii_or(latency));
    let mut timing = hls_netlist::ChainTiming::new(lib, config.clock);
    let mut min_slack: f64 = config.clock.period_ps();
    for (id, s) in &schedule_states.ops {
        let op = body.dfg.op(*id);
        if let Some(ty) = hls_tech::ResourceType::for_op(op) {
            if matches!(ty.class, hls_tech::ResourceClass::IoPort) {
                continue;
            }
            let in_arrivals: Vec<f64> = op
                .inputs
                .iter()
                .map(|sig| match sig.producer() {
                    Some(p) if sig.distance == 0 => match schedule_states.ops.get(&p) {
                        Some(sp) if sp.state == s.state => {
                            timing.register_arrival_ps() + lib.delay_ps(&ty)
                        }
                        _ => timing.register_arrival_ps(),
                    },
                    _ => timing.register_arrival_ps(),
                })
                .collect();
            // with sharing: every op of the class shares one of the few
            // instances → mux penalty
            let ops_of_class = body
                .dfg
                .iter_ops()
                .filter(|(_, o)| {
                    hls_tech::ResourceType::for_op(o)
                        .map(|t| t.class == ty.class)
                        .unwrap_or(false)
                })
                .count();
            let insts = shared.count_of_class(&ty.class).max(1);
            let a = timing.op_arrival_ps(&in_arrivals, ops_of_class.div_ceil(insts), &ty);
            min_slack =
                min_slack.min(timing.slack_shared_ps(a, op.width, config.sharing_possible()));
        }
    }
    Ok(Schedule {
        latency: schedule_states.num_states,
        desc: ScheduleDesc {
            resources: shared,
            ..schedule_states
        },
        min_slack_ps: min_slack,
        passes: 1,
        actions: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_frontend::designs;
    use hls_opt::linearize::prepare_innermost_loop;
    use hls_tech::{ClockConstraint, ResourceClass};

    fn example1() -> LinearBody {
        let mut cdfg = designs::paper_example1_cdfg().expect("elab");
        prepare_innermost_loop(&mut cdfg).expect("prepare")
    }

    fn lib() -> TechLibrary {
        TechLibrary::artisan_90nm_typical()
    }

    fn clk() -> ClockConstraint {
        ClockConstraint::from_period_ps(1600.0)
    }

    #[test]
    fn example1_sequential_matches_table2() {
        // Paper, Example 1: minimum resources, 3 cycles per iteration, the
        // scheduler needed to add two states starting from latency 1.
        let body = example1();
        let lib = lib();
        let schedule = Scheduler::new(&body, &lib, SchedulerConfig::sequential(clk(), 1, 3))
            .run()
            .expect("schedulable");
        assert_eq!(schedule.latency, 3);
        assert_eq!(schedule.cycles_per_iteration(), 3);
        assert_eq!(
            schedule
                .desc
                .resources
                .count_of_class(&ResourceClass::Multiplier),
            1
        );
        assert!(
            schedule
                .actions
                .iter()
                .filter(|a| matches!(a, RelaxAction::AddState))
                .count()
                >= 2
        );
        assert!(schedule.min_slack_ps >= 0.0);
        let table = schedule.table(&body);
        assert!(table.contains("mul1_op"));
    }

    #[test]
    fn example2_pipelined_ii2_uses_two_multipliers() {
        // Paper, Example 2: II=2 → LI=3, two multipliers, same schedule shape.
        let body = example1();
        let lib = lib();
        let schedule = Scheduler::new(&body, &lib, SchedulerConfig::pipelined(clk(), 2, 6))
            .run()
            .expect("schedulable");
        assert_eq!(schedule.cycles_per_iteration(), 2);
        assert_eq!(schedule.latency, 3, "LI should stay at II+1 = 3");
        assert_eq!(
            schedule
                .desc
                .resources
                .count_of_class(&ResourceClass::Multiplier),
            2
        );
    }

    #[test]
    fn example3_pipelined_ii1_uses_three_multipliers() {
        // Paper, Example 3: II=1 → the SCC must fit one state; the scheduler
        // succeeds after relaxation with 3 multipliers and LI=3.
        let body = example1();
        let lib = lib();
        let schedule = Scheduler::new(&body, &lib, SchedulerConfig::pipelined(clk(), 1, 6))
            .run()
            .expect("schedulable");
        assert_eq!(schedule.cycles_per_iteration(), 1);
        assert_eq!(
            schedule
                .desc
                .resources
                .count_of_class(&ResourceClass::Multiplier),
            3
        );
        assert!(
            schedule.latency >= 3,
            "LI must grow beyond 2 (two chained muls do not fit)"
        );
        // the SCC sits in a single state
        let scc = &sccs(&body.dfg)[0];
        let states: HashSet<u32> = scc.ops.iter().map(|&o| schedule.desc.state_of(o)).collect();
        assert_eq!(
            states.len(),
            1,
            "SCC must be scheduled within one state at II=1"
        );
    }

    #[test]
    fn overconstrained_when_latency_capped_too_low() {
        let body = example1();
        let lib = lib();
        let mut config = SchedulerConfig::sequential(clk(), 1, 1);
        config.allow_add_resources = false;
        let err = Scheduler::new(&body, &lib, config).run().unwrap_err();
        assert!(matches!(err, SchedError::Overconstrained { .. }));
    }

    #[test]
    fn pass_budget_exhaustion_reports_partial_diagnostics() {
        // Example 1 needs at least two relaxation actions (add two states);
        // a one-pass budget cuts the search off mid-flight.
        let body = example1();
        let lib = lib();
        let mut config = SchedulerConfig::sequential(clk(), 1, 3);
        config.max_passes = 1;
        let err = Scheduler::new(&body, &lib, config).run().unwrap_err();
        match err {
            SchedError::BudgetExhausted {
                passes,
                restraints,
                actions,
                ..
            } => {
                assert_eq!(passes, 1);
                assert!(!restraints.is_empty(), "last pass's restraints carried");
                assert_eq!(actions.len(), 1, "the one applied action is reported");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn zero_deadline_stops_after_the_first_failed_pass() {
        let body = example1();
        let lib = lib();
        let config =
            SchedulerConfig::sequential(clk(), 1, 3).with_deadline(std::time::Duration::ZERO);
        let err = Scheduler::new(&body, &lib, config).run().unwrap_err();
        match err {
            SchedError::BudgetExhausted {
                budget,
                passes,
                restraints,
                ..
            } => {
                assert!(budget.contains("deadline"), "{budget}");
                assert_eq!(passes, 1, "one pass ran before the deadline check");
                assert!(!restraints.is_empty());
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn deadline_does_not_preempt_a_first_pass_success() {
        // A spec feasible on pass 1 succeeds even under a zero deadline: the
        // budget is checked between passes, never before the first.
        let body = example1();
        let lib = lib();
        let config =
            SchedulerConfig::sequential(clk(), 3, 3).with_deadline(std::time::Duration::ZERO);
        let schedule = Scheduler::new(&body, &lib, config).run().expect("pass 1");
        assert_eq!(schedule.passes, 1);
    }

    #[test]
    fn moving_average_schedules_sequentially() {
        let mut cdfg = hls_frontend::elaborate(&designs::moving_average(3, 16)).expect("elab");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        let lib = lib();
        let schedule = Scheduler::new(&body, &lib, SchedulerConfig::sequential(clk(), 1, 4))
            .run()
            .expect("schedulable");
        assert!(schedule.latency <= 4);
    }

    #[test]
    fn fir_filter_pipelines_at_ii1() {
        // A feed-forward FIR has no recurrence, so II=1 must be achievable
        // (with enough multipliers).
        let mut cdfg =
            hls_frontend::elaborate(&designs::fir_filter(&[3, -5, 7, 9], 16)).expect("elab");
        let body = prepare_innermost_loop(&mut cdfg).expect("prepare");
        let lib = lib();
        let schedule = Scheduler::new(&body, &lib, SchedulerConfig::pipelined(clk(), 1, 12))
            .run()
            .expect("schedulable");
        assert_eq!(schedule.cycles_per_iteration(), 1);
        assert!(
            schedule
                .desc
                .resources
                .count_of_class(&ResourceClass::Multiplier)
                >= 4
        );
    }

    #[test]
    fn separated_flow_reports_worse_slack_than_unified() {
        let body = example1();
        let lib = lib();
        let unified = Scheduler::new(&body, &lib, SchedulerConfig::sequential(clk(), 1, 3))
            .run()
            .expect("unified");
        let separated = schedule_separated(&body, &lib, SchedulerConfig::sequential(clk(), 1, 3))
            .expect("separated");
        assert!(
            separated.min_slack_ps <= unified.min_slack_ps,
            "separated {} vs unified {}",
            separated.min_slack_ps,
            unified.min_slack_ps
        );
    }

    #[test]
    fn tighter_clock_needs_more_states() {
        let body = example1();
        let lib = lib();
        let relaxed = Scheduler::new(
            &body,
            &lib,
            SchedulerConfig::sequential(ClockConstraint::from_period_ps(2600.0), 1, 8),
        )
        .run()
        .expect("relaxed clock");
        let tight = Scheduler::new(
            &body,
            &lib,
            SchedulerConfig::sequential(ClockConstraint::from_period_ps(1250.0), 1, 8),
        )
        .run()
        .expect("tight clock");
        assert!(tight.latency >= relaxed.latency);
    }
}
