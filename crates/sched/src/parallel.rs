//! Deterministic parallel execution of independent work items.
//!
//! Two layers share this primitive. Design-space exploration is
//! embarrassingly parallel: every Figure 9 design, every Figure 10/11 IDCT
//! sweep point and every Pareto candidate is an independent scheduling
//! problem. Within one large design, the region decomposition layer
//! ([`crate::region`]) produces weakly connected groups of regions that are
//! likewise independent and are re-passed concurrently. [`map_indexed`] fans
//! a slice of such problems out over `std::thread::scope` workers (no
//! external thread-pool dependency) and returns results **in input order**,
//! so callers observe exactly the output a sequential loop would produce —
//! scheduling is deterministic, and the collection order is fixed by index,
//! not by thread completion time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of worker threads to use: the `HLS_EXPLORE_THREADS` environment
/// variable when set (a value of `1` disables parallelism), otherwise the
/// machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("HLS_EXPLORE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` across scoped worker threads and
/// returns the results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so a few expensive
/// items — large Figure 9 designs — do not serialize behind a static
/// partition. With one worker (or one item) the call degenerates to a plain
/// sequential loop with no threads spawned.
///
/// # Panics
/// Panics if a worker panics (the panic is propagated by the thread scope).
pub fn map_indexed<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let n = items.len();
    let workers = worker_count().min(n.max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i, &items[i]);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_order_stable() {
        let items: Vec<usize> = (0..64).collect();
        let out = map_indexed(&items, |i, &v| {
            // stagger completion to shake out ordering bugs
            if v % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            (i, v * v)
        });
        for (i, (idx, sq)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*sq, i * i);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out = map_indexed(&items, |_, &v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let out = map_indexed(&[41], |_, &v| v + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<i64> = (0..33).map(|i| i * 3 - 7).collect();
        let parallel = map_indexed(&items, |_, &v| v.wrapping_mul(v) ^ 0x5a);
        let sequential: Vec<i64> = items.iter().map(|&v| v.wrapping_mul(v) ^ 0x5a).collect();
        assert_eq!(parallel, sequential);
    }
}
