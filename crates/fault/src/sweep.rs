//! The mutation sweep: run every cataloged mutant through the verification
//! stack and report which checker killed it.
//!
//! The kill pipeline mirrors the synthesizer's own gate order:
//!
//! 1. `hls_nir::validate` — structural damage (width mismatches, bad
//!    arities) dies here;
//! 2. `hls_lint::analyze` — a mutant is lint-killed when any per-lint
//!    finding count *increases* over the unmutated baseline (the baseline
//!    may legitimately carry warnings);
//! 3. `hls_sim::differential::check_nir` — the netlist simulator against
//!    the reference interpreter on one shared deterministic stimulus.
//!
//! A mutant that survives all three **escaped**. Escapes are the whole
//! point of the exercise: an undocumented escape is a hole in the checker
//! stack, while a documented one ([`FaultClass::documented_escape`]) is an
//! architectural invariant the report names instead of hiding.

use crate::catalog::{documented_site_escape, enumerate, inject, FaultClass, FaultSpec};
use hls_ir::{LinearBody, PortId};
use hls_lint::{analyze, Lint, LintConfig, LintContext};
use hls_nir::{validate, CellId, CellKind, NirModule};
use hls_sim::differential::check_nir;
use hls_sim::{NirSim, Stimulus};
use hls_tech::{ClockConstraint, TechLibrary};
use std::fmt::Write as _;

/// Which checker of the stack killed a mutant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Checker {
    /// `hls_nir::validate` rejected the mutant structurally.
    Validator,
    /// `hls_lint::analyze` reported more findings than the baseline.
    Lint,
    /// The netlist differential diverged from the reference interpreter.
    Differential,
}

impl Checker {
    /// Lower-case keyword used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Checker::Validator => "validator",
            Checker::Lint => "lint",
            Checker::Differential => "differential",
        }
    }
}

/// What happened to one mutant.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultOutcome {
    /// A checker flagged the mutant.
    Killed {
        /// The first checker (in gate order) that flagged it.
        by: Checker,
        /// The checker's rendering of what it saw.
        detail: String,
    },
    /// No checker flagged the mutant.
    Escaped {
        /// Whether the class documents this escape as architecturally
        /// expected ([`FaultClass::documented_escape`]).
        documented: bool,
        /// The documented reason, or a description of the hole.
        reason: String,
    },
}

impl FaultOutcome {
    /// Whether the mutant was killed.
    pub fn is_killed(&self) -> bool {
        matches!(self, FaultOutcome::Killed { .. })
    }
}

/// One mutant and its fate.
#[derive(Clone, Debug, PartialEq)]
pub struct MutantOutcome {
    /// The injected fault.
    pub spec: FaultSpec,
    /// What the checker stack did with it.
    pub outcome: FaultOutcome,
}

/// Sweep configuration. The defaults match the synthesizer's verification
/// depth (64 vectors) with a seed reserved for fault sweeps.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Random input vectors for the differential stage.
    pub vectors: usize,
    /// Stimulus seed; the report records it for replay.
    pub seed: u64,
    /// At most this many mutants per fault class (evenly spaced sites).
    pub max_per_class: usize,
    /// Analyzer configuration for the lint stage.
    pub lint: LintConfig,
    /// Whether a datapath mutant (corrupted constant, swapped operands,
    /// narrowed width) that infects architectural state without reaching an
    /// output is a hole (`true`, the default) or a documented *masked
    /// mutant* (`false`).
    ///
    /// Strict mode is the right setting for curated designs, where every
    /// piece of datapath is observable by construction and an
    /// infected-but-not-propagated mutant means the stimulus is too weak.
    /// Randomly *generated* programs routinely contain semantically dead
    /// datapath (`low8(x << 11)`, values shadowed by a later reassignment)
    /// that no stimulus can ever propagate; non-strict mode accepts those
    /// with a machine-checked trace certificate instead of failing the
    /// sweep. Escapees are always re-attacked with an escalated stimulus
    /// (4x vectors, fresh seed) before any certificate is granted.
    pub strict_propagation: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            vectors: 64,
            seed: 0xFA017,
            max_per_class: 8,
            lint: LintConfig::default(),
            strict_propagation: true,
        }
    }
}

/// Per-class kill/escape tallies — one row of the kill matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassSummary {
    /// The fault class.
    pub class: FaultClass,
    /// Mutants injected.
    pub mutants: usize,
    /// Killed by the structural validator.
    pub killed_validator: usize,
    /// Killed by the lint/STA analyzer.
    pub killed_lint: usize,
    /// Killed by the netlist differential.
    pub killed_differential: usize,
    /// Escaped, with the class's documented reason.
    pub escaped_documented: usize,
    /// Escaped with no documented reason — a checker hole.
    pub escaped_undocumented: usize,
}

impl ClassSummary {
    /// Total kills across the three checkers.
    pub fn killed(&self) -> usize {
        self.killed_validator + self.killed_lint + self.killed_differential
    }
}

/// Machine-readable result of one [`run_sweep`]: every mutant's fate, the
/// stimulus parameters for replay, and the coverage verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultCoverageReport {
    /// Name of the swept module.
    pub module: String,
    /// Clock the lint/STA stage ran against, picoseconds.
    pub clock_ps: f64,
    /// Differential vectors per mutant.
    pub vectors: usize,
    /// Stimulus seed.
    pub seed: u64,
    /// Whether the *unmutated* netlist passed all three checkers — a
    /// failing baseline voids the sweep (kills would be meaningless).
    pub baseline_ok: bool,
    /// Every mutant and its fate, in enumeration order.
    pub outcomes: Vec<MutantOutcome>,
}

impl FaultCoverageReport {
    /// Total mutants injected.
    pub fn mutants(&self) -> usize {
        self.outcomes.len()
    }

    /// Total mutants killed by any checker.
    pub fn killed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.outcome.is_killed())
            .count()
    }

    /// Escaped mutants that no class documents — each one is a hole in
    /// the checker stack.
    pub fn undocumented_escapes(&self) -> Vec<&MutantOutcome> {
        self.outcomes
            .iter()
            .filter(
                |o| matches!(&o.outcome, FaultOutcome::Escaped { documented, .. } if !documented),
            )
            .collect()
    }

    /// The coverage verdict the acceptance tests gate on: the baseline
    /// passed, and every mutant was either killed or is a documented
    /// escape of its class.
    pub fn is_covered(&self) -> bool {
        self.baseline_ok && self.undocumented_escapes().is_empty()
    }

    /// Per-class tallies in catalog order (classes with no site on this
    /// netlist report zero mutants).
    pub fn summaries(&self) -> Vec<ClassSummary> {
        FaultClass::ALL
            .iter()
            .map(|&class| {
                let mut s = ClassSummary {
                    class,
                    mutants: 0,
                    killed_validator: 0,
                    killed_lint: 0,
                    killed_differential: 0,
                    escaped_documented: 0,
                    escaped_undocumented: 0,
                };
                for o in self.outcomes.iter().filter(|o| o.spec.class == class) {
                    s.mutants += 1;
                    match &o.outcome {
                        FaultOutcome::Killed {
                            by: Checker::Validator,
                            ..
                        } => s.killed_validator += 1,
                        FaultOutcome::Killed {
                            by: Checker::Lint, ..
                        } => s.killed_lint += 1,
                        FaultOutcome::Killed {
                            by: Checker::Differential,
                            ..
                        } => s.killed_differential += 1,
                        FaultOutcome::Escaped {
                            documented: true, ..
                        } => s.escaped_documented += 1,
                        FaultOutcome::Escaped {
                            documented: false, ..
                        } => s.escaped_undocumented += 1,
                    }
                }
                s
            })
            .collect()
    }

    /// Renders the kill matrix as a text table (one row per class).
    pub fn kill_matrix(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault coverage for `{}` @ {:.0} ps ({} vectors, seed {:#x}): {}/{} killed{}",
            self.module,
            self.clock_ps,
            self.vectors,
            self.seed,
            self.killed(),
            self.mutants(),
            if self.is_covered() {
                ""
            } else {
                " — NOT COVERED"
            }
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>7} {:>9} {:>5} {:>5} {:>8}",
            "class", "mutants", "validator", "lint", "diff", "escaped"
        );
        for s in self.summaries() {
            let escaped = s.escaped_documented + s.escaped_undocumented;
            let _ = writeln!(
                out,
                "  {:<24} {:>7} {:>9} {:>5} {:>5} {:>8}{}",
                s.class.name(),
                s.mutants,
                s.killed_validator,
                s.killed_lint,
                s.killed_differential,
                escaped,
                if s.escaped_undocumented > 0 {
                    " (UNDOCUMENTED)"
                } else if s.escaped_documented > 0 {
                    " (documented)"
                } else {
                    ""
                }
            );
        }
        out
    }

    /// Serializes the report to JSON (hand-rolled, same conventions as
    /// `hls_lint`'s reports: stable field order, three-decimal floats).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"module\": \"{}\",", esc(&self.module));
        let _ = writeln!(out, "  \"clock_ps\": {:.3},", self.clock_ps);
        let _ = writeln!(out, "  \"vectors\": {},", self.vectors);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"baseline_ok\": {},", self.baseline_ok);
        let _ = writeln!(out, "  \"covered\": {},", self.is_covered());
        let _ = writeln!(out, "  \"mutants\": {},", self.mutants());
        let _ = writeln!(out, "  \"killed\": {},", self.killed());
        out.push_str("  \"classes\": [");
        for (i, s) in self.summaries().iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"class\": \"{}\", \"mutants\": {}, \"killed_validator\": {}, \
                 \"killed_lint\": {}, \"killed_differential\": {}, \
                 \"escaped_documented\": {}, \"escaped_undocumented\": {}}}",
                s.class,
                s.mutants,
                s.killed_validator,
                s.killed_lint,
                s.killed_differential,
                s.escaped_documented,
                s.escaped_undocumented
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"outcomes\": [");
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"class\": \"{}\", \"cell\": {}, \"description\": \"{}\", ",
                o.spec.class,
                o.spec.cell.index(),
                esc(&o.spec.description)
            );
            match &o.outcome {
                FaultOutcome::Killed { by, detail } => {
                    let _ = write!(
                        out,
                        "\"outcome\": \"killed\", \"by\": \"{}\", \"detail\": \"{}\"}}",
                        by.name(),
                        esc(detail)
                    );
                }
                FaultOutcome::Escaped { documented, reason } => {
                    let _ = write!(
                        out,
                        "\"outcome\": \"escaped\", \"documented\": {}, \"reason\": \"{}\"}}",
                        documented,
                        esc(reason)
                    );
                }
            }
        }
        out.push_str(if self.outcomes.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }
}

/// Runs the full mutation sweep: enumerate the catalog over `netlist`,
/// inject each mutant, and push it through validate → lint → differential.
/// `body` is the behavioural loop body the netlist implements — the
/// differential's reference semantics.
///
/// Deterministic: the stimulus, the site enumeration and every mutation
/// are pure functions of the inputs and `config`.
pub fn run_sweep(
    body: &LinearBody,
    netlist: &NirModule,
    library: &TechLibrary,
    clock: ClockConstraint,
    config: &FaultConfig,
) -> FaultCoverageReport {
    let ctx = LintContext::new(library, clock);
    let stimulus = Stimulus::random(&body.dfg, config.vectors, config.seed);
    let baseline_lint = analyze(netlist, &ctx, &config.lint);
    let baseline_counts = baseline_lint.counts();
    let baseline_ok = validate(netlist).is_ok()
        && !baseline_lint.has_deny()
        && check_nir(body, netlist, &stimulus).is_ok();

    // Survivors of the base pipeline get one more differential attack with
    // a longer, differently-seeded stimulus before any escape certificate
    // is considered.
    let escalated = Stimulus::random(
        &body.dfg,
        config.vectors * 4,
        config.seed.wrapping_add(0x9E37_79B9),
    );

    let mut outcomes = Vec::new();
    for spec in enumerate(netlist, config.max_per_class) {
        let mutant = inject(netlist, &spec);
        let outcome = kill(body, &mutant, &ctx, config, &baseline_counts, &stimulus)
            .or_else(|| {
                check_nir(body, &mutant, &escalated)
                    .err()
                    .map(|e| FaultOutcome::Killed {
                        by: Checker::Differential,
                        detail: format!("escalated {}-vector stimulus: {e}", config.vectors * 4),
                    })
            })
            .unwrap_or_else(|| {
                match documented_site_escape(netlist, &spec)
                    .or_else(|| probed_escape(netlist, &mutant, &spec, &stimulus, config))
                {
                    Some(reason) => FaultOutcome::Escaped {
                        documented: true,
                        reason,
                    },
                    None => FaultOutcome::Escaped {
                        documented: false,
                        reason: format!(
                            "survived validate, lint, and a {}-vector differential",
                            config.vectors
                        ),
                    },
                }
            });
        outcomes.push(MutantOutcome { spec, outcome });
    }
    FaultCoverageReport {
        module: netlist.name.clone(),
        clock_ps: clock.period_ps(),
        vectors: config.vectors,
        seed: config.seed,
        baseline_ok,
        outcomes,
    }
}

/// The three-stage kill pipeline; `None` means the mutant escaped.
fn kill(
    body: &LinearBody,
    mutant: &NirModule,
    ctx: &LintContext,
    config: &FaultConfig,
    baseline_counts: &[usize; Lint::ALL.len()],
    stimulus: &Stimulus,
) -> Option<FaultOutcome> {
    if let Err(e) = validate(mutant) {
        return Some(FaultOutcome::Killed {
            by: Checker::Validator,
            detail: e.to_string(),
        });
    }
    let report = analyze(mutant, ctx, &config.lint);
    let counts = report.counts();
    for (i, lint) in Lint::ALL.iter().enumerate() {
        if counts[i] > baseline_counts[i] {
            return Some(FaultOutcome::Killed {
                by: Checker::Lint,
                detail: format!(
                    "{lint}: {} finding(s), baseline had {}",
                    counts[i], baseline_counts[i]
                ),
            });
        }
    }
    match check_nir(body, mutant, stimulus) {
        Err(e) => Some(FaultOutcome::Killed {
            by: Checker::Differential,
            detail: e.to_string(),
        }),
        Ok(_) => None,
    }
}

/// Dynamic escape classification for value-local faults that the static
/// [`documented_site_escape`] analysis could not explain.
///
/// A per-cycle probe (an always-enabled output reading the mutated cell)
/// is attached to both the original and the mutant, and their probe traces
/// are compared under the sweep stimulus:
///
/// * identical traces — the mutated cell never carries a different value;
///   the mutant is an *equivalent mutant* (a re-armed register recaptures
///   the value it held, an exchanged selection picks arms that agree) and
///   no behavioural checker can be expected to see it;
/// * diverging traces — the fault does corrupt cycle-level values, but the
///   schedule's value lifetimes never route a corrupted window to an
///   observable write: a *masked* mutant (reached and infected, but never
///   propagated), the classic non-propagating case of mutation analysis.
///
/// Both are named escape families with a machine-checked certificate, so
/// they report as documented. The classification only applies to the
/// classes whose mutation is value-local to the anchor cell (enable faults
/// on registers, mux arm/select faults); everything else — and any probe
/// that fails to simulate — reports as an undocumented hole.
fn probed_escape(
    original: &NirModule,
    mutant: &NirModule,
    spec: &FaultSpec,
    stimulus: &Stimulus,
    config: &FaultConfig,
) -> Option<String> {
    // Enable faults on *output* cells get their own certificate. A mutant
    // only reaches escape classification after the differential passed, and
    // the differential checks exactly the per-iteration write values — so
    // the only deviation a mis-gated port write can still hide is its cycle
    // placement inside the iteration. Compare the cycle-level write traces
    // to tell a truly equivalent rewrite of the enable from a pure
    // intra-iteration timing shift; both carry a machine-checked
    // certificate and the iteration-level I/O contract cannot observe
    // either.
    if matches!(
        spec.class,
        FaultClass::DroppedEnable | FaultClass::WrongEnable
    ) && matches!(original.cell(spec.cell).kind, CellKind::Output { .. })
    {
        let a = timed_writes(original, stimulus)?;
        let b = timed_writes(mutant, stimulus)?;
        return if a == b {
            Some(
                "equivalent mutant: the rewritten enable fires on exactly the \
                 original cycles under the sweep stimulus, so the port write \
                 trace is unchanged"
                    .to_string(),
            )
        } else {
            Some(
                "masked mutant: the mis-gated port write lands in a different \
                 cycle of the same iteration with the same value — an \
                 intra-iteration timing shift the iteration-level I/O contract \
                 cannot observe"
                    .to_string(),
            )
        };
    }
    let lifetime_maskable = match spec.class {
        FaultClass::DroppedEnable | FaultClass::WrongEnable => {
            matches!(original.cell(spec.cell).kind, CellKind::Reg { .. })
        }
        FaultClass::MuxArmSwap | FaultClass::SelectInversion => true,
        _ => false,
    };
    if lifetime_maskable {
        let a = probe_trace(original, spec.cell, stimulus)?;
        let b = probe_trace(mutant, spec.cell, stimulus)?;
        return if a == b {
            Some(
                "equivalent mutant: a per-cycle probe shows the mutated cell never \
                 carries a different value under the sweep stimulus"
                    .to_string(),
            )
        } else {
            Some(
                "masked mutant: the fault corrupts the cell's cycle-level value \
                 (probe diverges) but the schedule's value lifetimes never read a \
                 corrupted window, so no observable write differs"
                    .to_string(),
            )
        };
    }
    // Datapath-value faults (corrupted constants, swapped operands,
    // narrowed widths) get the stricter certificate: the mutant is only a
    // documented escape when its ENTIRE architectural state — every
    // register, every output, every cycle — is identical to the original's
    // under the stimulus. Such a mutant is behaviourally indistinguishable
    // on this stimulus and no checker can be blamed for missing it. A
    // mutant that infects a register without propagating stays an
    // undocumented hole: richer stimulus should have killed it.
    if matches!(
        spec.class,
        FaultClass::ConstCorruption | FaultClass::OperandSwap | FaultClass::WidthNarrowing
    ) {
        let a = architectural_trace(original, stimulus)?;
        let b = architectural_trace(mutant, stimulus)?;
        if a == b {
            return Some(
                "equivalent mutant under the sweep stimulus: every register and \
                 output of the mutant is cycle-identical to the original's, so the \
                 programs are behaviourally indistinguishable on this stimulus"
                    .to_string(),
            );
        }
        // Infected but not propagated. In strict mode that is a hole —
        // richer stimulus should have killed it. Non-strict mode accepts
        // it with a trace certificate: the divergence is confined to
        // registers (every output write already matched the reference,
        // including under the escalated stimulus), which on generated
        // programs usually means the infected state is semantically dead.
        if !config.strict_propagation {
            return Some(
                "masked mutant (non-strict): the corruption infects register \
                 state but no output write differs, even under the escalated \
                 stimulus — the infected state never reaches an output"
                    .to_string(),
            );
        }
        return None;
    }
    None
}

/// The cycle-level write trace of `m` under `stimulus`: every recorded
/// port write with its exact cycle, not just its iteration.
fn timed_writes(m: &NirModule, stimulus: &Stimulus) -> Option<Vec<(u64, u32, u32, i64)>> {
    let trace = NirSim::new(m).ok()?.run(stimulus).ok()?;
    Some(
        trace
            .writes
            .iter()
            .map(|w| (w.cycle, w.port.index() as u32, w.iteration, w.value))
            .collect(),
    )
}

/// The full architectural state trajectory of `m` under `stimulus`: the
/// per-cycle write trace of every output port plus an always-enabled probe
/// on every register.
fn architectural_trace(m: &NirModule, stimulus: &Stimulus) -> Option<Vec<Vec<(u32, i64)>>> {
    let mut probed = m.clone();
    let regs: Vec<CellId> = probed
        .iter_cells()
        .filter(|(_, c)| matches!(c.kind, CellKind::Reg { .. }))
        .map(|(id, _)| id)
        .collect();
    for (i, &reg) in regs.iter().enumerate() {
        let width = probed.cell(reg).width;
        let port = probed.ports.len() as u32;
        probed.ports.push(hls_ir::Port {
            name: format!("__state_probe{i}"),
            direction: hls_ir::PortDirection::Output,
            width,
        });
        let en = probed.push(CellKind::Const(1), 1, vec![]);
        probed.push(CellKind::Output { port, state: 0 }, width, vec![reg, en]);
    }
    let trace = NirSim::new(&probed).ok()?.run(stimulus).ok()?;
    Some(
        (0..probed.ports.len())
            .map(|i| trace.port_writes(PortId::from_raw(i as u32)))
            .collect(),
    )
}

/// Simulates `m` with an always-enabled probe output attached to `cell`
/// and returns the probe's per-cycle write trace.
fn probe_trace(m: &NirModule, cell: CellId, stimulus: &Stimulus) -> Option<Vec<(u32, i64)>> {
    let mut probed = m.clone();
    let width = probed.cell(cell).width;
    let port = probed.ports.len() as u32;
    probed.ports.push(hls_ir::Port {
        name: "__fault_probe".into(),
        direction: hls_ir::PortDirection::Output,
        width,
    });
    let en = probed.push(CellKind::Const(1), 1, vec![]);
    probed.push(CellKind::Output { port, state: 0 }, width, vec![cell, en]);
    let trace = NirSim::new(&probed).ok()?.run(stimulus).ok()?;
    Some(trace.port_writes(PortId::from_raw(port)))
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(outcomes: Vec<MutantOutcome>) -> FaultCoverageReport {
        FaultCoverageReport {
            module: "demo".into(),
            clock_ps: 1600.0,
            vectors: 64,
            seed: 0xFA017,
            baseline_ok: true,
            outcomes,
        }
    }

    fn mutant(class: FaultClass, outcome: FaultOutcome) -> MutantOutcome {
        MutantOutcome {
            spec: FaultSpec {
                class,
                cell: hls_nir::CellId::from_raw(3),
                description: "test \"mutant\"".into(),
            },
            outcome,
        }
    }

    #[test]
    fn coverage_verdict_accounts_for_documented_escapes() {
        let covered = report(vec![
            mutant(
                FaultClass::OperandSwap,
                FaultOutcome::Killed {
                    by: Checker::Differential,
                    detail: "diverged".into(),
                },
            ),
            mutant(
                FaultClass::RegInitFlip,
                FaultOutcome::Escaped {
                    documented: true,
                    reason: "shielded".into(),
                },
            ),
        ]);
        assert!(covered.is_covered());
        assert_eq!(covered.killed(), 1);
        assert!(covered.undocumented_escapes().is_empty());

        let holey = report(vec![mutant(
            FaultClass::ConstCorruption,
            FaultOutcome::Escaped {
                documented: false,
                reason: "survived".into(),
            },
        )]);
        assert!(!holey.is_covered());
        assert_eq!(holey.undocumented_escapes().len(), 1);

        let mut broken = report(vec![]);
        broken.baseline_ok = false;
        assert!(!broken.is_covered(), "failing baseline voids the sweep");
    }

    #[test]
    fn summaries_tally_by_class_and_checker() {
        let r = report(vec![
            mutant(
                FaultClass::OperandSwap,
                FaultOutcome::Killed {
                    by: Checker::Validator,
                    detail: String::new(),
                },
            ),
            mutant(
                FaultClass::OperandSwap,
                FaultOutcome::Killed {
                    by: Checker::Lint,
                    detail: String::new(),
                },
            ),
        ]);
        let s = r
            .summaries()
            .into_iter()
            .find(|s| s.class == FaultClass::OperandSwap)
            .unwrap();
        assert_eq!(s.mutants, 2);
        assert_eq!(s.killed_validator, 1);
        assert_eq!(s.killed_lint, 1);
        assert_eq!(s.killed(), 2);
        // classes with no site still get a row
        assert_eq!(r.summaries().len(), FaultClass::ALL.len());
    }

    #[test]
    fn json_is_escaped_and_balanced() {
        let r = report(vec![mutant(
            FaultClass::MuxArmSwap,
            FaultOutcome::Escaped {
                documented: false,
                reason: "why\nnot".into(),
            },
        )]);
        let j = r.to_json();
        assert!(j.contains("\"test \\\"mutant\\\"\""));
        assert!(j.contains("\"why\\nnot\""));
        assert!(j.contains("\"covered\": false"));
        assert!(j.contains("\"class\": \"mux-arm-swap\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn kill_matrix_renders_every_class() {
        let r = report(vec![]);
        let text = r.kill_matrix();
        for class in FaultClass::ALL {
            assert!(text.contains(class.name()), "{class} missing:\n{text}");
        }
    }
}
