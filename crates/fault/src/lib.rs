//! Deterministic fault injection for the rpp-hls verification stack.
//!
//! The flow leans on three checkers to certify a lowered netlist:
//! `hls_nir::validate` (structure), `hls_lint::analyze` (structural lints +
//! static timing) and `hls_sim::differential::check_nir` (bit-exact
//! execution against the reference interpreter). This crate answers the
//! question those checkers cannot answer about themselves: *would they
//! actually notice if the netlist were wrong?*
//!
//! It does so by mutation testing the checkers. A typed catalog
//! ([`FaultClass`]) enumerates realistic lowering bugs — swapped operands,
//! exchanged mux arms, corrupted constants, dropped write enables, narrowed
//! datapaths, inverted selects — and [`inject`] plants each one into a copy
//! of a known-good netlist. [`run_sweep`] then pushes every mutant through
//! the full checker stack in gate order and records which checker killed
//! it. The resulting [`FaultCoverageReport`] is machine-readable and gates
//! CI: every class must be killed, or carry a *named, documented escape*
//! ([`FaultClass::documented_escape`]) explaining the architectural
//! invariant that makes the fault unobservable.
//!
//! Everything is deterministic: site enumeration, site capping, mutation,
//! and the differential stimulus are pure functions of the netlist and the
//! [`FaultConfig`] seed, so a red coverage job replays exactly.

mod catalog;
mod sweep;

pub use catalog::{
    documented_site_escape, enumerate, inject, sampling_stable, FaultClass, FaultSpec,
};
pub use sweep::{
    run_sweep, Checker, ClassSummary, FaultConfig, FaultCoverageReport, FaultOutcome, MutantOutcome,
};
