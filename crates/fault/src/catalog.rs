//! The typed fault catalog: what can be broken in a structural netlist,
//! where, and how.
//!
//! Every fault class models a *plausible lowering or rewrite bug* — the
//! kind of structural damage a wrong pass would inflict — rather than an
//! arbitrary bit flip. Enumeration is deterministic: sites are discovered
//! in cell-arena order, filtered so that the mutation is guaranteed to be
//! a *semantic change candidate* (no swapping of identical operands, no
//! corrupting dead logic), and capped per class by evenly-spaced
//! selection. [`inject`] is a pure function of `(netlist, spec)`, so a
//! sweep is reproducible from its report alone.

use hls_ir::eval::BitVal;
use hls_ir::CmpKind;
use hls_nir::{BinKind, CellId, CellKind, NirModule, UnKind};
use std::fmt;

/// A class of injected faults. See `ROBUSTNESS.md` for the catalog with
/// the expected detecting checker per class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Swap the operands of a non-commutative binary operator.
    OperandSwap,
    /// Swap the then/else arms of a multiplexer.
    MuxArmSwap,
    /// Flip the low bit of a constant cell's value.
    ConstCorruption,
    /// Flip the low bit of a register's reset value.
    RegInitFlip,
    /// Tie a register or output enable to constant 1 (write every cycle).
    DroppedEnable,
    /// Route a register or output enable through an inverter.
    WrongEnable,
    /// Narrow a datapath cell's width by one bit.
    WidthNarrowing,
    /// Append a written-but-never-read register (dead logic the sweep
    /// passes should have prevented or the lints must flag).
    DeadCellResurrection,
    /// Route a multiplexer select through an inverter.
    SelectInversion,
}

impl FaultClass {
    /// Every fault class, in catalog order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::OperandSwap,
        FaultClass::MuxArmSwap,
        FaultClass::ConstCorruption,
        FaultClass::RegInitFlip,
        FaultClass::DroppedEnable,
        FaultClass::WrongEnable,
        FaultClass::WidthNarrowing,
        FaultClass::DeadCellResurrection,
        FaultClass::SelectInversion,
    ];

    /// Kebab-case name used in reports and the JSON serialization.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::OperandSwap => "operand-swap",
            FaultClass::MuxArmSwap => "mux-arm-swap",
            FaultClass::ConstCorruption => "const-corruption",
            FaultClass::RegInitFlip => "reg-init-flip",
            FaultClass::DroppedEnable => "dropped-enable",
            FaultClass::WrongEnable => "wrong-enable",
            FaultClass::WidthNarrowing => "width-narrowing",
            FaultClass::DeadCellResurrection => "dead-cell-resurrection",
            FaultClass::SelectInversion => "select-inversion",
        }
    }

    /// The lowering/rewrite bug the class models.
    pub fn description(self) -> &'static str {
        match self {
            FaultClass::OperandSwap => {
                "operand order lost while emitting a non-commutative operator"
            }
            FaultClass::MuxArmSwap => "then/else arms exchanged while building a mux",
            FaultClass::ConstCorruption => "coefficient or control constant miscomputed",
            FaultClass::RegInitFlip => "register reset value miscomputed",
            FaultClass::DroppedEnable => "enable gating lost; the cell updates every cycle",
            FaultClass::WrongEnable => "enable polarity inverted",
            FaultClass::WidthNarrowing => "datapath width truncated by one bit",
            FaultClass::DeadCellResurrection => "dead logic left behind by a rewrite",
            FaultClass::SelectInversion => "mux select polarity inverted",
        }
    }

    /// The named escape documented for this class, if any: why no
    /// behavioural checker can see such mutants *by construction*, as
    /// opposed to a coverage hole.
    ///
    /// `RegInitFlip` is the one documented escape: lowered netlists
    /// shield every reset value architecturally — first-iteration values
    /// flow through `FirstIter` anchor muxes (never out of a register's
    /// init), and observable writes are stage-valid gated until real data
    /// has flushed through — so a flipped init is unobservable whenever
    /// that shielding is intact. A *killed* reg-init mutant is therefore
    /// evidence the shielding was broken, and an escape is the expected
    /// outcome, not a missed detection.
    pub fn documented_escape(self) -> Option<&'static str> {
        match self {
            FaultClass::RegInitFlip => Some(
                "register reset values are architecturally unobservable: first-iteration \
                 values come from FirstIter anchor muxes and writes are stage-valid gated, \
                 so the flipped init is never read by observable logic",
            ),
            _ => None,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injectable fault: a class anchored at a cell, with a rendered
/// description of the exact mutation. `(class, cell)` fully determines the
/// mutation — [`inject`] takes no other input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault class.
    pub class: FaultClass,
    /// The cell the mutation anchors at.
    pub cell: CellId,
    /// Human-readable rendering of the mutation.
    pub description: String,
}

/// Whether swapping this operator's operands can change its value.
fn non_commutative(kind: BinKind) -> bool {
    matches!(
        kind,
        BinKind::Sub
            | BinKind::Div
            | BinKind::Rem
            | BinKind::Shl
            | BinKind::Shr
            | BinKind::Cmp(CmpKind::Lt | CmpKind::Le | CmpKind::Gt | CmpKind::Ge)
    )
}

/// Evenly-spaced selection of at most `max` site indices — deterministic
/// and spread over the arena instead of biased toward the controller cells
/// at its start.
fn select_sites(sites: Vec<CellId>, max: usize) -> Vec<CellId> {
    if sites.len() <= max || max == 0 {
        return sites;
    }
    (0..max).map(|i| sites[i * sites.len() / max]).collect()
}

/// Enumerates every injectable fault of the catalog over `m`, capped at
/// `max_per_class` sites per class (evenly spaced over the arena when the
/// cap binds). Only live cells are mutated — a fault in dead logic is an
/// equivalent mutant by construction and would say nothing about the
/// checkers.
pub fn enumerate(m: &NirModule, max_per_class: usize) -> Vec<FaultSpec> {
    let live = m.live_cells();
    let is_live = |id: CellId| live[id.index()];
    let mut specs = Vec::new();

    for class in FaultClass::ALL {
        let sites: Vec<CellId> = m
            .iter_cells()
            .filter(|&(id, cell)| {
                is_live(id)
                    && match class {
                        FaultClass::OperandSwap => match cell.kind {
                            CellKind::Bin(b) => {
                                non_commutative(b) && cell.inputs[0] != cell.inputs[1]
                            }
                            _ => false,
                        },
                        FaultClass::MuxArmSwap => {
                            matches!(cell.kind, CellKind::Mux { .. })
                                && cell.inputs[1] != cell.inputs[2]
                        }
                        FaultClass::ConstCorruption => matches!(cell.kind, CellKind::Const(_)),
                        FaultClass::RegInitFlip => matches!(cell.kind, CellKind::Reg { .. }),
                        FaultClass::DroppedEnable => match cell.kind {
                            CellKind::Reg { .. } | CellKind::Output { .. } => {
                                // tying an always-true enable to 1 is a no-op
                                let en = m.cell(cell.inputs[1]);
                                !matches!(en.kind, CellKind::Const(v)
                                    if BitVal::new(v, en.width).as_i64() != 0)
                            }
                            _ => false,
                        },
                        FaultClass::WrongEnable => {
                            matches!(cell.kind, CellKind::Reg { .. } | CellKind::Output { .. })
                                // Not only inverts truthiness at width 1
                                && m.cell(cell.inputs[1]).width == 1
                        }
                        FaultClass::WidthNarrowing => {
                            cell.width >= 2
                                && match cell.kind {
                                    CellKind::Bin(b) => !matches!(b, BinKind::Cmp(_)),
                                    CellKind::Mux { .. } | CellKind::Reg { .. } => true,
                                    _ => false,
                                }
                        }
                        FaultClass::DeadCellResurrection => {
                            !matches!(cell.kind, CellKind::Output { .. })
                        }
                        FaultClass::SelectInversion => {
                            matches!(cell.kind, CellKind::Mux { .. })
                                && m.cell(cell.inputs[0]).width == 1
                                && cell.inputs[1] != cell.inputs[2]
                        }
                    }
            })
            .map(|(id, _)| id)
            .collect();
        for cell in select_sites(sites, max_per_class) {
            specs.push(FaultSpec {
                class,
                description: describe(m, class, cell),
                cell,
            });
        }
    }
    specs
}

/// Whether `id` is a register whose data input is a pure combinational
/// function of module inputs and constants — an *input-sampling* register.
///
/// The simulation contract holds port inputs stable for the whole
/// iteration, so every cycle in which such a register could capture sees
/// the same data: mutating its enable (dropping the gate or inverting it)
/// only moves *when* it recaptures an identical value. Any cone that
/// touches sequential state (`Reg`, `FsmState`, `StageValid`, `FirstIter`)
/// disqualifies the site — those values do change cycle to cycle.
pub fn sampling_stable(m: &NirModule, id: CellId) -> bool {
    if !matches!(m.cell(id).kind, CellKind::Reg { .. }) {
        return false;
    }
    let mut seen = vec![false; m.num_cells()];
    let mut stack = vec![m.cell(id).inputs[0]];
    while let Some(c) = stack.pop() {
        if std::mem::replace(&mut seen[c.index()], true) {
            continue;
        }
        let cell = m.cell(c);
        match cell.kind {
            CellKind::Input { .. } | CellKind::Const(_) => {}
            CellKind::Bin(_)
            | CellKind::Un(_)
            | CellKind::Mux { .. }
            | CellKind::Slice { .. }
            | CellKind::Resize => stack.extend(cell.inputs.iter().copied()),
            _ => return false,
        }
    }
    true
}

/// The documented reason `spec` is allowed to escape the checker stack on
/// `m`, if any: either the class-level escape
/// ([`FaultClass::documented_escape`]) or the site-level equivalent-mutant
/// family of enable faults on [sampling-stable](sampling_stable) registers.
/// `None` means an escape of this mutant is an undocumented checker hole.
pub fn documented_site_escape(m: &NirModule, spec: &FaultSpec) -> Option<String> {
    if let Some(reason) = spec.class.documented_escape() {
        return Some(reason.to_string());
    }
    if matches!(
        spec.class,
        FaultClass::DroppedEnable | FaultClass::WrongEnable
    ) && sampling_stable(m, spec.cell)
    {
        return Some(
            "equivalent mutant: the register samples a pure function of \
             iteration-stable port inputs, so re-arming its enable recaptures \
             the same value"
                .to_string(),
        );
    }
    None
}

fn describe(m: &NirModule, class: FaultClass, id: CellId) -> String {
    let cell = m.cell(id);
    let at = match &cell.name {
        Some(n) => format!("{id} `{n}`"),
        None => format!("{id}"),
    };
    match class {
        FaultClass::OperandSwap => format!("swap operands of {at} ({:?})", cell.kind),
        FaultClass::MuxArmSwap => format!("swap mux arms of {at}"),
        FaultClass::ConstCorruption => format!("flip low bit of constant {at}"),
        FaultClass::RegInitFlip => format!("flip low bit of reset value of {at}"),
        FaultClass::DroppedEnable => format!("tie enable of {at} to 1"),
        FaultClass::WrongEnable => format!("invert enable of {at}"),
        FaultClass::WidthNarrowing => {
            format!("narrow {at} from {} to {} bits", cell.width, cell.width - 1)
        }
        FaultClass::DeadCellResurrection => {
            format!("append a dead register capturing {at}")
        }
        FaultClass::SelectInversion => format!("invert mux select of {at}"),
    }
}

/// Applies `spec` to a clone of `m` and returns the mutant. Pure and
/// deterministic: the same `(netlist, spec)` always yields the same
/// mutant, so any sweep result is replayable from its report.
///
/// # Panics
/// Panics if `spec` does not fit the cell it names (wrong kind or a
/// degenerate site) — specs are meant to come from [`enumerate`] on the
/// same netlist.
pub fn inject(m: &NirModule, spec: &FaultSpec) -> NirModule {
    let mut mutant = m.clone();
    let idx = spec.cell.index();
    match spec.class {
        FaultClass::OperandSwap => mutant.cells[idx].inputs.swap(0, 1),
        FaultClass::MuxArmSwap => mutant.cells[idx].inputs.swap(1, 2),
        FaultClass::ConstCorruption => {
            let width = mutant.cells[idx].width;
            match &mut mutant.cells[idx].kind {
                CellKind::Const(v) => *v = BitVal::new(*v ^ 1, width).as_i64(),
                other => panic!("const-corruption at non-const cell {other:?}"),
            }
        }
        FaultClass::RegInitFlip => {
            let width = mutant.cells[idx].width;
            match &mut mutant.cells[idx].kind {
                CellKind::Reg { init } => *init = BitVal::new(*init ^ 1, width).as_i64(),
                other => panic!("reg-init-flip at non-register cell {other:?}"),
            }
        }
        FaultClass::DroppedEnable => {
            let one = mutant.push(CellKind::Const(1), 1, vec![]);
            mutant.cells[idx].inputs[1] = one;
        }
        FaultClass::WrongEnable => {
            let enable = mutant.cells[idx].inputs[1];
            let width = mutant.cell(enable).width;
            let inverted = mutant.push(CellKind::Un(UnKind::Not), width, vec![enable]);
            mutant.cells[idx].inputs[1] = inverted;
        }
        FaultClass::WidthNarrowing => mutant.cells[idx].width -= 1,
        FaultClass::DeadCellResurrection => {
            let width = mutant.cells[idx].width;
            let one = mutant.push(CellKind::Const(1), 1, vec![]);
            mutant.push(CellKind::Reg { init: 0 }, width, vec![spec.cell, one]);
        }
        FaultClass::SelectInversion => {
            let select = mutant.cells[idx].inputs[0];
            let width = mutant.cell(select).width;
            let inverted = mutant.push(CellKind::Un(UnKind::Not), width, vec![select]);
            mutant.cells[idx].inputs[0] = inverted;
        }
    }
    mutant
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_nir::{validate, Cell};

    /// reg → add(reg, const) → reg, with an output and a mux — one site
    /// for most classes.
    fn fixture() -> NirModule {
        let mut m = NirModule::new("fixture");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let c = m.push(CellKind::Const(5), 16, vec![]);
        let r = m.add_cell(Cell {
            kind: CellKind::Reg { init: 0 },
            width: 16,
            inputs: vec![],
            name: Some("acc".into()),
        });
        let sub = m.push(CellKind::Bin(BinKind::Sub), 16, vec![r, c]);
        let fsm = m.push(CellKind::FsmState, 8, vec![]);
        let z = m.push(CellKind::Const(0), 8, vec![]);
        let sel = m.push(CellKind::Bin(BinKind::Cmp(CmpKind::Eq)), 1, vec![fsm, z]);
        let mx = m.push(CellKind::Mux { onehot: false }, 16, vec![sel, sub, c]);
        m.cells[r.index()].inputs = vec![mx, en];
        m.ports.push(hls_ir::Port {
            name: "out".into(),
            width: 16,
            direction: hls_ir::PortDirection::Output,
        });
        m.push(CellKind::Output { port: 0, state: 0 }, 16, vec![mx, sel]);
        validate(&m).expect("fixture is well-formed");
        m
    }

    #[test]
    fn names_are_kebab_case_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for class in FaultClass::ALL {
            assert!(seen.insert(class.name()), "{class} duplicated");
            assert!(class
                .name()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(!class.description().is_empty());
        }
    }

    #[test]
    fn enumeration_covers_every_class_and_is_deterministic() {
        let m = fixture();
        let specs = enumerate(&m, 8);
        for class in FaultClass::ALL {
            assert!(
                specs.iter().any(|s| s.class == class),
                "{class} found no site in the fixture"
            );
        }
        assert_eq!(specs, enumerate(&m, 8), "deterministic");
    }

    #[test]
    fn site_caps_select_evenly_and_deterministically() {
        let m = fixture();
        let capped = enumerate(&m, 1);
        let mut by_class = std::collections::HashMap::new();
        for s in &capped {
            *by_class.entry(s.class).or_insert(0usize) += 1;
        }
        assert!(by_class.values().all(|&n| n <= 1));
        let full = enumerate(&m, usize::MAX);
        for s in &capped {
            assert!(full.contains(s), "capped sites are a subset");
        }
    }

    #[test]
    fn injection_is_pure_and_changes_the_netlist() {
        let m = fixture();
        for spec in enumerate(&m, 8) {
            let mutant = inject(&m, &spec);
            assert_ne!(mutant, m, "{}: mutant differs", spec.description);
            assert_eq!(mutant, inject(&m, &spec), "{}: pure", spec.description);
        }
    }

    #[test]
    fn operand_swap_skips_commutative_and_equal_operand_sites() {
        let mut m = fixture();
        // add(c, c): commutative AND equal operands — never a site
        let c = CellId::from_raw(1);
        let add = m.push(CellKind::Bin(BinKind::Add), 16, vec![c, c]);
        let en = CellId::from_raw(0);
        let r = m.push(CellKind::Reg { init: 0 }, 16, vec![add, en]);
        let out = m
            .iter_cells()
            .find(|(_, c)| matches!(c.kind, CellKind::Output { .. }))
            .map(|(id, _)| id)
            .unwrap();
        m.cells[out.index()].inputs[0] = r;
        let specs = enumerate(&m, usize::MAX);
        assert!(!specs
            .iter()
            .any(|s| s.class == FaultClass::OperandSwap && s.cell == add));
    }

    #[test]
    fn dead_logic_is_never_a_site() {
        let mut m = fixture();
        // a dead subtraction (nothing reads it)
        let c = CellId::from_raw(1);
        let r = CellId::from_raw(2);
        let dead = m.push(CellKind::Bin(BinKind::Sub), 16, vec![c, r]);
        for spec in enumerate(&m, usize::MAX) {
            assert_ne!(spec.cell, dead, "{}: dead cell mutated", spec.description);
        }
    }

    #[test]
    fn const_corruption_stays_canonical_at_width() {
        let mut m = NirModule::new("w1");
        let en = m.push(CellKind::Const(1), 1, vec![]);
        let r = m.push(CellKind::Reg { init: 0 }, 1, vec![en, en]);
        let _ = r;
        let spec = FaultSpec {
            class: FaultClass::ConstCorruption,
            cell: en,
            description: String::new(),
        };
        let mutant = inject(&m, &spec);
        match mutant.cell(en).kind {
            // width-1: 1 ^ 1 = 0
            CellKind::Const(v) => assert_eq!(v, 0),
            _ => unreachable!(),
        }
    }
}
