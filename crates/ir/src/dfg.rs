//! The data flow graph: operations, ports and data dependencies.

use crate::error::IrError;
use crate::ids::{CfgEdgeId, OpId, PortId};
use crate::op::{OpKind, Operation};
use crate::predicate::Predicate;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Direction of a module port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Data flowing into the module (read by `OpKind::Read`).
    Input,
    /// Data flowing out of the module (written by `OpKind::Write`).
    Output,
}

/// A module-level I/O port (an `sc_in`/`sc_out` of the paper's SystemC input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// Port name as written in the source description.
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// Bit width.
    pub width: u16,
}

/// A data input of an operation.
///
/// A signal either references the result of another operation (possibly from
/// a *previous loop iteration*, expressed by `distance > 0`) or is an
/// immediate constant. Loop-carried references are how inter-iteration
/// dependencies — and therefore the strongly connected components that
/// constrain pipelining (Section V, requirement a) — enter the DFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signal {
    /// Producer of the value.
    pub source: SignalSource,
    /// Bit width of the consumed value.
    pub width: u16,
    /// Iteration distance: 0 = same iteration, k > 0 = value produced k
    /// iterations earlier.
    pub distance: u32,
}

/// Where a [`Signal`] value comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignalSource {
    /// Result of another DFG operation.
    Op(OpId),
    /// Immediate constant (also representable as `OpKind::Const`; immediates
    /// avoid polluting the DFG with constant nodes).
    Const(i64),
}

impl Signal {
    /// Signal fed by the result of `op` in the same iteration.
    pub fn op(op: OpId) -> Self {
        Signal {
            source: SignalSource::Op(op),
            width: 32,
            distance: 0,
        }
    }

    /// Signal fed by the result of `op` with an explicit bit width.
    pub fn op_w(op: OpId, width: u16) -> Self {
        Signal {
            source: SignalSource::Op(op),
            width,
            distance: 0,
        }
    }

    /// Loop-carried signal: the value `op` produced `distance` iterations ago.
    pub fn carried(op: OpId, width: u16, distance: u32) -> Self {
        Signal {
            source: SignalSource::Op(op),
            width,
            distance,
        }
    }

    /// Immediate constant signal.
    pub fn constant(value: i64, width: u16) -> Self {
        Signal {
            source: SignalSource::Const(value),
            width,
            distance: 0,
        }
    }

    /// Returns the producing operation, if the source is an operation.
    pub fn producer(&self) -> Option<OpId> {
        match self.source {
            SignalSource::Op(id) => Some(id),
            SignalSource::Const(_) => None,
        }
    }

    /// Returns `true` if the signal crosses loop iterations.
    pub fn is_loop_carried(&self) -> bool {
        self.distance > 0
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.source {
            SignalSource::Op(id) => {
                if self.distance > 0 {
                    write!(f, "{id}@-{}", self.distance)
                } else {
                    write!(f, "{id}")
                }
            }
            SignalSource::Const(v) => write!(f, "#{v}"),
        }
    }
}

/// A data dependency edge `from → to` derived from operation inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DataDep {
    /// Producing operation.
    pub from: OpId,
    /// Consuming operation.
    pub to: OpId,
    /// Input position on the consumer.
    pub to_input: usize,
    /// Iteration distance (0 = intra-iteration).
    pub distance: u32,
}

/// The data flow graph of one behavioural thread (or one loop body).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dfg {
    ops: Vec<Operation>,
    ports: Vec<Port>,
}

impl Dfg {
    /// Creates an empty DFG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a module port and returns its id.
    pub fn add_port(
        &mut self,
        name: impl Into<String>,
        direction: PortDirection,
        width: u16,
    ) -> PortId {
        self.ports.push(Port {
            name: name.into(),
            direction,
            width,
        });
        PortId::from_raw((self.ports.len() - 1) as u32)
    }

    /// Adds an operation and returns its id.
    pub fn add_op(&mut self, kind: OpKind, width: u16, inputs: Vec<Signal>) -> OpId {
        self.ops.push(Operation::new(kind, width, inputs));
        OpId::from_raw((self.ops.len() - 1) as u32)
    }

    /// Adds a named operation (names show up in schedules and reports, like
    /// `mul1_op` in the paper's Table 2).
    pub fn add_named_op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        width: u16,
        inputs: Vec<Signal>,
    ) -> OpId {
        let id = self.add_op(kind, width, inputs);
        self.ops[id.index()].name = Some(name.into());
        id
    }

    /// Adds an operation guarded by a predicate.
    pub fn add_predicated_op(
        &mut self,
        kind: OpKind,
        width: u16,
        inputs: Vec<Signal>,
        predicate: Predicate,
    ) -> OpId {
        let id = self.add_op(kind, width, inputs);
        self.ops[id.index()].predicate = predicate;
        id
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Immutable access to an operation.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this DFG.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Mutable access to an operation.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this DFG.
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        &mut self.ops[id.index()]
    }

    /// Immutable access to a port.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this DFG.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.index()]
    }

    /// Iterator over `(OpId, &Operation)` pairs in id order.
    pub fn iter_ops(&self) -> impl Iterator<Item = (OpId, &Operation)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (OpId::from_raw(i as u32), op))
    }

    /// Iterator over all operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId::from_raw)
    }

    /// Iterator over `(PortId, &Port)` pairs.
    pub fn iter_ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports
            .iter()
            .enumerate()
            .map(|(i, p)| (PortId::from_raw(i as u32), p))
    }

    /// All data dependency edges, derived from operation inputs.
    pub fn data_deps(&self) -> Vec<DataDep> {
        let mut deps = Vec::new();
        for (to, op) in self.iter_ops() {
            for (pos, sig) in op.inputs.iter().enumerate() {
                if let Some(from) = sig.producer() {
                    deps.push(DataDep {
                        from,
                        to,
                        to_input: pos,
                        distance: sig.distance,
                    });
                }
            }
        }
        deps
    }

    /// Direct intra-iteration predecessors of `id` (distance-0 producers).
    pub fn preds(&self, id: OpId) -> Vec<OpId> {
        self.op(id)
            .inputs
            .iter()
            .filter(|s| s.distance == 0)
            .filter_map(|s| s.producer())
            .collect()
    }

    /// All predecessors of `id` including loop-carried ones.
    pub fn preds_with_carried(&self, id: OpId) -> Vec<(OpId, u32)> {
        self.op(id)
            .inputs
            .iter()
            .filter_map(|s| s.producer().map(|p| (p, s.distance)))
            .collect()
    }

    /// Direct intra-iteration successors (consumers) of `id`.
    pub fn succs(&self, id: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        for (to, op) in self.iter_ops() {
            if op
                .inputs
                .iter()
                .any(|s| s.distance == 0 && s.producer() == Some(id))
            {
                out.push(to);
            }
        }
        out
    }

    /// Size of the transitive fanout cone of `id` (number of operations that
    /// transitively consume its result within one iteration). Used by the
    /// scheduler's priority function.
    pub fn fanout_cone_size(&self, id: OpId) -> usize {
        let mut succ_map: HashMap<OpId, Vec<OpId>> = HashMap::new();
        for dep in self.data_deps() {
            if dep.distance == 0 {
                succ_map.entry(dep.from).or_default().push(dep.to);
            }
        }
        let mut seen: HashSet<OpId> = HashSet::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let Some(succs) = succ_map.get(&n) {
                for &s in succs {
                    if seen.insert(s) {
                        stack.push(s);
                    }
                }
            }
        }
        seen.len()
    }

    /// Returns ids of operations with no intra-iteration predecessors.
    pub fn roots(&self) -> Vec<OpId> {
        self.op_ids()
            .filter(|&id| self.preds(id).is_empty())
            .collect()
    }

    /// Returns ids of operations whose result feeds no other operation
    /// (typically port writes).
    pub fn sinks(&self) -> Vec<OpId> {
        let mut has_consumer: HashSet<OpId> = HashSet::new();
        for dep in self.data_deps() {
            if dep.distance == 0 {
                has_consumer.insert(dep.from);
            }
        }
        self.op_ids()
            .filter(|id| !has_consumer.contains(id))
            .collect()
    }

    /// Associates an operation with its home CFG edge (control step).
    pub fn set_home_edge(&mut self, op: OpId, edge: CfgEdgeId) {
        self.ops[op.index()].home_edge = Some(edge);
    }

    /// Checks structural invariants:
    ///
    /// * every referenced operation / port id exists,
    /// * fixed-arity kinds have the right number of inputs,
    /// * intra-iteration dependencies are acyclic (cycles may only appear
    ///   through loop-carried signals),
    /// * predicates are satisfiable and reference 1-bit condition ops.
    ///
    /// # Errors
    /// Returns the first violated invariant as an [`IrError`].
    pub fn validate(&self) -> Result<(), IrError> {
        for (id, op) in self.iter_ops() {
            if let Some(arity) = op.kind.arity() {
                if op.inputs.len() != arity {
                    return Err(IrError::BadArity {
                        op: id,
                        kind: op.kind.mnemonic(),
                        expected: arity,
                        found: op.inputs.len(),
                    });
                }
            }
            for sig in &op.inputs {
                if let Some(p) = sig.producer() {
                    if p.index() >= self.ops.len() {
                        return Err(IrError::DanglingOp {
                            op: id,
                            referenced: p,
                        });
                    }
                }
            }
            match &op.kind {
                OpKind::Read(p) | OpKind::Write(p) => {
                    if p.index() >= self.ports.len() {
                        return Err(IrError::DanglingPort {
                            op: id,
                            referenced: *p,
                        });
                    }
                    let port = self.port(*p);
                    let expect = match op.kind {
                        OpKind::Read(_) => PortDirection::Input,
                        _ => PortDirection::Output,
                    };
                    if port.direction != expect {
                        return Err(IrError::PortDirectionMismatch { op: id, port: *p });
                    }
                }
                _ => {}
            }
            if !op.predicate.is_satisfiable() {
                return Err(IrError::UnsatisfiablePredicate { op: id });
            }
            for cond in op.predicate.condition_ops() {
                if cond.index() >= self.ops.len() {
                    return Err(IrError::DanglingOp {
                        op: id,
                        referenced: cond,
                    });
                }
            }
            if op.width == 0 {
                return Err(IrError::ZeroWidth { op: id });
            }
        }
        if let Some(cycle_member) = self.find_intra_iteration_cycle() {
            return Err(IrError::CombinationalDependenceCycle { op: cycle_member });
        }
        Ok(())
    }

    /// Finds an operation that is part of an intra-iteration (distance-0)
    /// dependence cycle, if any. Such cycles are malformed: within one
    /// iteration data flow must be acyclic; cycles across iterations must use
    /// loop-carried (distance ≥ 1) signals.
    fn find_intra_iteration_cycle(&self) -> Option<OpId> {
        // Kahn's algorithm; any node not drained is on a cycle.
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for dep in self.data_deps() {
            if dep.distance == 0 {
                indeg[dep.to.index()] += 1;
                succ[dep.from.index()].push(dep.to.index());
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut drained = 0usize;
        while let Some(i) = queue.pop() {
            drained += 1;
            for &s in &succ[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if drained == n {
            None
        } else {
            (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| OpId::from_raw(i as u32))
        }
    }

    /// Topological order of operations over intra-iteration dependencies.
    ///
    /// # Errors
    /// Returns [`IrError::CombinationalDependenceCycle`] if the distance-0
    /// dependence graph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<OpId>, IrError> {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for dep in self.data_deps() {
            if dep.distance == 0 {
                indeg[dep.to.index()] += 1;
                succ[dep.from.index()].push(dep.to.index());
            }
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(OpId::from_raw(i as u32));
            for &s in &succ[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            let member = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| OpId::from_raw(i as u32))
                .expect("cycle implies a node with nonzero in-degree");
            Err(IrError::CombinationalDependenceCycle { op: member })
        }
    }

    /// Counts operations of each kind mnemonic; handy for reports and for
    /// resource estimation sanity checks.
    pub fn kind_histogram(&self) -> HashMap<String, usize> {
        let mut map = HashMap::new();
        for (_, op) in self.iter_ops() {
            *map.entry(op.kind.mnemonic()).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CmpKind;

    fn small_dfg() -> (Dfg, OpId, OpId, OpId) {
        let mut dfg = Dfg::new();
        let a = dfg.add_port("a", PortDirection::Input, 16);
        let b = dfg.add_port("b", PortDirection::Input, 16);
        let ra = dfg.add_op(OpKind::Read(a), 16, vec![]);
        let rb = dfg.add_op(OpKind::Read(b), 16, vec![]);
        let sum = dfg.add_op(
            OpKind::Add,
            17,
            vec![Signal::op_w(ra, 16), Signal::op_w(rb, 16)],
        );
        (dfg, ra, rb, sum)
    }

    #[test]
    fn build_and_query() {
        let (dfg, ra, rb, sum) = small_dfg();
        assert_eq!(dfg.num_ops(), 3);
        assert_eq!(dfg.num_ports(), 2);
        assert_eq!(dfg.preds(sum), vec![ra, rb]);
        assert_eq!(dfg.succs(ra), vec![sum]);
        assert_eq!(dfg.roots(), vec![ra, rb]);
        assert_eq!(dfg.sinks(), vec![sum]);
        assert!(dfg.validate().is_ok());
    }

    #[test]
    fn data_deps_positions() {
        let (dfg, ra, rb, sum) = small_dfg();
        let deps = dfg.data_deps();
        assert_eq!(deps.len(), 2);
        assert!(deps.contains(&DataDep {
            from: ra,
            to: sum,
            to_input: 0,
            distance: 0
        }));
        assert!(deps.contains(&DataDep {
            from: rb,
            to: sum,
            to_input: 1,
            distance: 0
        }));
    }

    #[test]
    fn loop_carried_signals_do_not_count_as_intra_cycle() {
        let mut dfg = Dfg::new();
        // acc = acc@-1 + in ; classic accumulator SCC
        let inp = dfg.add_port("in", PortDirection::Input, 32);
        let read = dfg.add_op(OpKind::Read(inp), 32, vec![]);
        let acc = dfg.add_op(OpKind::Add, 32, vec![Signal::op(read), Signal::op(read)]);
        // rewrite second input as the accumulator's own value from the
        // previous iteration
        dfg.op_mut(acc).inputs[1] = Signal::carried(acc, 32, 1);
        assert!(dfg.validate().is_ok());
        let order = dfg
            .topo_order()
            .expect("loop-carried edge must not create a cycle");
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn intra_iteration_cycle_is_rejected() {
        let mut dfg = Dfg::new();
        let x = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::constant(1, 32), Signal::constant(2, 32)],
        );
        let y = dfg.add_op(
            OpKind::Add,
            32,
            vec![Signal::op(x), Signal::constant(1, 32)],
        );
        // create x <- y cycle at distance 0
        dfg.op_mut(x).inputs[0] = Signal::op(y);
        assert!(matches!(
            dfg.validate(),
            Err(IrError::CombinationalDependenceCycle { .. })
        ));
        assert!(dfg.topo_order().is_err());
    }

    #[test]
    fn arity_validation() {
        let mut dfg = Dfg::new();
        dfg.add_op(OpKind::Add, 32, vec![Signal::constant(1, 32)]);
        assert!(matches!(dfg.validate(), Err(IrError::BadArity { .. })));
    }

    #[test]
    fn port_direction_validation() {
        let mut dfg = Dfg::new();
        let out = dfg.add_port("pixel", PortDirection::Output, 32);
        dfg.add_op(OpKind::Read(out), 32, vec![]);
        assert!(matches!(
            dfg.validate(),
            Err(IrError::PortDirectionMismatch { .. })
        ));
    }

    #[test]
    fn unsatisfiable_predicate_rejected() {
        let mut dfg = Dfg::new();
        let cond = dfg.add_op(
            OpKind::Cmp(CmpKind::Gt),
            1,
            vec![Signal::constant(1, 32), Signal::constant(0, 32)],
        );
        let p = Predicate::Cond(cond).and(Predicate::NotCond(cond));
        dfg.add_predicated_op(
            OpKind::Add,
            32,
            vec![Signal::constant(1, 32), Signal::constant(2, 32)],
            p,
        );
        assert!(matches!(
            dfg.validate(),
            Err(IrError::UnsatisfiablePredicate { .. })
        ));
    }

    #[test]
    fn fanout_cone() {
        let (dfg, ra, _rb, sum) = small_dfg();
        assert_eq!(dfg.fanout_cone_size(ra), 1);
        assert_eq!(dfg.fanout_cone_size(sum), 0);
    }

    #[test]
    fn topo_order_respects_deps() {
        let (dfg, ra, rb, sum) = small_dfg();
        let order = dfg.topo_order().unwrap();
        let pos = |id: OpId| order.iter().position(|&o| o == id).unwrap();
        assert!(pos(ra) < pos(sum));
        assert!(pos(rb) < pos(sum));
    }

    #[test]
    fn kind_histogram_counts() {
        let (dfg, ..) = small_dfg();
        let hist = dfg.kind_histogram();
        assert_eq!(hist.get("add"), Some(&1));
        assert_eq!(hist.values().sum::<usize>(), 3);
    }

    #[test]
    fn zero_width_rejected() {
        let mut dfg = Dfg::new();
        dfg.add_op(OpKind::Pass, 0, vec![]);
        assert!(matches!(dfg.validate(), Err(IrError::ZeroWidth { .. })));
    }

    #[test]
    fn signal_display() {
        let s = Signal::carried(OpId::from_raw(2), 32, 1);
        assert_eq!(s.to_string(), "op2@-1");
        assert_eq!(Signal::constant(5, 8).to_string(), "#5");
        assert_eq!(Signal::op(OpId::from_raw(0)).to_string(), "op0");
    }
}
